#!/usr/bin/env bash
# Local CI gate (GitHub Actions is not available in the offline dev
# environment — run this before pushing). Mirrors the checks a hosted
# workflow would run, entirely offline:
#
#   ./ci.sh          # fmt + clippy + full test suite
#   ./ci.sh quick    # fmt + clippy + unit tests only (skips the
#                    # multi-day end-to-end simulations)
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test =="
if [[ "${1:-}" == "quick" ]]; then
    cargo test -q --offline --workspace --lib --bins
else
    cargo test -q --offline
fi

echo "== cargo bench --no-run =="
cargo bench --offline --no-run -q

echo "== polca-cli ingest smoke test =="
cargo run -q --offline --release -p polca-cli -- \
    ingest tests/golden/sample_trace.csv

echo "== polca-cli fleet smoke test =="
fleet_out="$(mktemp -d)"
trap 'rm -rf "$fleet_out"' EXIT
cargo run -q --offline --release -p polca-cli -- \
    evaluate --trace-csv tests/golden/sample_trace.csv \
    --rows 4 --jobs 2 --servers 10 --obs-out "$fleet_out"
for row in row0 row1 row2 row3; do
    [[ -f "$fleet_out/$row/events.jsonl" ]] \
        || { echo "missing fleet artifact: $row/events.jsonl"; exit 1; }
done
[[ -f "$fleet_out/metrics.json" ]] \
    || { echo "missing fleet-level metrics.json"; exit 1; }

echo "== polca-cli watch smoke test =="
watch_out="$(mktemp -d)"
trap 'rm -rf "$watch_out" "$fleet_out"' EXIT
cargo run -q --offline --release -p polca-cli -- \
    evaluate --trace-csv tests/golden/sample_trace.csv \
    --policy polca --watch --obs-out "$watch_out"
for f in incidents.jsonl report.md metrics.prom trace.json; do
    [[ -f "$watch_out/$f" ]] || { echo "missing watch artifact: $f"; exit 1; }
done
grep -q '^# Watch report' "$watch_out/report.md"
grep -q '^# TYPE ' "$watch_out/metrics.prom"
# Every incident line must be a JSON object with the lifecycle fields.
if [[ -s "$watch_out/incidents.jsonl" ]]; then
    grep -vq '^{"id":' "$watch_out/incidents.jsonl" \
        && { echo "malformed incidents.jsonl line"; exit 1; }
    grep -q '"detection_lag_s"' "$watch_out/incidents.jsonl"
fi

echo "CI OK"
