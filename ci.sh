#!/usr/bin/env bash
# Local CI gate (GitHub Actions is not available in the offline dev
# environment — run this before pushing). Mirrors the checks a hosted
# workflow would run, entirely offline:
#
#   ./ci.sh          # fmt + clippy + full test suite
#   ./ci.sh quick    # fmt + clippy + unit tests only (skips the
#                    # multi-day end-to-end simulations)
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test =="
if [[ "${1:-}" == "quick" ]]; then
    cargo test -q --offline --workspace --lib --bins
else
    cargo test -q --offline
fi

echo "== cargo bench --no-run =="
cargo bench --offline --no-run -q

echo "== polca-cli ingest smoke test =="
cargo run -q --offline --release -p polca-cli -- \
    ingest tests/golden/sample_trace.csv

echo "== polca-cli fleet smoke test =="
# One trap for every smoke-test scratch dir: each step registers its
# mktemp dir here instead of re-issuing `trap ... EXIT`, which would
# silently *replace* the previous handler and leak the earlier dirs.
scratch_dirs=()
cleanup() { ((${#scratch_dirs[@]})) && rm -rf "${scratch_dirs[@]}" || :; }
trap cleanup EXIT
scratch() {
    local dir
    dir="$(mktemp -d)"
    scratch_dirs+=("$dir")
    printf '%s' "$dir"
}
fleet_out="$(scratch)"
cargo run -q --offline --release -p polca-cli -- \
    evaluate --trace-csv tests/golden/sample_trace.csv \
    --rows 4 --jobs 2 --servers 10 --obs-out "$fleet_out"
for row in row0 row1 row2 row3; do
    [[ -f "$fleet_out/$row/events.jsonl" ]] \
        || { echo "missing fleet artifact: $row/events.jsonl"; exit 1; }
done
[[ -f "$fleet_out/metrics.json" ]] \
    || { echo "missing fleet-level metrics.json"; exit 1; }

echo "== polca-cli site smoke test =="
# Determinism gate for the parallel site simulator: a 3-datacenter
# site stepped on 2 worker threads must produce byte-identical
# events.jsonl to the same site stepped sequentially.
site_seq="$(scratch)"
site_par="$(scratch)"
cargo run -q --offline --release -p polca-cli -- \
    evaluate --trace-csv tests/golden/sample_trace.csv \
    --rows 2 --datacenters 3 --servers 10 --enforce-budgets \
    --fleet-threads 1 --obs-out "$site_seq" > /dev/null
cargo run -q --offline --release -p polca-cli -- \
    evaluate --trace-csv tests/golden/sample_trace.csv \
    --rows 2 --datacenters 3 --servers 10 --enforce-budgets \
    --fleet-threads 2 --obs-out "$site_par" > /dev/null
cmp "$site_seq/events.jsonl" "$site_par/events.jsonl" \
    || { echo "site events.jsonl differs across --fleet-threads"; exit 1; }
for row in 0 1 2 3 4 5; do
    cmp "$site_seq/row$row/events.jsonl" "$site_par/row$row/events.jsonl" \
        || { echo "row$row events.jsonl differs across --fleet-threads"; exit 1; }
done
grep -q 'datacenter="2"' "$site_seq/metrics.prom" \
    || { echo "no per-datacenter series in site metrics.prom"; exit 1; }
# --jobs (sweep workers) and --fleet-threads (row workers) nest: the
# four-policy panel path must still run with both set.
cargo run -q --offline --release -p polca-cli -- \
    evaluate --trace-csv tests/golden/sample_trace.csv \
    --rows 2 --datacenters 2 --servers 10 --jobs 2 --fleet-threads 2 \
    > /dev/null

echo "== polca-cli watch smoke test =="
watch_out="$(scratch)"
cargo run -q --offline --release -p polca-cli -- \
    evaluate --trace-csv tests/golden/sample_trace.csv \
    --policy polca --watch --obs-out "$watch_out"
for f in incidents.jsonl report.md metrics.prom trace.json; do
    [[ -f "$watch_out/$f" ]] || { echo "missing watch artifact: $f"; exit 1; }
done
grep -q '^# Watch report' "$watch_out/report.md"
grep -q '^# TYPE ' "$watch_out/metrics.prom"
# Every incident line must be a JSON object with the lifecycle fields.
if [[ -s "$watch_out/incidents.jsonl" ]]; then
    grep -vq '^{"id":' "$watch_out/incidents.jsonl" \
        && { echo "malformed incidents.jsonl line"; exit 1; }
    grep -q '"detection_lag_s"' "$watch_out/incidents.jsonl"
fi

echo "== polca-cli serve smoke test =="
serve_out="$(scratch)"
cargo run -q --offline --release -p polca-cli -- \
    evaluate --engine batched --days 0.02 --obs-out "$serve_out/agg"
cargo run -q --offline --release -p polca-cli -- \
    evaluate --engine batched --split-pools --days 0.02 \
    --obs-out "$serve_out/split"
for d in agg split; do
    for f in events.jsonl metrics.prom prof.json; do
        [[ -f "$serve_out/$d/$f" ]] \
            || { echo "missing serve artifact: $d/$f"; exit 1; }
    done
    grep -q '^serve_kv_occupancy ' "$serve_out/$d/metrics.prom" \
        || { echo "no KV-occupancy gauge in $d/metrics.prom"; exit 1; }
    grep -q '"serve.iteration"' "$serve_out/$d/prof.json" \
        || { echo "no serve.iteration phase in $d/prof.json"; exit 1; }
done
grep -q 'serve_pool_power_w{tag="aggregated"}' "$serve_out/agg/metrics.prom" \
    || { echo "no aggregated pool power gauge"; exit 1; }
grep -q 'serve_pool_power_w{tag="prefill"}' "$serve_out/split/metrics.prom" \
    || { echo "no prefill pool power gauge"; exit 1; }
grep -q 'serve_pool_power_w{tag="decode"}' "$serve_out/split/metrics.prom" \
    || { echo "no decode pool power gauge"; exit 1; }

echo "== polca-cli req-trace smoke test =="
req_out="$(scratch)"
cargo run -q --offline --release -p polca-cli -- \
    evaluate --engine batched --req-trace --days 0.02 --obs-out "$req_out"
[[ -s "$req_out/requests.jsonl" ]] \
    || { echo "req-trace wrote no requests.jsonl"; exit 1; }
# Every record must carry the lifecycle + energy schema fields.
for field in '"id"' '"priority"' '"queue_s"' '"ttft_s"' '"tbt_mean_s"' \
             '"tbt_max_s"' '"preemptions"' '"joules"' '"joules_per_token"' \
             '"co2e_g"' '"pue_applied"'; do
    grep -vq "$field" "$req_out/requests.jsonl" \
        && { echo "requests.jsonl line missing $field"; exit 1; }
done
# The per-priority TTFT histograms land in the Prometheus export.
grep -q '^# TYPE req_ttft_s summary' "$req_out/metrics.prom" \
    || { echo "no req_ttft_s histogram in metrics.prom"; exit 1; }
grep -q '^req_ttft_s{tag="' "$req_out/metrics.prom" \
    || { echo "req_ttft_s has no per-priority series"; exit 1; }
grep -q '^req_joules_per_token{tag="' "$req_out/metrics.prom" \
    || { echo "no joules-per-token histogram in metrics.prom"; exit 1; }

echo "== polca-cli energy smoke test =="
energy_out="$(scratch)"
cargo run -q --offline --release -p polca-cli -- \
    evaluate --engine batched --carbon-diurnal --days 0.02 \
    --obs-out "$energy_out" > "$energy_out/summary.txt"
for f in energy.json energy.csv metrics.prom; do
    [[ -s "$energy_out/$f" ]] \
        || { echo "missing energy artifact: $f"; exit 1; }
done
grep -q '^energy_site_wh ' "$energy_out/metrics.prom" \
    || { echo "no energy_site_wh gauge in metrics.prom"; exit 1; }
grep -q '^carbon_site_g ' "$energy_out/metrics.prom" \
    || { echo "no carbon_site_g gauge in metrics.prom"; exit 1; }
grep -q 'gCO2e' "$energy_out/summary.txt" \
    || { echo "evaluate printed no energy ledger table"; exit 1; }
# The bundled grid trace drives the same run (sample-and-hold CSV
# ingestion), and the ledger lands with a non-trivial carbon account.
energy_trace_out="$(scratch)"
cargo run -q --offline --release -p polca-cli -- \
    evaluate --engine batched --days 0.02 \
    --carbon-trace tests/golden/carbon_intensity_24h.csv \
    --obs-out "$energy_trace_out"
grep -q '^carbon_mean_g_per_kwh ' "$energy_trace_out/metrics.prom" \
    || { echo "carbon trace run emitted no mean intensity"; exit 1; }

echo "== bench-smoke (polca-cli profile vs committed BENCH_*.json) =="
# The committed BENCH_sim.json / BENCH_watch.json / BENCH_ingest.json /
# BENCH_serve.json / BENCH_fleet.json / BENCH_energy.json at the
# repository root are the perf-trajectory baseline, written by:
#
#   cargo run --release -p polca-cli -- profile --bench-out .
#
# The gate re-measures with the same command and fails when a
# throughput metric drops more than POLCA_BENCH_TOLERANCE_PCT below
# its committed value. The default tolerance is 20% — wide enough to
# absorb scheduler noise on a quiet machine (the profile command
# already takes best-of-N internally), tight enough to catch a real
# hot-path regression. Absolute numbers are machine-dependent:
# re-baseline with the command above when CI hardware changes, or
# raise the tolerance via the environment for shared/noisy runners.
bench_out="$(scratch)"
cargo run -q --offline --release -p polca-cli -- \
    profile --reps 3 --bench-out "$bench_out" > "$bench_out/profile.txt"
grep -q '^accounted: ' "$bench_out/profile.txt" \
    || { echo "profile printed no attribution table"; exit 1; }
tol="${POLCA_BENCH_TOLERANCE_PCT:-20}"
bench_value() { # <file> <key> — extract one top-level metric
    awk -v key="$2" -F'[:,]' \
        '$0 ~ "\"" key "\":" { gsub(/[ ",]/, "", $2); print $2; exit }' "$1"
}
check_bench() { # <name> <throughput-key>
    local name="$1" key="$2" committed fresh
    [[ -f "BENCH_${name}.json" ]] \
        || { echo "missing committed baseline BENCH_${name}.json"; exit 1; }
    committed="$(bench_value "BENCH_${name}.json" "$key")"
    fresh="$(bench_value "$bench_out/BENCH_${name}.json" "$key")"
    [[ -n "$committed" && -n "$fresh" ]] \
        || { echo "bench-smoke: $key missing from BENCH_${name}.json"; exit 1; }
    if ! awk -v c="$committed" -v f="$fresh" -v t="$tol" \
        'BEGIN { exit !(f >= c * (1 - t / 100)) }'; then
        echo "bench-smoke: ${name}.${key} regressed >${tol}%:" \
             "fresh $fresh vs baseline $committed"
        exit 1
    fi
    echo "  ${name}.${key}: $fresh vs baseline $committed (tolerance ${tol}%)"
}
check_bench sim sim_s_per_s
check_bench watch watch_runs_per_s
check_bench ingest rows_per_s
check_bench serve serve_sim_s_per_s
check_bench fleet fleet_sim_s_per_s
check_bench energy energy_runs_per_s

echo "CI OK"
