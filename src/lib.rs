//! Umbrella crate for the polca workspace: hosts the runnable examples in
//! `examples/` and the cross-crate integration tests in `tests/`. See the
//! `polca` crate for the framework itself.
