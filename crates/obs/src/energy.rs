//! polca-energy: a hierarchical energy & carbon ledger.
//!
//! The power plane answers "how many watts right now"; this module
//! answers the questions operators actually bill and report on:
//! watt-hours and grams of CO2-equivalent, per level of the site
//! hierarchy (row → PDU → datacenter → site), per priority class, and
//! per prefill/decode pool, down to joules/token and gCO2e/token.
//!
//! Accounting model:
//!
//! - **IT energy** is the trapezoidal integral of ground-truth
//!   per-server power over the existing telemetry windows (the same
//!   2 s grid every other ground-truth consumer uses), accumulated
//!   row-locally by [`EnergyAccum`] so parallel row execution stays
//!   byte-identical at any thread count.
//! - **Busy energy** is exact, not trapezoidal: the cluster sim
//!   maintains an event-level integral of power drawn by servers that
//!   are actively serving. It upper-bounds the per-request joules
//!   attributed by polca-req on both engines, which is pinned by test.
//! - **Facility energy** applies a per-datacenter PUE multiplier
//!   (defaulting to the [`CostModel`](https://example.invalid) constant
//!   `1.25` absorbed from `polca::cost`).
//! - **Carbon** multiplies facility energy by a grid carbon-intensity
//!   signal — a constant, a built-in synthetic diurnal curve, or a CSV
//!   trace read by a dependency-free ingest-style reader — sampled at
//!   each window's midpoint.
//!
//! Everything here is plain accumulation over values the simulator
//! already computes; the ledger is assembled once, on the main thread,
//! from per-row [`RowEnergy`] results in canonical row order, so the
//! exported artifacts obey the repo's determinism contract.

use crate::json::{esc, num};
use std::fmt::Write as _;
use std::sync::Arc;

/// Default power-usage-effectiveness multiplier, absorbed from the
/// `polca::cost::CostModel` default so the two planes agree out of the
/// box.
pub const DEFAULT_PUE: f64 = 1.25;

/// Default spacing of the exported energy timeseries samples, in
/// simulated seconds (15 min).
pub const DEFAULT_SERIES_STRIDE_S: f64 = 900.0;

// ---------------------------------------------------------------------------
// Carbon-intensity signals
// ---------------------------------------------------------------------------

/// A grid carbon-intensity trace: step-wise `(t_s, gCO2e/kWh)` points
/// that wrap modulo the trace span, so a 24 h trace drives a 6-week
/// run.
#[derive(Debug, Clone, PartialEq)]
pub struct CarbonTrace {
    /// `(time in seconds, grams CO2e per kWh)`, strictly increasing in
    /// time.
    points: Vec<(f64, f64)>,
    /// Period after which the trace repeats, in seconds.
    span_s: f64,
}

impl CarbonTrace {
    /// Build a trace from explicit points. Returns an error when the
    /// points are empty, non-finite, negative, or not strictly
    /// increasing in time.
    pub fn new(points: Vec<(f64, f64)>) -> Result<Self, String> {
        if points.is_empty() {
            return Err("carbon trace has no points".into());
        }
        for (i, (t, g)) in points.iter().enumerate() {
            if !t.is_finite() || !g.is_finite() || *t < 0.0 || *g < 0.0 {
                return Err(format!(
                    "carbon trace point {i} is not a finite non-negative pair"
                ));
            }
            if i > 0 && *t <= points[i - 1].0 {
                return Err(format!(
                    "carbon trace time not strictly increasing at point {i}"
                ));
            }
        }
        let span_s = if points.len() >= 2 {
            let last = points[points.len() - 1].0;
            let step = last - points[points.len() - 2].0;
            last + step
        } else {
            points[0].0 + 3600.0
        };
        Ok(Self { points, span_s })
    }

    /// Parse a carbon-intensity CSV with header `hour,carbon_g_per_kwh`
    /// (times in hours). RFC-4180 quoting is honoured; blank lines are
    /// skipped; errors carry 1-based line numbers. Dependency-free, in
    /// the style of `polca-ingest`.
    pub fn from_csv_str(text: &str) -> Result<Self, String> {
        let mut points = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.trim_end_matches('\r');
            if line.trim().is_empty() {
                continue;
            }
            let fields = split_csv_line(line);
            if fields.len() < 2 {
                return Err(format!(
                    "line {line_no}: expected 2 columns, got {}",
                    fields.len()
                ));
            }
            let (h, g) = (fields[0].trim(), fields[1].trim());
            if points.is_empty() && h.parse::<f64>().is_err() {
                // Header row: accept any header whose first cell is
                // non-numeric (canonically `hour,carbon_g_per_kwh`).
                continue;
            }
            let hour: f64 = h
                .parse()
                .map_err(|_| format!("line {line_no}: bad hour value {h:?}"))?;
            let gpk: f64 = g
                .parse()
                .map_err(|_| format!("line {line_no}: bad carbon_g_per_kwh value {g:?}"))?;
            points.push((hour * 3600.0, gpk));
        }
        Self::new(points).map_err(|e| format!("carbon csv: {e}"))
    }

    /// Render the trace back to the canonical CSV form it is parsed
    /// from (round-trip exact for golden-file tests).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("hour,carbon_g_per_kwh\n");
        for (t, g) in &self.points {
            let _ = writeln!(out, "{},{}", num(t / 3600.0), num(*g));
        }
        out
    }

    /// Number of points in the trace.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the trace holds no points (unreachable for
    /// constructed traces; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Period after which the trace repeats, in seconds.
    pub fn span_s(&self) -> f64 {
        self.span_s
    }

    /// Sample-and-hold lookup at simulated time `t_s`, wrapping modulo
    /// the trace span. Times before the first point (after wrapping)
    /// hold the last point's value, as a cyclic signal should.
    pub fn g_per_kwh(&self, t_s: f64) -> f64 {
        let tw = t_s.rem_euclid(self.span_s.max(f64::MIN_POSITIVE));
        match self.points.partition_point(|(t, _)| *t <= tw) {
            0 => self.points[self.points.len() - 1].1,
            n => self.points[n - 1].1,
        }
    }
}

/// Minimal RFC-4180 field splitter (quotes, escaped quotes, commas
/// inside quotes), mirroring the ingest reader's behaviour.
fn split_csv_line(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' if chars.peek() == Some(&'"') => {
                    chars.next();
                    cur.push('"');
                }
                '"' => in_quotes = false,
                _ => cur.push(c),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => fields.push(std::mem::take(&mut cur)),
                _ => cur.push(c),
            }
        }
    }
    fields.push(cur);
    fields
}

/// A grid carbon-intensity signal in gCO2e per kWh.
#[derive(Debug, Clone, PartialEq)]
pub enum CarbonSignal {
    /// A flat intensity (e.g. a fixed regional annual average).
    Constant(f64),
    /// A synthetic diurnal cosine:
    /// `mean * (1 + amplitude * cos(2π (hour − peak_hour) / 24))`.
    Diurnal {
        /// Daily mean intensity in gCO2e/kWh.
        mean_g_per_kwh: f64,
        /// Relative swing around the mean (0.25 → ±25 %).
        amplitude: f64,
        /// Hour of day (0–24) at which intensity peaks.
        peak_hour: f64,
    },
    /// A CSV-ingested trace, wrapped modulo its span.
    Trace(CarbonTrace),
}

impl CarbonSignal {
    /// The built-in synthetic diurnal signal used by
    /// `evaluate --carbon-diurnal`: 400 gCO2e/kWh mean, ±25 % swing,
    /// peaking at 19:00 (evening fossil ramp).
    pub fn diurnal_default() -> Self {
        CarbonSignal::Diurnal {
            mean_g_per_kwh: 400.0,
            amplitude: 0.25,
            peak_hour: 19.0,
        }
    }

    /// Intensity at simulated time `t_s`, in gCO2e/kWh.
    pub fn g_per_kwh(&self, t_s: f64) -> f64 {
        match self {
            CarbonSignal::Constant(g) => *g,
            CarbonSignal::Diurnal {
                mean_g_per_kwh,
                amplitude,
                peak_hour,
            } => {
                let hour = (t_s / 3600.0).rem_euclid(24.0);
                let phase = 2.0 * std::f64::consts::PI * (hour - peak_hour) / 24.0;
                mean_g_per_kwh * (1.0 + amplitude * phase.cos())
            }
            CarbonSignal::Trace(trace) => trace.g_per_kwh(t_s),
        }
    }
}

// ---------------------------------------------------------------------------
// Plan: what a recorder hands each row
// ---------------------------------------------------------------------------

/// Configuration for energy/carbon accounting, attached to a
/// [`Recorder`](crate::Recorder) handle. Cheap to clone (the signal and
/// PUE table are shared); `at_location` stamps per-row hierarchy
/// coordinates onto fresh per-row cells.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyPlan {
    /// Grid carbon-intensity signal shared by every row.
    pub signal: Arc<CarbonSignal>,
    /// Per-datacenter PUE table; datacenters beyond the last entry
    /// clamp to it, and an empty table means [`DEFAULT_PUE`].
    pub pue: Arc<[f64]>,
    /// Spacing of exported timeseries samples in simulated seconds.
    pub series_stride_s: f64,
    /// Global row index of the row this plan instance accounts for.
    pub row: usize,
    /// Global PDU index of that row.
    pub pdu: usize,
    /// Datacenter index of that row.
    pub dc: usize,
}

impl EnergyPlan {
    /// A plan with the given signal, the default PUE, the default
    /// series stride, and location (0, 0, 0).
    pub fn new(signal: CarbonSignal) -> Self {
        Self {
            signal: Arc::new(signal),
            pue: Arc::from(vec![DEFAULT_PUE]),
            series_stride_s: DEFAULT_SERIES_STRIDE_S,
            row: 0,
            pdu: 0,
            dc: 0,
        }
    }

    /// Replace the per-datacenter PUE table. Non-finite or sub-1.0
    /// entries are clamped to 1.0 (a facility cannot use less energy
    /// than its IT load).
    pub fn with_pue(mut self, pue: &[f64]) -> Self {
        let cleaned: Vec<f64> = pue
            .iter()
            .map(|p| if p.is_finite() && *p >= 1.0 { *p } else { 1.0 })
            .collect();
        self.pue = Arc::from(cleaned);
        self
    }

    /// A copy of this plan stamped with a row's hierarchy coordinates.
    pub fn at_location(&self, row: usize, pdu: usize, dc: usize) -> Self {
        let mut plan = self.clone();
        plan.row = row;
        plan.pdu = pdu;
        plan.dc = dc;
        plan
    }

    /// The PUE applied to this plan's datacenter (clamped to the last
    /// table entry; [`DEFAULT_PUE`] when the table is empty).
    pub fn pue_for_dc(&self) -> f64 {
        match self.pue.len() {
            0 => DEFAULT_PUE,
            n => self.pue[self.dc.min(n - 1)],
        }
    }
}

// ---------------------------------------------------------------------------
// Per-row accumulation
// ---------------------------------------------------------------------------

/// One point of a row's cumulative energy timeseries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergySample {
    /// Simulated time of the sample, seconds.
    pub t_s: f64,
    /// Cumulative IT energy at `t_s`, watt-hours.
    pub it_wh: f64,
    /// Cumulative emissions at `t_s`, grams CO2e.
    pub co2e_g: f64,
    /// Instantaneous grid carbon intensity at `t_s`, gCO2e/kWh.
    pub g_per_kwh: f64,
}

/// Row-local energy/carbon accumulator, ticked by the cluster sim on
/// the row's own telemetry grid so parallel execution never interleaves
/// float additions across rows.
#[derive(Debug, Clone)]
pub struct EnergyAccum {
    plan: EnergyPlan,
    prev_t: f64,
    prev_low_w: f64,
    prev_high_w: f64,
    prev_pool_w: Vec<(&'static str, f64)>,
    it_wh: f64,
    wh_low: f64,
    wh_high: f64,
    pool_wh: Vec<(&'static str, f64)>,
    co2e_g: f64,
    tokens_low: u64,
    tokens_high: u64,
    samples: Vec<EnergySample>,
    next_sample_t: f64,
}

impl EnergyAccum {
    /// Start accumulating at `t0_s` with the given per-bucket power
    /// draw: priority-class sums plus per-pool `(tag, watts)` sums.
    /// The bucket layout is static for the life of the accumulator —
    /// class membership and pool roles never change mid-run, so the
    /// caller maintains these sums incrementally (O(1) per power
    /// change) and each tick costs O(pools), not O(servers).
    pub fn new(
        plan: EnergyPlan,
        t0_s: f64,
        low_w: f64,
        high_w: f64,
        pool_w: &[(&'static str, f64)],
    ) -> Self {
        let next_sample_t = t0_s + plan.series_stride_s.max(1.0);
        Self {
            plan,
            prev_t: t0_s,
            prev_low_w: low_w,
            prev_high_w: high_w,
            prev_pool_w: pool_w.to_vec(),
            it_wh: 0.0,
            wh_low: 0.0,
            wh_high: 0.0,
            pool_wh: Vec::new(),
            co2e_g: 0.0,
            tokens_low: 0,
            tokens_high: 0,
            samples: Vec::new(),
            next_sample_t,
        }
    }

    /// Advance to `t_s` with the current per-bucket power sums, adding
    /// one trapezoid per priority class and pool bucket and converting
    /// the window's facility energy to grams via the signal sampled at
    /// the window midpoint. `pool_w` must keep the layout the
    /// accumulator was built with.
    pub fn tick(&mut self, t_s: f64, low_w: f64, high_w: f64, pool_w: &[(&'static str, f64)]) {
        debug_assert_eq!(pool_w.len(), self.prev_pool_w.len());
        let dt = t_s - self.prev_t;
        if dt > 0.0 {
            let h = 0.5 * dt / 3600.0;
            let low_wh = (self.prev_low_w + low_w) * h;
            let high_wh = (self.prev_high_w + high_w) * h;
            self.wh_low += low_wh;
            self.wh_high += high_wh;
            for (i, &(tag, w)) in pool_w.iter().enumerate() {
                debug_assert_eq!(tag, self.prev_pool_w[i].0, "pool layout changed mid-run");
                let wh = (self.prev_pool_w[i].1 + w) * h;
                match self.pool_wh.iter_mut().find(|(t, _)| *t == tag) {
                    Some((_, acc)) => *acc += wh,
                    None => self.pool_wh.push((tag, wh)),
                }
            }
            let window_wh = low_wh + high_wh;
            self.it_wh += window_wh;
            let intensity = self.plan.signal.g_per_kwh(self.prev_t + 0.5 * dt);
            self.co2e_g += window_wh * self.plan.pue_for_dc() / 1000.0 * intensity;
            self.prev_t = t_s;
        }
        self.prev_low_w = low_w;
        self.prev_high_w = high_w;
        for (prev, cur) in self.prev_pool_w.iter_mut().zip(pool_w) {
            prev.1 = cur.1;
        }
        if t_s + 1e-9 >= self.next_sample_t {
            self.push_sample(t_s);
            self.next_sample_t = t_s + self.plan.series_stride_s.max(1.0);
        }
    }

    /// Count completed output tokens for a priority class (high when
    /// `high` is true), feeding the joules/token denominators.
    pub fn add_tokens(&mut self, high: bool, n: u64) {
        if high {
            self.tokens_high += n;
        } else {
            self.tokens_low += n;
        }
    }

    /// Grid carbon intensity at `t_s` under this accumulator's signal.
    pub fn g_per_kwh(&self, t_s: f64) -> f64 {
        self.plan.signal.g_per_kwh(t_s)
    }

    /// The PUE this accumulator applies.
    pub fn pue(&self) -> f64 {
        self.plan.pue_for_dc()
    }

    fn push_sample(&mut self, t_s: f64) {
        self.samples.push(EnergySample {
            t_s,
            it_wh: self.it_wh,
            co2e_g: self.co2e_g,
            g_per_kwh: self.plan.signal.g_per_kwh(t_s),
        });
    }

    /// Seal the accumulator at the horizon (the caller must have
    /// ticked to the horizon first) and fold in the sim's exact busy
    /// integral, in joules.
    pub fn finish(mut self, horizon_s: f64, busy_joules: f64) -> RowEnergy {
        if self.samples.last().map(|s| s.t_s) != Some(horizon_s) {
            self.push_sample(horizon_s);
        }
        let pue = self.plan.pue_for_dc();
        let mut pool_wh = self.pool_wh;
        pool_wh.sort_by(|a, b| a.0.cmp(b.0));
        RowEnergy {
            row: self.plan.row,
            pdu: self.plan.pdu,
            dc: self.plan.dc,
            pue,
            horizon_s,
            it_wh: self.it_wh,
            busy_wh: busy_joules / 3600.0,
            facility_wh: self.it_wh * pue,
            co2e_g: self.co2e_g,
            wh_low: self.wh_low,
            wh_high: self.wh_high,
            pool_wh,
            tokens_low: self.tokens_low,
            tokens_high: self.tokens_high,
            samples: self.samples,
        }
    }
}

/// A finished row's energy/carbon account, recorded into the shared
/// observability core when the row seals.
#[derive(Debug, Clone, PartialEq)]
pub struct RowEnergy {
    /// Global row index.
    pub row: usize,
    /// Global PDU index of the row.
    pub pdu: usize,
    /// Datacenter index of the row.
    pub dc: usize,
    /// PUE applied to this row's datacenter.
    pub pue: f64,
    /// Simulated horizon the account covers, seconds.
    pub horizon_s: f64,
    /// IT energy (trapezoidal over telemetry windows), watt-hours.
    pub it_wh: f64,
    /// Exact busy energy (servers actively serving), watt-hours.
    pub busy_wh: f64,
    /// Facility energy = IT × PUE, watt-hours.
    pub facility_wh: f64,
    /// Emissions = facility kWh × grid intensity, grams CO2e.
    pub co2e_g: f64,
    /// IT energy drawn by low-priority servers, watt-hours.
    pub wh_low: f64,
    /// IT energy drawn by high-priority servers, watt-hours.
    pub wh_high: f64,
    /// IT energy per pool tag (`aggregated` / `prefill` / `decode`),
    /// sorted by tag.
    pub pool_wh: Vec<(&'static str, f64)>,
    /// Output tokens completed on low-priority servers.
    pub tokens_low: u64,
    /// Output tokens completed on high-priority servers.
    pub tokens_high: u64,
    /// Cumulative timeseries at the plan's stride.
    pub samples: Vec<EnergySample>,
}

impl RowEnergy {
    /// Total output tokens across both classes.
    pub fn tokens(&self) -> u64 {
        self.tokens_low + self.tokens_high
    }
}

// ---------------------------------------------------------------------------
// Ledger: main-thread rollups + exporters
// ---------------------------------------------------------------------------

/// Energy totals for one node of the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LevelEnergy {
    /// IT energy, watt-hours.
    pub it_wh: f64,
    /// Exact busy energy, watt-hours.
    pub busy_wh: f64,
    /// Facility energy (IT × PUE), watt-hours.
    pub facility_wh: f64,
    /// Emissions, grams CO2e.
    pub co2e_g: f64,
    /// Output tokens completed.
    pub tokens: u64,
}

impl LevelEnergy {
    fn add(&mut self, r: &RowEnergy) {
        self.it_wh += r.it_wh;
        self.busy_wh += r.busy_wh;
        self.facility_wh += r.facility_wh;
        self.co2e_g += r.co2e_g;
        self.tokens += r.tokens();
    }

    /// Joules per output token (IT energy basis); 0 when no tokens.
    pub fn joules_per_token(&self) -> f64 {
        if self.tokens == 0 {
            0.0
        } else {
            self.it_wh * 3600.0 / self.tokens as f64
        }
    }

    /// Grams CO2e per output token; 0 when no tokens.
    pub fn co2e_g_per_token(&self) -> f64 {
        if self.tokens == 0 {
            0.0
        } else {
            self.co2e_g / self.tokens as f64
        }
    }
}

/// The assembled site-wide ledger: deterministic rollups of per-row
/// accounts across every hierarchy level, priority class, and pool,
/// plus the exporters (`energy.json`, `energy.csv`, Prometheus lines,
/// Chrome-trace counter lanes).
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyLedger {
    /// Site-level totals.
    pub site: LevelEnergy,
    /// `(datacenter index, totals, pue)` sorted by index.
    pub datacenters: Vec<(usize, LevelEnergy, f64)>,
    /// `(global PDU index, totals)` sorted by index.
    pub pdus: Vec<(usize, LevelEnergy)>,
    /// Per-row accounts in canonical row order.
    pub rows: Vec<RowEnergy>,
    /// IT watt-hours drawn by low-priority servers.
    pub wh_low: f64,
    /// IT watt-hours drawn by high-priority servers.
    pub wh_high: f64,
    /// Output tokens completed on low-priority servers.
    pub tokens_low: u64,
    /// Output tokens completed on high-priority servers.
    pub tokens_high: u64,
    /// IT watt-hours per pool tag, sorted by tag.
    pub pool_wh: Vec<(&'static str, f64)>,
}

impl EnergyLedger {
    /// Assemble the ledger from finished row accounts. Rows are sorted
    /// into canonical row order, so the result is identical for any
    /// execution interleaving that recorded the same rows.
    pub fn from_rows(rows: &[RowEnergy]) -> Self {
        let mut rows: Vec<RowEnergy> = rows.to_vec();
        rows.sort_by_key(|r| r.row);
        let mut site = LevelEnergy::default();
        let mut dcs: Vec<(usize, LevelEnergy, f64)> = Vec::new();
        let mut pdus: Vec<(usize, LevelEnergy)> = Vec::new();
        let mut wh_low = 0.0;
        let mut wh_high = 0.0;
        let mut tokens_low = 0;
        let mut tokens_high = 0;
        let mut pool_wh: Vec<(&'static str, f64)> = Vec::new();
        for r in &rows {
            site.add(r);
            match dcs.iter_mut().find(|(d, _, _)| *d == r.dc) {
                Some((_, lvl, _)) => lvl.add(r),
                None => {
                    let mut lvl = LevelEnergy::default();
                    lvl.add(r);
                    dcs.push((r.dc, lvl, r.pue));
                }
            }
            match pdus.iter_mut().find(|(p, _)| *p == r.pdu) {
                Some((_, lvl)) => lvl.add(r),
                None => {
                    let mut lvl = LevelEnergy::default();
                    lvl.add(r);
                    pdus.push((r.pdu, lvl));
                }
            }
            wh_low += r.wh_low;
            wh_high += r.wh_high;
            tokens_low += r.tokens_low;
            tokens_high += r.tokens_high;
            for (tag, wh) in &r.pool_wh {
                match pool_wh.iter_mut().find(|(t, _)| t == tag) {
                    Some((_, acc)) => *acc += wh,
                    None => pool_wh.push((tag, *wh)),
                }
            }
        }
        dcs.sort_by_key(|(d, _, _)| *d);
        pdus.sort_by_key(|(p, _)| *p);
        pool_wh.sort_by(|a, b| a.0.cmp(b.0));
        Self {
            site,
            datacenters: dcs,
            pdus,
            rows,
            wh_low,
            wh_high,
            tokens_low,
            tokens_high,
            pool_wh,
        }
    }

    /// True when the ledger covers no rows (nothing to export).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Emissions-weighted mean grid intensity actually paid, in
    /// gCO2e/kWh; 0 when no facility energy was drawn.
    pub fn mean_g_per_kwh(&self) -> f64 {
        let kwh = self.site.facility_wh / 1000.0;
        if kwh > 0.0 {
            self.site.co2e_g / kwh
        } else {
            0.0
        }
    }

    /// Joules per token for one priority class (IT energy basis).
    pub fn class_joules_per_token(&self, high: bool) -> f64 {
        let (wh, tokens) = if high {
            (self.wh_high, self.tokens_high)
        } else {
            (self.wh_low, self.tokens_low)
        };
        if tokens == 0 {
            0.0
        } else {
            wh * 3600.0 / tokens as f64
        }
    }

    /// The site-wide cumulative timeseries: per-sample-time sums of
    /// the rows' cumulative series (rows tick in lockstep windows, so
    /// sample times coincide). Each entry is
    /// `(t_s, it_wh, facility_wh, co2e_g, g_per_kwh)`; the intensity
    /// is taken from the lowest-indexed row sampling at that time.
    pub fn merged_series(&self) -> Vec<(f64, f64, f64, f64, f64)> {
        use std::collections::BTreeMap;
        // Key by the bit pattern of the (non-negative) sample time for
        // a total, exact ordering.
        let mut merged: BTreeMap<u64, (f64, f64, f64, f64, f64)> = BTreeMap::new();
        for r in &self.rows {
            for s in &r.samples {
                let e = merged.entry(s.t_s.max(0.0).to_bits()).or_insert((
                    s.t_s,
                    0.0,
                    0.0,
                    0.0,
                    s.g_per_kwh,
                ));
                e.1 += s.it_wh;
                e.2 += s.it_wh * r.pue;
                e.3 += s.co2e_g;
            }
        }
        merged.into_values().collect()
    }

    /// Render `energy.csv`: the merged site timeseries with header
    /// `t_s,it_wh,facility_wh,co2e_g,g_per_kwh`.
    pub fn series_csv(&self) -> String {
        let mut out = String::from("t_s,it_wh,facility_wh,co2e_g,g_per_kwh\n");
        for (t, it, fac, co2, gpk) in self.merged_series() {
            let _ = writeln!(
                out,
                "{},{},{},{},{}",
                num(t),
                num(it),
                num(fac),
                num(co2),
                num(gpk)
            );
        }
        out
    }

    /// Render the `energy.json` ledger artifact.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"site\": ");
        out.push_str(&level_json(&self.site));
        let _ = write!(
            out,
            ",\n  \"mean_g_per_kwh\": {},\n  \"datacenters\": [",
            num(self.mean_g_per_kwh())
        );
        for (i, (d, lvl, pue)) in self.datacenters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {{\"datacenter\": {d}, \"pue\": {}, ", num(*pue));
            out.push_str(&level_fields(lvl));
            out.push('}');
        }
        out.push_str("\n  ],\n  \"pdus\": [");
        for (i, (p, lvl)) in self.pdus.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {{\"pdu\": {p}, ");
            out.push_str(&level_fields(lvl));
            out.push('}');
        }
        out.push_str("\n  ],\n  \"rows\": [");
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"row\": {}, \"pdu\": {}, \"datacenter\": {}, \"pue\": {}, \"it_wh\": {}, \"busy_wh\": {}, \"facility_wh\": {}, \"co2e_g\": {}, \"tokens\": {}}}",
                r.row,
                r.pdu,
                r.dc,
                num(r.pue),
                num(r.it_wh),
                num(r.busy_wh),
                num(r.facility_wh),
                num(r.co2e_g),
                r.tokens()
            );
        }
        let _ = write!(
            out,
            "\n  ],\n  \"classes\": {{\"low\": {{\"wh\": {}, \"tokens\": {}, \"joules_per_token\": {}}}, \"high\": {{\"wh\": {}, \"tokens\": {}, \"joules_per_token\": {}}}}},\n  \"pools\": [",
            num(self.wh_low),
            self.tokens_low,
            num(self.class_joules_per_token(false)),
            num(self.wh_high),
            self.tokens_high,
            num(self.class_joules_per_token(true))
        );
        for (i, (tag, wh)) in self.pool_wh.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"pool\": \"{}\", \"wh\": {}}}",
                esc(tag),
                num(*wh)
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Render the `energy_*` / `carbon_*` Prometheus lines appended to
    /// `metrics.prom`. Empty string when the ledger covers no rows.
    pub fn prometheus(&self) -> String {
        if self.is_empty() {
            return String::new();
        }
        let mut out = String::new();
        let mut gauge = |name: &str, lines: &[(String, f64)]| {
            let _ = writeln!(out, "# TYPE {name} gauge");
            for (labels, v) in lines {
                let _ = writeln!(out, "{name}{labels} {}", num(*v));
            }
        };
        gauge("energy_site_wh", &[(String::new(), self.site.it_wh)]);
        gauge("energy_site_busy_wh", &[(String::new(), self.site.busy_wh)]);
        gauge(
            "energy_facility_wh",
            &[(String::new(), self.site.facility_wh)],
        );
        gauge(
            "energy_datacenter_wh",
            &self
                .datacenters
                .iter()
                .map(|(d, lvl, _)| (format!("{{datacenter=\"{d}\"}}"), lvl.it_wh))
                .collect::<Vec<_>>(),
        );
        gauge(
            "energy_pdu_wh",
            &self
                .pdus
                .iter()
                .map(|(p, lvl)| (format!("{{pdu=\"{p}\"}}"), lvl.it_wh))
                .collect::<Vec<_>>(),
        );
        gauge(
            "energy_row_wh",
            &self
                .rows
                .iter()
                .map(|r| (format!("{{row=\"{}\"}}", r.row), r.it_wh))
                .collect::<Vec<_>>(),
        );
        gauge(
            "energy_class_wh",
            &[
                ("{tag=\"high\"}".to_string(), self.wh_high),
                ("{tag=\"low\"}".to_string(), self.wh_low),
            ],
        );
        gauge(
            "energy_pool_wh",
            &self
                .pool_wh
                .iter()
                .map(|(tag, wh)| (format!("{{tag=\"{}\"}}", esc(tag)), *wh))
                .collect::<Vec<_>>(),
        );
        gauge(
            "energy_joules_per_token",
            &[(String::new(), self.site.joules_per_token())],
        );
        gauge(
            "energy_class_joules_per_token",
            &[
                (
                    "{tag=\"high\"}".to_string(),
                    self.class_joules_per_token(true),
                ),
                (
                    "{tag=\"low\"}".to_string(),
                    self.class_joules_per_token(false),
                ),
            ],
        );
        gauge("carbon_site_g", &[(String::new(), self.site.co2e_g)]);
        gauge(
            "carbon_datacenter_g",
            &self
                .datacenters
                .iter()
                .map(|(d, lvl, _)| (format!("{{datacenter=\"{d}\"}}"), lvl.co2e_g))
                .collect::<Vec<_>>(),
        );
        gauge(
            "carbon_g_per_token",
            &[(String::new(), self.site.co2e_g_per_token())],
        );
        gauge(
            "carbon_mean_g_per_kwh",
            &[(String::new(), self.mean_g_per_kwh())],
        );
        out
    }

    /// Chrome-trace counter lanes (`"ph":"C"`, pid 3) for the merged
    /// site timeseries: an `energy_wh` lane (IT vs facility) and a
    /// `carbon` lane (cumulative grams + instantaneous intensity).
    pub fn chrome_counter_lanes(&self) -> Vec<String> {
        const PID: u32 = 3;
        if self.is_empty() {
            return Vec::new();
        }
        let us = |t: f64| num(t * 1e6);
        let mut out = Vec::new();
        out.push(format!(
            "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":\"polca-energy\"}}}}"
        ));
        for (t, it, fac, co2, gpk) in self.merged_series() {
            out.push(format!(
                "{{\"ph\":\"C\",\"pid\":{PID},\"tid\":0,\"name\":\"energy_wh\",\"ts\":{},\"args\":{{\"it\":{},\"facility\":{}}}}}",
                us(t),
                num(it),
                num(fac)
            ));
            out.push(format!(
                "{{\"ph\":\"C\",\"pid\":{PID},\"tid\":0,\"name\":\"carbon\",\"ts\":{},\"args\":{{\"co2e_g\":{},\"g_per_kwh\":{}}}}}",
                us(t),
                num(co2),
                num(gpk)
            ));
        }
        out
    }
}

fn level_fields(lvl: &LevelEnergy) -> String {
    format!(
        "\"it_wh\": {}, \"busy_wh\": {}, \"facility_wh\": {}, \"co2e_g\": {}, \"tokens\": {}, \"joules_per_token\": {}, \"co2e_g_per_token\": {}",
        num(lvl.it_wh),
        num(lvl.busy_wh),
        num(lvl.facility_wh),
        num(lvl.co2e_g),
        lvl.tokens,
        num(lvl.joules_per_token()),
        num(lvl.co2e_g_per_token())
    )
}

fn level_json(lvl: &LevelEnergy) -> String {
    format!("{{{}}}", level_fields(lvl))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diurnal_peaks_at_peak_hour_and_means_out() {
        let sig = CarbonSignal::diurnal_default();
        let peak = sig.g_per_kwh(19.0 * 3600.0);
        let trough = sig.g_per_kwh(7.0 * 3600.0);
        assert!((peak - 500.0).abs() < 1e-9, "peak {peak}");
        assert!((trough - 300.0).abs() < 1e-9, "trough {trough}");
        // Next-day peak is identical (period 24 h).
        assert_eq!(peak, sig.g_per_kwh((24.0 + 19.0) * 3600.0));
    }

    #[test]
    fn carbon_trace_csv_round_trips_and_wraps() {
        let csv = "hour,carbon_g_per_kwh\n0,100\n1,200\n2,300\n";
        let trace = CarbonTrace::from_csv_str(csv).unwrap();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.span_s(), 3.0 * 3600.0);
        assert_eq!(trace.to_csv(), csv);
        // Sample-and-hold inside the span…
        assert_eq!(trace.g_per_kwh(0.0), 100.0);
        assert_eq!(trace.g_per_kwh(3599.0), 100.0);
        assert_eq!(trace.g_per_kwh(3600.0), 200.0);
        assert_eq!(trace.g_per_kwh(2.5 * 3600.0), 300.0);
        // …and wrap modulo the span.
        assert_eq!(trace.g_per_kwh(3.0 * 3600.0), 100.0);
        assert_eq!(trace.g_per_kwh(4.5 * 3600.0), 200.0);
    }

    #[test]
    fn carbon_trace_errors_carry_line_numbers() {
        let err = CarbonTrace::from_csv_str("hour,carbon_g_per_kwh\n0,100\n1,abc\n").unwrap_err();
        assert!(err.contains("line 3"), "{err}");
        let err = CarbonTrace::from_csv_str("hour,carbon_g_per_kwh\n0\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = CarbonTrace::from_csv_str("hour,carbon_g_per_kwh\n1,100\n1,200\n").unwrap_err();
        assert!(err.contains("strictly increasing"), "{err}");
        assert!(CarbonTrace::from_csv_str("hour,carbon_g_per_kwh\n").is_err());
    }

    #[test]
    fn accum_trapezoid_matches_hand_computation() {
        // One server ramping 100 W → 300 W over 3600 s: trapezoid says
        // 200 Wh; constant 500 g/kWh at PUE 2.0 says 200 g.
        let plan = EnergyPlan::new(CarbonSignal::Constant(500.0)).with_pue(&[2.0]);
        let mut acc = EnergyAccum::new(plan, 0.0, 100.0, 0.0, &[("aggregated", 100.0)]);
        acc.tick(3600.0, 300.0, 0.0, &[("aggregated", 300.0)]);
        acc.add_tokens(false, 10);
        let row = acc.finish(3600.0, 360.0);
        assert!((row.it_wh - 200.0).abs() < 1e-9, "{}", row.it_wh);
        assert!((row.facility_wh - 400.0).abs() < 1e-9);
        assert!((row.co2e_g - 200.0).abs() < 1e-9, "{}", row.co2e_g);
        assert!((row.busy_wh - 0.1).abs() < 1e-12);
        assert_eq!(row.wh_low, row.it_wh);
        assert_eq!(row.wh_high, 0.0);
        assert_eq!(row.pool_wh, vec![("aggregated", row.it_wh)]);
        assert_eq!(row.tokens(), 10);
        // joules/token = 200 Wh * 3600 / 10.
        let ledger = EnergyLedger::from_rows(&[row]);
        assert!((ledger.site.joules_per_token() - 72_000.0).abs() < 1e-6);
        assert!((ledger.site.co2e_g_per_token() - 20.0).abs() < 1e-9);
        assert!((ledger.mean_g_per_kwh() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn accum_splits_classes_and_pools() {
        let plan = EnergyPlan::new(CarbonSignal::Constant(0.0)).with_pue(&[1.0]);
        let mut acc = EnergyAccum::new(
            plan,
            0.0,
            100.0,
            200.0,
            &[("prefill", 100.0), ("decode", 200.0)],
        );
        acc.tick(36.0, 100.0, 200.0, &[("prefill", 100.0), ("decode", 200.0)]);
        let row = acc.finish(36.0, 0.0);
        assert!((row.wh_low - 1.0).abs() < 1e-9);
        assert!((row.wh_high - 2.0).abs() < 1e-9);
        assert_eq!(row.pool_wh.len(), 2);
        assert_eq!(row.pool_wh[0].0, "decode");
        assert!((row.pool_wh[0].1 - 2.0).abs() < 1e-9);
        assert_eq!(row.pool_wh[1].0, "prefill");
        assert!((row.pool_wh[1].1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ledger_rolls_up_hierarchy_levels_deterministically() {
        let plan = EnergyPlan::new(CarbonSignal::Constant(100.0)).with_pue(&[1.5, 1.25]);
        let mut rows = Vec::new();
        for (row, pdu, dc) in [(2usize, 1usize, 1usize), (0, 0, 0), (1, 0, 0)] {
            let p = plan.at_location(row, pdu, dc);
            let (lo, hi) = if dc == 1 { (0.0, 360.0) } else { (360.0, 0.0) };
            let mut acc = EnergyAccum::new(p, 0.0, lo, hi, &[("aggregated", 360.0)]);
            acc.tick(3600.0, lo, hi, &[("aggregated", 360.0)]);
            acc.add_tokens(dc == 1, 100);
            rows.push(acc.finish(3600.0, 720.0));
        }
        let ledger = EnergyLedger::from_rows(&rows);
        // Rows come back in canonical order regardless of record order.
        assert_eq!(
            ledger.rows.iter().map(|r| r.row).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert!((ledger.site.it_wh - 3.0 * 360.0).abs() < 1e-9);
        assert!((ledger.site.busy_wh - 3.0 * 0.2).abs() < 1e-9);
        assert_eq!(ledger.datacenters.len(), 2);
        assert_eq!(ledger.datacenters[0].0, 0);
        assert!((ledger.datacenters[0].1.it_wh - 720.0).abs() < 1e-9);
        assert!((ledger.datacenters[0].2 - 1.5).abs() < 1e-12);
        assert!((ledger.datacenters[1].2 - 1.25).abs() < 1e-12);
        assert_eq!(ledger.pdus.len(), 2);
        assert_eq!(ledger.tokens_low, 200);
        assert_eq!(ledger.tokens_high, 100);
        // Shuffled input produces the identical ledger.
        let mut shuffled = rows.clone();
        shuffled.swap(0, 2);
        assert_eq!(EnergyLedger::from_rows(&shuffled), ledger);
        // And byte-identical artifacts.
        assert_eq!(
            EnergyLedger::from_rows(&shuffled).to_json(),
            ledger.to_json()
        );
        assert_eq!(
            EnergyLedger::from_rows(&shuffled).series_csv(),
            ledger.series_csv()
        );
    }

    #[test]
    fn exporters_cover_every_surface() {
        let plan = EnergyPlan::new(CarbonSignal::diurnal_default());
        let mut acc = EnergyAccum::new(plan, 0.0, 0.0, 250.0, &[("aggregated", 250.0)]);
        for k in 1..=8 {
            acc.tick(k as f64 * 450.0, 0.0, 250.0, &[("aggregated", 250.0)]);
        }
        acc.add_tokens(true, 1000);
        let ledger = EnergyLedger::from_rows(&[acc.finish(3600.0, 1000.0)]);
        let json = ledger.to_json();
        for key in [
            "\"site\"",
            "\"datacenters\"",
            "\"pdus\"",
            "\"rows\"",
            "\"classes\"",
            "\"pools\"",
            "\"mean_g_per_kwh\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let prom = ledger.prometheus();
        for key in [
            "energy_site_wh",
            "energy_site_busy_wh",
            "energy_facility_wh",
            "energy_datacenter_wh{datacenter=\"0\"}",
            "energy_pdu_wh{pdu=\"0\"}",
            "energy_row_wh{row=\"0\"}",
            "energy_class_wh{tag=\"high\"}",
            "energy_pool_wh{tag=\"aggregated\"}",
            "energy_joules_per_token",
            "carbon_site_g",
            "carbon_g_per_token",
            "carbon_mean_g_per_kwh",
        ] {
            assert!(prom.contains(key), "missing {key} in {prom}");
        }
        let csv = ledger.series_csv();
        assert!(csv.starts_with("t_s,it_wh,facility_wh,co2e_g,g_per_kwh\n"));
        // Samples at 900 s stride; the horizon coincides with the last
        // stride sample, so no extra seal row is added.
        assert_eq!(csv.lines().count() - 1, 4);
        let lanes = ledger.chrome_counter_lanes();
        assert!(lanes[0].contains("polca-energy"));
        assert!(lanes.iter().any(|l| l.contains("\"name\":\"energy_wh\"")));
        assert!(lanes.iter().any(|l| l.contains("\"name\":\"carbon\"")));
        // Empty ledger exports nothing.
        let empty = EnergyLedger::from_rows(&[]);
        assert!(empty.prometheus().is_empty());
        assert!(empty.chrome_counter_lanes().is_empty());
    }

    #[test]
    fn pue_table_clamps_to_last_entry() {
        let plan = EnergyPlan::new(CarbonSignal::Constant(0.0)).with_pue(&[1.5, 1.2]);
        assert_eq!(plan.at_location(0, 0, 0).pue_for_dc(), 1.5);
        assert_eq!(plan.at_location(0, 0, 1).pue_for_dc(), 1.2);
        assert_eq!(plan.at_location(0, 0, 7).pue_for_dc(), 1.2);
        // Sub-1.0 / non-finite entries are clamped to 1.0.
        let plan = EnergyPlan::new(CarbonSignal::Constant(0.0)).with_pue(&[0.5, f64::NAN]);
        assert_eq!(plan.at_location(0, 0, 0).pue_for_dc(), 1.0);
        assert_eq!(plan.at_location(0, 0, 1).pue_for_dc(), 1.0);
    }
}
