//! Observability for the polca simulation stack.
//!
//! The simulator used to be a black box: a run returned end-of-run
//! aggregates and nothing else, so questions like *when did the
//! dual-threshold controller cap?* or *which servers braked during the
//! spike?* were unanswerable. This crate makes a run inspectable:
//!
//! * [`Event`] — a typed, allocation-light structured event alphabet
//!   (`RequestDispatched`, `CapApplied`, `BrakeEngaged`, `PowerSample`,
//!   …) with simulation-time timestamps,
//! * [`Recorder`] — the cheap handle the simulator threads through its
//!   hot loops; a disabled recorder costs one branch per call,
//! * [`MetricsRegistry`] — labeled counters, gauges, and streaming
//!   histograms (per-server, per-priority, per-policy series),
//! * [`SpanStats`] — wall-clock span timing around the event-queue
//!   loop, trace synthesis, and the policy controller (a perf baseline
//!   for optimisation work),
//! * [`Profiler`] (polca-prof) — lock-free, self-time phase accounting
//!   of the simulator's own hot paths, with an attribution table,
//!   folded-stack/speedscope and Chrome-trace exports, and the
//!   [`BenchReport`] machinery behind the `BENCH_*.json` perf
//!   trajectory,
//! * [`ReqSpan`]/[`ReqRecord`] (polca-req) — per-request lifecycle
//!   tracing: TTFT, mean/max time-between-tokens, queue/recompute/KV
//!   -shipping breakdowns, and a joules-per-token ledger, exported as
//!   `requests.jsonl` plus Chrome-trace request lanes,
//! * [`EnergyLedger`] (polca-energy) — hierarchical Wh/gCO2e accounting
//!   over the telemetry windows with per-datacenter PUE and a grid
//!   carbon-intensity signal (constant, synthetic diurnal, or CSV
//!   trace), exported as `energy.json`, an `energy.csv` timeseries,
//!   `energy_*`/`carbon_*` Prometheus lines, and Chrome-trace counter
//!   lanes,
//! * [`RunArtifacts`] — exporters: a JSONL event log, CSV power and
//!   latency timeseries, and a Chrome trace-event JSON that opens
//!   directly in Perfetto (`https://ui.perfetto.dev`) or
//!   `chrome://tracing` with servers as tracks and cap/brake spans
//!   visible.
//!
//! Determinism is part of the contract: event recording never perturbs
//! simulation results, and with a fixed seed the emitted event log is
//! byte-identical across runs. (Wall-clock span timings are inherently
//! non-deterministic and therefore live in a separate `profile.json`
//! artifact, never in the event log.)
//!
//! # Example
//!
//! ```
//! use polca_obs::{Event, ObsLevel, Recorder};
//!
//! let obs = Recorder::new(ObsLevel::Full);
//! obs.record(Event::PowerSample { t: 2.0, watts: 180_000.0 });
//! obs.record(Event::CapApplied { t: 4.0, server: 3, mhz: 1110.0 });
//! let artifacts = obs.artifacts();
//! assert_eq!(artifacts.events.len(), 2);
//! assert!(artifacts.chrome_trace_json().contains("\"ph\""));
//! ```

#![deny(missing_docs)]

pub mod chrome;
pub mod energy;
pub mod event;
pub mod export;
pub mod json;
pub mod metrics;
pub mod prof;
pub mod recorder;
pub mod req;
pub mod span;

pub use chrome::Annotation;
pub use energy::{
    CarbonSignal, CarbonTrace, EnergyAccum, EnergyLedger, EnergyPlan, EnergySample, LevelEnergy,
    RowEnergy, DEFAULT_PUE,
};
pub use event::Event;
pub use export::RunArtifacts;
pub use metrics::{Label, MetricsRegistry, StreamingHistogram};
pub use prof::{BenchReport, Phase, PhaseAgg, ProfCounter, ProfGuard, ProfSnapshot, Profiler};
pub use recorder::{EventTap, ObsLevel, QueueProbe, Recorder};
pub use req::{ReqRecord, ReqSpan, ReqTraceConfig};
pub use span::{SpanGuard, SpanStats};
