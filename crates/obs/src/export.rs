//! The exportable bundle a run leaves behind.
//!
//! [`RunArtifacts`] is a snapshot of everything a [`Recorder`] captured
//! and knows how to render each artifact format:
//!
//! | file              | contents                                         |
//! |-------------------|--------------------------------------------------|
//! | `events.jsonl`    | the structured event log, one JSON object/line   |
//! | `requests.jsonl`  | polca-req per-request lifecycle records (only    |
//! |                   | when request tracing is on)                      |
//! | `metrics.json`    | counters, gauges, histogram summaries            |
//! | `metrics.prom`    | registry + deterministic polca-prof counters in  |
//! |                   | Prometheus text exposition                       |
//! | `power.csv`       | `t_s,watts` timeseries from power samples        |
//! | `latency.csv`     | per-request completion latencies                 |
//! | `trace.json`      | Chrome trace-event JSON (Perfetto-loadable)      |
//! | `profile.json`    | wall-clock span timings (non-deterministic)      |
//! | `prof.json`       | polca-prof phase/counter totals (non-determ.)    |
//! | `prof.folded`     | collapsed stacks for speedscope/flamegraph       |
//! | `prof.trace.json` | the phase breakdown as a Perfetto track          |
//!
//! Everything except `profile.json` and the wall-clock `prof.*`
//! artifacts is a pure function of the event log and metrics, which
//! are themselves sim-deterministic — so with a fixed seed, re-running
//! a simulation reproduces those files byte-for-byte. (`metrics.prom`
//! keeps that property: it only ever includes the deterministic subset
//! of the profile — call and occupancy counters, never nanoseconds.)
//!
//! [`Recorder`]: crate::Recorder

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::chrome;
use crate::energy::{EnergyLedger, RowEnergy};
use crate::event::Event;
use crate::json::num;
use crate::metrics::MetricsRegistry;
use crate::prof::ProfSnapshot;
use crate::recorder::ObsLevel;
use crate::req::{self, ReqRecord};
use crate::span::SpanStats;

/// Renders a table as CSV: a header row followed by one line per row,
/// RFC-4180-quoting any cell containing a comma, quote, or newline.
///
/// This backs the figure/table binaries' shared writer so their CSV
/// output matches the recorder's own artifact files.
///
/// # Examples
///
/// ```
/// let csv = polca_obs::export::csv_table(
///     &["policy", "brakes"],
///     &[vec!["POLCA".into(), "0".into()]],
/// );
/// assert_eq!(csv, "policy,brakes\nPOLCA,0\n");
/// ```
pub fn csv_table(columns: &[&str], rows: &[Vec<String>]) -> String {
    fn cell(s: &str) -> String {
        if s.contains([',', '"', '\n', '\r']) {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    }
    let mut s = String::new();
    s.push_str(
        &columns
            .iter()
            .map(|c| cell(c))
            .collect::<Vec<_>>()
            .join(","),
    );
    s.push('\n');
    for row in rows {
        s.push_str(&row.iter().map(|c| cell(c)).collect::<Vec<_>>().join(","));
        s.push('\n');
    }
    s
}

/// A snapshot of one run's observability output.
#[derive(Clone, Debug, PartialEq)]
pub struct RunArtifacts {
    /// The level the recorder captured at.
    pub level: ObsLevel,
    /// The structured event log, in emission order.
    pub events: Vec<Event>,
    /// Final metric series.
    pub metrics: MetricsRegistry,
    /// Wall-clock span aggregates (empty below [`ObsLevel::Full`]).
    pub spans: SpanStats,
    /// polca-req lifecycle records for sampled completed requests
    /// (empty unless request tracing was on at [`ObsLevel::Events`]+).
    pub requests: Vec<ReqRecord>,
    /// Whether the recorder had request tracing enabled — gates the
    /// `requests.jsonl` artifact so untraced runs keep their exact
    /// file set.
    pub req_trace: bool,
    /// polca-energy per-row accounts (empty unless the energy ledger
    /// was attached) — gate the `energy.json`/`energy.csv` artifacts
    /// so unmetered runs keep their exact file set.
    pub energy_rows: Vec<RowEnergy>,
    /// polca-prof phase and counter totals (empty below
    /// [`ObsLevel::Full`]).
    pub prof: ProfSnapshot,
}

impl RunArtifacts {
    /// The event log as JSON Lines (one event per line).
    pub fn events_jsonl(&self) -> String {
        let mut s = String::new();
        for ev in &self.events {
            s.push_str(&ev.to_json());
            s.push('\n');
        }
        s
    }

    /// The metrics registry as a JSON document.
    pub fn metrics_json(&self) -> String {
        self.metrics.to_json()
    }

    /// The metrics registry in the Prometheus text exposition format,
    /// followed by the deterministic polca-prof counter series (phase
    /// calls, queue depth high-water mark, occupancy) when profiling
    /// captured anything.
    pub fn metrics_prometheus(&self) -> String {
        let mut s = self.metrics.to_prometheus();
        s.push_str(&self.prof.to_prometheus());
        s.push_str(&self.energy_ledger().prometheus());
        s
    }

    /// The polca-energy ledger assembled from the recorded per-row
    /// accounts (empty when the ledger was not attached).
    pub fn energy_ledger(&self) -> EnergyLedger {
        EnergyLedger::from_rows(&self.energy_rows)
    }

    /// The aggregate power timeseries as CSV (`t_s,watts`).
    pub fn power_csv(&self) -> String {
        let mut s = String::from("t_s,watts\n");
        for ev in &self.events {
            if let Event::PowerSample { t, watts } = ev {
                s.push_str(&format!("{},{}\n", num(*t), num(*watts)));
            }
        }
        s
    }

    /// Per-request completion latencies as CSV
    /// (`t_s,server,priority,latency_s`).
    pub fn latency_csv(&self) -> String {
        let mut s = String::from("t_s,server,priority,latency_s\n");
        for ev in &self.events {
            if let Event::RequestCompleted {
                t,
                server,
                priority,
                latency_s,
                ..
            } = ev
            {
                s.push_str(&format!(
                    "{},{server},{priority},{}\n",
                    num(*t),
                    num(*latency_s)
                ));
            }
        }
        s
    }

    /// The polca-req request log as JSON Lines (one completed request
    /// per line — the `requests.jsonl` body).
    pub fn requests_jsonl(&self) -> String {
        req::requests_jsonl(&self.requests)
    }

    /// The event log rendered as Chrome trace-event JSON; when request
    /// tracing captured records, per-request lanes ride along on a
    /// dedicated `polca-req` process.
    pub fn chrome_trace_json(&self) -> String {
        chrome::trace_json_with_extra(&self.events, &[], &self.request_lanes())
    }

    /// Chrome trace-event JSON with extra instant markers merged onto
    /// the cluster track (the watch plane's incident annotations).
    pub fn chrome_trace_json_with(&self, annotations: &[chrome::Annotation]) -> String {
        chrome::trace_json_with_extra(&self.events, annotations, &self.request_lanes())
    }

    fn request_lanes(&self) -> Vec<String> {
        let mut lanes = if self.req_trace {
            req::chrome_request_lanes(&self.requests)
        } else {
            Vec::new()
        };
        if !self.energy_rows.is_empty() {
            lanes.extend(self.energy_ledger().chrome_counter_lanes());
        }
        lanes
    }

    /// Wall-clock span timings as JSON.
    pub fn profile_json(&self) -> String {
        self.spans.to_json()
    }

    /// polca-prof phase/counter totals as JSON (`prof.json` body).
    pub fn prof_json(&self) -> String {
        self.prof.to_json()
    }

    /// polca-prof collapsed stacks (`prof.folded` body) for
    /// speedscope/flamegraph.
    pub fn prof_folded(&self) -> String {
        self.prof.folded()
    }

    /// polca-prof phase breakdown as Chrome trace-event JSON
    /// (`prof.trace.json` body).
    pub fn prof_chrome_json(&self) -> String {
        self.prof.chrome_trace_json()
    }

    /// Writes the level-appropriate artifact files into `dir`,
    /// creating the directory if needed, and returns the written
    /// paths in a deterministic order.
    ///
    /// * `ObsLevel::Metrics` → `metrics.json`, `metrics.prom` (and
    ///   `energy.json` + `energy.csv` when the energy ledger recorded
    ///   rows)
    /// * `ObsLevel::Events` → plus `events.jsonl`, `power.csv`,
    ///   `latency.csv`, `trace.json` (and `requests.jsonl` when
    ///   request tracing is on)
    /// * `ObsLevel::Full` → plus `profile.json`, `prof.json`,
    ///   `prof.folded`, `prof.trace.json`
    pub fn write_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        fs::create_dir_all(dir)?;
        let mut written = Vec::new();
        let mut put = |name: &str, body: String| -> io::Result<()> {
            let path = dir.join(name);
            fs::write(&path, body)?;
            written.push(path);
            Ok(())
        };
        if self.level.metrics_enabled() {
            put("metrics.json", self.metrics_json())?;
            put("metrics.prom", self.metrics_prometheus())?;
            if !self.energy_rows.is_empty() {
                let ledger = self.energy_ledger();
                put("energy.json", ledger.to_json())?;
                put("energy.csv", ledger.series_csv())?;
            }
        }
        if self.level.events_enabled() {
            put("events.jsonl", self.events_jsonl())?;
            if self.req_trace {
                put("requests.jsonl", self.requests_jsonl())?;
            }
            put("power.csv", self.power_csv())?;
            put("latency.csv", self.latency_csv())?;
            put("trace.json", self.chrome_trace_json())?;
        }
        if self.level.profiling_enabled() {
            put("profile.json", self.profile_json())?;
            put("prof.json", self.prof_json())?;
            put("prof.folded", self.prof_folded())?;
            put("prof.trace.json", self.prof_chrome_json())?;
        }
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunArtifacts {
        let mut metrics = MetricsRegistry::new();
        metrics.add("reqs", crate::Label::Global, 2);
        RunArtifacts {
            level: ObsLevel::Events,
            events: vec![
                Event::PowerSample {
                    t: 1.0,
                    watts: 150.0,
                },
                Event::RequestCompleted {
                    t: 2.5,
                    server: 0,
                    request: 7,
                    priority: "high",
                    latency_s: 0.5,
                },
            ],
            metrics,
            spans: SpanStats::default(),
            requests: Vec::new(),
            req_trace: false,
            energy_rows: Vec::new(),
            prof: ProfSnapshot::default(),
        }
    }

    #[test]
    fn csv_table_quotes_only_when_needed() {
        let csv = csv_table(
            &["name", "note"],
            &[
                vec!["plain".into(), "a,b".into()],
                vec!["quo\"te".into(), "ok".into()],
            ],
        );
        assert_eq!(csv, "name,note\nplain,\"a,b\"\n\"quo\"\"te\",ok\n");
    }

    #[test]
    fn jsonl_has_one_line_per_event() {
        let a = sample();
        let jsonl = a.events_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.starts_with("{\"ev\":\"power_sample\""));
    }

    #[test]
    fn csv_exports_extract_their_series() {
        let a = sample();
        assert_eq!(a.power_csv(), "t_s,watts\n1,150\n");
        assert_eq!(
            a.latency_csv(),
            "t_s,server,priority,latency_s\n2.5,0,high,0.5\n"
        );
    }

    #[test]
    fn write_dir_honours_level() {
        let dir = std::env::temp_dir().join(format!(
            "polca-obs-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);

        let mut a = sample();
        a.level = ObsLevel::Metrics;
        let files = a.write_dir(&dir).unwrap();
        assert_eq!(files.len(), 2);
        assert!(dir.join("metrics.json").exists());
        assert!(dir.join("metrics.prom").exists());
        assert!(!dir.join("events.jsonl").exists());

        a.level = ObsLevel::Full;
        let files = a.write_dir(&dir).unwrap();
        assert_eq!(files.len(), 10);
        assert!(dir.join("trace.json").exists());
        assert!(dir.join("profile.json").exists());
        assert!(dir.join("prof.json").exists());
        assert!(dir.join("prof.folded").exists());
        assert!(dir.join("prof.trace.json").exists());

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn energy_rows_add_ledger_artifacts_and_counter_lanes() {
        use crate::energy::{CarbonSignal, EnergyAccum, EnergyPlan};

        let dir = std::env::temp_dir().join(format!(
            "polca-energy-export-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);

        let mut a = sample();
        let without = a.chrome_trace_json();
        assert!(!a.metrics_prometheus().contains("energy_site_wh"));
        let mut acc = EnergyAccum::new(
            EnergyPlan::new(CarbonSignal::Constant(100.0)),
            0.0,
            200.0,
            0.0,
            &[("aggregated", 200.0)],
        );
        acc.tick(1800.0, 200.0, 0.0, &[("aggregated", 200.0)]);
        a.energy_rows.push(acc.finish(1800.0, 3600.0));
        let files = a.write_dir(&dir).unwrap();
        assert_eq!(files.len(), 8);
        let json = fs::read_to_string(dir.join("energy.json")).unwrap();
        assert_eq!(json, a.energy_ledger().to_json());
        assert!(json.contains("\"site\""));
        let csv = fs::read_to_string(dir.join("energy.csv")).unwrap();
        assert!(csv.starts_with("t_s,it_wh,facility_wh,co2e_g,g_per_kwh\n"));
        assert!(a.metrics_prometheus().contains("energy_site_wh"));
        assert!(a.metrics_prometheus().contains("carbon_site_g"));
        let with = a.chrome_trace_json();
        assert_ne!(with, without);
        assert!(with.contains("\"name\":\"polca-energy\""));

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn req_trace_adds_requests_jsonl_and_chrome_lanes() {
        let dir = std::env::temp_dir().join(format!(
            "polca-req-export-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);

        let mut a = sample();
        let without = a.chrome_trace_json();
        a.req_trace = true;
        a.requests
            .push(crate::req::ReqSpan::default().finish(7, "high", 0, 0.0, 1.0, 9.0, 100, 10));
        let files = a.write_dir(&dir).unwrap();
        assert_eq!(files.len(), 7);
        let jsonl = fs::read_to_string(dir.join("requests.jsonl")).unwrap();
        assert_eq!(jsonl, a.requests_jsonl());
        assert!(jsonl.contains("\"ttft_s\":"));
        let with = a.chrome_trace_json();
        assert_ne!(with, without);
        assert!(with.contains("\"name\":\"polca-req\""));

        // req_trace on with no captured records: the lane process is
        // omitted and the trace matches the untraced rendering.
        a.requests.clear();
        assert_eq!(a.chrome_trace_json(), without);

        fs::remove_dir_all(&dir).unwrap();
    }
}
