//! polca-req: per-request lifecycle tracing.
//!
//! Aggregate metrics (fleet power, per-class SLO burn, a single
//! fleet-average energy-per-request estimate) cannot answer the
//! question the paper keeps asking: *what did that power action do to
//! the requests that were running?* This module gives every request a
//! span record covering its whole life — admit → queue → chunked
//! prefill → first token → decode → preemption/recompute episodes →
//! KV-shipping hops → completion — with the Splitwise-style phase
//! metrics (TTFT, mean/max time-between-tokens, queue time) and a
//! joules ledger that attributes each iteration's power draw across
//! the batch composition, so a power-capped, brake-slowed iteration
//! visibly taxes the requests inside it.
//!
//! Two types split the work:
//!
//! * [`ReqSpan`] — the engine-side accumulator threaded through a
//!   sequence's serving state. It is pure arithmetic: the engines add
//!   time, tokens, and joules to it but never read it back, so tracing
//!   cannot perturb scheduling decisions and the event log stays
//!   byte-identical with tracing on or off.
//! * [`ReqRecord`] — the finished, derived record
//!   ([`ReqSpan::finish`]) that lands in `requests.jsonl`, feeds the
//!   per-priority-class TTFT/TBT/energy histograms, streams to
//!   [`EventTap::on_request`](crate::EventTap::on_request), and renders
//!   as Chrome-trace request lanes.
//!
//! Determinism contract: records are appended in completion order and
//! [`Recorder::absorb`](crate::Recorder::absorb) concatenates them in
//! canonical cell order, so `requests.jsonl` is byte-identical at a
//! fixed seed regardless of `--jobs`.

use crate::json::{esc, num};

/// Request-tracing configuration carried by a
/// [`Recorder`](crate::Recorder).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReqTraceConfig {
    /// Keep one in `sample` completed records in `requests.jsonl`
    /// (by request id; 1 keeps everything). Histograms and streaming
    /// taps always see every record — sampling only bounds the stored
    /// log.
    pub sample: u64,
}

impl Default for ReqTraceConfig {
    fn default() -> Self {
        ReqTraceConfig { sample: 1 }
    }
}

/// The in-flight accumulator an engine threads through one request's
/// serving state.
///
/// All fields are plain sums the engine writes and never reads, which
/// is what makes req-tracing outcome-invariant by construction.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ReqSpan {
    /// When the first output token became available (absolute
    /// simulation seconds).
    pub first_token_s: Option<f64>,
    /// When the most recent output token was emitted.
    pub last_token_s: Option<f64>,
    /// Largest observed gap between consecutive output tokens.
    pub tbt_max_s: f64,
    /// Wall seconds spent in (first-admission) prefill iterations.
    pub prefill_s: f64,
    /// Wall seconds spent in decode iterations.
    pub decode_s: f64,
    /// Wall seconds spent re-prefilling after a preemption — the
    /// recompute penalty.
    pub recompute_s: f64,
    /// Prompt + generated tokens whose KV had to be recomputed.
    pub recompute_tokens: f64,
    /// KV-exhaustion preemption episodes this request suffered.
    pub preemptions: u32,
    /// KV-shipping hops across the prefill→decode interconnect.
    pub kv_hops: u32,
    /// Wall seconds the KV spent crossing the interconnect.
    pub kv_ship_s: f64,
    /// Energy attributed to this request: each iteration's
    /// `power × dt` shared across the batch in proportion to token
    /// progress. Idle (hot-idle floor) power is deliberately *not*
    /// attributed — see `CostModel::energy_per_request_wh` for the
    /// aggregate estimator that includes it.
    pub joules: f64,
}

impl ReqSpan {
    /// Closes the span into a derived [`ReqRecord`].
    ///
    /// The identity and boundary timestamps come from the caller (the
    /// cluster layer owns arrival/admission/completion times); the
    /// phase splits, token gaps, and the energy ledger come from the
    /// accumulated span. A request that never emitted a tracked first
    /// token (e.g. zero output tokens) falls back to its completion
    /// time.
    #[allow(clippy::too_many_arguments)]
    pub fn finish(
        &self,
        id: u64,
        priority: &'static str,
        server: usize,
        arrival_s: f64,
        started_s: f64,
        completed_s: f64,
        input_tokens: u32,
        output_tokens: u32,
    ) -> ReqRecord {
        let first_token_s = self.first_token_s.unwrap_or(completed_s);
        let gen_tokens = output_tokens.max(1) as f64;
        let tbt_mean_s = ((completed_s - first_token_s) / (gen_tokens - 1.0).max(1.0)).max(0.0);
        ReqRecord {
            id,
            priority,
            server,
            arrival_s,
            started_s,
            first_token_s,
            completed_s,
            input_tokens,
            output_tokens,
            queue_s: (started_s - arrival_s).max(0.0),
            ttft_s: (first_token_s - arrival_s).max(0.0),
            tbt_mean_s,
            tbt_max_s: self.tbt_max_s.max(tbt_mean_s),
            prefill_s: self.prefill_s,
            decode_s: self.decode_s,
            preemptions: self.preemptions,
            recompute_tokens: self.recompute_tokens,
            recompute_s: self.recompute_s,
            kv_hops: self.kv_hops,
            kv_ship_s: self.kv_ship_s,
            joules: self.joules,
            joules_per_token: self.joules / gen_tokens,
            co2e_g: 0.0,
            pue_applied: 1.0,
        }
    }
}

/// One completed request's derived lifecycle record — one line of
/// `requests.jsonl`.
#[derive(Clone, Debug, PartialEq)]
pub struct ReqRecord {
    /// Request id.
    pub id: u64,
    /// Priority-class tag (`"low"` / `"high"`).
    pub priority: &'static str,
    /// Server that generated the final token.
    pub server: usize,
    /// Arrival time (simulation seconds).
    pub arrival_s: f64,
    /// When service (first prefill) began.
    pub started_s: f64,
    /// When the first output token became available.
    pub first_token_s: f64,
    /// Completion time.
    pub completed_s: f64,
    /// Prompt length in tokens.
    pub input_tokens: u32,
    /// Generation length in tokens.
    pub output_tokens: u32,
    /// Seconds between arrival and first admission.
    pub queue_s: f64,
    /// Time to first token, measured from arrival.
    pub ttft_s: f64,
    /// Mean time between output tokens.
    pub tbt_mean_s: f64,
    /// Largest gap between consecutive output tokens (a preemption or
    /// a braked iteration shows up here).
    pub tbt_max_s: f64,
    /// Wall seconds in first-admission prefill.
    pub prefill_s: f64,
    /// Wall seconds in decode.
    pub decode_s: f64,
    /// KV-exhaustion preemption episodes.
    pub preemptions: u32,
    /// Tokens whose KV had to be recomputed after preemption.
    pub recompute_tokens: f64,
    /// Wall seconds of recompute prefill — the preemption penalty.
    pub recompute_s: f64,
    /// KV-shipping hops (split prefill/decode pools).
    pub kv_hops: u32,
    /// Wall seconds of KV interconnect transfer.
    pub kv_ship_s: f64,
    /// Busy-iteration energy attributed to this request, in joules.
    pub joules: f64,
    /// `joules / output_tokens` — the per-generated-token ledger.
    pub joules_per_token: f64,
    /// Facility-level emissions attributed to this request, in grams
    /// CO2e: `joules` converted to kWh, multiplied by the datacenter
    /// PUE and the grid carbon intensity at completion time. Zero when
    /// no energy ledger is attached.
    pub co2e_g: f64,
    /// The PUE multiplier used for `co2e_g` (1.0 when no energy ledger
    /// is attached).
    pub pue_applied: f64,
}

impl ReqRecord {
    /// Serializes the record as a single JSON object (one
    /// `requests.jsonl` line, without the trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push('{');
        s.push_str(&format!("\"id\":{}", self.id));
        s.push_str(&format!(",\"priority\":\"{}\"", esc(self.priority)));
        s.push_str(&format!(",\"server\":{}", self.server));
        s.push_str(&format!(",\"arrival_s\":{}", num(self.arrival_s)));
        s.push_str(&format!(",\"started_s\":{}", num(self.started_s)));
        s.push_str(&format!(",\"first_token_s\":{}", num(self.first_token_s)));
        s.push_str(&format!(",\"completed_s\":{}", num(self.completed_s)));
        s.push_str(&format!(",\"input_tokens\":{}", self.input_tokens));
        s.push_str(&format!(",\"output_tokens\":{}", self.output_tokens));
        s.push_str(&format!(",\"queue_s\":{}", num(self.queue_s)));
        s.push_str(&format!(",\"ttft_s\":{}", num(self.ttft_s)));
        s.push_str(&format!(",\"tbt_mean_s\":{}", num(self.tbt_mean_s)));
        s.push_str(&format!(",\"tbt_max_s\":{}", num(self.tbt_max_s)));
        s.push_str(&format!(",\"prefill_s\":{}", num(self.prefill_s)));
        s.push_str(&format!(",\"decode_s\":{}", num(self.decode_s)));
        s.push_str(&format!(",\"preemptions\":{}", self.preemptions));
        s.push_str(&format!(
            ",\"recompute_tokens\":{}",
            num(self.recompute_tokens)
        ));
        s.push_str(&format!(",\"recompute_s\":{}", num(self.recompute_s)));
        s.push_str(&format!(",\"kv_hops\":{}", self.kv_hops));
        s.push_str(&format!(",\"kv_ship_s\":{}", num(self.kv_ship_s)));
        s.push_str(&format!(",\"joules\":{}", num(self.joules)));
        s.push_str(&format!(
            ",\"joules_per_token\":{}",
            num(self.joules_per_token)
        ));
        s.push_str(&format!(",\"co2e_g\":{}", num(self.co2e_g)));
        s.push_str(&format!(",\"pue_applied\":{}", num(self.pue_applied)));
        s.push('}');
        s
    }
}

/// Renders records as JSON Lines (the `requests.jsonl` body).
pub fn requests_jsonl(records: &[ReqRecord]) -> String {
    let mut s = String::new();
    for r in records {
        s.push_str(&r.to_json());
        s.push('\n');
    }
    s
}

/// Renders records as Chrome trace-event lines on a dedicated
/// `polca-req` process (pid 2): one lane per serving server, a
/// complete span per request from admission to completion, and an
/// instant marker at the first token. Merged into `trace.json` by
/// [`RunArtifacts`](crate::RunArtifacts) when request tracing is on.
pub fn chrome_request_lanes(records: &[ReqRecord]) -> Vec<String> {
    const PID: u32 = 2;
    if records.is_empty() {
        return Vec::new();
    }
    let us = |t: f64| num(t * 1e6);
    let mut out = Vec::new();
    out.push(format!(
        "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":\"polca-req\"}}}}"
    ));
    let mut servers: Vec<usize> = records.iter().map(|r| r.server).collect();
    servers.sort_unstable();
    servers.dedup();
    for s in &servers {
        out.push(format!(
            "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":\"req-server-{s}\"}}}}",
            s + 1
        ));
    }
    for r in records {
        let tid = r.server + 1;
        out.push(format!(
            "{{\"ph\":\"X\",\"pid\":{PID},\"tid\":{tid},\"name\":\"req-{}\",\"cat\":\"request\",\"ts\":{},\"dur\":{},\"args\":{{\"priority\":\"{}\",\"ttft_s\":{},\"tbt_mean_s\":{},\"tbt_max_s\":{},\"preemptions\":{},\"joules\":{},\"joules_per_token\":{}}}}}",
            r.id,
            us(r.started_s),
            us((r.completed_s - r.started_s).max(0.0)),
            esc(r.priority),
            num(r.ttft_s),
            num(r.tbt_mean_s),
            num(r.tbt_max_s),
            r.preemptions,
            num(r.joules),
            num(r.joules_per_token),
        ));
        out.push(format!(
            "{{\"ph\":\"i\",\"pid\":{PID},\"tid\":{tid},\"name\":\"first_token\",\"s\":\"t\",\"ts\":{},\"args\":{{\"request\":{}}}}}",
            us(r.first_token_s),
            r.id,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span() -> ReqSpan {
        ReqSpan {
            first_token_s: Some(12.0),
            last_token_s: Some(20.0),
            tbt_max_s: 0.5,
            prefill_s: 2.0,
            decode_s: 8.0,
            recompute_s: 0.0,
            recompute_tokens: 0.0,
            preemptions: 0,
            kv_hops: 0,
            kv_ship_s: 0.0,
            joules: 4000.0,
        }
    }

    #[test]
    fn finish_derives_phase_metrics() {
        let r = span().finish(7, "high", 3, 9.0, 10.0, 20.0, 1024, 81);
        assert_eq!(r.queue_s, 1.0);
        assert_eq!(r.ttft_s, 3.0);
        assert!((r.tbt_mean_s - 0.1).abs() < 1e-12, "{}", r.tbt_mean_s);
        assert_eq!(r.tbt_max_s, 0.5);
        assert_eq!(r.joules_per_token, 4000.0 / 81.0);
    }

    #[test]
    fn missing_first_token_falls_back_to_completion() {
        let mut sp = span();
        sp.first_token_s = None;
        let r = sp.finish(1, "low", 0, 0.0, 0.0, 5.0, 16, 1);
        assert_eq!(r.first_token_s, 5.0);
        assert_eq!(r.ttft_s, 5.0);
        assert_eq!(r.tbt_mean_s, 0.0);
    }

    #[test]
    fn tbt_max_never_undercuts_the_mean() {
        let mut sp = span();
        sp.tbt_max_s = 0.0;
        let r = sp.finish(1, "low", 0, 0.0, 0.0, 20.0, 16, 11);
        assert_eq!(r.tbt_max_s, r.tbt_mean_s);
    }

    #[test]
    fn json_has_the_schema_fields_in_order() {
        let r = span().finish(7, "high", 3, 9.0, 10.0, 20.0, 1024, 81);
        let j = r.to_json();
        assert!(j.starts_with("{\"id\":7,\"priority\":\"high\",\"server\":3,"));
        for field in [
            "arrival_s",
            "ttft_s",
            "tbt_mean_s",
            "tbt_max_s",
            "queue_s",
            "preemptions",
            "recompute_tokens",
            "kv_hops",
            "joules_per_token",
            "co2e_g",
            "pue_applied",
        ] {
            assert!(j.contains(&format!("\"{field}\":")), "{field} in {j}");
        }
        // The carbon fields sit last, in stable order, with ledger-off
        // defaults.
        assert!(j.ends_with(",\"co2e_g\":0,\"pue_applied\":1}"), "{j}");
        assert_eq!(requests_jsonl(&[r]).lines().count(), 1);
    }

    #[test]
    fn chrome_lanes_pair_span_and_first_token() {
        let r = span().finish(7, "high", 3, 9.0, 10.0, 20.0, 1024, 81);
        let lanes = chrome_request_lanes(&[r]);
        assert!(lanes.iter().any(|l| l.contains("\"name\":\"polca-req\"")));
        assert!(lanes
            .iter()
            .any(|l| l.contains("\"name\":\"req-server-3\"")));
        assert!(lanes.iter().any(|l| l.contains("\"name\":\"req-7\"")));
        assert!(lanes.iter().any(|l| l.contains("\"name\":\"first_token\"")));
        assert!(chrome_request_lanes(&[]).is_empty());
    }
}
