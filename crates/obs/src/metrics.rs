//! Labeled counters, gauges, and streaming histograms.
//!
//! Metric series are keyed by a static name plus a [`Label`], which is
//! how the stack gets per-server, per-priority, and per-policy series
//! without string formatting in hot paths. Storage is `BTreeMap`-based
//! so exported output is deterministically ordered.

use std::collections::BTreeMap;

use polca_stats::histogram::Histogram;

use crate::json::{esc, num};

/// The partition a metric series belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Label {
    /// A single unpartitioned series.
    Global,
    /// One series per server index.
    Server(usize),
    /// One series per named partition — a priority class (`"high"`,
    /// `"low"`) or a policy name (`"polca"`, `"nocap"`, …).
    Tag(&'static str),
    /// One series per fleet row index (a row of racks fed by a PDU).
    Row(usize),
    /// One series per power distribution unit in the fleet hierarchy.
    Pdu(usize),
    /// One series per datacenter in a multi-datacenter site.
    Datacenter(usize),
}

impl Label {
    fn json(&self) -> String {
        match self {
            Label::Global => "null".to_string(),
            Label::Server(i) => format!("{{\"server\":{i}}}"),
            Label::Tag(t) => format!("\"{}\"", esc(t)),
            Label::Row(i) => format!("{{\"row\":{i}}}"),
            Label::Pdu(i) => format!("{{\"pdu\":{i}}}"),
            Label::Datacenter(i) => format!("{{\"datacenter\":{i}}}"),
        }
    }
}

type Key = (&'static str, Label);

/// An approximate distribution that adapts its range as it streams.
///
/// Built on [`polca_stats::histogram::Histogram`]: the histogram starts
/// with a small `[0, hi)` range and, whenever a sample lands past `hi`,
/// doubles the range and pairwise-merges bins, so the bin count stays
/// constant while the range grows geometrically. Exact `count`, `sum`,
/// `min`, and `max` are tracked on the side; quantiles are read off the
/// binned CDF and are therefore approximate to one bin width.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamingHistogram {
    bins: Vec<u64>,
    hi: f64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

/// Bin count for streaming histograms (power of two so pairwise merges
/// are exact).
const STREAM_BINS: usize = 128;

impl StreamingHistogram {
    /// Creates an empty histogram with an initial `[0, 1)` range.
    pub fn new() -> Self {
        StreamingHistogram {
            bins: vec![0; STREAM_BINS],
            hi: 1.0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation. Negative values saturate into the first
    /// bin (the simulator's series — latencies, depths, watts — are
    /// non-negative by construction).
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        while value >= self.hi && self.hi < f64::MAX / 4.0 {
            self.double_range();
        }
        let width = self.hi / self.bins.len() as f64;
        let idx = ((value / width).floor().max(0.0) as usize).min(self.bins.len() - 1);
        self.bins[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds `other` into `self`, as if every observation recorded
    /// into `other` had been recorded into `self` instead.
    ///
    /// Bin placement, `count`, `min`, and `max` merge *exactly*:
    /// ranges grow by doubling from the same `[0, 1)` origin, so the
    /// wider histogram's bins cover a power-of-two multiple of the
    /// narrower one's, and pairwise bin folding
    /// (`floor(floor(v/w)/2) == floor(v/2w)`) reproduces the bin a
    /// sample would have landed in had it been recorded directly at
    /// the wider range. Only `sum` (and therefore `mean`) can drift by
    /// a ULP, because adding two partial sums associates differently
    /// than one interleaved stream. Merging the *same* partials in the
    /// *same* order is fully deterministic, which is what the sweep
    /// runner relies on for `--jobs N` byte-identity.
    pub fn merge_from(&mut self, other: &StreamingHistogram) {
        if other.count == 0 {
            return;
        }
        let mut shift = 0u32;
        while self.hi < other.hi {
            self.double_range();
        }
        let mut hi = other.hi;
        while hi < self.hi {
            hi *= 2.0;
            shift += 1;
        }
        for (i, &n) in other.bins.iter().enumerate() {
            if n > 0 {
                self.bins[i >> shift] += n;
            }
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    fn double_range(&mut self) {
        for i in 0..self.bins.len() / 2 {
            self.bins[i] = self.bins[2 * i] + self.bins[2 * i + 1];
        }
        for b in &mut self.bins[STREAM_BINS / 2..] {
            *b = 0;
        }
        self.hi *= 2.0;
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact minimum, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of recorded observations, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Approximate quantile (to one bin width), or `None` when empty.
    pub fn quantile(&self, fraction: f64) -> Option<f64> {
        self.fixed().quantile(fraction)
    }

    /// A snapshot as a fixed-range [`Histogram`] over `[0, hi)`.
    pub fn fixed(&self) -> Histogram {
        Histogram::from_counts(0.0, self.hi, self.bins.clone())
    }
}

impl Default for StreamingHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A deterministic registry of labeled metric series.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<Key, u64>,
    gauges: BTreeMap<Key, f64>,
    histograms: BTreeMap<Key, StreamingHistogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to the counter series `(name, label)`.
    pub fn add(&mut self, name: &'static str, label: Label, by: u64) {
        *self.counters.entry((name, label)).or_insert(0) += by;
    }

    /// Sets the gauge series `(name, label)` to its latest value.
    pub fn set_gauge(&mut self, name: &'static str, label: Label, value: f64) {
        self.gauges.insert((name, label), value);
    }

    /// Records `value` into the histogram series `(name, label)`.
    pub fn observe(&mut self, name: &'static str, label: Label, value: f64) {
        self.histograms
            .entry((name, label))
            .or_default()
            .record(value);
    }

    /// Current value of a counter series (0 if never incremented).
    pub fn counter(&self, name: &'static str, label: Label) -> u64 {
        self.counters.get(&(name, label)).copied().unwrap_or(0)
    }

    /// Latest value of a gauge series, if ever set.
    pub fn gauge(&self, name: &'static str, label: Label) -> Option<f64> {
        self.gauges.get(&(name, label)).copied()
    }

    /// The histogram series `(name, label)`, if any value was observed.
    pub fn histogram(&self, name: &'static str, label: Label) -> Option<&StreamingHistogram> {
        self.histograms.get(&(name, label))
    }

    /// Folds every series of `other` into `self`: counters add,
    /// gauges take `other`'s value (last-write-wins, matching what a
    /// sequential run sharing one registry would have kept), and
    /// histograms merge exactly via
    /// [`StreamingHistogram::merge_from`].
    pub fn merge_from(&mut self, other: &MetricsRegistry) {
        for (name, label, v) in other.counters() {
            self.add(name, label, v);
        }
        for (name, label, v) in other.gauges() {
            self.set_gauge(name, label, v);
        }
        for (name, label, h) in other.histograms() {
            self.histograms
                .entry((name, label))
                .or_default()
                .merge_from(h);
        }
    }

    /// Whether no series exist at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Iterates counter series in deterministic (name, label) order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, Label, u64)> + '_ {
        self.counters.iter().map(|(&(n, l), &v)| (n, l, v))
    }

    /// Iterates gauge series in deterministic (name, label) order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, Label, f64)> + '_ {
        self.gauges.iter().map(|(&(n, l), &v)| (n, l, v))
    }

    /// Iterates histogram series in deterministic (name, label) order.
    pub fn histograms(
        &self,
    ) -> impl Iterator<Item = (&'static str, Label, &StreamingHistogram)> + '_ {
        self.histograms.iter().map(|(&(n, l), h)| (n, l, h))
    }

    /// Serializes the whole registry as pretty-stable JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"counters\": [");
        let mut first = true;
        for (name, label, v) in self.counters() {
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str(&format!(
                "\n    {{\"name\":\"{}\",\"label\":{},\"value\":{v}}}",
                esc(name),
                label.json()
            ));
        }
        s.push_str("\n  ],\n  \"gauges\": [");
        first = true;
        for (name, label, v) in self.gauges() {
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str(&format!(
                "\n    {{\"name\":\"{}\",\"label\":{},\"value\":{}}}",
                esc(name),
                label.json(),
                num(v)
            ));
        }
        s.push_str("\n  ],\n  \"histograms\": [");
        first = true;
        for (name, label, h) in self.histograms() {
            if !first {
                s.push(',');
            }
            first = false;
            let stat = |o: Option<f64>| o.map(num).unwrap_or_else(|| "null".to_string());
            s.push_str(&format!(
                "\n    {{\"name\":\"{}\",\"label\":{},\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p99\":{}}}",
                esc(name),
                label.json(),
                h.count(),
                num(h.sum()),
                stat(h.min()),
                stat(h.max()),
                stat(h.mean()),
                stat(h.quantile(0.50)),
                stat(h.quantile(0.99)),
            ));
        }
        s.push_str("\n  ]\n}\n");
        s
    }

    /// Serializes the registry in the Prometheus text exposition format
    /// (version 0.0.4), suitable for a `metrics.prom` artifact or a
    /// scrape endpoint.
    ///
    /// * Metric names are sanitized to `[a-zA-Z0-9_:]` (the registry's
    ///   `.`-separated names become `_`-separated) and counters gain
    ///   the conventional `_total` suffix.
    /// * Labels render as `{server="3"}` / `{tag="high"}` with
    ///   backslash, quote, and newline escaping per the spec.
    /// * Histograms export as summaries: `{quantile="0.5"}` /
    ///   `{quantile="0.99"}` sample lines plus `_sum` and `_count`.
    /// * Ordering is deterministic: family kind (counters, gauges,
    ///   summaries), then name, then label — inherited from the
    ///   `BTreeMap` storage, so repeated exports are byte-identical.
    pub fn to_prometheus(&self) -> String {
        fn name_of(raw: &str, suffix: &str) -> String {
            let mut n: String = raw
                .chars()
                .map(|c| {
                    if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                        c
                    } else {
                        '_'
                    }
                })
                .collect();
            if n.starts_with(|c: char| c.is_ascii_digit()) {
                n.insert(0, '_');
            }
            n.push_str(suffix);
            n
        }
        fn label_escape(v: &str) -> String {
            v.replace('\\', "\\\\")
                .replace('"', "\\\"")
                .replace('\n', "\\n")
        }
        fn label_of(label: Label, extra: Option<(&str, &str)>) -> String {
            let mut pairs: Vec<String> = Vec::new();
            match label {
                Label::Global => {}
                Label::Server(i) => pairs.push(format!("server=\"{i}\"")),
                Label::Tag(t) => pairs.push(format!("tag=\"{}\"", label_escape(t))),
                Label::Row(i) => pairs.push(format!("row=\"{i}\"")),
                Label::Pdu(i) => pairs.push(format!("pdu=\"{i}\"")),
                Label::Datacenter(i) => pairs.push(format!("datacenter=\"{i}\"")),
            }
            if let Some((k, v)) = extra {
                pairs.push(format!("{k}=\"{}\"", label_escape(v)));
            }
            if pairs.is_empty() {
                String::new()
            } else {
                format!("{{{}}}", pairs.join(","))
            }
        }
        fn value_of(v: f64) -> String {
            if v.is_finite() {
                format!("{v}")
            } else if v.is_nan() {
                "NaN".to_string()
            } else if v > 0.0 {
                "+Inf".to_string()
            } else {
                "-Inf".to_string()
            }
        }

        struct Family(Option<String>);
        impl Family {
            fn type_line(&mut self, s: &mut String, family: &str, kind: &str) {
                if self.0.as_deref() != Some(family) {
                    s.push_str(&format!("# TYPE {family} {kind}\n"));
                    self.0 = Some(family.to_string());
                }
            }
        }

        let mut s = String::new();
        let mut fam = Family(None);
        for (name, label, v) in self.counters() {
            let family = name_of(name, "_total");
            fam.type_line(&mut s, &family, "counter");
            s.push_str(&format!("{family}{} {v}\n", label_of(label, None)));
        }
        let mut fam = Family(None);
        for (name, label, v) in self.gauges() {
            let family = name_of(name, "");
            fam.type_line(&mut s, &family, "gauge");
            s.push_str(&format!(
                "{family}{} {}\n",
                label_of(label, None),
                value_of(v)
            ));
        }
        let mut fam = Family(None);
        for (name, label, h) in self.histograms() {
            let family = name_of(name, "");
            fam.type_line(&mut s, &family, "summary");
            for (q, qv) in [("0.5", h.quantile(0.50)), ("0.99", h.quantile(0.99))] {
                if let Some(qv) = qv {
                    s.push_str(&format!(
                        "{family}{} {}\n",
                        label_of(label, Some(("quantile", q))),
                        value_of(qv)
                    ));
                }
            }
            s.push_str(&format!(
                "{family}_sum{} {}\n",
                label_of(label, None),
                value_of(h.sum())
            ));
            s.push_str(&format!(
                "{family}_count{} {}\n",
                label_of(label, None),
                h.count()
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_label() {
        let mut m = MetricsRegistry::new();
        m.add("reqs", Label::Tag("high"), 1);
        m.add("reqs", Label::Tag("high"), 2);
        m.add("reqs", Label::Tag("low"), 5);
        assert_eq!(m.counter("reqs", Label::Tag("high")), 3);
        assert_eq!(m.counter("reqs", Label::Tag("low")), 5);
        assert_eq!(m.counter("reqs", Label::Global), 0);
    }

    #[test]
    fn gauges_keep_latest() {
        let mut m = MetricsRegistry::new();
        m.set_gauge("power_w", Label::Server(2), 300.0);
        m.set_gauge("power_w", Label::Server(2), 412.5);
        assert_eq!(m.gauge("power_w", Label::Server(2)), Some(412.5));
        assert_eq!(m.gauge("power_w", Label::Server(3)), None);
    }

    #[test]
    fn streaming_histogram_grows_range() {
        let mut h = StreamingHistogram::new();
        h.record(0.5);
        h.record(100.0); // forces several range doublings
        h.record(3.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), Some(0.5));
        assert_eq!(h.max(), Some(100.0));
        assert_eq!(h.fixed().total(), 3);
        // The early sample survives the merges.
        let p99 = h.quantile(0.99).unwrap();
        assert!(p99 >= 100.0, "p99 = {p99}");
    }

    #[test]
    fn streaming_histogram_quantiles_track_data() {
        let mut h = StreamingHistogram::new();
        for i in 0..1000 {
            h.record(i as f64 / 10.0); // 0.0 .. 99.9
        }
        let p50 = h.quantile(0.5).unwrap();
        assert!((p50 - 50.0).abs() < 3.0, "p50 = {p50}");
        let mean = h.mean().unwrap();
        assert!((mean - 49.95).abs() < 1e-9, "mean = {mean}");
    }

    #[test]
    fn non_finite_observations_are_dropped() {
        let mut h = StreamingHistogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), None);
    }

    #[test]
    fn prometheus_exposition_is_stable_and_escaped() {
        let build = || {
            let mut m = MetricsRegistry::new();
            m.add("cluster.requests_offered", Label::Tag("high"), 3);
            m.add("cluster.requests_offered", Label::Tag("low"), 5);
            m.set_gauge("cluster.row_power_w", Label::Global, 1234.5);
            m.set_gauge("power_w", Label::Server(2), 300.0);
            for i in 0..100 {
                m.observe("cluster.latency_s", Label::Tag("high"), i as f64 / 50.0);
            }
            m.to_prometheus()
        };
        let p = build();
        assert_eq!(p, build(), "exposition must be deterministic");
        assert!(
            p.contains("# TYPE cluster_requests_offered_total counter"),
            "{p}"
        );
        assert!(
            p.contains("cluster_requests_offered_total{tag=\"high\"} 3"),
            "{p}"
        );
        assert!(p.contains("# TYPE cluster_row_power_w gauge"), "{p}");
        assert!(p.contains("cluster_row_power_w 1234.5"), "{p}");
        assert!(p.contains("power_w{server=\"2\"} 300"), "{p}");
        assert!(p.contains("# TYPE cluster_latency_s summary"), "{p}");
        assert!(
            p.contains("cluster_latency_s{tag=\"high\",quantile=\"0.5\"}"),
            "{p}"
        );
        assert!(
            p.contains("cluster_latency_s_count{tag=\"high\"} 100"),
            "{p}"
        );
        // The TYPE line appears once per family even with several series.
        assert_eq!(
            p.matches("# TYPE cluster_requests_offered_total counter")
                .count(),
            1,
            "{p}"
        );
        // Every line is a comment or `name[{labels}] value`.
        for line in p.lines() {
            assert!(
                line.starts_with("# ") || line.split(' ').count() == 2,
                "malformed line: {line}"
            );
        }
    }

    #[test]
    fn prometheus_label_values_escape_specials() {
        // Tag labels are &'static str so exotic values are unusual, but
        // the escaping must still be correct if they appear.
        let mut m = MetricsRegistry::new();
        m.add("c", Label::Tag("a\"b\\c\nd"), 1);
        let p = m.to_prometheus();
        assert!(p.contains("c_total{tag=\"a\\\"b\\\\c\\nd\"} 1"), "{p}");
    }

    #[test]
    fn row_and_pdu_labels_render_in_json_and_prometheus() {
        let mut m = MetricsRegistry::new();
        m.set_gauge("fleet.row_power_w", Label::Row(3), 100.0);
        m.set_gauge("fleet.pdu_power_w", Label::Pdu(1), 400.0);
        let j = m.to_json();
        assert!(j.contains("{\"row\":3}"), "{j}");
        assert!(j.contains("{\"pdu\":1}"), "{j}");
        let p = m.to_prometheus();
        assert!(p.contains("fleet_row_power_w{row=\"3\"} 100"), "{p}");
        assert!(p.contains("fleet_pdu_power_w{pdu=\"1\"} 400"), "{p}");
    }

    #[test]
    fn histogram_merge_is_exact() {
        // Whatever the interleaving, merging split histograms must
        // reproduce the sequential histogram bit-for-bit.
        let samples: Vec<f64> = (0..500)
            .map(|i| (i as f64 * 7.3) % 250.0)
            .chain([0.0, 0.99, 1.0, 1023.9, 4096.0])
            .collect();
        for split in [1, 17, 250, samples.len() - 1] {
            let mut seq = StreamingHistogram::new();
            for &v in &samples {
                seq.record(v);
            }
            let (mut a, mut b) = (StreamingHistogram::new(), StreamingHistogram::new());
            for &v in &samples[..split] {
                a.record(v);
            }
            for &v in &samples[split..] {
                b.record(v);
            }
            a.merge_from(&b);
            // Everything except the FP sum is bit-exact; the sum can
            // differ by a ULP from addition-order association.
            assert_eq!(a.fixed(), seq.fixed(), "bins, split at {split}");
            assert_eq!(a.count(), seq.count(), "split at {split}");
            assert_eq!(a.min(), seq.min(), "split at {split}");
            assert_eq!(a.max(), seq.max(), "split at {split}");
            let (s, t) = (a.sum(), seq.sum());
            assert!((s - t).abs() <= t.abs() * 1e-12, "sum {s} vs {t}");
        }
    }

    #[test]
    fn histogram_merge_handles_empty_sides() {
        let mut a = StreamingHistogram::new();
        let b = StreamingHistogram::new();
        a.record(3.0);
        let before = a.clone();
        a.merge_from(&b);
        assert_eq!(a, before);
        let mut e = StreamingHistogram::new();
        e.merge_from(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn registry_merge_matches_sequential() {
        let mut seq = MetricsRegistry::new();
        let (mut a, mut b) = (MetricsRegistry::new(), MetricsRegistry::new());
        for reg in [&mut a, &mut seq] {
            reg.add("c", Label::Global, 2);
            reg.set_gauge("g", Label::Row(0), 1.0);
            reg.observe("h", Label::Global, 0.5);
        }
        for reg in [&mut b, &mut seq] {
            reg.add("c", Label::Global, 3);
            reg.set_gauge("g", Label::Row(0), 7.0);
            reg.observe("h", Label::Global, 9.5);
        }
        a.merge_from(&b);
        assert_eq!(a, seq);
        assert_eq!(a.to_json(), seq.to_json());
    }

    #[test]
    fn registry_json_is_deterministic() {
        let build = || {
            let mut m = MetricsRegistry::new();
            m.add("b", Label::Global, 1);
            m.add("a", Label::Server(1), 2);
            m.set_gauge("g", Label::Tag("low"), 0.5);
            m.observe("lat", Label::Tag("high"), 1.25);
            m.to_json()
        };
        assert_eq!(build(), build());
        let j = build();
        assert!(j.contains("\"counters\""), "{j}");
        assert!(j.contains("{\"server\":1}"), "{j}");
    }
}
