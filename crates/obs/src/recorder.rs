//! The [`Recorder`] handle the simulation stack threads through its
//! hot loops.
//!
//! A recorder is either *disabled* (one enum compare per call, zero
//! allocation) or holds a shared, mutex-guarded core that accumulates
//! events, metrics, and span timings. Cloning a recorder is cheap and
//! every clone feeds the same core, which is how one run's artifacts
//! are assembled from the event queue, the cluster loop, the OOB
//! control plane, and the policy controller at once.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::sync::{Arc, Mutex, MutexGuard};

use crate::energy::{EnergyPlan, RowEnergy};
use crate::event::Event;
use crate::export::RunArtifacts;
use crate::metrics::{Label, MetricsRegistry};
use crate::prof::{Phase, ProfCounter, ProfGuard, ProfSnapshot, Profiler};
use crate::req::{ReqRecord, ReqTraceConfig};
use crate::span::{SpanGuard, SpanStats};

/// How much a [`Recorder`] captures.
///
/// Levels are strictly ordered: each level captures everything the
/// previous one does.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum ObsLevel {
    /// Capture nothing; every recorder call is a no-op branch.
    #[default]
    Off,
    /// Counters, gauges, and histograms only.
    Metrics,
    /// Metrics plus the structured event log.
    Events,
    /// Events plus wall-clock span and phase (polca-prof) profiling.
    Full,
}

impl ObsLevel {
    /// Whether metric series are captured at this level.
    pub fn metrics_enabled(self) -> bool {
        self >= ObsLevel::Metrics
    }

    /// Whether structured events are captured at this level.
    pub fn events_enabled(self) -> bool {
        self >= ObsLevel::Events
    }

    /// Whether wall-clock spans and polca-prof phase timings are
    /// captured at this level.
    pub fn profiling_enabled(self) -> bool {
        self >= ObsLevel::Full
    }
}

impl FromStr for ObsLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(ObsLevel::Off),
            "metrics" => Ok(ObsLevel::Metrics),
            "events" => Ok(ObsLevel::Events),
            "full" => Ok(ObsLevel::Full),
            other => Err(format!(
                "unknown obs level '{other}' (expected off|metrics|events|full)"
            )),
        }
    }
}

impl fmt::Display for ObsLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ObsLevel::Off => "off",
            ObsLevel::Metrics => "metrics",
            ObsLevel::Events => "events",
            ObsLevel::Full => "full",
        })
    }
}

/// A streaming consumer of recorded events.
///
/// A tap sees every event the moment it enters the log — the hook the
/// online watch plane uses to evaluate rules while the simulation runs,
/// instead of mining `events.jsonl` afterwards. Taps fire only when the
/// recorder's level captures events, so they sit behind the same
/// [`ObsLevel`] gate as the log itself, and they must not call back
/// into the recorder (the core is locked while they run).
pub trait EventTap: Send + Sync {
    /// Called with each event as it is recorded.
    fn on_event(&self, event: &Event);

    /// Called with each completed request record when request tracing
    /// is on (see [`Recorder::with_req_trace`]). Taps see *every*
    /// record regardless of the `requests.jsonl` sampling rate, so an
    /// online consumer (the watch plane's TTFT/TBT burn trackers) is
    /// never starved by sampling. Default: ignore.
    fn on_request(&self, _record: &ReqRecord) {}
}

/// Holds the optional event tap inside the shared core (newtype so the
/// core can keep deriving `Debug`/`Default`).
#[derive(Default)]
pub(crate) struct TapSlot(Option<Arc<dyn EventTap>>);

impl fmt::Debug for TapSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("TapSlot")
            .field(&self.0.as_ref().map(|_| "set"))
            .finish()
    }
}

/// The shared mutable state behind an enabled recorder.
#[derive(Debug, Default)]
pub(crate) struct ObsCore {
    pub(crate) events: Vec<Event>,
    pub(crate) metrics: MetricsRegistry,
    pub(crate) spans: SpanStats,
    pub(crate) requests: Vec<ReqRecord>,
    pub(crate) energy_rows: Vec<RowEnergy>,
    pub(crate) tap: TapSlot,
}

/// A cheap, cloneable observability handle.
///
/// The simulation stack stores recorders inside configuration structs
/// (`SimConfig`, `OversubscriptionStudy`), which imposes two design
/// constraints honoured here:
///
/// * `Send + Sync` — the study object is shared across threads, so the
///   core sits behind `Arc<Mutex<_>>`;
/// * `PartialEq` — configs derive equality; two recorders compare equal
///   iff their *levels* match, because the level is the configuration
///   while the core is accumulated output.
#[derive(Clone, Debug, Default)]
pub struct Recorder {
    level: ObsLevel,
    core: Option<Arc<Mutex<ObsCore>>>,
    prof: Profiler,
    req: Option<ReqTraceConfig>,
    energy: Option<EnergyPlan>,
}

impl PartialEq for Recorder {
    fn eq(&self, other: &Self) -> bool {
        self.level == other.level
    }
}

impl Recorder {
    /// A recorder that captures nothing (the default).
    pub fn disabled() -> Self {
        Recorder::default()
    }

    /// A recorder capturing at `level`. `ObsLevel::Off` allocates no
    /// core at all.
    pub fn new(level: ObsLevel) -> Self {
        let core = (level > ObsLevel::Off).then(|| Arc::new(Mutex::new(ObsCore::default())));
        let prof = Profiler::new(level.profiling_enabled());
        Recorder {
            level,
            core,
            prof,
            req: None,
            energy: None,
        }
    }

    /// Enables polca-req request tracing on this recorder (builder
    /// style). Histograms need [`ObsLevel::Metrics`] and record
    /// storage/taps need [`ObsLevel::Events`] — the usual level gates
    /// apply on top of this switch.
    pub fn with_req_trace(mut self, cfg: ReqTraceConfig) -> Self {
        self.req = Some(cfg);
        self
    }

    /// Whether request tracing is enabled (regardless of level).
    pub fn req_enabled(&self) -> bool {
        self.req.is_some()
    }

    /// Enables the polca-energy ledger on this recorder (builder
    /// style). The cluster sim reads the plan back via
    /// [`energy_plan`](Self::energy_plan) and lands one [`RowEnergy`]
    /// per finished row via [`record_energy`](Self::record_energy).
    /// Needs [`ObsLevel::Metrics`] or above, like the rest of the
    /// accounting plane.
    pub fn with_energy(mut self, plan: EnergyPlan) -> Self {
        self.energy = Some(plan);
        self
    }

    /// Whether energy/carbon accounting is enabled (regardless of
    /// level).
    pub fn energy_enabled(&self) -> bool {
        self.energy.is_some()
    }

    /// The energy accounting plan, if enabled.
    pub fn energy_plan(&self) -> Option<&EnergyPlan> {
        self.energy.as_ref()
    }

    /// Lands a finished row's energy/carbon account (no-op unless
    /// [`with_energy`](Self::with_energy) was called and the level is
    /// at least [`ObsLevel::Metrics`]).
    pub fn record_energy(&self, row: RowEnergy) {
        if self.energy.is_none() || !self.level.metrics_enabled() {
            return;
        }
        if let Some(mut core) = self.lock() {
            core.energy_rows.push(row);
        }
    }

    /// The request-tracing configuration, if enabled.
    pub fn req_trace(&self) -> Option<ReqTraceConfig> {
        self.req
    }

    /// A fresh recorder with the same configuration (level and request
    /// tracing) but an empty core — the per-cell recorder the parallel
    /// sweep/replay runners create for each job before
    /// [`absorb`](Self::absorb)ing them in canonical order.
    pub fn fresh_cell(&self) -> Recorder {
        let mut cell = Recorder::new(self.level);
        cell.req = self.req;
        cell.energy = self.energy.clone();
        cell
    }

    /// The capture level this recorder was created with.
    pub fn level(&self) -> ObsLevel {
        self.level
    }

    /// Whether this recorder captures anything at all.
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    fn lock(&self) -> Option<MutexGuard<'_, ObsCore>> {
        self.core
            .as_ref()
            .map(|c| c.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Appends `event` to the event log (no-op below
    /// [`ObsLevel::Events`]).
    pub fn record(&self, event: Event) {
        if self.level.events_enabled() {
            self.prof.count(ProfCounter::EventsRecorded, 1);
            if let Some(mut core) = self.lock() {
                core.events.push(event);
                Self::fire_tap(&core);
            }
        }
    }

    /// Like [`record`](Self::record) but defers construction, so
    /// events whose payload allocates (e.g. [`Event::SloViolation`])
    /// cost nothing when disabled.
    pub fn record_with(&self, make: impl FnOnce() -> Event) {
        if self.level.events_enabled() {
            self.prof.count(ProfCounter::EventsRecorded, 1);
            if let Some(mut core) = self.lock() {
                core.events.push(make());
                Self::fire_tap(&core);
            }
        }
    }

    /// Forwards the just-pushed event to the tap, if one is attached.
    fn fire_tap(core: &MutexGuard<'_, ObsCore>) {
        if let (Some(tap), Some(event)) = (&core.tap.0, core.events.last()) {
            tap.on_event(event);
        }
    }

    /// Attaches a streaming [`EventTap`]; every clone of this recorder
    /// (they share one core) feeds it from now on. No-op below
    /// [`ObsLevel::Events`]. Replaces any previous tap.
    pub fn set_tap(&self, tap: Arc<dyn EventTap>) {
        if let Some(mut core) = self.lock() {
            core.tap.0 = Some(tap);
        }
    }

    /// Detaches the streaming tap, if any.
    pub fn clear_tap(&self) {
        if let Some(mut core) = self.lock() {
            core.tap.0 = None;
        }
    }

    /// Adds `by` to a counter series (no-op below
    /// [`ObsLevel::Metrics`]).
    pub fn add(&self, name: &'static str, label: Label, by: u64) {
        if self.level.metrics_enabled() {
            if let Some(mut core) = self.lock() {
                core.metrics.add(name, label, by);
            }
        }
    }

    /// Sets a gauge series to its latest value (no-op below
    /// [`ObsLevel::Metrics`]).
    pub fn gauge(&self, name: &'static str, label: Label, value: f64) {
        if self.level.metrics_enabled() {
            if let Some(mut core) = self.lock() {
                core.metrics.set_gauge(name, label, value);
            }
        }
    }

    /// Records a histogram observation (no-op below
    /// [`ObsLevel::Metrics`]).
    pub fn observe(&self, name: &'static str, label: Label, value: f64) {
        if self.level.metrics_enabled() {
            if let Some(mut core) = self.lock() {
                core.metrics.observe(name, label, value);
            }
        }
    }

    /// Lands one completed request in the polca-req plane (no-op
    /// unless request tracing is on, see
    /// [`with_req_trace`](Self::with_req_trace)).
    ///
    /// At [`ObsLevel::Metrics`] and above the record feeds the
    /// per-priority-class streaming histograms (`req.ttft_s`,
    /// `req.tbt_s`, `req.queue_s`, `req.joules_per_token`). At
    /// [`ObsLevel::Events`] and above it also streams to the attached
    /// [`EventTap::on_request`] and — subject to the configured
    /// sampling rate — is stored for `requests.jsonl`.
    pub fn record_request(&self, record: &ReqRecord) {
        let Some(cfg) = self.req else {
            return;
        };
        let Some(mut core) = self.lock() else {
            return;
        };
        if self.level.metrics_enabled() {
            let label = Label::Tag(record.priority);
            core.metrics.observe("req.ttft_s", label, record.ttft_s);
            core.metrics.observe("req.tbt_s", label, record.tbt_mean_s);
            core.metrics.observe("req.queue_s", label, record.queue_s);
            core.metrics
                .observe("req.joules_per_token", label, record.joules_per_token);
        }
        if self.level.events_enabled() {
            if let Some(tap) = &core.tap.0 {
                tap.on_request(record);
            }
            if record.id.is_multiple_of(cfg.sample.max(1)) {
                core.requests.push(record.clone());
            }
        }
    }

    /// Starts a wall-clock span; the returned guard records its
    /// elapsed time on drop. Returns `None` below [`ObsLevel::Full`],
    /// so the idiom is simply `let _span = obs.time("sim.loop");`.
    pub fn time(&self, name: &'static str) -> Option<SpanGuard> {
        if self.level.profiling_enabled() {
            self.core
                .as_ref()
                .map(|c| SpanGuard::new(name, Arc::clone(c)))
        } else {
            None
        }
    }

    /// The polca-prof handle feeding this recorder's phase
    /// accumulators (disabled below [`ObsLevel::Full`]). Hot loops
    /// clone it once and call [`Profiler::time`] directly — no mutex
    /// is involved.
    pub fn prof(&self) -> &Profiler {
        &self.prof
    }

    /// Starts timing a polca-prof phase; sugar for
    /// `self.prof().time(phase)`.
    #[inline]
    pub fn time_phase(&self, phase: Phase) -> Option<ProfGuard> {
        self.prof.time(phase)
    }

    /// Folds everything `other` captured into this recorder: events
    /// append in `other`'s order, counters add, gauges last-write-win,
    /// histograms merge exactly, and span aggregates add.
    ///
    /// This is the merge step of the deterministic sweep runner: give
    /// each parallel job its own recorder, then absorb the job
    /// recorders in canonical cell order — the combined event log (and
    /// `events.jsonl`) comes out byte-identical to a sequential run
    /// that shared one recorder. The streaming tap deliberately does
    /// *not* fire for absorbed events (they are historical, not live);
    /// callers that need a live tap must run sequentially. Absorbing a
    /// recorder into itself (same shared core) is a no-op.
    pub fn absorb(&self, other: &Recorder) {
        self.prof.merge_from(&other.prof);
        let (Some(own), Some(theirs)) = (self.core.as_ref(), other.core.as_ref()) else {
            return;
        };
        if Arc::ptr_eq(own, theirs) {
            return;
        }
        let mut core = own.lock().unwrap_or_else(|e| e.into_inner());
        let src = theirs.lock().unwrap_or_else(|e| e.into_inner());
        if self.level.events_enabled() {
            core.events.extend(src.events.iter().cloned());
            core.requests.extend(src.requests.iter().cloned());
        }
        if self.level.metrics_enabled() {
            core.metrics.merge_from(&src.metrics);
            core.energy_rows.extend(src.energy_rows.iter().cloned());
        }
        core.spans.merge_from(&src.spans);
    }

    /// Folds only `other`'s *profiling* output — span aggregates and
    /// polca-prof phases/counters — into this recorder, leaving events
    /// and metrics untouched.
    ///
    /// This builds the fleet-level aggregate profile: row recorders
    /// keep their own event logs (written under `DIR/rowN/`), while
    /// the fleet recorder's `prof.json`/`profile.json` account for all
    /// rows combined. Absorbing into a disabled side or a recorder
    /// sharing the same core is a no-op.
    pub fn absorb_profiling(&self, other: &Recorder) {
        self.prof.merge_from(&other.prof);
        let (Some(own), Some(theirs)) = (self.core.as_ref(), other.core.as_ref()) else {
            return;
        };
        if Arc::ptr_eq(own, theirs) {
            return;
        }
        let mut core = own.lock().unwrap_or_else(|e| e.into_inner());
        let src = theirs.lock().unwrap_or_else(|e| e.into_inner());
        core.spans.merge_from(&src.spans);
    }

    /// Folds only `other`'s polca-energy row accounts into this
    /// recorder, leaving events, metrics, and profiling untouched.
    ///
    /// This builds the site-level ledger: fleet/site rows keep their
    /// own event logs (written under `DIR/rowN/`), while the site
    /// recorder's `energy.json` rolls every row up the hierarchy. Call
    /// it in canonical row order; a disabled side or a recorder sharing
    /// the same core is a no-op.
    pub fn absorb_energy(&self, other: &Recorder) {
        let (Some(own), Some(theirs)) = (self.core.as_ref(), other.core.as_ref()) else {
            return;
        };
        if Arc::ptr_eq(own, theirs) {
            return;
        }
        let mut core = own.lock().unwrap_or_else(|e| e.into_inner());
        let src = theirs.lock().unwrap_or_else(|e| e.into_inner());
        core.energy_rows.extend(src.energy_rows.iter().cloned());
    }

    /// A probe suitable for attaching to `polca_sim::EventQueue`.
    pub fn queue_probe(&self) -> QueueProbe {
        QueueProbe { rec: self.clone() }
    }

    /// Snapshots everything captured so far into an exportable bundle.
    pub fn artifacts(&self) -> RunArtifacts {
        match self.lock() {
            Some(core) => RunArtifacts {
                level: self.level,
                events: core.events.clone(),
                metrics: core.metrics.clone(),
                spans: core.spans.clone(),
                requests: core.requests.clone(),
                req_trace: self.req.is_some(),
                energy_rows: core.energy_rows.clone(),
                prof: self.prof.snapshot(),
            },
            None => RunArtifacts {
                level: self.level,
                events: Vec::new(),
                metrics: MetricsRegistry::default(),
                spans: SpanStats::default(),
                requests: Vec::new(),
                req_trace: self.req.is_some(),
                energy_rows: Vec::new(),
                prof: ProfSnapshot::default(),
            },
        }
    }

    /// Writes the level-appropriate artifact files into `dir`
    /// (creating it), returning the paths written. A disabled recorder
    /// writes nothing.
    /// Recorder I/O time lands in the [`Phase::RecorderIo`] phase; as
    /// the snapshot is taken before the files are rendered, it shows
    /// up in *subsequent* exports (e.g. the attribution table printed
    /// after the artifacts are on disk).
    pub fn write_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        if !self.is_enabled() {
            return Ok(Vec::new());
        }
        let _io = self.prof.time(Phase::RecorderIo);
        self.artifacts().write_dir(dir)
    }
}

/// Instrumentation hook for the discrete-event queue.
///
/// `polca_sim::EventQueue` accepts one of these and reports scheduling
/// activity through it; the probe turns that into `sim.events_*`
/// counters and a `sim.queue_depth` histogram. All methods are no-ops
/// when the underlying recorder is disabled.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QueueProbe {
    rec: Recorder,
}

impl QueueProbe {
    /// Called after an event is scheduled; `depth` is the new queue
    /// length. Also feeds the lock-free polca-prof counters (events
    /// scheduled, peak queue depth).
    pub fn on_schedule(&self, depth: usize) {
        let prof = self.rec.prof();
        prof.count(ProfCounter::EventsScheduled, 1);
        prof.record_max(ProfCounter::PeakQueueDepth, depth as u64);
        self.rec.add("sim.events_scheduled", Label::Global, 1);
        self.rec
            .observe("sim.queue_depth", Label::Global, depth as f64);
    }

    /// Called after an event is popped; `depth` is the remaining queue
    /// length.
    pub fn on_pop(&self, depth: usize) {
        self.rec.prof().count(ProfCounter::EventsPopped, 1);
        self.rec.add("sim.events_popped", Label::Global, 1);
        self.rec
            .gauge("sim.queue_depth_last", Label::Global, depth as f64);
    }

    /// Starts timing a heap push ([`Phase::QueuePush`]); `None` unless
    /// the recorder profiles.
    #[inline]
    pub fn time_push(&self) -> Option<ProfGuard> {
        self.rec.prof().time(Phase::QueuePush)
    }

    /// Starts timing a heap pop ([`Phase::QueuePop`]); `None` unless
    /// the recorder profiles.
    #[inline]
    pub fn time_pop(&self) -> Option<ProfGuard> {
        self.rec.prof().time(Phase::QueuePop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_captures_nothing() {
        let r = Recorder::disabled();
        r.record(Event::PowerSample { t: 0.0, watts: 1.0 });
        r.add("c", Label::Global, 1);
        r.observe("h", Label::Global, 1.0);
        assert!(r.time("x").is_none());
        let a = r.artifacts();
        assert!(a.events.is_empty());
        assert!(a.metrics.is_empty());
        assert!(a.spans.is_empty());
    }

    #[test]
    fn metrics_level_drops_events_keeps_metrics() {
        let r = Recorder::new(ObsLevel::Metrics);
        r.record(Event::PowerSample { t: 0.0, watts: 1.0 });
        r.add("c", Label::Global, 2);
        assert!(r.time("x").is_none());
        let a = r.artifacts();
        assert!(a.events.is_empty());
        assert_eq!(a.metrics.counter("c", Label::Global), 2);
    }

    #[test]
    fn clones_share_one_core() {
        let r = Recorder::new(ObsLevel::Events);
        let r2 = r.clone();
        r.record(Event::Uncap { t: 1.0, server: 0 });
        r2.record(Event::Uncap { t: 2.0, server: 1 });
        assert_eq!(r.artifacts().events.len(), 2);
    }

    #[test]
    fn full_level_times_spans() {
        let r = Recorder::new(ObsLevel::Full);
        {
            let _g = r.time("work");
        }
        let a = r.artifacts();
        assert_eq!(a.spans.get("work").unwrap().count, 1);
    }

    #[test]
    fn equality_is_by_level_only() {
        assert_eq!(
            Recorder::new(ObsLevel::Events),
            Recorder::new(ObsLevel::Events)
        );
        assert_ne!(Recorder::new(ObsLevel::Events), Recorder::disabled());
        let r = Recorder::new(ObsLevel::Events);
        r.record(Event::Uncap { t: 1.0, server: 0 });
        assert_eq!(r, Recorder::new(ObsLevel::Events));
    }

    #[test]
    fn level_parses_and_displays() {
        for s in ["off", "metrics", "events", "full"] {
            let l: ObsLevel = s.parse().unwrap();
            assert_eq!(l.to_string(), s);
        }
        assert!("verbose".parse::<ObsLevel>().is_err());
        assert!(ObsLevel::Full.events_enabled());
        assert!(!ObsLevel::Metrics.events_enabled());
    }

    #[test]
    fn taps_stream_events_through_any_clone() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[derive(Default)]
        struct Counting(AtomicUsize);
        impl EventTap for Counting {
            fn on_event(&self, _event: &Event) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }

        let r = Recorder::new(ObsLevel::Events);
        let clone = r.clone();
        let tap = Arc::new(Counting::default());
        r.set_tap(tap.clone());
        clone.record(Event::Uncap { t: 1.0, server: 0 });
        r.record(Event::Uncap { t: 2.0, server: 1 });
        assert_eq!(tap.0.load(Ordering::Relaxed), 2);
        r.clear_tap();
        r.record(Event::Uncap { t: 3.0, server: 2 });
        assert_eq!(tap.0.load(Ordering::Relaxed), 2);

        // Below Events the tap never fires (same gate as the log).
        let m = Recorder::new(ObsLevel::Metrics);
        let tap2 = Arc::new(Counting::default());
        m.set_tap(tap2.clone());
        m.record(Event::Uncap { t: 1.0, server: 0 });
        assert_eq!(tap2.0.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn absorb_concatenates_like_a_shared_core() {
        let seq = Recorder::new(ObsLevel::Full);
        let a = Recorder::new(ObsLevel::Full);
        let b = Recorder::new(ObsLevel::Full);
        for (rec, t) in [(&a, 1.0), (&seq, 1.0)] {
            rec.record(Event::Uncap { t, server: 0 });
            rec.add("c", Label::Global, 1);
            rec.observe("h", Label::Global, t);
        }
        for (rec, t) in [(&b, 2.0), (&seq, 2.0)] {
            rec.record(Event::Uncap { t, server: 1 });
            rec.add("c", Label::Global, 4);
            rec.observe("h", Label::Global, t);
        }
        a.absorb(&b);
        let merged = a.artifacts();
        let sequential = seq.artifacts();
        assert_eq!(merged.events, sequential.events);
        assert_eq!(merged.metrics, sequential.metrics);
        assert_eq!(merged.events_jsonl(), sequential.events_jsonl());
    }

    #[test]
    fn absorb_self_and_disabled_are_noops() {
        let r = Recorder::new(ObsLevel::Events);
        r.record(Event::Uncap { t: 1.0, server: 0 });
        let clone = r.clone();
        r.absorb(&clone); // same core: must not duplicate
        assert_eq!(r.artifacts().events.len(), 1);
        r.absorb(&Recorder::disabled());
        assert_eq!(r.artifacts().events.len(), 1);
        let d = Recorder::disabled();
        d.absorb(&r);
        assert!(d.artifacts().events.is_empty());
    }

    #[test]
    fn absorb_does_not_fire_the_tap() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[derive(Default)]
        struct Counting(AtomicUsize);
        impl EventTap for Counting {
            fn on_event(&self, _event: &Event) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }

        let r = Recorder::new(ObsLevel::Events);
        let tap = Arc::new(Counting::default());
        r.set_tap(tap.clone());
        let other = Recorder::new(ObsLevel::Events);
        other.record(Event::Uncap { t: 1.0, server: 0 });
        r.absorb(&other);
        assert_eq!(r.artifacts().events.len(), 1);
        assert_eq!(tap.0.load(Ordering::Relaxed), 0);
    }

    fn req_record(id: u64) -> ReqRecord {
        crate::req::ReqSpan::default().finish(id, "low", 0, 0.0, 1.0, 9.0, 100, 10)
    }

    #[test]
    fn record_request_requires_opt_in() {
        let r = Recorder::new(ObsLevel::Full);
        r.record_request(&req_record(1));
        let a = r.artifacts();
        assert!(a.requests.is_empty());
        assert!(!a.req_trace);
        assert!(a.metrics.is_empty());
    }

    #[test]
    fn record_request_feeds_histograms_and_stores_sampled_records() {
        let r = Recorder::new(ObsLevel::Full).with_req_trace(ReqTraceConfig { sample: 2 });
        for id in 0..6 {
            r.record_request(&req_record(id));
        }
        let a = r.artifacts();
        assert!(a.req_trace);
        // Sampling keeps ids 0, 2, 4 but the histograms see all six.
        assert_eq!(a.requests.len(), 3);
        assert!(a
            .metrics
            .to_prometheus()
            .contains("req_ttft_s_count{tag=\"low\"} 6"));
    }

    #[test]
    fn metrics_level_keeps_req_histograms_drops_records() {
        let r = Recorder::new(ObsLevel::Metrics).with_req_trace(ReqTraceConfig::default());
        r.record_request(&req_record(1));
        let a = r.artifacts();
        assert!(a.requests.is_empty());
        assert!(a.metrics.to_prometheus().contains("req_ttft_s"));
    }

    #[test]
    fn absorb_merges_request_records_in_order() {
        let a = Recorder::new(ObsLevel::Events).with_req_trace(ReqTraceConfig::default());
        let b = a.fresh_cell();
        assert!(b.req_enabled());
        a.record_request(&req_record(1));
        b.record_request(&req_record(2));
        a.absorb(&b);
        let ids: Vec<u64> = a.artifacts().requests.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn request_tap_sees_every_record_despite_sampling() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[derive(Default)]
        struct Counting(AtomicUsize);
        impl EventTap for Counting {
            fn on_event(&self, _event: &Event) {}
            fn on_request(&self, _record: &ReqRecord) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }

        let r = Recorder::new(ObsLevel::Events).with_req_trace(ReqTraceConfig { sample: 100 });
        let tap = Arc::new(Counting::default());
        r.set_tap(tap.clone());
        for id in 0..5 {
            r.record_request(&req_record(id));
        }
        assert_eq!(tap.0.load(Ordering::Relaxed), 5);
        assert_eq!(r.artifacts().requests.len(), 1); // only id 0 sampled
    }

    #[test]
    fn energy_rows_record_absorb_and_fresh_cell() {
        use crate::energy::{CarbonSignal, EnergyAccum, EnergyPlan};
        let plan = EnergyPlan::new(CarbonSignal::Constant(100.0));
        let mk = |row: usize| {
            let mut acc = EnergyAccum::new(
                plan.at_location(row, 0, 0),
                0.0,
                100.0,
                0.0,
                &[("aggregated", 100.0)],
            );
            acc.tick(3600.0, 100.0, 0.0, &[("aggregated", 100.0)]);
            acc.finish(3600.0, 0.0)
        };
        let r = Recorder::new(ObsLevel::Metrics).with_energy(plan.clone());
        assert!(r.energy_enabled());
        let cell = r.fresh_cell();
        assert!(cell.energy_enabled());
        cell.record_energy(mk(1));
        r.record_energy(mk(0));
        r.absorb(&cell);
        assert_eq!(r.artifacts().energy_rows.len(), 2);
        // Without the plan, record_energy is a no-op.
        let off = Recorder::new(ObsLevel::Full);
        assert!(!off.energy_enabled());
        off.record_energy(mk(0));
        assert!(off.artifacts().energy_rows.is_empty());
    }

    #[test]
    fn queue_probe_counts() {
        let r = Recorder::new(ObsLevel::Metrics);
        let p = r.queue_probe();
        p.on_schedule(1);
        p.on_schedule(2);
        p.on_pop(1);
        let a = r.artifacts();
        assert_eq!(a.metrics.counter("sim.events_scheduled", Label::Global), 2);
        assert_eq!(a.metrics.counter("sim.events_popped", Label::Global), 1);
        assert_eq!(
            a.metrics.gauge("sim.queue_depth_last", Label::Global),
            Some(1.0)
        );
    }
}
