//! polca-prof: lock-free self-profiling of the simulator's hot paths.
//!
//! [`SpanStats`](crate::SpanStats) answers coarse questions (how long
//! did the event loop take?) but records through the shared
//! mutex-guarded core, which is far too heavy for per-event
//! instrumentation. This module is the fine-grained sibling: a fixed
//! alphabet of [`Phase`]s (event-queue push/pop, request dispatch,
//! telemetry ticks, controller evaluation, power aggregation, recorder
//! I/O, …) accumulated into plain atomics, so an enabled profiler
//! costs two `Instant::now()` calls and a handful of relaxed atomic
//! adds per phase entry, and a disabled one costs a single branch.
//!
//! Accounting is *self-time* based: a thread-local stack of guard
//! frames subtracts time spent in nested phases from the enclosing
//! phase, so the attribution table sums to (at most) wall time instead
//! of double-counting queue operations inside event handlers.
//!
//! Next to the phase timers sit a few derived internal counters
//! ([`ProfCounter`]): events scheduled/popped, peak event-queue depth,
//! event-log allocations, and fleet window occupancy.
//!
//! Exports ([`ProfSnapshot`]):
//!
//! * `prof.json` — machine-readable per-phase totals and counters,
//! * a per-component attribution table for the terminal
//!   ([`ProfSnapshot::attribution_table`]),
//! * collapsed/folded stacks ([`ProfSnapshot::folded`]) loadable in
//!   speedscope (<https://speedscope.app>) or `flamegraph.pl`,
//! * a Chrome trace-event document ([`ProfSnapshot::chrome_trace_json`])
//!   that opens in Perfetto alongside the simulation trace,
//! * deterministic counter series appended to `metrics.prom`
//!   ([`ProfSnapshot::to_prometheus`]).
//!
//! Like span timings, wall-clock phase data is non-deterministic and
//! lives strictly outside the event log; the Prometheus export only
//! includes call/occupancy counters, which are a pure function of the
//! seed.
//!
//! [`BenchReport`] turns a profiled run into the `BENCH_*.json`
//! perf-trajectory files (sim-s/s, events/s, ns/phase, peak queue
//! depth) that `ci.sh`'s `bench-smoke` step gates against.

use std::cell::RefCell;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Instant;

use crate::json::esc;

/// The fixed alphabet of profiled hot-path phases.
///
/// Each variant names one self-contained slice of simulator work; the
/// enum discriminant indexes a fixed accumulator array, so entering a
/// phase never allocates or hashes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum Phase {
    /// One `RowSim::step_until` slice: the event loop itself (peek,
    /// match dispatch, bookkeeping), net of the per-event phases below.
    RowStep,
    /// `EventQueue::schedule` — heap push plus probe bookkeeping.
    QueuePush,
    /// `EventQueue::pop` — heap pop plus probe bookkeeping.
    QueuePop,
    /// Arrival handling: server selection, dispatch or queue/reject.
    Dispatch,
    /// Request phase completion: latency accounting, next-phase issue.
    PhaseEnd,
    /// Telemetry tick: power accumulation, signal windows, OOB publish.
    TelemetryTick,
    /// Policy controller evaluation (nested inside a telemetry tick).
    ControllerEval,
    /// Delivery of delayed OOB control commands to servers.
    ControlDelivery,
    /// Fleet window boundary: hierarchy power aggregation and budgets.
    PowerAggregation,
    /// Synthetic arrival-trace generation (once per cache miss).
    TraceSynthesis,
    /// Recorder artifact rendering and file I/O (`write_dir`).
    RecorderIo,
    /// One batched-engine iteration epoch: fluid progress, boundary
    /// transitions, and wake rescheduling (polca-serve).
    ServeIteration,
    /// Paged KV-cache block accounting: allocation, growth, frees, and
    /// preemption on exhaustion (polca-serve).
    ServeKvAlloc,
    /// Continuous-batching admission: chunked-prefill selection and
    /// waiting-queue scheduling (polca-serve).
    ServeSchedule,
    /// Site window boundary: canonical-order merge of per-row state
    /// (next event times, instantaneous powers) after the parallel
    /// step, before budgets are evaluated.
    FleetMerge,
    /// Site-level aggregation: datacenter/site power roll-up and
    /// budget checks above the single-datacenter fleet path.
    SiteAggregation,
}

/// Number of [`Phase`] variants (the accumulator array length).
pub const PHASE_COUNT: usize = 16;

impl Phase {
    /// Every phase, in discriminant order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::RowStep,
        Phase::QueuePush,
        Phase::QueuePop,
        Phase::Dispatch,
        Phase::PhaseEnd,
        Phase::TelemetryTick,
        Phase::ControllerEval,
        Phase::ControlDelivery,
        Phase::PowerAggregation,
        Phase::TraceSynthesis,
        Phase::RecorderIo,
        Phase::ServeIteration,
        Phase::ServeKvAlloc,
        Phase::ServeSchedule,
        Phase::FleetMerge,
        Phase::SiteAggregation,
    ];

    /// Short dotted name used in tables, JSON, and Prometheus labels.
    pub fn name(self) -> &'static str {
        match self {
            Phase::RowStep => "row.step",
            Phase::QueuePush => "queue.push",
            Phase::QueuePop => "queue.pop",
            Phase::Dispatch => "row.dispatch",
            Phase::PhaseEnd => "row.phase_end",
            Phase::TelemetryTick => "row.telemetry",
            Phase::ControllerEval => "row.controller_eval",
            Phase::ControlDelivery => "row.control_delivery",
            Phase::PowerAggregation => "fleet.power_aggregation",
            Phase::TraceSynthesis => "study.trace_synthesis",
            Phase::RecorderIo => "obs.recorder_io",
            Phase::ServeIteration => "serve.iteration",
            Phase::ServeKvAlloc => "serve.kv_alloc",
            Phase::ServeSchedule => "serve.schedule",
            Phase::FleetMerge => "fleet.merge",
            Phase::SiteAggregation => "site.aggregate",
        }
    }

    /// Canonical semicolon-separated stack for the folded export.
    ///
    /// Folded stacks are keyed by a static call path; phases that can
    /// run under several parents (the queue operations) are attributed
    /// to their dominant caller, the event loop.
    pub fn stack(self) -> &'static str {
        match self {
            Phase::RowStep => "row.step",
            Phase::QueuePush => "row.step;queue.push",
            Phase::QueuePop => "row.step;queue.pop",
            Phase::Dispatch => "row.step;dispatch",
            Phase::PhaseEnd => "row.step;phase_end",
            Phase::TelemetryTick => "row.step;telemetry",
            Phase::ControllerEval => "row.step;telemetry;controller_eval",
            Phase::ControlDelivery => "row.step;control_delivery",
            Phase::PowerAggregation => "fleet.window;power_aggregation",
            Phase::TraceSynthesis => "study;trace_synthesis",
            Phase::RecorderIo => "obs;recorder_io",
            Phase::ServeIteration => "row.step;serve.iteration",
            Phase::ServeKvAlloc => "row.step;serve.iteration;kv_alloc",
            Phase::ServeSchedule => "row.step;serve.iteration;schedule",
            Phase::FleetMerge => "fleet.window;merge",
            Phase::SiteAggregation => "fleet.window;site_aggregate",
        }
    }
}

/// Derived internal counters kept beside the phase timers.
///
/// All of these are a pure function of the simulation seed (never of
/// wall-clock), so unlike phase times they may appear in deterministic
/// artifacts such as `metrics.prom`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum ProfCounter {
    /// Events pushed onto the discrete-event queue.
    EventsScheduled,
    /// Events popped off the discrete-event queue.
    EventsPopped,
    /// High-water mark of the event-queue depth (merged by max).
    PeakQueueDepth,
    /// Structured events appended to the recorder log (one allocation
    /// each — the event log is the dominant arena).
    EventsRecorded,
    /// Fleet telemetry-window boundaries observed.
    FleetWindows,
    /// Row-windows actually *stepped* (rows with a due event) across
    /// all boundaries; divided by [`FleetWindows`](Self::FleetWindows)
    /// this is the batched-tick occupancy (rows advanced per lockstep
    /// window).
    FleetRowWindows,
    /// Arrival-trace cache misses (full synthesis runs).
    TraceCacheMisses,
    /// Arrival-trace cache hits (reused synthesis output).
    TraceCacheHits,
    /// Commands issued on the OOB control plane.
    OobCommandsIssued,
    /// Commands actually delivered by the OOB control plane (issued
    /// minus silent failures and still-in-flight).
    OobCommandsDelivered,
    /// High-water mark of KV-cache blocks in use on any one server of
    /// the batched engine (merged by max).
    ServeKvPeakBlocks,
    /// Sequences preempted by the batched engine on KV-cache
    /// exhaustion (each restarts with a recompute prefill).
    ServePreemptions,
    /// High-water mark of running sequences (prefilling + decoding) on
    /// any one server of the batched engine (merged by max).
    ServePeakBatch,
    /// Row-windows *skipped* by the due-event work deque: rows whose
    /// next queued event lies beyond the window boundary pay nothing
    /// instead of a no-op scan.
    FleetRowsSkipped,
}

/// Number of [`ProfCounter`] variants.
pub const COUNTER_COUNT: usize = 14;

impl ProfCounter {
    /// Every counter, in discriminant order.
    pub const ALL: [ProfCounter; COUNTER_COUNT] = [
        ProfCounter::EventsScheduled,
        ProfCounter::EventsPopped,
        ProfCounter::PeakQueueDepth,
        ProfCounter::EventsRecorded,
        ProfCounter::FleetWindows,
        ProfCounter::FleetRowWindows,
        ProfCounter::TraceCacheMisses,
        ProfCounter::TraceCacheHits,
        ProfCounter::OobCommandsIssued,
        ProfCounter::OobCommandsDelivered,
        ProfCounter::ServeKvPeakBlocks,
        ProfCounter::ServePreemptions,
        ProfCounter::ServePeakBatch,
        ProfCounter::FleetRowsSkipped,
    ];

    /// Snake-case name used in JSON and Prometheus output.
    pub fn name(self) -> &'static str {
        match self {
            ProfCounter::EventsScheduled => "events_scheduled",
            ProfCounter::EventsPopped => "events_popped",
            ProfCounter::PeakQueueDepth => "peak_queue_depth",
            ProfCounter::EventsRecorded => "events_recorded",
            ProfCounter::FleetWindows => "fleet_windows",
            ProfCounter::FleetRowWindows => "fleet_row_windows",
            ProfCounter::TraceCacheMisses => "trace_cache_misses",
            ProfCounter::TraceCacheHits => "trace_cache_hits",
            ProfCounter::OobCommandsIssued => "oob_commands_issued",
            ProfCounter::OobCommandsDelivered => "oob_commands_delivered",
            ProfCounter::ServeKvPeakBlocks => "serve_kv_peak_blocks",
            ProfCounter::ServePreemptions => "serve_preemptions",
            ProfCounter::ServePeakBatch => "serve_peak_batch",
            ProfCounter::FleetRowsSkipped => "fleet_rows_skipped",
        }
    }

    /// Whether merging two profiles takes the max (high-water marks)
    /// instead of the sum.
    pub fn merges_by_max(self) -> bool {
        matches!(
            self,
            ProfCounter::PeakQueueDepth
                | ProfCounter::ServeKvPeakBlocks
                | ProfCounter::ServePeakBatch
        )
    }
}

/// One phase's accumulators. Relaxed ordering everywhere: the counters
/// are statistics, not synchronization, and are only read after the
/// threads that wrote them have been joined.
#[derive(Debug, Default)]
struct PhaseCell {
    calls: AtomicU64,
    total_ns: AtomicU64,
    self_ns: AtomicU64,
    max_ns: AtomicU64,
}

/// Shared accumulator storage behind an enabled [`Profiler`].
#[derive(Debug)]
pub(crate) struct ProfCore {
    phases: [PhaseCell; PHASE_COUNT],
    counters: [AtomicU64; COUNTER_COUNT],
}

impl ProfCore {
    fn new() -> Self {
        ProfCore {
            phases: std::array::from_fn(|_| PhaseCell::default()),
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

thread_local! {
    /// Per-thread stack of child-time accumulators: one frame per live
    /// [`ProfGuard`], holding the nanoseconds its nested phases spent.
    static CHILD_NS: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// A cheap, cloneable handle to the lock-free phase accumulators.
///
/// Disabled profilers (the default) carry no storage: every call is a
/// single branch. Clones share one accumulator core, mirroring
/// [`Recorder`](crate::Recorder) semantics.
#[derive(Clone, Debug, Default)]
pub struct Profiler {
    core: Option<Arc<ProfCore>>,
}

impl Profiler {
    /// An enabled profiler with fresh accumulators when `enabled`,
    /// otherwise the zero-cost disabled handle.
    pub fn new(enabled: bool) -> Self {
        Profiler {
            core: enabled.then(|| Arc::new(ProfCore::new())),
        }
    }

    /// A profiler that records nothing (one branch per call).
    pub fn disabled() -> Self {
        Profiler::default()
    }

    /// Whether this handle accumulates anything.
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Starts timing `phase`; the returned guard records on drop.
    /// Returns `None` when disabled, so the idiom is
    /// `let _p = prof.time(Phase::Dispatch);`.
    #[inline]
    pub fn time(&self, phase: Phase) -> Option<ProfGuard> {
        let core = self.core.as_ref()?;
        CHILD_NS.with(|s| s.borrow_mut().push(0));
        Some(ProfGuard {
            core: Arc::clone(core),
            phase,
            start: Instant::now(),
        })
    }

    /// Adds `by` to a derived counter (no-op when disabled).
    #[inline]
    pub fn count(&self, counter: ProfCounter, by: u64) {
        if let Some(core) = &self.core {
            core.counters[counter as usize].fetch_add(by, Relaxed);
        }
    }

    /// Raises a high-water-mark counter to at least `value`.
    #[inline]
    pub fn record_max(&self, counter: ProfCounter, value: u64) {
        if let Some(core) = &self.core {
            core.counters[counter as usize].fetch_max(value, Relaxed);
        }
    }

    /// Folds `other`'s accumulated totals into this profiler: calls and
    /// times add, maxima take the larger, counters add (or max, per
    /// [`ProfCounter::merges_by_max`]). Merging a profiler into itself
    /// (same shared core) or across a disabled side is a no-op.
    pub fn merge_from(&self, other: &Profiler) {
        let (Some(own), Some(theirs)) = (self.core.as_ref(), other.core.as_ref()) else {
            return;
        };
        if Arc::ptr_eq(own, theirs) {
            return;
        }
        for i in 0..PHASE_COUNT {
            let (dst, src) = (&own.phases[i], &theirs.phases[i]);
            dst.calls.fetch_add(src.calls.load(Relaxed), Relaxed);
            dst.total_ns.fetch_add(src.total_ns.load(Relaxed), Relaxed);
            dst.self_ns.fetch_add(src.self_ns.load(Relaxed), Relaxed);
            dst.max_ns.fetch_max(src.max_ns.load(Relaxed), Relaxed);
        }
        for (i, c) in ProfCounter::ALL.iter().enumerate() {
            let v = theirs.counters[i].load(Relaxed);
            if c.merges_by_max() {
                own.counters[i].fetch_max(v, Relaxed);
            } else {
                own.counters[i].fetch_add(v, Relaxed);
            }
        }
    }

    /// Snapshots the accumulators into an owned, exportable value.
    pub fn snapshot(&self) -> ProfSnapshot {
        let mut snap = ProfSnapshot::default();
        if let Some(core) = &self.core {
            for (i, agg) in snap.phases.iter_mut().enumerate() {
                let cell = &core.phases[i];
                agg.calls = cell.calls.load(Relaxed);
                agg.total_ns = cell.total_ns.load(Relaxed);
                agg.self_ns = cell.self_ns.load(Relaxed);
                agg.max_ns = cell.max_ns.load(Relaxed);
            }
            for (i, c) in snap.counters.iter_mut().enumerate() {
                *c = core.counters[i].load(Relaxed);
            }
        }
        snap
    }
}

/// RAII guard returned by [`Profiler::time`]; records elapsed and
/// self time (elapsed minus nested phase time) on drop.
///
/// Guards must drop in LIFO order on the thread that created them —
/// guaranteed when they live in local scopes, which is the only
/// supported idiom.
#[derive(Debug)]
pub struct ProfGuard {
    core: Arc<ProfCore>,
    phase: Phase,
    start: Instant,
}

impl Drop for ProfGuard {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed().as_nanos() as u64;
        let child = CHILD_NS.with(|s| {
            let mut stack = s.borrow_mut();
            let child = stack.pop().unwrap_or(0);
            if let Some(parent) = stack.last_mut() {
                *parent += elapsed;
            }
            child
        });
        let cell = &self.core.phases[self.phase as usize];
        cell.calls.fetch_add(1, Relaxed);
        cell.total_ns.fetch_add(elapsed, Relaxed);
        cell.self_ns
            .fetch_add(elapsed.saturating_sub(child), Relaxed);
        cell.max_ns.fetch_max(elapsed, Relaxed);
    }
}

/// Aggregate timing for one [`Phase`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseAgg {
    /// Times the phase was entered.
    pub calls: u64,
    /// Total wall-clock nanoseconds, including nested phases.
    pub total_ns: u64,
    /// Wall-clock nanoseconds net of nested phases (sums to ≤ wall).
    pub self_ns: u64,
    /// Longest single entry in nanoseconds.
    pub max_ns: u64,
}

impl PhaseAgg {
    /// Mean self-time per call in nanoseconds (0 when never entered).
    pub fn mean_self_ns(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.self_ns as f64 / self.calls as f64
        }
    }
}

/// An owned snapshot of everything a [`Profiler`] accumulated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfSnapshot {
    phases: [PhaseAgg; PHASE_COUNT],
    counters: [u64; COUNTER_COUNT],
}

impl Default for ProfSnapshot {
    fn default() -> Self {
        ProfSnapshot {
            phases: [PhaseAgg::default(); PHASE_COUNT],
            counters: [0; COUNTER_COUNT],
        }
    }
}

/// Renders nanoseconds as a human-scaled duration (`1.23 s`, `45 us`).
fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

impl ProfSnapshot {
    /// Aggregate for one phase.
    pub fn get(&self, phase: Phase) -> PhaseAgg {
        self.phases[phase as usize]
    }

    /// Overrides one phase's aggregate (golden-file tests and
    /// hand-built fixtures; the simulator always goes through guards).
    pub fn set(&mut self, phase: Phase, agg: PhaseAgg) {
        self.phases[phase as usize] = agg;
    }

    /// Value of one derived counter.
    pub fn counter(&self, counter: ProfCounter) -> u64 {
        self.counters[counter as usize]
    }

    /// Overrides one counter (fixtures, as with [`set`](Self::set)).
    pub fn set_counter(&mut self, counter: ProfCounter, value: u64) {
        self.counters[counter as usize] = value;
    }

    /// Whether nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.phases.iter().all(|p| p.calls == 0) && self.counters.iter().all(|&c| c == 0)
    }

    /// Sum of self-time across all phases — the profiler's account of
    /// where wall time went.
    pub fn total_self_ns(&self) -> u64 {
        self.phases.iter().map(|p| p.self_ns).sum()
    }

    /// Folds `other` into `self` with [`Profiler::merge_from`]
    /// semantics.
    pub fn merge_from(&mut self, other: &ProfSnapshot) {
        for (dst, src) in self.phases.iter_mut().zip(other.phases.iter()) {
            dst.calls += src.calls;
            dst.total_ns += src.total_ns;
            dst.self_ns += src.self_ns;
            dst.max_ns = dst.max_ns.max(src.max_ns);
        }
        for (i, c) in ProfCounter::ALL.iter().enumerate() {
            if c.merges_by_max() {
                self.counters[i] = self.counters[i].max(other.counters[i]);
            } else {
                self.counters[i] += other.counters[i];
            }
        }
    }

    /// Batched-tick occupancy: mean rows advanced per fleet lockstep
    /// window (`None` outside fleet runs).
    pub fn batched_tick_occupancy(&self) -> Option<f64> {
        let windows = self.counter(ProfCounter::FleetWindows);
        (windows > 0).then(|| self.counter(ProfCounter::FleetRowWindows) as f64 / windows as f64)
    }

    /// The `prof.json` body: per-phase totals (entered phases only)
    /// plus every derived counter. Wall-clock values, so
    /// non-deterministic — kept out of the event log like
    /// `profile.json`.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"phases\": [");
        let mut first = true;
        for phase in Phase::ALL {
            let a = self.get(phase);
            if a.calls == 0 {
                continue;
            }
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str(&format!(
                "\n    {{\"phase\":\"{}\",\"calls\":{},\"total_ns\":{},\"self_ns\":{},\"mean_self_ns\":{:.1},\"max_ns\":{}}}",
                esc(phase.name()),
                a.calls,
                a.total_ns,
                a.self_ns,
                a.mean_self_ns(),
                a.max_ns,
            ));
        }
        s.push_str("\n  ],\n  \"counters\": {");
        for (i, counter) in ProfCounter::ALL.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    \"{}\": {}",
                counter.name(),
                self.counter(*counter)
            ));
        }
        s.push_str("\n  }");
        if let Some(occ) = self.batched_tick_occupancy() {
            s.push_str(&format!(
                ",\n  \"derived\": {{\n    \"batched_tick_occupancy\": {occ:.3}\n  }}"
            ));
        }
        s.push_str("\n}\n");
        s
    }

    /// Collapsed-stack ("folded") output: one `path count` line per
    /// entered phase, weighted by self-nanoseconds. Loads directly in
    /// speedscope (<https://speedscope.app>) or through
    /// `flamegraph.pl`.
    pub fn folded(&self) -> String {
        let mut s = String::new();
        for phase in Phase::ALL {
            let a = self.get(phase);
            if a.calls == 0 {
                continue;
            }
            s.push_str(&format!("{} {}\n", phase.stack(), a.self_ns));
        }
        s
    }

    /// A Chrome trace-event document laying the phases out as
    /// contiguous spans on a `polca-prof` track, sized by self-time —
    /// an at-a-glance breakdown that opens in Perfetto next to the
    /// simulation's own `trace.json`.
    pub fn chrome_trace_json(&self) -> String {
        let mut out: Vec<String> = Vec::new();
        out.push(
            "{\"ph\":\"M\",\"pid\":2,\"tid\":0,\"name\":\"process_name\",\
             \"args\":{\"name\":\"polca-prof\"}}"
                .to_string(),
        );
        out.push(
            "{\"ph\":\"M\",\"pid\":2,\"tid\":0,\"name\":\"thread_name\",\
             \"args\":{\"name\":\"self-time\"}}"
                .to_string(),
        );
        let mut ts_us = 0.0_f64;
        for phase in Phase::ALL {
            let a = self.get(phase);
            if a.calls == 0 {
                continue;
            }
            let dur_us = a.self_ns as f64 / 1e3;
            out.push(format!(
                "{{\"ph\":\"X\",\"pid\":2,\"tid\":0,\"name\":\"{}\",\"cat\":\"prof\",\
                 \"ts\":{ts_us:.3},\"dur\":{dur_us:.3},\"args\":{{\"calls\":{},\"total_ns\":{},\"max_ns\":{}}}}}",
                esc(phase.name()),
                a.calls,
                a.total_ns,
                a.max_ns,
            ));
            ts_us += dur_us;
        }
        let mut doc = String::from("{\"traceEvents\":[\n");
        doc.push_str(&out.join(",\n"));
        doc.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        doc
    }

    /// Prometheus text-exposition lines for the *deterministic* subset
    /// of the profile: phase call counts and the derived counters.
    /// Wall-clock nanoseconds stay out so `metrics.prom` remains a pure
    /// function of the seed. Empty string when nothing was recorded.
    pub fn to_prometheus(&self) -> String {
        if self.is_empty() {
            return String::new();
        }
        let mut s = String::new();
        s.push_str("# TYPE polca_prof_phase_calls_total counter\n");
        for phase in Phase::ALL {
            let a = self.get(phase);
            if a.calls == 0 {
                continue;
            }
            s.push_str(&format!(
                "polca_prof_phase_calls_total{{phase=\"{}\"}} {}\n",
                phase.name(),
                a.calls
            ));
        }
        for counter in ProfCounter::ALL {
            let v = self.counter(counter);
            if v == 0 {
                continue;
            }
            if counter.merges_by_max() {
                s.push_str(&format!(
                    "# TYPE polca_prof_{} gauge\npolca_prof_{} {v}\n",
                    counter.name(),
                    counter.name()
                ));
            } else {
                s.push_str(&format!(
                    "# TYPE polca_prof_{}_total counter\npolca_prof_{}_total {v}\n",
                    counter.name(),
                    counter.name()
                ));
            }
        }
        if let Some(occ) = self.batched_tick_occupancy() {
            s.push_str(&format!(
                "# TYPE polca_prof_batched_tick_occupancy gauge\n\
                 polca_prof_batched_tick_occupancy {occ:.3}\n"
            ));
        }
        s
    }

    /// Renders the per-component attribution table against a measured
    /// wall time, phases sorted by descending self-time, with a
    /// trailing coverage line (`accounted: NN.N% of wall`).
    pub fn attribution_table(&self, wall_ns: u64) -> String {
        let mut rows: Vec<(Phase, PhaseAgg)> = Phase::ALL
            .iter()
            .map(|&p| (p, self.get(p)))
            .filter(|(_, a)| a.calls > 0)
            .collect();
        rows.sort_by(|a, b| b.1.self_ns.cmp(&a.1.self_ns).then(a.0.cmp(&b.0)));

        let mut s = String::new();
        s.push_str(&format!(
            "{:<24} {:>12} {:>12} {:>12} {:>8}\n",
            "phase", "calls", "self", "mean/call", "% wall"
        ));
        for (phase, a) in &rows {
            let pct = if wall_ns > 0 {
                100.0 * a.self_ns as f64 / wall_ns as f64
            } else {
                0.0
            };
            s.push_str(&format!(
                "{:<24} {:>12} {:>12} {:>12} {:>7.1}%\n",
                phase.name(),
                a.calls,
                fmt_ns(a.self_ns),
                fmt_ns(a.mean_self_ns() as u64),
                pct,
            ));
        }
        let accounted = self.total_self_ns();
        let coverage = if wall_ns > 0 {
            100.0 * accounted as f64 / wall_ns as f64
        } else {
            0.0
        };
        s.push_str(&format!(
            "accounted: {} of {} wall ({coverage:.1}%)\n",
            fmt_ns(accounted),
            fmt_ns(wall_ns),
        ));
        s
    }

    /// Fraction of `wall_ns` the profiled phases account for (0 when
    /// wall is zero).
    pub fn coverage(&self, wall_ns: u64) -> f64 {
        if wall_ns == 0 {
            0.0
        } else {
            self.total_self_ns() as f64 / wall_ns as f64
        }
    }
}

/// Builder for the machine-readable `BENCH_*.json` perf-trajectory
/// files.
///
/// The rendered JSON keeps every metric on its own line with plain
/// fixed-point numbers (no exponents), so `ci.sh` can extract values
/// with `grep`/`awk` instead of a JSON parser:
///
/// ```text
/// {
///   "bench": "sim",
///   "sim_s_per_s": 8123456.789,
///   ...
///   "phase_self_ns": {
///     "queue.push": 1234,
///     ...
///   }
/// }
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BenchReport {
    name: String,
    metrics: Vec<(String, String)>,
    phase_self_ns: Vec<(String, u64)>,
}

impl BenchReport {
    /// A report named `name` (the file becomes `BENCH_{name}.json`).
    pub fn new(name: &str) -> Self {
        BenchReport {
            name: name.to_string(),
            ..BenchReport::default()
        }
    }

    /// The report's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a floating-point metric (rendered with three decimals).
    pub fn metric(mut self, key: &str, value: f64) -> Self {
        let rendered = if value.is_finite() {
            format!("{value:.3}")
        } else {
            "null".to_string()
        };
        self.metrics.push((key.to_string(), rendered));
        self
    }

    /// Appends an integer metric.
    pub fn metric_u64(mut self, key: &str, value: u64) -> Self {
        self.metrics.push((key.to_string(), value.to_string()));
        self
    }

    /// Looks up a previously appended metric by key (parses back the
    /// rendered value; `None` for absent keys or `null`).
    pub fn get(&self, key: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.parse().ok())
    }

    /// Attaches the per-phase ns breakdown of a profiled run.
    pub fn phases(mut self, snapshot: &ProfSnapshot) -> Self {
        for phase in Phase::ALL {
            let a = snapshot.get(phase);
            if a.calls > 0 {
                self.phase_self_ns
                    .push((phase.name().to_string(), a.self_ns));
            }
        }
        self
    }

    /// The JSON document body.
    pub fn to_json(&self) -> String {
        let mut s = format!("{{\n  \"bench\": \"{}\"", esc(&self.name));
        for (key, value) in &self.metrics {
            s.push_str(&format!(",\n  \"{}\": {value}", esc(key)));
        }
        if !self.phase_self_ns.is_empty() {
            s.push_str(",\n  \"phase_self_ns\": {");
            let mut first = true;
            for (name, ns) in &self.phase_self_ns {
                if !first {
                    s.push(',');
                }
                first = false;
                s.push_str(&format!("\n    \"{}\": {ns}", esc(name)));
            }
            s.push_str("\n  }");
        }
        s.push_str("\n}\n");
        s
    }

    /// Writes `BENCH_{name}.json` into `dir` (creating it) and returns
    /// the path.
    pub fn write(&self, dir: &Path) -> io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("BENCH_{}.json", self.name));
        fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_records_nothing() {
        let p = Profiler::disabled();
        assert!(p.time(Phase::Dispatch).is_none());
        p.count(ProfCounter::EventsScheduled, 5);
        p.record_max(ProfCounter::PeakQueueDepth, 9);
        assert!(p.snapshot().is_empty());
        assert!(!p.is_enabled());
    }

    #[test]
    fn guards_accumulate_calls_and_time() {
        let p = Profiler::new(true);
        for _ in 0..3 {
            let _g = p.time(Phase::Dispatch);
        }
        let snap = p.snapshot();
        let agg = snap.get(Phase::Dispatch);
        assert_eq!(agg.calls, 3);
        assert!(agg.total_ns >= agg.self_ns);
        assert!(!snap.is_empty());
    }

    #[test]
    fn nested_guards_attribute_self_time_to_the_inner_phase() {
        let p = Profiler::new(true);
        {
            let _outer = p.time(Phase::TelemetryTick);
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = p.time(Phase::ControllerEval);
                std::thread::sleep(std::time::Duration::from_millis(8));
            }
        }
        let snap = p.snapshot();
        let outer = snap.get(Phase::TelemetryTick);
        let inner = snap.get(Phase::ControllerEval);
        // Outer total includes the nested sleep; outer self does not.
        assert!(outer.total_ns >= inner.total_ns);
        assert!(outer.self_ns < outer.total_ns);
        assert!(outer.self_ns < inner.self_ns);
        // Self-times sum to no more than the outer total (no double
        // counting).
        assert!(outer.self_ns + inner.self_ns <= outer.total_ns);
    }

    #[test]
    fn counters_add_and_peak_tracks_max() {
        let p = Profiler::new(true);
        p.count(ProfCounter::EventsScheduled, 2);
        p.count(ProfCounter::EventsScheduled, 3);
        p.record_max(ProfCounter::PeakQueueDepth, 7);
        p.record_max(ProfCounter::PeakQueueDepth, 4);
        let snap = p.snapshot();
        assert_eq!(snap.counter(ProfCounter::EventsScheduled), 5);
        assert_eq!(snap.counter(ProfCounter::PeakQueueDepth), 7);
    }

    #[test]
    fn merge_adds_and_respects_max_semantics() {
        let a = Profiler::new(true);
        let b = Profiler::new(true);
        {
            let _g = a.time(Phase::Dispatch);
        }
        {
            let _g = b.time(Phase::Dispatch);
        }
        a.count(ProfCounter::EventsPopped, 1);
        b.count(ProfCounter::EventsPopped, 2);
        a.record_max(ProfCounter::PeakQueueDepth, 9);
        b.record_max(ProfCounter::PeakQueueDepth, 5);
        a.merge_from(&b);
        let snap = a.snapshot();
        assert_eq!(snap.get(Phase::Dispatch).calls, 2);
        assert_eq!(snap.counter(ProfCounter::EventsPopped), 3);
        assert_eq!(snap.counter(ProfCounter::PeakQueueDepth), 9);
        // Self-merge and disabled-merge are no-ops.
        let clone = a.clone();
        a.merge_from(&clone);
        assert_eq!(a.snapshot().get(Phase::Dispatch).calls, 2);
        a.merge_from(&Profiler::disabled());
        assert_eq!(a.snapshot().get(Phase::Dispatch).calls, 2);
    }

    #[test]
    fn snapshot_merge_matches_profiler_merge() {
        let a = Profiler::new(true);
        let b = Profiler::new(true);
        {
            let _g = a.time(Phase::QueuePush);
        }
        {
            let _g = b.time(Phase::QueuePop);
        }
        a.record_max(ProfCounter::PeakQueueDepth, 3);
        b.record_max(ProfCounter::PeakQueueDepth, 8);
        let mut merged = a.snapshot();
        merged.merge_from(&b.snapshot());
        a.merge_from(&b);
        assert_eq!(merged, a.snapshot());
    }

    #[test]
    fn json_and_folded_list_entered_phases_only() {
        let mut snap = ProfSnapshot::default();
        snap.set(
            Phase::Dispatch,
            PhaseAgg {
                calls: 10,
                total_ns: 1_000,
                self_ns: 800,
                max_ns: 200,
            },
        );
        let json = snap.to_json();
        assert!(json.contains("\"row.dispatch\""), "{json}");
        assert!(!json.contains("\"queue.push\""), "{json}");
        assert!(json.contains("\"events_scheduled\": 0"), "{json}");
        let folded = snap.folded();
        assert_eq!(folded, "row.step;dispatch 800\n");
    }

    #[test]
    fn chrome_trace_lays_phases_end_to_end() {
        let mut snap = ProfSnapshot::default();
        snap.set(
            Phase::QueuePush,
            PhaseAgg {
                calls: 1,
                total_ns: 2_000,
                self_ns: 2_000,
                max_ns: 2_000,
            },
        );
        snap.set(
            Phase::Dispatch,
            PhaseAgg {
                calls: 1,
                total_ns: 3_000,
                self_ns: 3_000,
                max_ns: 3_000,
            },
        );
        let j = snap.chrome_trace_json();
        assert!(j.contains("\"name\":\"polca-prof\""), "{j}");
        // Second span starts where the first ends (2 us in).
        assert!(j.contains("\"ts\":0.000,\"dur\":2.000"), "{j}");
        assert!(j.contains("\"ts\":2.000,\"dur\":3.000"), "{j}");
    }

    #[test]
    fn prometheus_export_is_deterministic_subset() {
        let mut snap = ProfSnapshot::default();
        snap.set(
            Phase::QueuePop,
            PhaseAgg {
                calls: 42,
                total_ns: 999,
                self_ns: 999,
                max_ns: 10,
            },
        );
        snap.set_counter(ProfCounter::EventsPopped, 42);
        snap.set_counter(ProfCounter::PeakQueueDepth, 6);
        let p = snap.to_prometheus();
        assert!(
            p.contains("polca_prof_phase_calls_total{phase=\"queue.pop\"} 42"),
            "{p}"
        );
        assert!(p.contains("polca_prof_events_popped_total 42"), "{p}");
        assert!(
            p.contains("# TYPE polca_prof_peak_queue_depth gauge"),
            "{p}"
        );
        assert!(p.contains("polca_prof_peak_queue_depth 6"), "{p}");
        // No wall-clock values leak into the exposition.
        assert!(!p.contains("999"), "{p}");
        assert_eq!(ProfSnapshot::default().to_prometheus(), "");
    }

    #[test]
    fn attribution_table_reports_coverage() {
        let mut snap = ProfSnapshot::default();
        snap.set(
            Phase::Dispatch,
            PhaseAgg {
                calls: 100,
                total_ns: 900,
                self_ns: 900,
                max_ns: 20,
            },
        );
        let table = snap.attribution_table(1_000);
        assert!(table.contains("row.dispatch"), "{table}");
        assert!(table.contains("90.0%"), "{table}");
        assert!((snap.coverage(1_000) - 0.9).abs() < 1e-9);
    }

    #[test]
    fn bench_report_renders_greppable_json() {
        let mut snap = ProfSnapshot::default();
        snap.set(
            Phase::QueuePush,
            PhaseAgg {
                calls: 5,
                total_ns: 500,
                self_ns: 450,
                max_ns: 200,
            },
        );
        let report = BenchReport::new("sim")
            .metric("sim_s_per_s", 8_123_456.789)
            .metric_u64("peak_queue_depth", 17)
            .phases(&snap);
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"sim\""), "{json}");
        assert!(json.contains("\"sim_s_per_s\": 8123456.789"), "{json}");
        assert!(json.contains("\"peak_queue_depth\": 17"), "{json}");
        assert!(json.contains("\"queue.push\": 450"), "{json}");
        assert!(
            !json.contains("e+") && !json.contains("e-"),
            "no exponents: {json}"
        );
        assert_eq!(report.get("sim_s_per_s"), Some(8_123_456.789));

        let dir = std::env::temp_dir().join(format!(
            "polca-prof-bench-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let path = report.write(&dir).unwrap();
        assert!(path.ends_with("BENCH_sim.json"));
        assert_eq!(std::fs::read_to_string(&path).unwrap(), json);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(12), "12 ns");
        assert_eq!(fmt_ns(4_500), "4.5 us");
        assert_eq!(fmt_ns(3_200_000), "3.20 ms");
        assert_eq!(fmt_ns(1_230_000_000), "1.23 s");
    }
}
