//! Wall-clock span profiling for the simulator's own hot paths.
//!
//! Spans answer "where does a run spend its time" — around the event
//! loop, trace synthesis, and the policy controller — and feed the
//! `profile.json` artifact. Wall-clock data is inherently
//! non-deterministic, so it is kept strictly out of the event log.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::json::esc;
use crate::recorder::ObsCore;

/// Aggregate timing for one named span.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanAgg {
    /// Number of times the span was entered.
    pub count: u64,
    /// Total wall-clock time across all entries.
    pub total: Duration,
    /// Longest single entry.
    pub max: Duration,
}

/// Per-name aggregated wall-clock span timings.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanStats {
    agg: BTreeMap<&'static str, SpanAgg>,
}

impl SpanStats {
    /// Creates an empty set of span statistics.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record(&mut self, name: &'static str, elapsed: Duration) {
        let a = self.agg.entry(name).or_default();
        a.count += 1;
        a.total += elapsed;
        a.max = a.max.max(elapsed);
    }

    /// Folds `other`'s aggregates into `self` (counts and totals add,
    /// maxima take the larger). Wall-clock data stays non-deterministic
    /// after a merge, exactly as before one.
    pub fn merge_from(&mut self, other: &SpanStats) {
        for (name, a) in other.iter() {
            let e = self.agg.entry(name).or_default();
            e.count += a.count;
            e.total += a.total;
            e.max = e.max.max(a.max);
        }
    }

    /// Aggregate for one span name, if it was ever entered.
    pub fn get(&self, name: &str) -> Option<SpanAgg> {
        self.agg.get(name).copied()
    }

    /// Whether no span was ever entered.
    pub fn is_empty(&self) -> bool {
        self.agg.is_empty()
    }

    /// Iterates spans in deterministic name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, SpanAgg)> + '_ {
        self.agg.iter().map(|(&n, &a)| (n, a))
    }

    /// Serializes span aggregates as JSON (`profile.json` body).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"spans\": [");
        let mut first = true;
        for (name, a) in self.iter() {
            if !first {
                s.push(',');
            }
            first = false;
            let mean_us = if a.count > 0 {
                a.total.as_micros() as f64 / a.count as f64
            } else {
                0.0
            };
            s.push_str(&format!(
                "\n    {{\"name\":\"{}\",\"count\":{},\"total_us\":{},\"mean_us\":{mean_us},\"max_us\":{}}}",
                esc(name),
                a.count,
                a.total.as_micros(),
                a.max.as_micros(),
            ));
        }
        s.push_str("\n  ]\n}\n");
        s
    }
}

/// RAII guard returned by [`Recorder::time`](crate::Recorder::time);
/// records the elapsed wall-clock time into the recorder on drop.
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    start: Instant,
    core: Arc<Mutex<ObsCore>>,
}

impl SpanGuard {
    pub(crate) fn new(name: &'static str, core: Arc<Mutex<ObsCore>>) -> Self {
        SpanGuard {
            name,
            start: Instant::now(),
            core,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        let mut core = self.core.lock().unwrap_or_else(|e| e.into_inner());
        core.spans.record(self.name, elapsed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_accumulate() {
        let mut s = SpanStats::new();
        s.record("loop", Duration::from_micros(10));
        s.record("loop", Duration::from_micros(30));
        let a = s.get("loop").unwrap();
        assert_eq!(a.count, 2);
        assert_eq!(a.total, Duration::from_micros(40));
        assert_eq!(a.max, Duration::from_micros(30));
        assert!(s.get("other").is_none());
    }

    #[test]
    fn json_lists_spans_in_name_order() {
        let mut s = SpanStats::new();
        s.record("z", Duration::from_micros(1));
        s.record("a", Duration::from_micros(2));
        let j = s.to_json();
        let a = j.find("\"a\"").unwrap();
        let z = j.find("\"z\"").unwrap();
        assert!(a < z, "{j}");
    }
}
