//! Tiny deterministic JSON formatting helpers.
//!
//! The exporters hand-roll their JSON because the workspace builds
//! offline (no serde_json). Numbers use Rust's shortest round-trip
//! float formatting, which is deterministic across runs and platforms;
//! non-finite values serialize as `null` to keep the output valid JSON.

/// Escapes a string for inclusion inside a JSON string literal.
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (`null` if non-finite).
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }

    #[test]
    fn numbers_are_shortest_roundtrip() {
        assert_eq!(num(2.0), "2");
        assert_eq!(num(0.25), "0.25");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
    }
}
