//! The structured event alphabet emitted by the simulation stack.
//!
//! Every event carries a simulation-time timestamp `t` in seconds.
//! Events are intentionally *sim-deterministic*: they never embed
//! wall-clock time, pointers, or any other run-to-run varying data, so
//! a fixed seed produces a byte-identical event log.

use crate::json::{esc, num};

/// One structured trace event.
///
/// Variants are cheap to construct (the only allocating variant is
/// [`Event::SloViolation`], which is emitted at most a handful of times
/// per run, at evaluation time).
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A request started executing on a server.
    RequestDispatched {
        /// Simulation time in seconds.
        t: f64,
        /// Destination server index.
        server: usize,
        /// Monotonic request id.
        request: u64,
        /// Priority class name (`"high"` / `"low"`).
        priority: &'static str,
    },
    /// A request could not start immediately and was queued.
    RequestQueued {
        /// Simulation time in seconds.
        t: f64,
        /// Monotonic request id.
        request: u64,
        /// Priority class name.
        priority: &'static str,
    },
    /// A request was rejected (admission control / capacity).
    RequestRejected {
        /// Simulation time in seconds.
        t: f64,
        /// Monotonic request id.
        request: u64,
        /// Priority class name.
        priority: &'static str,
    },
    /// A request finished all phases and left the system.
    RequestCompleted {
        /// Simulation time in seconds.
        t: f64,
        /// Server that executed the request.
        server: usize,
        /// Monotonic request id.
        request: u64,
        /// Priority class name.
        priority: &'static str,
        /// End-to-end latency in seconds.
        latency_s: f64,
    },
    /// A frequency cap (GPU clock lock) took effect on a server.
    CapApplied {
        /// Simulation time in seconds.
        t: f64,
        /// Target server index.
        server: usize,
        /// Locked clock in MHz.
        mhz: f64,
    },
    /// A frequency cap was lifted on a server.
    Uncap {
        /// Simulation time in seconds.
        t: f64,
        /// Target server index.
        server: usize,
    },
    /// A power cap took effect on a server.
    PowerCapApplied {
        /// Simulation time in seconds.
        t: f64,
        /// Target server index.
        server: usize,
        /// Cap in watts.
        watts: f64,
    },
    /// A power cap was cleared on a server.
    PowerCapCleared {
        /// Simulation time in seconds.
        t: f64,
        /// Target server index.
        server: usize,
    },
    /// The hardware power brake was asserted or released on a server.
    BrakeEngaged {
        /// Simulation time in seconds.
        t: f64,
        /// Target server index.
        server: usize,
        /// `true` when the brake engages, `false` when it releases.
        on: bool,
    },
    /// An out-of-band control command was put on the wire.
    OobCommandSent {
        /// Simulation time in seconds.
        t: f64,
        /// Target server index.
        server: usize,
        /// Command id from the control plane.
        command: u64,
        /// Scheduled delivery time in seconds.
        effective_at: f64,
    },
    /// An out-of-band control command was silently dropped.
    OobCommandLost {
        /// Simulation time in seconds.
        t: f64,
        /// Target server index.
        server: usize,
        /// Command id from the control plane.
        command: u64,
    },
    /// A delayed telemetry power reading for the whole row/cluster.
    PowerSample {
        /// Simulation time in seconds.
        t: f64,
        /// Observed aggregate power in watts.
        watts: f64,
    },
    /// The policy controller changed mode (e.g. `Uncapped -> T1`).
    ControllerTransition {
        /// Simulation time in seconds.
        t: f64,
        /// Mode being left.
        from: &'static str,
        /// Mode being entered.
        to: &'static str,
    },
    /// An SLO check failed at evaluation time.
    SloViolation {
        /// Simulation time in seconds (end of run).
        t: f64,
        /// Human-readable violation, e.g. `"high-priority p50: 1.2 > 1.01"`.
        detail: String,
    },
    /// Ground-truth power of one fleet row, sampled by the fleet
    /// composition layer at its aggregation boundary.
    FleetPowerSample {
        /// Simulation time in seconds.
        t: f64,
        /// Fleet row index.
        row: usize,
        /// Instantaneous row power in watts.
        watts: f64,
    },
    /// Aggregate power exceeded a budget in the distribution hierarchy.
    BudgetViolation {
        /// Simulation time in seconds.
        t: f64,
        /// Hierarchy level (`"pdu"`, `"datacenter"`, or `"site"`).
        scope: &'static str,
        /// Index of the violated unit (PDU or datacenter index; 0 for
        /// the site).
        unit: usize,
        /// Aggregate power at the sample, in watts.
        watts: f64,
        /// The violated budget, in watts.
        budget_watts: f64,
    },
}

impl Event {
    /// The event's simulation timestamp in seconds.
    pub fn t(&self) -> f64 {
        match self {
            Event::RequestDispatched { t, .. }
            | Event::RequestQueued { t, .. }
            | Event::RequestRejected { t, .. }
            | Event::RequestCompleted { t, .. }
            | Event::CapApplied { t, .. }
            | Event::Uncap { t, .. }
            | Event::PowerCapApplied { t, .. }
            | Event::PowerCapCleared { t, .. }
            | Event::BrakeEngaged { t, .. }
            | Event::OobCommandSent { t, .. }
            | Event::OobCommandLost { t, .. }
            | Event::PowerSample { t, .. }
            | Event::ControllerTransition { t, .. }
            | Event::SloViolation { t, .. }
            | Event::FleetPowerSample { t, .. }
            | Event::BudgetViolation { t, .. } => *t,
        }
    }

    /// A stable machine-readable kind tag (the `"ev"` field in JSONL).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::RequestDispatched { .. } => "request_dispatched",
            Event::RequestQueued { .. } => "request_queued",
            Event::RequestRejected { .. } => "request_rejected",
            Event::RequestCompleted { .. } => "request_completed",
            Event::CapApplied { .. } => "cap_applied",
            Event::Uncap { .. } => "uncap",
            Event::PowerCapApplied { .. } => "power_cap_applied",
            Event::PowerCapCleared { .. } => "power_cap_cleared",
            Event::BrakeEngaged { .. } => "brake",
            Event::OobCommandSent { .. } => "oob_sent",
            Event::OobCommandLost { .. } => "oob_lost",
            Event::PowerSample { .. } => "power_sample",
            Event::ControllerTransition { .. } => "controller_transition",
            Event::SloViolation { .. } => "slo_violation",
            Event::FleetPowerSample { .. } => "fleet_power_sample",
            Event::BudgetViolation { .. } => "budget_violation",
        }
    }

    /// The server index the event targets, if any.
    pub fn server(&self) -> Option<usize> {
        match self {
            Event::RequestDispatched { server, .. }
            | Event::RequestCompleted { server, .. }
            | Event::CapApplied { server, .. }
            | Event::Uncap { server, .. }
            | Event::PowerCapApplied { server, .. }
            | Event::PowerCapCleared { server, .. }
            | Event::BrakeEngaged { server, .. }
            | Event::OobCommandSent { server, .. }
            | Event::OobCommandLost { server, .. } => Some(*server),
            _ => None,
        }
    }

    /// Serializes the event as a single JSON object (one JSONL line,
    /// without the trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        s.push_str("{\"ev\":\"");
        s.push_str(self.kind());
        s.push_str("\",\"t\":");
        s.push_str(&num(self.t()));
        match self {
            Event::RequestDispatched {
                server,
                request,
                priority,
                ..
            } => {
                push_field_usize(&mut s, "server", *server);
                push_field_u64(&mut s, "request", *request);
                push_field_str(&mut s, "priority", priority);
            }
            Event::RequestQueued {
                request, priority, ..
            }
            | Event::RequestRejected {
                request, priority, ..
            } => {
                push_field_u64(&mut s, "request", *request);
                push_field_str(&mut s, "priority", priority);
            }
            Event::RequestCompleted {
                server,
                request,
                priority,
                latency_s,
                ..
            } => {
                push_field_usize(&mut s, "server", *server);
                push_field_u64(&mut s, "request", *request);
                push_field_str(&mut s, "priority", priority);
                push_field_f64(&mut s, "latency_s", *latency_s);
            }
            Event::CapApplied { server, mhz, .. } => {
                push_field_usize(&mut s, "server", *server);
                push_field_f64(&mut s, "mhz", *mhz);
            }
            Event::Uncap { server, .. } | Event::PowerCapCleared { server, .. } => {
                push_field_usize(&mut s, "server", *server);
            }
            Event::PowerCapApplied { server, watts, .. } => {
                push_field_usize(&mut s, "server", *server);
                push_field_f64(&mut s, "watts", *watts);
            }
            Event::BrakeEngaged { server, on, .. } => {
                push_field_usize(&mut s, "server", *server);
                s.push_str(",\"on\":");
                s.push_str(if *on { "true" } else { "false" });
            }
            Event::OobCommandSent {
                server,
                command,
                effective_at,
                ..
            } => {
                push_field_usize(&mut s, "server", *server);
                push_field_u64(&mut s, "command", *command);
                push_field_f64(&mut s, "effective_at", *effective_at);
            }
            Event::OobCommandLost {
                server, command, ..
            } => {
                push_field_usize(&mut s, "server", *server);
                push_field_u64(&mut s, "command", *command);
            }
            Event::PowerSample { watts, .. } => {
                push_field_f64(&mut s, "watts", *watts);
            }
            Event::ControllerTransition { from, to, .. } => {
                push_field_str(&mut s, "from", from);
                push_field_str(&mut s, "to", to);
            }
            Event::SloViolation { detail, .. } => {
                push_field_str(&mut s, "detail", detail);
            }
            Event::FleetPowerSample { row, watts, .. } => {
                push_field_usize(&mut s, "row", *row);
                push_field_f64(&mut s, "watts", *watts);
            }
            Event::BudgetViolation {
                scope,
                unit,
                watts,
                budget_watts,
                ..
            } => {
                push_field_str(&mut s, "scope", scope);
                push_field_usize(&mut s, "unit", *unit);
                push_field_f64(&mut s, "watts", *watts);
                push_field_f64(&mut s, "budget_watts", *budget_watts);
            }
        }
        s.push('}');
        s
    }
}

fn push_field_str(s: &mut String, key: &str, value: &str) {
    s.push_str(",\"");
    s.push_str(key);
    s.push_str("\":\"");
    s.push_str(&esc(value));
    s.push('"');
}

fn push_field_f64(s: &mut String, key: &str, value: f64) {
    s.push_str(",\"");
    s.push_str(key);
    s.push_str("\":");
    s.push_str(&num(value));
}

fn push_field_u64(s: &mut String, key: &str, value: u64) {
    s.push_str(",\"");
    s.push_str(key);
    s.push_str("\":");
    s.push_str(&value.to_string());
}

fn push_field_usize(s: &mut String, key: &str, value: usize) {
    push_field_u64(s, key, value as u64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamps_round_trip() {
        let e = Event::CapApplied {
            t: 12.5,
            server: 3,
            mhz: 1110.0,
        };
        assert_eq!(e.t(), 12.5);
        assert_eq!(e.kind(), "cap_applied");
        assert_eq!(e.server(), Some(3));
    }

    #[test]
    fn fleet_event_json_is_stable() {
        let e = Event::FleetPowerSample {
            t: 4.0,
            row: 2,
            watts: 190250.5,
        };
        assert_eq!(
            e.to_json(),
            r#"{"ev":"fleet_power_sample","t":4,"row":2,"watts":190250.5}"#
        );
        assert_eq!(e.server(), None);

        let e = Event::BudgetViolation {
            t: 6.0,
            scope: "pdu",
            unit: 1,
            watts: 250000.0,
            budget_watts: 240000.0,
        };
        assert_eq!(
            e.to_json(),
            r#"{"ev":"budget_violation","t":6,"scope":"pdu","unit":1,"watts":250000,"budget_watts":240000}"#
        );
        assert_eq!(e.t(), 6.0);
    }

    #[test]
    fn json_shape_is_stable() {
        let e = Event::PowerSample {
            t: 2.0,
            watts: 180000.0,
        };
        assert_eq!(e.to_json(), r#"{"ev":"power_sample","t":2,"watts":180000}"#);

        let e = Event::BrakeEngaged {
            t: 0.25,
            server: 7,
            on: true,
        };
        assert_eq!(
            e.to_json(),
            r#"{"ev":"brake","t":0.25,"server":7,"on":true}"#
        );
    }

    #[test]
    fn slo_detail_is_escaped() {
        let e = Event::SloViolation {
            t: 1.0,
            detail: "p50 \"bad\"\n".to_string(),
        };
        assert_eq!(
            e.to_json(),
            r#"{"ev":"slo_violation","t":1,"detail":"p50 \"bad\"\n"}"#
        );
    }

    #[test]
    fn global_events_have_no_server() {
        let e = Event::PowerSample { t: 0.0, watts: 1.0 };
        assert_eq!(e.server(), None);
    }
}
