//! Chrome trace-event JSON synthesis.
//!
//! Converts the structured event log into the trace-event format that
//! Perfetto (<https://ui.perfetto.dev>) and `chrome://tracing` load
//! directly. Layout:
//!
//! * one *process* (`pid 1`, named `polca-sim`),
//! * `tid 0` is the cluster/controller track (power counter, controller
//!   transitions, SLO violations, queue/reject instants),
//! * `tid N+1` is server `N`'s track, showing request execution spans
//!   and cap / power-cap / brake spans,
//! * aggregate power becomes a counter (`"C"`) series, so the row power
//!   timeline renders as a graph above the server tracks.
//!
//! Timestamps are microseconds of simulation time. Spans still open at
//! the end of the log are closed at the last observed timestamp.

use std::collections::BTreeMap;

use crate::event::Event;
use crate::json::{esc, num};

const PID: u32 = 1;

/// An extra "instant" marker merged into the trace on the cluster
/// track — how the watch plane overlays alert firings and incident
/// lifecycle transitions onto the Perfetto timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Annotation {
    /// Simulation time in seconds.
    pub t: f64,
    /// Marker name (e.g. `alert:row-power-high`).
    pub name: String,
    /// Free-form detail shown in the args pane.
    pub detail: String,
}

/// Builds a complete Chrome trace JSON document from an event log.
pub fn trace_json(events: &[Event]) -> String {
    trace_json_annotated(events, &[])
}

/// Like [`trace_json`] but appends `annotations` as instant events on
/// the cluster track (tid 0). With an empty slice the output is
/// byte-identical to [`trace_json`].
pub fn trace_json_annotated(events: &[Event], annotations: &[Annotation]) -> String {
    trace_json_with_extra(events, annotations, &[])
}

/// Like [`trace_json_annotated`] but also appends pre-rendered
/// trace-event lines (the polca-req request lanes) after the
/// annotations. With empty slices the output is byte-identical to
/// [`trace_json`].
pub fn trace_json_with_extra(
    events: &[Event],
    annotations: &[Annotation],
    extra: &[String],
) -> String {
    let mut out: Vec<String> = Vec::new();
    let t_end = events.iter().map(Event::t).fold(0.0_f64, f64::max);

    // Metadata: process name plus one named thread per referenced server.
    out.push(format!(
        "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":\"polca-sim\"}}}}"
    ));
    out.push(format!(
        "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":0,\"name\":\"thread_name\",\"args\":{{\"name\":\"cluster\"}}}}"
    ));
    let mut servers: Vec<usize> = events.iter().filter_map(Event::server).collect();
    servers.sort_unstable();
    servers.dedup();
    for s in &servers {
        out.push(format!(
            "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":\"server-{s}\"}}}}",
            tid(*s)
        ));
    }

    // Open-span state, keyed for deterministic flush order at the end.
    let mut open_requests: BTreeMap<u64, (f64, usize, &'static str)> = BTreeMap::new();
    let mut open_caps: BTreeMap<usize, (f64, f64)> = BTreeMap::new();
    let mut open_power_caps: BTreeMap<usize, (f64, f64)> = BTreeMap::new();
    let mut open_brakes: BTreeMap<usize, f64> = BTreeMap::new();

    for ev in events {
        match ev {
            Event::RequestDispatched {
                t,
                server,
                request,
                priority,
            } => {
                open_requests.insert(*request, (*t, *server, priority));
            }
            Event::RequestCompleted {
                t,
                server,
                request,
                priority,
                ..
            } => {
                let (t0, srv, pri) = open_requests
                    .remove(request)
                    .unwrap_or((*t, *server, priority));
                out.push(complete_span(
                    "req",
                    "request",
                    tid(srv),
                    t0,
                    *t,
                    &format!("{{\"request\":{request},\"priority\":\"{}\"}}", esc(pri)),
                ));
            }
            Event::RequestQueued { t, request, .. } => {
                out.push(instant(
                    "queued",
                    0,
                    *t,
                    &format!("{{\"request\":{request}}}"),
                ));
            }
            Event::RequestRejected { t, request, .. } => {
                out.push(instant(
                    "rejected",
                    0,
                    *t,
                    &format!("{{\"request\":{request}}}"),
                ));
            }
            Event::CapApplied { t, server, mhz } => {
                open_caps.entry(*server).or_insert((*t, *mhz));
            }
            Event::Uncap { t, server } => {
                if let Some((t0, mhz)) = open_caps.remove(server) {
                    out.push(complete_span(
                        "cap",
                        "power",
                        tid(*server),
                        t0,
                        *t,
                        &format!("{{\"mhz\":{}}}", num(mhz)),
                    ));
                }
            }
            Event::PowerCapApplied { t, server, watts } => {
                open_power_caps.entry(*server).or_insert((*t, *watts));
            }
            Event::PowerCapCleared { t, server } => {
                if let Some((t0, watts)) = open_power_caps.remove(server) {
                    out.push(complete_span(
                        "powercap",
                        "power",
                        tid(*server),
                        t0,
                        *t,
                        &format!("{{\"watts\":{}}}", num(watts)),
                    ));
                }
            }
            Event::BrakeEngaged { t, server, on } => {
                if *on {
                    open_brakes.entry(*server).or_insert(*t);
                } else if let Some(t0) = open_brakes.remove(server) {
                    out.push(complete_span("brake", "power", tid(*server), t0, *t, "{}"));
                }
            }
            Event::OobCommandSent {
                t, server, command, ..
            } => {
                out.push(instant(
                    "oob_sent",
                    tid(*server),
                    *t,
                    &format!("{{\"command\":{command}}}"),
                ));
            }
            Event::OobCommandLost {
                t, server, command, ..
            } => {
                out.push(instant(
                    "oob_lost",
                    tid(*server),
                    *t,
                    &format!("{{\"command\":{command}}}"),
                ));
            }
            Event::PowerSample { t, watts } => {
                out.push(format!(
                    "{{\"ph\":\"C\",\"pid\":{PID},\"name\":\"row_power_w\",\"ts\":{},\"args\":{{\"watts\":{}}}}}",
                    us(*t),
                    num(*watts)
                ));
            }
            Event::ControllerTransition { t, from, to } => {
                out.push(instant(
                    "controller",
                    0,
                    *t,
                    &format!("{{\"from\":\"{}\",\"to\":\"{}\"}}", esc(from), esc(to)),
                ));
            }
            Event::SloViolation { t, detail } => {
                out.push(instant(
                    "slo_violation",
                    0,
                    *t,
                    &format!("{{\"detail\":\"{}\"}}", esc(detail)),
                ));
            }
            Event::FleetPowerSample { t, row, watts } => {
                out.push(format!(
                    "{{\"ph\":\"C\",\"pid\":{PID},\"name\":\"fleet_row{row}_power_w\",\"ts\":{},\"args\":{{\"watts\":{}}}}}",
                    us(*t),
                    num(*watts)
                ));
            }
            Event::BudgetViolation {
                t,
                scope,
                unit,
                watts,
                budget_watts,
            } => {
                out.push(instant(
                    "budget_violation",
                    0,
                    *t,
                    &format!(
                        "{{\"scope\":\"{}\",\"unit\":{unit},\"watts\":{},\"budget_watts\":{}}}",
                        esc(scope),
                        num(*watts),
                        num(*budget_watts)
                    ),
                ));
            }
        }
    }

    // Close anything still open at the final timestamp so the spans
    // render instead of vanishing.
    for (request, (t0, srv, pri)) in open_requests {
        out.push(complete_span(
            "req",
            "request",
            tid(srv),
            t0,
            t_end,
            &format!("{{\"request\":{request},\"priority\":\"{}\"}}", esc(pri)),
        ));
    }
    for (server, (t0, mhz)) in open_caps {
        out.push(complete_span(
            "cap",
            "power",
            tid(server),
            t0,
            t_end,
            &format!("{{\"mhz\":{}}}", num(mhz)),
        ));
    }
    for (server, (t0, watts)) in open_power_caps {
        out.push(complete_span(
            "powercap",
            "power",
            tid(server),
            t0,
            t_end,
            &format!("{{\"watts\":{}}}", num(watts)),
        ));
    }
    for (server, t0) in open_brakes {
        out.push(complete_span(
            "brake",
            "power",
            tid(server),
            t0,
            t_end,
            "{}",
        ));
    }

    for a in annotations {
        out.push(instant(
            &a.name,
            0,
            a.t,
            &format!("{{\"detail\":\"{}\"}}", esc(&a.detail)),
        ));
    }

    out.extend(extra.iter().cloned());

    let mut doc = String::from("{\"traceEvents\":[\n");
    doc.push_str(&out.join(",\n"));
    doc.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    doc
}

fn tid(server: usize) -> u32 {
    server as u32 + 1
}

fn us(t: f64) -> String {
    num(t * 1e6)
}

fn complete_span(name: &str, cat: &str, tid: u32, t0: f64, t1: f64, args: &str) -> String {
    format!(
        "{{\"ph\":\"X\",\"pid\":{PID},\"tid\":{tid},\"name\":\"{}\",\"cat\":\"{}\",\"ts\":{},\"dur\":{},\"args\":{args}}}",
        esc(name),
        esc(cat),
        us(t0),
        us((t1 - t0).max(0.0)),
    )
}

fn instant(name: &str, tid: u32, t: f64, args: &str) -> String {
    format!(
        "{{\"ph\":\"i\",\"pid\":{PID},\"tid\":{tid},\"name\":\"{}\",\"s\":\"t\",\"ts\":{},\"args\":{args}}}",
        esc(name),
        us(t),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cap_span_pairs_into_complete_event() {
        let events = vec![
            Event::CapApplied {
                t: 1.0,
                server: 2,
                mhz: 1110.0,
            },
            Event::Uncap { t: 3.0, server: 2 },
        ];
        let j = trace_json(&events);
        assert!(j.contains("\"ph\":\"X\""), "{j}");
        assert!(j.contains("\"name\":\"cap\""), "{j}");
        assert!(j.contains("\"ts\":1000000"), "{j}");
        assert!(j.contains("\"dur\":2000000"), "{j}");
        assert!(j.contains("\"name\":\"server-2\""), "{j}");
    }

    #[test]
    fn unclosed_spans_flush_at_end() {
        let events = vec![
            Event::BrakeEngaged {
                t: 1.0,
                server: 0,
                on: true,
            },
            Event::PowerSample {
                t: 5.0,
                watts: 100.0,
            },
        ];
        let j = trace_json(&events);
        assert!(j.contains("\"name\":\"brake\""), "{j}");
        assert!(j.contains("\"dur\":4000000"), "{j}");
    }

    #[test]
    fn power_samples_become_counters() {
        let events = vec![Event::PowerSample {
            t: 2.0,
            watts: 180.0,
        }];
        let j = trace_json(&events);
        assert!(j.contains("\"ph\":\"C\""), "{j}");
        assert!(j.contains("row_power_w"), "{j}");
    }

    #[test]
    fn annotations_merge_as_cluster_instants() {
        let events = vec![Event::PowerSample {
            t: 5.0,
            watts: 100.0,
        }];
        let notes = vec![Annotation {
            t: 3.0,
            name: "alert:row-power-high".to_string(),
            detail: "0.97 of provisioned".to_string(),
        }];
        let j = trace_json_annotated(&events, &notes);
        assert!(j.contains("\"name\":\"alert:row-power-high\""), "{j}");
        assert!(j.contains("\"detail\":\"0.97 of provisioned\""), "{j}");
        assert!(j.contains("\"ts\":3000000"), "{j}");
        // An empty annotation set reproduces the plain export exactly.
        assert_eq!(trace_json_annotated(&events, &[]), trace_json(&events));
    }

    #[test]
    fn output_is_deterministic() {
        let events = vec![
            Event::CapApplied {
                t: 0.5,
                server: 1,
                mhz: 900.0,
            },
            Event::OobCommandSent {
                t: 0.75,
                server: 1,
                command: 42,
                effective_at: 1.0,
            },
        ];
        assert_eq!(trace_json(&events), trace_json(&events));
    }
}
