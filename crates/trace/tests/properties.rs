//! Property-based tests for trace generation and replication.

use proptest::prelude::*;

use polca_cluster::RowConfig;
use polca_sim::{SimRng, SimTime};
use polca_trace::replicate::production_reference;
use polca_trace::{
    ArrivalGenerator, DiurnalPattern, ProductionReplicator, RateSchedule, TraceConfig,
    WorkloadClass,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn generated_requests_respect_class_ranges(seed in 0u64..200) {
        let config = TraceConfig::paper_mix(seed, SimTime::from_mins(30.0));
        for req in ArrivalGenerator::new(&config).take(500) {
            let classes = WorkloadClass::table6();
            let fits_some_class = classes.iter().any(|c| {
                (c.prompt_range.0..=c.prompt_range.1).contains(&req.input_tokens)
                    && (c.output_range.0..=c.output_range.1).contains(&req.output_tokens)
            });
            prop_assert!(fits_some_class, "request {req:?} fits no Table 6 class");
        }
    }

    #[test]
    fn arrivals_are_sorted_and_bounded(seed in 0u64..200, mins in 1.0..120.0f64) {
        let config = TraceConfig::paper_mix(seed, SimTime::from_mins(mins));
        let reqs: Vec<_> = ArrivalGenerator::new(&config).collect();
        for w in reqs.windows(2) {
            prop_assert!(w[0].arrival <= w[1].arrival);
        }
        for r in &reqs {
            prop_assert!(r.arrival < SimTime::from_mins(mins));
        }
    }

    #[test]
    fn schedule_rates_are_non_negative_everywhere(
        base in 0.01..5.0f64,
        amplitude in 0.0..1.0f64,
        seed in 0u64..100,
    ) {
        let pattern = DiurnalPattern {
            base_rate: base,
            daily_amplitude: amplitude,
            ..DiurnalPattern::default()
        };
        let mut rng = SimRng::from_seed_stream(seed, 0);
        let schedule = pattern.schedule(6.0 * 3600.0, 60.0, &mut rng);
        prop_assert!(schedule.rates().iter().all(|&r| r >= 0.0));
        prop_assert!(schedule.max_rate() >= schedule.mean_rate());
    }

    #[test]
    fn rate_schedule_scaling_is_linear(rates in prop::collection::vec(0.0..10.0f64, 1..50), factor in 0.0..3.0f64) {
        let s = RateSchedule::new(10.0, rates.clone());
        let scaled = s.scaled(factor);
        for (a, b) in s.rates().iter().zip(scaled.rates()) {
            prop_assert!((a * factor - b).abs() < 1e-12);
        }
    }

    #[test]
    fn replicator_roundtrip_is_exact_in_feasible_range(rate_frac in 0.05..0.95f64) {
        let row = RowConfig::paper_inference_row();
        let replicator = ProductionReplicator::new(&row, &WorkloadClass::table6());
        // Stay inside the invertible band.
        let max_rate = row.total_servers() as f64 / replicator.mean_service_s();
        let rate = rate_frac * max_rate;
        let power = replicator.predicted_row_power(rate);
        let back = replicator.rate_for_power(power);
        prop_assert!((back - rate).abs() < 1e-6, "{rate} → {back}");
    }

    #[test]
    fn reference_profile_is_bounded_and_diurnal(seed in 0u64..50) {
        let row = RowConfig::paper_inference_row();
        let provisioned = row.provisioned_watts();
        let profile = production_reference(&row, 1.0, 120.0, seed);
        prop_assert!(profile.peak().unwrap() <= 0.80 * provisioned);
        prop_assert!(profile.trough().unwrap() >= 0.40 * provisioned);
        let day = profile.slice_time(12.0 * 3600.0, 16.0 * 3600.0).mean().unwrap();
        let night = profile.slice_time(0.0, 4.0 * 3600.0).mean().unwrap();
        prop_assert!(day > night);
    }
}
