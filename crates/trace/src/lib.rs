//! Synthetic production-shaped LLM inference traces.
//!
//! The paper evaluates POLCA on "a six-week power consumption trace ...
//! from the production inference cluster" from which it generates "a
//! synthetic trace \[containing\] the arrivals for each inference request
//! along with their input and output sizes", validated by a MAPE within
//! 3 % between the synthetic and original power timeseries (§6.4).
//!
//! Production data is confidential, so this crate synthesizes the
//! *reference* too — with the statistics Table 4 publishes for the
//! inference cluster (≈79 % peak utilization, diurnal pattern with
//! short-term variation, ≤9 % power swing in 2 s, ≤11.8 % in 40 s) — and
//! then replicates it the same way the paper does:
//!
//! * [`workload`] — the Table 6 request classes (Summarize / Search /
//!   Chat) with their size ranges, shares and priorities,
//! * [`pattern`] — diurnal + weekly arrival-rate shapes with noise and
//!   bursts, and piecewise-constant [`pattern::RateSchedule`]s,
//! * [`generator`] — a lazy non-homogeneous Poisson request stream,
//! * [`replicate`] — inversion of the cluster power model to recover the
//!   arrival-rate schedule that reproduces a reference power profile,
//!   with [`replicate::replication_mape`] to check the
//!   3 % bound.
//!
//! # Examples
//!
//! ```
//! use polca_sim::SimTime;
//! use polca_trace::{ArrivalGenerator, DiurnalPattern, TraceConfig};
//!
//! let config = TraceConfig::paper_mix(42, SimTime::from_hours(1.0));
//! let requests: Vec<_> = ArrivalGenerator::new(&config).collect();
//! assert!(!requests.is_empty());
//! // Arrivals are time-ordered, ready to feed the cluster simulator.
//! assert!(requests.windows(2).all(|w| w[0].arrival <= w[1].arrival));
//! ```

pub mod generator;
pub mod pattern;
pub mod replicate;
pub mod workload;

pub use generator::{ArrivalGenerator, TraceConfig};
pub use pattern::{DiurnalPattern, RateSchedule};
pub use replicate::{ProductionReplicator, ReplicationError};
pub use workload::WorkloadClass;
