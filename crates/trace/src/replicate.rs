//! Production-trace replication (§6.4).
//!
//! The paper regenerates its production power trace as a synthetic
//! request trace: "based on this trace and model characteristics (i.e.,
//! power and time per token), we generate a synthetic trace \[containing\]
//! the arrivals for each inference request along with their input and
//! output sizes. The MAPE between the synthetic and original power
//! timeseries is within 3 %."
//!
//! [`ProductionReplicator`] does the same inversion: from a reference
//! row-power profile it recovers the arrival-rate schedule that, when
//! fed through the cluster model, reproduces that power. Because the
//! real production trace is confidential, [`production_reference`]
//! synthesizes a reference with the Table 4 statistics (diurnal, ~79 %
//! peak utilization, small fast swings).

use std::fmt;

use polca_cluster::{RowConfig, HOT_IDLE_INTENSITY};
use polca_llm::{InferenceConfig, InferenceModel};
use polca_sim::SimRng;
use polca_stats::{mape, TimeSeries};

use crate::pattern::RateSchedule;
use crate::workload::WorkloadClass;

/// Why a reference power series could not be replicated.
///
/// Ingested traces can legitimately be short, flat, or sparse; these
/// errors replace the panics the synthetic-only pipeline used to rely
/// on, so a degenerate input fails with a diagnostic instead.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplicationError {
    /// The reference series has fewer than two samples, so no time step
    /// (and therefore no rate schedule) can be derived from it.
    TooFewSamples(usize),
    /// The reference series is not uniformly sampled: the step between
    /// samples `at` and `at + 1` differs from the first step.
    NonUniformStep {
        /// Index of the first sample whose spacing deviates.
        at: usize,
        /// The expected step in seconds (from the first two samples).
        expected_s: f64,
        /// The step actually found there, in seconds.
        found_s: f64,
    },
    /// A reference sample is NaN, infinite, or negative power.
    NonFiniteSample {
        /// Index of the offending sample.
        at: usize,
    },
    /// The reference and replicated series do not overlap after
    /// resampling, so no error metric can be computed.
    EmptyOverlap,
    /// Every reference point is zero, so percentage error is undefined.
    ZeroReference,
}

impl fmt::Display for ReplicationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplicationError::TooFewSamples(n) => {
                write!(f, "reference series has {n} sample(s); need at least 2")
            }
            ReplicationError::NonUniformStep {
                at,
                expected_s,
                found_s,
            } => write!(
                f,
                "reference series is not uniformly sampled: step at sample {at} \
                 is {found_s:.3} s, expected {expected_s:.3} s"
            ),
            ReplicationError::NonFiniteSample { at } => {
                write!(f, "reference sample {at} is NaN, infinite, or negative")
            }
            ReplicationError::EmptyOverlap => {
                write!(f, "reference and replicated series do not overlap")
            }
            ReplicationError::ZeroReference => {
                write!(f, "every reference point is zero; MAPE is undefined")
            }
        }
    }
}

impl std::error::Error for ReplicationError {}

/// Inverts the cluster power model to replicate a power profile as an
/// arrival-rate schedule.
#[derive(Debug, Clone)]
pub struct ProductionReplicator {
    n_servers: f64,
    mean_service_s: f64,
    busy_power_w: f64,
    idle_power_w: f64,
}

impl ProductionReplicator {
    /// Builds the replicator for `row` under the given workload mix.
    ///
    /// # Panics
    ///
    /// Panics if the mix is empty or the row's model does not fit its
    /// GPU allocation.
    pub fn new(row: &RowConfig, mix: &[WorkloadClass]) -> Self {
        assert!(!mix.is_empty(), "workload mix must be non-empty");
        let deployment = InferenceModel::new(row.model.clone(), row.server_spec.gpu.clone())
            .expect("row model must fit");
        let gpu = &row.server_spec.gpu;
        let spec = &row.server_spec;
        let mut mean_service = 0.0;
        let mut mean_busy_power = 0.0;
        let mut share_total = 0.0;
        for class in mix {
            let (input, output) = class.mean_shape();
            let profile = deployment.profile(&InferenceConfig::new(input as u32, output as u32, 1));
            let service = profile.total_time_s();
            // Time-weighted server power over the request's phases.
            let phase_power = |intensity: f64| {
                let per_gpu =
                    gpu.idle_watts + (gpu.transient_peak_watts - gpu.idle_watts) * intensity;
                let gpu_watts = per_gpu * deployment.n_gpus() as f64
                    + (spec.n_gpus - deployment.n_gpus()) as f64 * gpu.idle_watts;
                spec.server_power_watts(gpu_watts)
            };
            let busy_power = (phase_power(profile.prompt.intensity) * profile.prompt.duration_s
                + phase_power(profile.token.intensity) * profile.token.duration_s)
                / service;
            mean_service += class.share * service;
            mean_busy_power += class.share * busy_power * service;
            share_total += class.share;
        }
        mean_service /= share_total;
        // Busy power weighted by how long each class occupies a server.
        mean_busy_power /= share_total * mean_service;
        // Unoccupied servers sit at hot idle: model loaded, framework
        // busy-polling (§6.4's "all servers serving with models loaded").
        let gpu = &row.server_spec.gpu;
        let hot_idle_gpu =
            gpu.idle_watts + (gpu.transient_peak_watts - gpu.idle_watts) * HOT_IDLE_INTENSITY;
        let idle_power_w = spec.server_power_watts(
            hot_idle_gpu * deployment.n_gpus() as f64
                + (spec.n_gpus - deployment.n_gpus()) as f64 * gpu.idle_watts,
        );
        ProductionReplicator {
            n_servers: row.total_servers() as f64,
            mean_service_s: mean_service,
            busy_power_w: mean_busy_power,
            idle_power_w,
        }
    }

    /// Mean end-to-end service time of the mix, in seconds.
    pub fn mean_service_s(&self) -> f64 {
        self.mean_service_s
    }

    /// Mean power of a busy server, in watts.
    pub fn busy_power_watts(&self) -> f64 {
        self.busy_power_w
    }

    /// The row power expected at a sustained arrival rate of `rate`
    /// requests/s (offered-load approximation, capped at saturation).
    pub fn predicted_row_power(&self, rate: f64) -> f64 {
        let rho = (rate * self.mean_service_s / self.n_servers).clamp(0.0, 1.0);
        self.n_servers * (rho * self.busy_power_w + (1.0 - rho) * self.idle_power_w)
    }

    /// The arrival rate that produces `watts` of row power — the inverse
    /// of [`predicted_row_power`](Self::predicted_row_power). Clamped to
    /// the feasible `[0, saturation]` range.
    pub fn rate_for_power(&self, watts: f64) -> f64 {
        let per_server = watts / self.n_servers;
        let rho = ((per_server - self.idle_power_w) / (self.busy_power_w - self.idle_power_w))
            .clamp(0.0, 1.0);
        rho * self.n_servers / self.mean_service_s
    }

    /// Inverts a reference power profile into an arrival-rate schedule
    /// with the profile's own time resolution.
    ///
    /// # Errors
    ///
    /// Returns a [`ReplicationError`] if the profile has fewer than two
    /// samples, a non-uniform time step, or a non-finite/negative
    /// sample — all of which an ingested trace can legitimately exhibit.
    pub fn schedule_from_profile(
        &self,
        profile: &TimeSeries,
    ) -> Result<RateSchedule, ReplicationError> {
        if profile.len() < 2 {
            return Err(ReplicationError::TooFewSamples(profile.len()));
        }
        let times = profile.times();
        let step = times[1] - times[0];
        for (i, pair) in times.windows(2).enumerate().skip(1) {
            let found = pair[1] - pair[0];
            // Tolerate float accumulation, not genuinely irregular sampling.
            if (found - step).abs() > 1e-6 * step.max(1.0) {
                return Err(ReplicationError::NonUniformStep {
                    at: i,
                    expected_s: step,
                    found_s: found,
                });
            }
        }
        if let Some(at) = profile
            .values()
            .iter()
            .position(|w| !w.is_finite() || *w < 0.0)
        {
            return Err(ReplicationError::NonFiniteSample { at });
        }
        let rates: Vec<f64> = profile
            .values()
            .iter()
            .map(|&w| self.rate_for_power(w))
            .collect();
        Ok(RateSchedule::new(step, rates))
    }

    /// The power series this replicator predicts for `schedule`
    /// (analytic, no simulation).
    pub fn predicted_power_series(&self, schedule: &RateSchedule) -> TimeSeries {
        schedule
            .rates()
            .iter()
            .enumerate()
            .map(|(k, &r)| (k as f64 * schedule.step_s(), self.predicted_row_power(r)))
            .collect()
    }
}

/// Synthesizes the confidential production reference trace from the
/// Table 4 inference statistics: diurnal with weekend dips, short-term
/// variation, occasional bursts, peak utilization ≈ 79 % of the row's
/// provisioned power.
///
/// Returns row power in watts sampled every `dt_s` seconds for `days`
/// days.
///
/// # Panics
///
/// Panics if `days` or `dt_s` is not strictly positive.
pub fn production_reference(row: &RowConfig, days: f64, dt_s: f64, seed: u64) -> TimeSeries {
    assert!(days > 0.0, "days must be positive");
    assert!(dt_s > 0.0, "dt must be positive");
    let provisioned = row.provisioned_watts();
    let mut rng = SimRng::from_seed_stream(seed, 0x9E0D);
    let horizon = days * 86_400.0;
    let steps = (horizon / dt_s).ceil() as usize;
    // Burst windows that create the fast spikes of Table 4 (§4.3's
    // "short-term variations").
    let n_bursts = (days * 6.0).round() as usize;
    let bursts: Vec<(f64, f64)> = (0..n_bursts)
        .map(|_| {
            let start = rng.uniform(0.0, horizon);
            (start, start + rng.uniform(60.0, 180.0))
        })
        .collect();
    // The interactive service saturates: at the daily peak the cluster
    // is fully busy, so bursts can only push utilization up to this
    // capacity ceiling (bursts express off-peak, where headroom exists).
    const CAPACITY_CEILING: f64 = 0.77;
    let mut noise = 0.0;
    let alpha: f64 = 0.95;
    let mut ts = TimeSeries::new();
    for k in 0..steps {
        let t = k as f64 * dt_s;
        let hour = (t / 3600.0).rem_euclid(24.0);
        let day = ((t / 86_400.0).floor() as i64).rem_euclid(7);
        let daily = 0.64 + 0.06 * ((hour - 14.0) / 24.0 * std::f64::consts::TAU).cos();
        let weekly = if day >= 5 { 0.97 } else { 1.0 };
        noise = alpha * noise + (1.0 - alpha * alpha).sqrt() * rng.normal(0.0, 0.015);
        let mut util = daily * weekly * (1.0 + noise);
        for &(b0, b1) in &bursts {
            if t >= b0 && t < b1 {
                // Bursts ramp in and out over ~45 s: interactive load
                // surges are fast but not instantaneous.
                let ramp_in = ((t - b0) / 45.0).min(1.0);
                let ramp_out = ((b1 - t) / 45.0).min(1.0);
                util += 0.04 * ramp_in.min(ramp_out);
            }
        }
        ts.push(t, util.clamp(0.0, CAPACITY_CEILING) * provisioned);
    }
    ts
}

/// The MAPE (percent) between a reference and a replicated power
/// series, both resampled to 5-minute means over their overlap — the
/// §6.4 validation metric.
///
/// # Errors
///
/// Returns [`ReplicationError::EmptyOverlap`] if either resampled
/// series is empty, and [`ReplicationError::ZeroReference`] if every
/// overlapping reference point is zero (percentage error undefined).
pub fn replication_mape(
    reference: &TimeSeries,
    replicated: &TimeSeries,
) -> Result<f64, ReplicationError> {
    let ref_rs = reference.resample_mean(300.0);
    let rep_rs = replicated.resample_mean(300.0);
    let n = ref_rs.len().min(rep_rs.len());
    if n == 0 {
        return Err(ReplicationError::EmptyOverlap);
    }
    mape(&ref_rs.values()[..n], &rep_rs.values()[..n]).ok_or(ReplicationError::ZeroReference)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polca_cluster::{ClusterSim, NoopController, SimConfig};
    use polca_sim::SimTime;

    use crate::generator::{ArrivalGenerator, TraceConfig};

    fn row() -> RowConfig {
        RowConfig::paper_inference_row()
    }

    fn replicator() -> ProductionReplicator {
        ProductionReplicator::new(&row(), &WorkloadClass::table6())
    }

    #[test]
    fn mean_service_time_is_tens_of_seconds() {
        // BLOOM chat/search requests generate 1–2k tokens at ~28 tok/s.
        let r = replicator();
        assert!(
            (20.0..90.0).contains(&r.mean_service_s()),
            "mean service {}",
            r.mean_service_s()
        );
    }

    #[test]
    fn power_rate_roundtrip() {
        let r = replicator();
        for rate in [0.1, 0.4, 0.8, 1.0] {
            let p = r.predicted_row_power(rate);
            let back = r.rate_for_power(p);
            assert!((back - rate).abs() < 1e-9, "rate {rate} → {back}");
        }
    }

    #[test]
    fn predicted_power_saturates_at_all_busy() {
        let r = replicator();
        let max = r.predicted_row_power(1e9);
        assert!((max - 40.0 * r.busy_power_watts()).abs() < 1.0);
        // Hot idle (model loaded, busy-polling) sits well above the bare
        // GPU floor but still clearly below a busy server.
        let idle = r.predicted_row_power(0.0);
        assert!(idle < max * 0.8);
        assert!(idle > max * 0.5);
    }

    #[test]
    fn reference_matches_table4_inference_stats() {
        let row = row();
        let reference = production_reference(&row, 7.0, 2.0, 11);
        let provisioned = row.provisioned_watts();
        let peak_util = reference.peak().unwrap() / provisioned;
        // Table 4: ~79 % peak utilization.
        assert!(
            (0.70..=0.88).contains(&peak_util),
            "peak util {peak_util:.3}"
        );
        // Max 2 s swing ≤ ~9 %; max 40 s swing ≤ ~12 %.
        let rise2 = reference.max_rise_within(2.0).unwrap() / provisioned;
        let rise40 = reference.max_rise_within(40.0).unwrap() / provisioned;
        assert!(rise2 < 0.12, "2 s rise {rise2:.3}");
        assert!(rise40 < 0.16, "40 s rise {rise40:.3}");
        assert!(rise40 >= rise2);
        // Diurnal: daytime power exceeds nighttime power.
        let day = reference
            .slice_time(12.0 * 3600.0, 16.0 * 3600.0)
            .mean()
            .unwrap();
        let night = reference.slice_time(0.0, 4.0 * 3600.0).mean().unwrap();
        assert!(day > night * 1.05);
    }

    #[test]
    fn analytic_replication_is_tight() {
        // Round trip: reference → schedule → predicted power. By
        // construction only clamping can introduce error.
        let row = row();
        let reference = production_reference(&row, 1.0, 60.0, 3);
        let r = replicator();
        let schedule = r.schedule_from_profile(&reference).unwrap();
        let predicted = r.predicted_power_series(&schedule);
        let err = replication_mape(&reference, &predicted).unwrap();
        assert!(err < 0.5, "analytic MAPE {err:.3}%");
    }

    #[test]
    fn simulated_replication_is_within_three_percent_mape() {
        // The paper's §6.4 bound, validated through the full simulator
        // on a 6 h window.
        let row = row();
        let reference = production_reference(&row, 0.25, 60.0, 5);
        let r = replicator();
        let schedule = r.schedule_from_profile(&reference).unwrap();
        let config = TraceConfig {
            seed: 5,
            horizon: SimTime::from_hours(6.0),
            schedule,
            mix: WorkloadClass::table6(),
        };
        let arrivals = ArrivalGenerator::new(&config);
        let report = ClusterSim::new(row, SimConfig::default(), NoopController)
            .run(arrivals, SimTime::from_hours(6.0));
        // Skip the first half hour (fill-up transient).
        let sim_power = report.row_power.slice_time(1800.0, f64::INFINITY);
        let ref_power = reference.slice_time(1800.0, f64::INFINITY);
        let err = replication_mape(&ref_power, &sim_power).unwrap();
        assert!(err < 3.0, "simulated MAPE {err:.2}%");
    }

    #[test]
    fn schedule_from_tiny_profile_is_typed_error() {
        let mut ts = TimeSeries::new();
        ts.push(0.0, 100.0);
        assert_eq!(
            replicator().schedule_from_profile(&ts),
            Err(ReplicationError::TooFewSamples(1))
        );
    }

    #[test]
    fn schedule_from_irregular_profile_is_typed_error() {
        let r = replicator();
        let ts: TimeSeries = [(0.0, 1e5), (60.0, 1e5), (150.0, 1e5)]
            .into_iter()
            .collect();
        match r.schedule_from_profile(&ts) {
            Err(ReplicationError::NonUniformStep { at, .. }) => assert_eq!(at, 1),
            other => panic!("expected NonUniformStep, got {other:?}"),
        }
        let bad: TimeSeries = [(0.0, 1e5), (60.0, f64::NAN)].into_iter().collect();
        assert_eq!(
            r.schedule_from_profile(&bad),
            Err(ReplicationError::NonFiniteSample { at: 1 })
        );
    }

    #[test]
    fn replication_mape_degenerate_inputs_are_typed_errors() {
        let empty = TimeSeries::new();
        let some: TimeSeries = [(0.0, 1.0), (300.0, 2.0)].into_iter().collect();
        assert_eq!(
            replication_mape(&empty, &some),
            Err(ReplicationError::EmptyOverlap)
        );
        let zeros: TimeSeries = [(0.0, 0.0), (300.0, 0.0)].into_iter().collect();
        assert_eq!(
            replication_mape(&zeros, &some),
            Err(ReplicationError::ZeroReference)
        );
        // Errors render as human-readable diagnostics.
        let msg = ReplicationError::TooFewSamples(1).to_string();
        assert!(msg.contains("at least 2"), "message: {msg}");
    }
}
