//! Arrival-rate shapes: diurnal/weekly patterns and rate schedules.

use polca_sim::SimRng;

/// The diurnal + weekly arrival-rate model behind the production
/// inference trace (Table 4: "diurnal with short-term variations").
#[derive(Debug, Clone, PartialEq)]
pub struct DiurnalPattern {
    /// Mean arrival rate in requests/s.
    pub base_rate: f64,
    /// Relative amplitude of the daily sinusoid (`0.0..=1.0`).
    pub daily_amplitude: f64,
    /// Hour of day (0–24) at which traffic peaks.
    pub peak_hour: f64,
    /// Multiplier applied on Saturday/Sunday (`0.0..=1.0`; interactive
    /// traffic dips on weekends).
    pub weekend_factor: f64,
    /// Relative amplitude of short-term (minutes-scale) rate noise.
    pub short_term_noise: f64,
    /// Expected bursts per day (short surges that create the 40 s power
    /// spikes of Table 4).
    pub bursts_per_day: f64,
    /// Relative rate increase during a burst.
    pub burst_magnitude: f64,
    /// Burst duration in seconds.
    pub burst_duration_s: f64,
}

impl Default for DiurnalPattern {
    fn default() -> Self {
        DiurnalPattern {
            base_rate: 1.0,
            daily_amplitude: 0.25,
            peak_hour: 14.0,
            weekend_factor: 0.85,
            short_term_noise: 0.05,
            bursts_per_day: 6.0,
            burst_magnitude: 0.6,
            burst_duration_s: 90.0,
        }
    }
}

impl DiurnalPattern {
    /// The deterministic (noise- and burst-free) rate at `t` seconds
    /// into the trace, which starts at midnight on a Monday.
    pub fn smooth_rate_at(&self, t: f64) -> f64 {
        let hour = (t / 3600.0).rem_euclid(24.0);
        let day = ((t / 86_400.0).floor() as i64).rem_euclid(7);
        let daily = 1.0
            + self.daily_amplitude * ((hour - self.peak_hour) / 24.0 * std::f64::consts::TAU).cos();
        let weekly = if day >= 5 { self.weekend_factor } else { 1.0 };
        (self.base_rate * daily * weekly).max(0.0)
    }

    /// Materializes a stochastic [`RateSchedule`] over `[0, horizon_s)`
    /// with `step_s` resolution: the smooth shape plus minutes-scale
    /// noise plus random bursts.
    ///
    /// # Panics
    ///
    /// Panics if `horizon_s` or `step_s` is not strictly positive.
    pub fn schedule(&self, horizon_s: f64, step_s: f64, rng: &mut SimRng) -> RateSchedule {
        assert!(horizon_s > 0.0, "horizon must be positive");
        assert!(step_s > 0.0, "step must be positive");
        let steps = (horizon_s / step_s).ceil() as usize;
        let mut rates = Vec::with_capacity(steps);
        // Pre-draw burst windows.
        let n_days = horizon_s / 86_400.0;
        let n_bursts = (self.bursts_per_day * n_days).round() as usize;
        let bursts: Vec<(f64, f64)> = (0..n_bursts)
            .map(|_| {
                let start = rng.uniform(0.0, horizon_s);
                (start, start + self.burst_duration_s)
            })
            .collect();
        // Smooth noise: an AR(1) walk so adjacent steps correlate.
        let mut noise = 0.0;
        let alpha: f64 = 0.9;
        for k in 0..steps {
            let t = k as f64 * step_s;
            noise = alpha * noise
                + (1.0 - alpha * alpha).sqrt() * rng.normal(0.0, self.short_term_noise);
            let mut rate = self.smooth_rate_at(t) * (1.0 + noise);
            for &(b0, b1) in &bursts {
                if t >= b0 && t < b1 {
                    rate *= 1.0 + self.burst_magnitude;
                }
            }
            rates.push(rate.max(0.0));
        }
        RateSchedule::new(step_s, rates)
    }
}

/// A piecewise-constant arrival-rate schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct RateSchedule {
    step_s: f64,
    rates: Vec<f64>,
}

impl RateSchedule {
    /// Creates a schedule with the given step width and per-step rates.
    ///
    /// # Panics
    ///
    /// Panics if `step_s` is not strictly positive, `rates` is empty, or
    /// any rate is negative/NaN.
    pub fn new(step_s: f64, rates: Vec<f64>) -> Self {
        assert!(step_s > 0.0, "step must be positive");
        assert!(!rates.is_empty(), "schedule must have at least one step");
        assert!(
            rates.iter().all(|r| r.is_finite() && *r >= 0.0),
            "rates must be non-negative and finite"
        );
        RateSchedule { step_s, rates }
    }

    /// A constant-rate schedule covering `horizon_s`.
    pub fn constant(rate: f64, horizon_s: f64) -> Self {
        Self::new(horizon_s, vec![rate])
    }

    /// Step width in seconds.
    pub fn step_s(&self) -> f64 {
        self.step_s
    }

    /// The schedule's horizon in seconds.
    pub fn horizon_s(&self) -> f64 {
        self.step_s * self.rates.len() as f64
    }

    /// The rate at time `t` (0 beyond the horizon).
    pub fn rate_at(&self, t: f64) -> f64 {
        if t < 0.0 {
            return 0.0;
        }
        let idx = (t / self.step_s).floor() as usize;
        self.rates.get(idx).copied().unwrap_or(0.0)
    }

    /// The highest rate anywhere in the schedule.
    pub fn max_rate(&self) -> f64 {
        self.rates.iter().copied().fold(0.0, f64::max)
    }

    /// The mean rate over the horizon.
    pub fn mean_rate(&self) -> f64 {
        self.rates.iter().sum::<f64>() / self.rates.len() as f64
    }

    /// The per-step rates.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Scales every rate by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or NaN.
    pub fn scaled(&self, factor: f64) -> RateSchedule {
        assert!(factor >= 0.0 && factor.is_finite(), "invalid scale factor");
        RateSchedule {
            step_s: self.step_s,
            rates: self.rates.iter().map(|r| r * factor).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smooth_rate_peaks_at_peak_hour() {
        let p = DiurnalPattern::default();
        let peak = p.smooth_rate_at(14.0 * 3600.0);
        let off_peak = p.smooth_rate_at(2.0 * 3600.0);
        assert!(peak > off_peak);
        assert!((peak - p.base_rate * 1.25).abs() < 0.01);
    }

    #[test]
    fn weekends_dip() {
        let p = DiurnalPattern::default();
        // Monday 14:00 vs Saturday 14:00 (trace starts Monday).
        let monday = p.smooth_rate_at(14.0 * 3600.0);
        let saturday = p.smooth_rate_at(5.0 * 86_400.0 + 14.0 * 3600.0);
        assert!((saturday / monday - p.weekend_factor).abs() < 1e-9);
    }

    #[test]
    fn schedule_is_positive_and_covers_horizon() {
        let p = DiurnalPattern::default();
        let mut rng = SimRng::from_seed_stream(1, 0);
        let s = p.schedule(86_400.0, 60.0, &mut rng);
        assert_eq!(s.rates().len(), 1440);
        assert!((s.horizon_s() - 86_400.0).abs() < 1e-6);
        assert!(s.rates().iter().all(|&r| r >= 0.0));
        // Mean close to the configured base rate.
        assert!((s.mean_rate() - 1.0).abs() < 0.15, "mean {}", s.mean_rate());
    }

    #[test]
    fn bursts_raise_the_max_rate() {
        let calm = DiurnalPattern {
            bursts_per_day: 0.0,
            short_term_noise: 0.0,
            ..Default::default()
        };
        let mut bursty = calm.clone();
        bursty.bursts_per_day = 20.0;
        bursty.burst_magnitude = 1.0;
        let mut rng1 = SimRng::from_seed_stream(2, 0);
        let mut rng2 = SimRng::from_seed_stream(2, 0);
        let s_calm = calm.schedule(86_400.0, 30.0, &mut rng1);
        let s_bursty = bursty.schedule(86_400.0, 30.0, &mut rng2);
        assert!(s_bursty.max_rate() > s_calm.max_rate() * 1.5);
    }

    #[test]
    fn rate_at_is_piecewise_constant_and_zero_beyond_horizon() {
        let s = RateSchedule::new(10.0, vec![1.0, 2.0, 3.0]);
        assert_eq!(s.rate_at(0.0), 1.0);
        assert_eq!(s.rate_at(9.99), 1.0);
        assert_eq!(s.rate_at(10.0), 2.0);
        assert_eq!(s.rate_at(29.99), 3.0);
        assert_eq!(s.rate_at(30.0), 0.0);
        assert_eq!(s.rate_at(-1.0), 0.0);
    }

    #[test]
    fn scaled_schedule_multiplies_rates() {
        let s = RateSchedule::new(1.0, vec![1.0, 2.0]).scaled(1.3);
        assert_eq!(s.rates(), &[1.3, 2.6]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rates_rejected() {
        let _ = RateSchedule::new(1.0, vec![-1.0]);
    }

    #[test]
    fn constant_schedule() {
        let s = RateSchedule::constant(2.5, 100.0);
        assert_eq!(s.rate_at(50.0), 2.5);
        assert_eq!(s.max_rate(), 2.5);
    }
}
