//! Lazy non-homogeneous Poisson request generation.

use polca_cluster::Request;
use polca_sim::{SimRng, SimTime};

use crate::pattern::{DiurnalPattern, RateSchedule};
use crate::workload::{pick_class, WorkloadClass};

/// A complete trace specification: rate schedule plus workload mix.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Experiment seed.
    pub seed: u64,
    /// When the trace ends.
    pub horizon: SimTime,
    /// The arrival-rate schedule.
    pub schedule: RateSchedule,
    /// The request-class mix (Table 6 by default).
    pub mix: Vec<WorkloadClass>,
}

impl TraceConfig {
    /// A trace with the Table 6 mix and the default diurnal pattern at
    /// 1 request/s mean rate.
    pub fn paper_mix(seed: u64, horizon: SimTime) -> Self {
        let mut rng = SimRng::from_seed_stream(seed, 0x5C4ED);
        let schedule = DiurnalPattern::default().schedule(horizon.as_secs(), 60.0, &mut rng);
        TraceConfig {
            seed,
            horizon,
            schedule,
            mix: WorkloadClass::table6(),
        }
    }

    /// Replaces the schedule.
    pub fn with_schedule(mut self, schedule: RateSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Scales the arrival rate by `factor` (load sweeps).
    pub fn scaled(mut self, factor: f64) -> Self {
        self.schedule = self.schedule.scaled(factor);
        self
    }
}

/// Lazily yields time-ordered [`Request`]s via Poisson thinning: draw
/// candidate arrivals at the schedule's maximum rate, accept each with
/// probability `rate(t) / max_rate`.
#[derive(Debug, Clone)]
pub struct ArrivalGenerator {
    schedule: RateSchedule,
    mix: Vec<WorkloadClass>,
    horizon_s: f64,
    max_rate: f64,
    rng: SimRng,
    t: f64,
    next_id: u64,
}

impl ArrivalGenerator {
    /// Creates a generator over `config`.
    pub fn new(config: &TraceConfig) -> Self {
        ArrivalGenerator {
            schedule: config.schedule.clone(),
            mix: config.mix.clone(),
            horizon_s: config.horizon.as_secs().min(config.schedule.horizon_s()),
            max_rate: config.schedule.max_rate(),
            rng: SimRng::from_seed_stream(config.seed, 0xA221),
            t: 0.0,
            next_id: 0,
        }
    }
}

impl Iterator for ArrivalGenerator {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        if self.max_rate <= 0.0 {
            return None;
        }
        loop {
            self.t += self.rng.exponential(self.max_rate);
            if self.t >= self.horizon_s {
                return None;
            }
            let accept_p = self.schedule.rate_at(self.t) / self.max_rate;
            if !self.rng.chance(accept_p) {
                continue;
            }
            let class = &self.mix[pick_class(&self.mix, &mut self.rng)];
            let (input, output, priority) = class.sample(&mut self.rng);
            let id = self.next_id;
            self.next_id += 1;
            return Some(Request::new(
                id,
                SimTime::from_secs(self.t),
                input,
                output,
                priority,
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(hours: f64, seed: u64) -> TraceConfig {
        TraceConfig::paper_mix(seed, SimTime::from_hours(hours))
    }

    #[test]
    fn arrivals_are_time_ordered_within_horizon() {
        let reqs: Vec<Request> = ArrivalGenerator::new(&config(2.0, 1)).collect();
        assert!(!reqs.is_empty());
        assert!(reqs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert!(reqs.iter().all(|r| r.arrival < SimTime::from_hours(2.0)));
    }

    #[test]
    fn request_count_tracks_rate_integral() {
        // The trace starts at midnight where the diurnal shape sits near
        // its trough (~0.8 req/s), so 2 h yield ≈ 5600 requests.
        let reqs: Vec<Request> = ArrivalGenerator::new(&config(2.0, 2)).collect();
        let n = reqs.len() as f64;
        assert!((4500.0..8000.0).contains(&n), "{n} requests");
    }

    #[test]
    fn ids_are_unique_and_sequential() {
        let reqs: Vec<Request> = ArrivalGenerator::new(&config(1.0, 3)).collect();
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(r.id, i as u64);
        }
    }

    #[test]
    fn same_seed_reproduces_same_trace() {
        let a: Vec<Request> = ArrivalGenerator::new(&config(1.0, 7)).collect();
        let b: Vec<Request> = ArrivalGenerator::new(&config(1.0, 7)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<Request> = ArrivalGenerator::new(&config(1.0, 7)).collect();
        let b: Vec<Request> = ArrivalGenerator::new(&config(1.0, 8)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn mix_shares_are_respected() {
        use polca_cluster::Priority;

        let reqs: Vec<Request> = ArrivalGenerator::new(&config(4.0, 4)).collect();
        let n = reqs.len() as f64;
        // Prompts above 4096 tokens only come from Summarize, which is
        // uniform over 2048..=8192: expected share 0.25 × (2/3) ≈ 0.167.
        let big_prompt = reqs.iter().filter(|r| r.input_tokens > 4096).count() as f64;
        assert!(
            (big_prompt / n - 0.25 * 2.0 / 3.0).abs() < 0.03,
            "big-prompt share {}",
            big_prompt / n
        );
        let high = reqs.iter().filter(|r| r.priority == Priority::High).count() as f64;
        // Search (25 %) + half of Chat (25 %) = 50 % high priority.
        assert!((high / n - 0.5).abs() < 0.03, "high share {}", high / n);
    }

    #[test]
    fn scaling_changes_volume_proportionally() {
        let base: Vec<Request> = ArrivalGenerator::new(&config(2.0, 5)).collect();
        let scaled: Vec<Request> = ArrivalGenerator::new(&config(2.0, 5).scaled(1.3)).collect();
        let ratio = scaled.len() as f64 / base.len() as f64;
        assert!((ratio - 1.3).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn zero_rate_schedule_yields_nothing() {
        let cfg = config(1.0, 6).with_schedule(RateSchedule::constant(0.0, 3600.0));
        assert_eq!(ArrivalGenerator::new(&cfg).count(), 0);
    }
}
