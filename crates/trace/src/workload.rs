//! The workload classes of Table 6.

use polca_cluster::Priority;
use polca_sim::SimRng;

/// One request class from the paper's Table 6.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadClass {
    /// Class name.
    pub name: &'static str,
    /// Prompt-size range in tokens (inclusive).
    pub prompt_range: (u32, u32),
    /// Output-size range in tokens (inclusive).
    pub output_range: (u32, u32),
    /// Share of total request volume (`0.0..=1.0`).
    pub share: f64,
    /// Fraction of this class's requests that are high priority
    /// (Summarize: 0, Search: 1, Chat: 0.5).
    pub high_priority_fraction: f64,
}

impl WorkloadClass {
    /// `Summarize`: long prompts, short outputs, low priority, 25 %.
    pub const fn summarize() -> Self {
        WorkloadClass {
            name: "Summarize",
            prompt_range: (2048, 8192),
            output_range: (256, 512),
            share: 0.25,
            high_priority_fraction: 0.0,
        }
    }

    /// `Search`: short prompts, long outputs, high priority, 25 %.
    pub const fn search() -> Self {
        WorkloadClass {
            name: "Search",
            prompt_range: (512, 2048),
            output_range: (1024, 2048),
            share: 0.25,
            high_priority_fraction: 1.0,
        }
    }

    /// `Chat`: medium prompts, wide output range, 50:50 priority, 50 %.
    pub const fn chat() -> Self {
        WorkloadClass {
            name: "Chat",
            prompt_range: (2048, 4096),
            output_range: (128, 2048),
            share: 0.50,
            high_priority_fraction: 0.5,
        }
    }

    /// The full Table 6 mix.
    pub fn table6() -> Vec<WorkloadClass> {
        vec![Self::summarize(), Self::search(), Self::chat()]
    }

    /// Samples a request shape `(input_tokens, output_tokens, priority)`
    /// from this class. Sizes are uniform over the class range.
    pub fn sample(&self, rng: &mut SimRng) -> (u32, u32, Priority) {
        let input = rng.uniform_u64(self.prompt_range.0 as u64, self.prompt_range.1 as u64) as u32;
        let output = rng.uniform_u64(self.output_range.0 as u64, self.output_range.1 as u64) as u32;
        let priority = if rng.chance(self.high_priority_fraction) {
            Priority::High
        } else {
            Priority::Low
        };
        (input, output, priority)
    }

    /// Mean service shape of this class: `(mean_input, mean_output)`.
    pub fn mean_shape(&self) -> (f64, f64) {
        (
            (self.prompt_range.0 + self.prompt_range.1) as f64 / 2.0,
            (self.output_range.0 + self.output_range.1) as f64 / 2.0,
        )
    }
}

/// Picks a class index from `mix` according to the classes' shares.
///
/// # Panics
///
/// Panics if `mix` is empty or all shares are zero.
pub fn pick_class(mix: &[WorkloadClass], rng: &mut SimRng) -> usize {
    let weights: Vec<f64> = mix.iter().map(|c| c.share).collect();
    rng.weighted_index(&weights)
        .expect("workload mix must have positive shares")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_shares_sum_to_one() {
        let total: f64 = WorkloadClass::table6().iter().map(|c| c.share).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn table6_matches_paper_rows() {
        let mix = WorkloadClass::table6();
        assert_eq!(mix[0].name, "Summarize");
        assert_eq!(mix[0].prompt_range, (2048, 8192));
        assert_eq!(mix[0].high_priority_fraction, 0.0);
        assert_eq!(mix[1].name, "Search");
        assert_eq!(mix[1].output_range, (1024, 2048));
        assert_eq!(mix[1].high_priority_fraction, 1.0);
        assert_eq!(mix[2].name, "Chat");
        assert_eq!(mix[2].share, 0.50);
        assert_eq!(mix[2].high_priority_fraction, 0.5);
    }

    #[test]
    fn samples_stay_in_range() {
        let mut rng = SimRng::from_seed_stream(1, 0);
        let c = WorkloadClass::chat();
        for _ in 0..1000 {
            let (input, output, _) = c.sample(&mut rng);
            assert!((2048..=4096).contains(&input));
            assert!((128..=2048).contains(&output));
        }
    }

    #[test]
    fn summarize_is_always_low_priority_search_always_high() {
        let mut rng = SimRng::from_seed_stream(2, 0);
        for _ in 0..100 {
            assert_eq!(WorkloadClass::summarize().sample(&mut rng).2, Priority::Low);
            assert_eq!(WorkloadClass::search().sample(&mut rng).2, Priority::High);
        }
    }

    #[test]
    fn chat_priority_mix_is_roughly_even() {
        let mut rng = SimRng::from_seed_stream(3, 0);
        let c = WorkloadClass::chat();
        let high = (0..10_000)
            .filter(|_| c.sample(&mut rng).2 == Priority::High)
            .count();
        let frac = high as f64 / 10_000.0;
        assert!((frac - 0.5).abs() < 0.03, "high fraction {frac}");
    }

    #[test]
    fn class_mix_follows_shares() {
        let mix = WorkloadClass::table6();
        let mut rng = SimRng::from_seed_stream(4, 0);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[pick_class(&mix, &mut rng)] += 1;
        }
        let frac_chat = counts[2] as f64 / 30_000.0;
        assert!((frac_chat - 0.5).abs() < 0.02, "chat frac {frac_chat}");
        let frac_sum = counts[0] as f64 / 30_000.0;
        assert!((frac_sum - 0.25).abs() < 0.02, "summarize frac {frac_sum}");
    }

    #[test]
    fn mean_shape_is_range_midpoint() {
        let (i, o) = WorkloadClass::search().mean_shape();
        assert_eq!(i, 1280.0);
        assert_eq!(o, 1536.0);
    }
}
