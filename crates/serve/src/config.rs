//! Engine configuration: batching knobs and the pool topology.

/// How a row's servers are organized for serving.
#[derive(Debug, Clone, PartialEq)]
pub enum PoolTopology {
    /// Every server runs both phases: arrivals prefill and decode on
    /// the same machine (the classic continuous-batching deployment).
    Aggregated,
    /// Disaggregated prefill/decode pools (§5.2): arrivals prefill on
    /// a dedicated pool, then ship their KV-cache over the
    /// interconnect to a decode pool. Each priority class is split
    /// independently; a class with fewer than two servers falls back
    /// to aggregated serving.
    Split {
        /// Fraction of each class's servers dedicated to prefill
        /// (at least one server on each side).
        prefill_fraction: f64,
        /// KV-transfer bandwidth between the pools in bytes/s.
        interconnect_bytes_per_s: f64,
        /// Optional fixed SM clock for the decode pool — decode is
        /// memory-bound, so it tolerates a lower clock at near-zero
        /// throughput cost (Insight 7).
        decode_clock_mhz: Option<f64>,
    },
}

impl PoolTopology {
    /// Whether this topology disaggregates prefill and decode.
    pub fn is_split(&self) -> bool {
        matches!(self, PoolTopology::Split { .. })
    }
}

/// Tuning knobs for the continuous-batching engine.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Tokens per KV-cache block (vLLM-style paging granularity).
    pub block_tokens: u32,
    /// KV blocks per server; `None` derives the budget from the HBM
    /// left after weights and the runtime reserve
    /// ([`InferenceModel::free_kv_gib`](polca_llm::InferenceModel::free_kv_gib)).
    pub kv_blocks: Option<u32>,
    /// Maximum running sequences per server (prefilling + decoding).
    pub max_batch: usize,
    /// Maximum prompt tokens prefilled per iteration (the chunked-
    /// prefill chunk size, Sarathi-style).
    pub chunk_tokens: u32,
    /// Token budget per iteration across prefill and decode; the
    /// effective prefill chunk shrinks as the decode batch grows.
    pub iteration_budget_tokens: u32,
    /// Waiting-queue depth per server; arrivals beyond it are
    /// rejected.
    pub max_waiting: usize,
    /// Pool organization for the row.
    pub pools: PoolTopology,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            block_tokens: 16,
            kv_blocks: None,
            max_batch: 32,
            chunk_tokens: 512,
            iteration_budget_tokens: 640,
            max_waiting: 32,
            pools: PoolTopology::Aggregated,
        }
    }
}

impl ServeConfig {
    /// The default configuration with disaggregated prefill/decode
    /// pools.
    pub fn split_pools(interconnect_bytes_per_s: f64, decode_clock_mhz: Option<f64>) -> Self {
        ServeConfig {
            pools: PoolTopology::Split {
                prefill_fraction: 0.25,
                interconnect_bytes_per_s,
                decode_clock_mhz,
            },
            ..ServeConfig::default()
        }
    }
}
