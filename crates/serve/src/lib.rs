#![deny(missing_docs)]
//! polca-serve: an iteration-level continuous-batching engine.
//!
//! The paper's §6.4 simulator (and `polca-cluster`'s legacy engine)
//! dispatches whole requests to servers with a one-request buffer.
//! Real fleets run *continuous batching*: every model iteration fuses
//! a chunk of prompt prefill with one decode step for every running
//! sequence, KV-cache memory is paged and shared, and increasingly
//! the two phases run on disaggregated server pools (§5.2). This
//! crate simulates that serving model as an alternative row engine:
//!
//! * [`KvPager`] — paged KV-cache memory as a first-class per-server
//!   resource: block allocation, occupancy, and preemption with
//!   recompute when the pool is exhausted,
//! * [`BatchScheduler`] — continuous batching with chunked prefill:
//!   FCFS admission from a waiting queue, a token budget per
//!   iteration shared between prefill and decode,
//! * [`BatchedRow`] — per-iteration latency and power derived from
//!   the live batch composition via
//!   [`InferenceModel::iteration_profile`](polca_llm::InferenceModel::iteration_profile)
//!   (prefill-heavy iterations are compute-bound and draw near TDP;
//!   decode-heavy iterations are memory-bound and draw much less —
//!   which is exactly why power capping interacts differently here),
//! * [`PoolTopology`] — a row runs either aggregated or as
//!   disaggregated prefill/decode pools with KV-transfer cost over
//!   the interconnect.
//!
//! Time is advanced *fluidly* between composition changes rather than
//! one event per iteration, so event counts stay proportional to
//! requests. The engine is deterministic: identical inputs produce
//! identical completions, preemptions, and power trajectories.
//!
//! The cluster crate embeds this engine behind
//! `EngineKind::Batched`; everything above `RowSim` (fleets, the
//! power hierarchy, telemetry/OOB, watch, prof, sweeps) works
//! unchanged on top.

pub mod config;
pub mod pager;
mod row;
mod server;

pub use config::{PoolTopology, ServeConfig};
pub use pager::KvPager;
pub use row::{
    AdmissionKind, ArrivalOutcome, BatchedRow, BatchedRowParams, ServeOutcome, ServeRequest,
};
pub use server::{BatchScheduler, Completion, PoolRole};

#[cfg(test)]
mod tests {
    use super::*;
    use polca_gpu::GpuSpec;
    use polca_llm::{InferenceModel, ModelSpec};
    use polca_obs::Profiler;
    use polca_sim::SimTime;
    use polca_telemetry::ControlAction;

    fn deployment() -> InferenceModel {
        InferenceModel::new(ModelSpec::bloom_176b(), GpuSpec::a100_80gb()).unwrap()
    }

    fn params(classes: Vec<bool>) -> BatchedRowParams {
        BatchedRowParams {
            deployment: deployment(),
            classes,
            spec_gpus: 8,
            non_gpu_base_watts: 1200.0,
            non_gpu_per_gpu_watt: 0.25,
            hot_idle_intensity: 0.35,
            power_scale: 1.0,
        }
    }

    fn request(id: u64, input: u32, output: u32, high: bool) -> ServeRequest<u64> {
        ServeRequest {
            payload: id,
            id,
            input_tokens: input,
            output_tokens: output,
            high_priority: high,
        }
    }

    /// A minimal event loop over a [`BatchedRow`] for unit tests: the
    /// cluster integration plays this role in production.
    struct Harness {
        row: BatchedRow<u64>,
        wakes: Vec<(SimTime, usize, u64)>,
        done: Vec<u64>,
        preemptions: u64,
    }

    impl Harness {
        fn new(row: BatchedRow<u64>) -> Self {
            Harness {
                row,
                wakes: Vec::new(),
                done: Vec::new(),
                preemptions: 0,
            }
        }

        fn absorb(&mut self, o: ServeOutcome<u64>) {
            self.preemptions += o.preemptions;
            self.done
                .extend(o.completions.into_iter().map(|c| c.payload));
            if let Some((at, v)) = o.wake {
                self.wakes.retain(|w| w.1 != o.server);
                self.wakes.push((at, o.server, v));
            }
        }

        fn arrive(&mut self, now: SimTime, req: ServeRequest<u64>) -> AdmissionKind {
            let a = self.row.on_arrival(now, req);
            let kind = a.kind;
            self.absorb(a.outcome);
            kind
        }

        /// Drives every scheduled wake/transfer until the row idles.
        fn drain(&mut self) {
            for _ in 0..100_000 {
                let next_transfer = self.row.next_transfer_due();
                let next_wake = self.wakes.iter().map(|w| w.0).reduce(SimTime::min);
                let (now, is_transfer) = match (next_wake, next_transfer) {
                    (None, None) => return,
                    (Some(w), None) => (w, false),
                    (None, Some(t)) => (t, true),
                    (Some(w), Some(t)) => {
                        if t < w {
                            (t, true)
                        } else {
                            (w, false)
                        }
                    }
                };
                let outcomes = if is_transfer {
                    self.row.on_transfers_due(now)
                } else {
                    let pos = self
                        .wakes
                        .iter()
                        .position(|w| w.0 == now)
                        .expect("wake present");
                    let (_, server, version) = self.wakes.remove(pos);
                    self.row.on_wake(now, server, version).into_iter().collect()
                };
                for o in outcomes {
                    self.absorb(o);
                }
            }
            panic!("row failed to drain");
        }
    }

    #[test]
    fn single_request_runs_to_completion() {
        let mut h = Harness::new(BatchedRow::new(
            params(vec![false]),
            &ServeConfig::default(),
            Profiler::disabled(),
        ));
        let kind = h.arrive(SimTime::ZERO, request(1, 2048, 64, false));
        assert_eq!(kind, AdmissionKind::Started);
        assert!(h.row.kv_occupancy() > 0.0);
        h.drain();
        assert_eq!(h.done, vec![1]);
        assert_eq!(h.preemptions, 0);
        assert_eq!(h.row.kv_occupancy(), 0.0);
        assert_eq!(h.row.mean_batch(), 0.0);
    }

    #[test]
    fn tiny_kv_pool_preempts_and_still_completes_everything() {
        // 8 blocks of 16 tokens = 128 KV tokens per server: two
        // requests of 48 + 40 = 88 lifetime tokens each cannot both
        // stay resident (176 > 128) once decode grows, so the younger
        // one is preempted and recomputed.
        let cfg = ServeConfig {
            kv_blocks: Some(8),
            ..ServeConfig::default()
        };
        let mut h = Harness::new(BatchedRow::new(
            params(vec![false]),
            &cfg,
            Profiler::disabled(),
        ));
        assert_eq!(
            h.arrive(SimTime::ZERO, request(1, 48, 40, false)),
            AdmissionKind::Started
        );
        assert_eq!(
            h.arrive(SimTime::ZERO, request(2, 48, 40, false)),
            AdmissionKind::Started
        );
        h.drain();
        h.done.sort();
        assert_eq!(h.done, vec![1, 2]);
        assert!(h.preemptions > 0, "the pool is too small not to preempt");
        assert_eq!(h.row.kv_occupancy(), 0.0, "all blocks returned");
    }

    #[test]
    fn oversized_request_is_rejected_upfront() {
        let cfg = ServeConfig {
            kv_blocks: Some(8),
            ..ServeConfig::default()
        };
        let mut h = Harness::new(BatchedRow::new(
            params(vec![false]),
            &cfg,
            Profiler::disabled(),
        ));
        // 8 × 16 = 128 tokens of KV; 200 + 100 can never fit.
        assert_eq!(
            h.arrive(SimTime::ZERO, request(1, 200, 100, false)),
            AdmissionKind::Rejected
        );
    }

    #[test]
    fn waiting_queue_rejects_past_capacity() {
        let cfg = ServeConfig {
            max_batch: 1,
            max_waiting: 2,
            ..ServeConfig::default()
        };
        let mut h = Harness::new(BatchedRow::new(
            params(vec![false]),
            &cfg,
            Profiler::disabled(),
        ));
        let kinds: Vec<AdmissionKind> = (1..=4)
            .map(|id| h.arrive(SimTime::ZERO, request(id, 128, 16, false)))
            .collect();
        assert_eq!(
            kinds,
            vec![
                AdmissionKind::Started,
                AdmissionKind::Queued,
                AdmissionKind::Queued,
                AdmissionKind::Rejected,
            ]
        );
    }

    #[test]
    fn chunked_prefill_shares_the_iteration_budget() {
        let sched = BatchScheduler::from_config(&ServeConfig::default());
        // Full chunk when decode is idle.
        assert_eq!(sched.chunk_for(2048.0, 0), 512);
        // Shrinks to what the budget leaves after the decode batch.
        assert_eq!(sched.chunk_for(2048.0, 600), 40);
        // Never starves, even with the budget exhausted by decode.
        assert_eq!(sched.chunk_for(2048.0, 10_000), 1);
        // Last partial chunk.
        assert_eq!(sched.chunk_for(100.0, 0), 100);
        // No prefill pending.
        assert_eq!(sched.chunk_for(0.0, 32), 0);
    }

    #[test]
    fn chunked_admission_interleaves_prefill_and_decode() {
        // One long prompt admitted while another sequence decodes:
        // the long prompt must not stall decode progress (chunked
        // prefill), and both complete.
        let mut h = Harness::new(BatchedRow::new(
            params(vec![false]),
            &ServeConfig::default(),
            Profiler::disabled(),
        ));
        assert_eq!(
            h.arrive(SimTime::ZERO, request(1, 64, 200, false)),
            AdmissionKind::Started
        );
        assert_eq!(
            h.arrive(SimTime::ZERO, request(2, 8192, 8, false)),
            AdmissionKind::Started
        );
        h.drain();
        assert_eq!(h.done.len(), 2);
        // The giant prompt chunk-prefills in ~16 iterations and has
        // only 8 output tokens, so it overtakes the 200-token decode
        // it shares the server with — neither stalls the other.
        assert_eq!(h.done[0], 2);
        assert_eq!(h.preemptions, 0);
    }

    #[test]
    fn split_pools_transfer_kv_and_complete() {
        let cfg = ServeConfig::split_pools(200e9, Some(1110.0));
        let mut h = Harness::new(BatchedRow::new(
            params(vec![false; 4]),
            &cfg,
            Profiler::disabled(),
        ));
        assert_eq!(h.row.role_tag(0), "prefill");
        assert_eq!(h.row.role_tag(1), "decode");
        for id in 1..=3 {
            h.arrive(SimTime::ZERO, request(id, 2048, 32, false));
        }
        h.drain();
        assert_eq!(h.done.len(), 3);
        assert_eq!(h.row.transfers_in_flight(), 0);
        let pools = h.row.pool_power_watts();
        let tags: Vec<&str> = pools.iter().map(|(t, _)| *t).collect();
        assert_eq!(tags, vec!["prefill", "decode"]);
    }

    #[test]
    fn brake_slows_iterations_and_lowers_power() {
        let mut h = Harness::new(BatchedRow::new(
            params(vec![false]),
            &ServeConfig::default(),
            Profiler::disabled(),
        ));
        h.arrive(SimTime::ZERO, request(1, 2048, 256, false));
        let busy_power = h.row.total_power_watts();
        let outcome = h
            .row
            .apply_action(SimTime::ZERO, 0, ControlAction::PowerBrake { on: true });
        assert!(h.row.total_power_watts() < busy_power);
        assert!(outcome.wake.is_some(), "brake reschedules the wake");
        // Unchanged clock (cap actions are ignored) keeps the wake.
        let noop = h
            .row
            .apply_action(SimTime::ZERO, 0, ControlAction::PowerCap { watts: 300.0 });
        assert!(noop.wake.is_none());
    }

    #[test]
    fn identical_runs_are_identical() {
        let run = || {
            let mut h = Harness::new(BatchedRow::new(
                params(vec![false, true]),
                &ServeConfig::default(),
                Profiler::disabled(),
            ));
            for id in 0..20u64 {
                h.arrive(
                    SimTime::from_secs(id as f64 * 0.5),
                    request(
                        id,
                        512 + (id as u32 % 7) * 128,
                        32 + (id as u32 % 5) * 16,
                        id % 3 == 0,
                    ),
                );
            }
            h.drain();
            (h.done, h.preemptions)
        };
        assert_eq!(run(), run());
    }
}
