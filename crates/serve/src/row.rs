//! A row of batched servers with class-aware routing, optional
//! prefill/decode pools, and in-flight KV transfers.

use polca_llm::InferenceModel;
use polca_obs::Profiler;
use polca_sim::SimTime;
use polca_telemetry::ControlAction;

use crate::config::{PoolTopology, ServeConfig};
use crate::pager::KvPager;
use crate::server::{BatchScheduler, BatchServer, Completion, PoolRole, PumpResult, Seq};

/// GiB in bytes.
const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

/// KV-cache bytes per element (FP16 key + value halves → 2 bytes per
/// element, matching `Disaggregation::plan`).
const KV_BYTES_PER_ELEMENT: f64 = 2.0;

/// A request entering the batched engine. `payload` is opaque to the
/// engine and returned untouched on completion (the cluster layer
/// passes its own `Request` record through).
#[derive(Debug, Clone)]
pub struct ServeRequest<T> {
    /// Caller's request record.
    pub payload: T,
    /// Unique request id (drives deterministic tie-breaks).
    pub id: u64,
    /// Prompt length in tokens.
    pub input_tokens: u32,
    /// Generation length in tokens.
    pub output_tokens: u32,
    /// Routes to the high-priority server class when `true`.
    pub high_priority: bool,
}

/// What happened to an arriving request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionKind {
    /// Entered service (its prefill started) immediately.
    Started,
    /// Accepted into a server's waiting queue.
    Queued,
    /// Turned away: the class has no servers, the chosen server's
    /// waiting queue is full, or the request can never fit in a KV
    /// pool. The caller keeps its own copy of the request record.
    Rejected,
}

/// Everything one engine operation produced for one server.
#[derive(Debug)]
pub struct ServeOutcome<T> {
    /// The affected server.
    pub server: usize,
    /// New `(at, version)` wake to schedule for that server; `None`
    /// leaves any previously scheduled wake in place.
    pub wake: Option<(SimTime, u64)>,
    /// Requests that finished on this operation.
    pub completions: Vec<Completion<T>>,
    /// Sequences preempted on KV exhaustion during this operation.
    pub preemptions: u64,
    /// Whether new KV transfers were queued (the caller should
    /// re-arm its transfer event at [`BatchedRow::next_transfer_due`]).
    pub transfers_queued: bool,
}

/// An arrival's admission decision plus the server activity it caused.
#[derive(Debug)]
pub struct ArrivalOutcome<T> {
    /// What happened to the request.
    pub kind: AdmissionKind,
    /// Server activity (empty and wake-less on rejection).
    pub outcome: ServeOutcome<T>,
}

/// Static inputs the cluster layer derives from its `ServerSpec`,
/// `RowConfig`, and `SimConfig` — kept as plain numbers so the engine
/// does not depend on the cluster crate.
#[derive(Debug, Clone)]
pub struct BatchedRowParams {
    /// The model deployment every server runs.
    pub deployment: InferenceModel,
    /// Per-server priority class (`true` = high); index = server id.
    pub classes: Vec<bool>,
    /// Physical GPUs per chassis (spares beyond the deployment idle).
    pub spec_gpus: usize,
    /// Chassis base power beyond the GPUs, in watts.
    pub non_gpu_base_watts: f64,
    /// Cooling/VRM overhead per GPU watt.
    pub non_gpu_per_gpu_watt: f64,
    /// GPU intensity while hot-idle (model resident, no batch).
    pub hot_idle_intensity: f64,
    /// Study-wide power multiplier.
    pub power_scale: f64,
}

/// The batched row engine: one [`BatchServer`] per cluster server,
/// the same priority-class layout as the legacy row, and (under a
/// split topology) per-class prefill/decode pools joined by an
/// interconnect that KV transfers cross at finite bandwidth.
#[derive(Debug)]
pub struct BatchedRow<T> {
    servers: Vec<BatchServer<T>>,
    /// KV hand-offs in flight on the interconnect: `(arrives_at, seq)`.
    in_flight: Vec<(SimTime, Seq<T>)>,
    interconnect_bytes_per_s: Option<f64>,
    kv_bytes_per_token: f64,
    kv_blocks_per_server: u32,
    total_power: f64,
    /// Power drawn by servers with a non-empty running batch (cached
    /// incrementally like `total_power`) — the polca-energy busy
    /// integral's source on this engine.
    busy_power: f64,
    /// Instantaneous power per priority class, `[low, high]` (cached
    /// incrementally; class membership is static, so every power delta
    /// lands in exactly one slot).
    class_power: [f64; 2],
    /// Instantaneous power per pool role, indexed by [`Self::role_idx`]
    /// (cached incrementally; roles are assigned at construction).
    role_power: [f64; 3],
    /// Which pool roles exist in this row (fixed at construction).
    roles_present: [bool; 3],
    prof: Profiler,
}

impl<T> BatchedRow<T> {
    /// Builds the row. KV pool size per server defaults to the HBM
    /// left after weights and the runtime reserve, divided into
    /// `block_tokens`-token blocks.
    pub fn new(params: BatchedRowParams, config: &ServeConfig, prof: Profiler) -> Self {
        let kv_bytes_per_token = params
            .deployment
            .model()
            .kv_bytes_per_token(KV_BYTES_PER_ELEMENT);
        let kv_blocks = config.kv_blocks.unwrap_or_else(|| {
            let pool_bytes = params.deployment.free_kv_gib() * GIB;
            (pool_bytes / (kv_bytes_per_token * config.block_tokens as f64)).floor() as u32
        });
        assert!(kv_blocks > 0, "KV pool must hold at least one block");
        let sched = BatchScheduler::from_config(config);

        let (roles, interconnect, decode_clock) = match &config.pools {
            PoolTopology::Aggregated => {
                (vec![PoolRole::Aggregated; params.classes.len()], None, None)
            }
            PoolTopology::Split {
                prefill_fraction,
                interconnect_bytes_per_s,
                decode_clock_mhz,
            } => {
                let mut roles = vec![PoolRole::Aggregated; params.classes.len()];
                for class in [false, true] {
                    let members: Vec<usize> = (0..params.classes.len())
                        .filter(|&i| params.classes[i] == class)
                        .collect();
                    if members.len() < 2 {
                        continue; // degenerate class stays aggregated
                    }
                    let n_prefill = ((members.len() as f64 * prefill_fraction).ceil() as usize)
                        .clamp(1, members.len() - 1);
                    for (k, &i) in members.iter().enumerate() {
                        roles[i] = if k < n_prefill {
                            PoolRole::Prefill
                        } else {
                            PoolRole::Decode
                        };
                    }
                }
                (roles, Some(*interconnect_bytes_per_s), *decode_clock_mhz)
            }
        };

        let servers: Vec<BatchServer<T>> = params
            .classes
            .iter()
            .zip(roles.iter())
            .enumerate()
            .map(|(id, (&high, &role))| {
                let pool_clock = (role == PoolRole::Decode).then_some(decode_clock).flatten();
                BatchServer::new(
                    id,
                    high,
                    role,
                    sched,
                    KvPager::new(kv_blocks, config.block_tokens),
                    params.deployment.clone(),
                    pool_clock,
                    params.spec_gpus,
                    params.non_gpu_base_watts,
                    params.non_gpu_per_gpu_watt,
                    params.hot_idle_intensity,
                    params.power_scale,
                )
            })
            .collect();
        let total_power = servers.iter().map(|s| s.power_watts).sum();
        let busy_power = servers
            .iter()
            .filter(|s| s.running() > 0)
            .map(|s| s.power_watts)
            .sum();
        let mut class_power = [0.0; 2];
        let mut role_power = [0.0; 3];
        let mut roles_present = [false; 3];
        for s in &servers {
            class_power[usize::from(s.high_priority)] += s.power_watts;
            role_power[Self::role_idx(s.role)] += s.power_watts;
            roles_present[Self::role_idx(s.role)] = true;
        }
        BatchedRow {
            servers,
            in_flight: Vec::new(),
            interconnect_bytes_per_s: interconnect,
            kv_bytes_per_token,
            kv_blocks_per_server: kv_blocks,
            total_power,
            busy_power,
            class_power,
            role_power,
            roles_present,
            prof,
        }
    }

    /// Fixed slot of a pool role in the cached [`Self::role_power`]
    /// array; the order matches the role-tag order of
    /// [`pool_power_watts`](Self::pool_power_watts).
    fn role_idx(role: PoolRole) -> usize {
        match role {
            PoolRole::Prefill => 0,
            PoolRole::Decode => 1,
            PoolRole::Aggregated => 2,
        }
    }

    /// Servers in the row.
    pub fn n_servers(&self) -> usize {
        self.servers.len()
    }

    /// Whether server `i` belongs to the high-priority class.
    pub fn is_high(&self, i: usize) -> bool {
        self.servers[i].high_priority
    }

    /// Pool role tag of server `i` (`"aggregated"`, `"prefill"`,
    /// `"decode"`).
    pub fn role_tag(&self, i: usize) -> &'static str {
        self.servers[i].role.tag()
    }

    /// KV blocks in each server's pool.
    pub fn kv_blocks_per_server(&self) -> u32 {
        self.kv_blocks_per_server
    }

    /// Instantaneous whole-row power in watts (cached; updated on
    /// every engine operation).
    pub fn total_power_watts(&self) -> f64 {
        self.total_power
    }

    /// Instantaneous power of one server.
    pub fn server_power_watts(&self, i: usize) -> f64 {
        self.servers[i].power_watts
    }

    /// Instantaneous power drawn by servers that are actively serving
    /// (running batch non-empty), in watts. Upper-bounds the power the
    /// iteration loop attributes to requests, since attribution only
    /// charges epochs with token progress.
    pub fn busy_power_watts(&self) -> f64 {
        self.busy_power
    }

    /// Instantaneous power summed per pool role, in role-tag order
    /// (only roles present in the row appear; cached incrementally).
    pub fn pool_power_watts(&self) -> Vec<(&'static str, f64)> {
        let mut pools = Vec::new();
        self.write_pool_power(&mut pools);
        pools
    }

    /// Fills `out` with the cached per-pool power, in role-tag order,
    /// without allocating when `out` already has capacity — the
    /// polca-energy tick path calls this every telemetry window.
    pub fn write_pool_power(&self, out: &mut Vec<(&'static str, f64)>) {
        out.clear();
        for role in [PoolRole::Prefill, PoolRole::Decode, PoolRole::Aggregated] {
            if self.roles_present[Self::role_idx(role)] {
                out.push((role.tag(), self.role_power[Self::role_idx(role)]));
            }
        }
    }

    /// Instantaneous power per priority class, `[low, high]` (cached
    /// incrementally).
    pub fn class_power_watts(&self) -> [f64; 2] {
        self.class_power
    }

    /// Mean KV-pool occupancy across servers in `[0, 1]`.
    pub fn kv_occupancy(&self) -> f64 {
        let n = self.servers.len().max(1) as f64;
        self.servers.iter().map(|s| s.kv_occupancy()).sum::<f64>() / n
    }

    /// Mean running batch size (prefilling + decoding) across servers.
    pub fn mean_batch(&self) -> f64 {
        let n = self.servers.len().max(1) as f64;
        self.servers.iter().map(|s| s.running() as f64).sum::<f64>() / n
    }

    /// Requests waiting across all servers (not yet in a batch).
    pub fn waiting_depth(&self) -> u64 {
        self.servers.iter().map(|s| s.waiting_len() as u64).sum()
    }

    /// KV transfers currently crossing the interconnect.
    pub fn transfers_in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Earliest in-flight KV transfer arrival, if any.
    pub fn next_transfer_due(&self) -> Option<SimTime> {
        self.in_flight
            .iter()
            .map(|(at, _)| *at)
            .reduce(SimTime::min)
    }

    /// Runs `op` against server `idx`, folding its power delta into
    /// the cached row total and extracting hand-offs into the
    /// interconnect.
    fn run_on_server(
        &mut self,
        idx: usize,
        now: SimTime,
        op: impl FnOnce(&mut BatchServer<T>, &Profiler, &mut PumpResult<T>),
    ) -> ServeOutcome<T> {
        let before = self.servers[idx].power_watts;
        let busy_before = if self.servers[idx].running() > 0 {
            before
        } else {
            0.0
        };
        let mut result = PumpResult::default();
        op(&mut self.servers[idx], &self.prof, &mut result);
        let delta = self.servers[idx].power_watts - before;
        self.total_power += delta;
        self.class_power[usize::from(self.servers[idx].high_priority)] += delta;
        self.role_power[Self::role_idx(self.servers[idx].role)] += delta;
        let busy_after = if self.servers[idx].running() > 0 {
            self.servers[idx].power_watts
        } else {
            0.0
        };
        self.busy_power += busy_after - busy_before;

        let mut transfers_queued = false;
        for mut seq in result.handoffs.drain(..) {
            let bytes = seq.kv_tokens * self.kv_bytes_per_token;
            let bandwidth = self
                .interconnect_bytes_per_s
                .expect("hand-off from a prefill pool requires an interconnect");
            seq.trace.kv_hops += 1;
            seq.trace.kv_ship_s += bytes / bandwidth;
            let due = now + SimTime::from_secs(bytes / bandwidth);
            self.in_flight.push((due, seq));
            transfers_queued = true;
        }
        ServeOutcome {
            server: idx,
            wake: result.wake,
            completions: result.completions,
            preemptions: result.preemptions,
            transfers_queued,
        }
    }

    /// Least-loaded server of `class` eligible for fresh arrivals
    /// (aggregated or prefill role), lowest index on ties.
    fn route_arrival(&self, high: bool) -> Option<usize> {
        self.servers
            .iter()
            .filter(|s| s.high_priority == high && s.role != PoolRole::Decode)
            .min_by_key(|s| (s.load(), s.id))
            .map(|s| s.id)
    }

    /// Least-loaded decode-pool server of `class`, lowest index on
    /// ties.
    fn route_transfer(&self, high: bool) -> Option<usize> {
        self.servers
            .iter()
            .filter(|s| s.high_priority == high && s.role == PoolRole::Decode)
            .min_by_key(|s| (s.load(), s.id))
            .map(|s| s.id)
    }

    /// Routes an arriving request to the least-loaded eligible server
    /// of its class and runs an admission cycle there.
    pub fn on_arrival(&mut self, now: SimTime, req: ServeRequest<T>) -> ArrivalOutcome<T> {
        let reject = |server| ArrivalOutcome {
            kind: AdmissionKind::Rejected,
            outcome: ServeOutcome {
                server,
                wake: None,
                completions: Vec::new(),
                preemptions: 0,
                transfers_queued: false,
            },
        };
        let Some(idx) = self.route_arrival(req.high_priority) else {
            return reject(0);
        };
        // The full context (prompt + generation + the final decode
        // step) must fit a server's KV pool, or the request can never
        // run to completion.
        let lifetime_tokens = (req.input_tokens + req.output_tokens) as f64 + 1.0;
        if !self.servers[idx].fits(lifetime_tokens)
            || self.servers[idx].waiting_len() >= self.servers[idx].sched.max_waiting
        {
            return reject(idx);
        }
        let id = req.id;
        let seq = Seq::fresh(
            req.payload,
            id,
            req.input_tokens,
            req.output_tokens,
            req.high_priority,
        );
        self.servers[idx].push_waiting(seq);
        let outcome = self.run_on_server(idx, now, |s, prof, r| s.pump(now, prof, r));
        let kind = if self.servers[idx].has_waiting(id) {
            AdmissionKind::Queued
        } else {
            AdmissionKind::Started
        };
        ArrivalOutcome { kind, outcome }
    }

    /// Handles a scheduled wake for `server`; `None` if `version` is
    /// stale (the composition changed since it was scheduled).
    pub fn on_wake(
        &mut self,
        now: SimTime,
        server: usize,
        version: u64,
    ) -> Option<ServeOutcome<T>> {
        if !self.servers[server].wake_is_live(version) {
            return None;
        }
        Some(self.run_on_server(server, now, |s, prof, r| s.pump(now, prof, r)))
    }

    /// Delivers every KV transfer that has arrived by `now` to the
    /// least-loaded decode server of its class, then runs an admission
    /// cycle on each affected server. Transfers are delivered in
    /// `(arrival, id)` order for determinism.
    pub fn on_transfers_due(&mut self, now: SimTime) -> Vec<ServeOutcome<T>> {
        let mut due: Vec<(SimTime, Seq<T>)> = Vec::new();
        let mut i = 0;
        while i < self.in_flight.len() {
            if self.in_flight[i].0 <= now {
                due.push(self.in_flight.remove(i));
            } else {
                i += 1;
            }
        }
        due.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.id.cmp(&b.1.id)));
        let mut touched: Vec<usize> = Vec::new();
        for (_, seq) in due {
            let idx = self
                .route_transfer(seq.high_priority)
                .expect("transfer with no decode pool");
            self.servers[idx].push_transfer(seq);
            if !touched.contains(&idx) {
                touched.push(idx);
            }
        }
        touched
            .into_iter()
            .map(|idx| self.run_on_server(idx, now, |s, prof, r| s.pump(now, prof, r)))
            .collect()
    }

    /// Applies a delivered OOB control action to `server`.
    pub fn apply_action(
        &mut self,
        now: SimTime,
        server: usize,
        action: ControlAction,
    ) -> ServeOutcome<T> {
        self.run_on_server(server, now, |s, prof, r| {
            s.apply_action(now, action, prof, r)
        })
    }
}
