//! One batched server: a continuous batch advanced in fluid iteration
//! epochs over a paged KV-cache.
//!
//! Instead of scheduling one event per model iteration (tens of
//! milliseconds of simulated time each), the server computes the
//! current batch composition once, derives the iteration latency,
//! power intensity, and per-sequence progress rates from
//! [`InferenceModel::iteration_profile`], and then advances *fluidly*
//! until the earliest composition change: a prefill chunk finishing, a
//! sequence emitting its last token, or the KV pool running dry. Each
//! of those boundaries is computed in closed form, so the discrete
//! event count stays proportional to requests, not tokens.

use std::collections::VecDeque;

use polca_gpu::DvfsModel;
use polca_llm::{BatchComposition, InferenceModel};
use polca_obs::{Phase, ProfCounter, Profiler, ReqSpan};
use polca_sim::SimTime;
use polca_telemetry::ControlAction;

use crate::config::ServeConfig;
use crate::pager::{KvPager, TOKEN_EPS};

/// Which serving phase(s) a server accepts under its row's
/// [`PoolTopology`](crate::PoolTopology).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PoolRole {
    /// Runs prefill and decode on the same machine.
    Aggregated,
    /// Dedicated prefill pool: finished prompts hand their KV-cache
    /// off over the interconnect.
    Prefill,
    /// Dedicated decode pool: receives transferred KV and generates.
    Decode,
}

impl PoolRole {
    /// Stable lowercase tag for metrics labels.
    pub fn tag(self) -> &'static str {
        match self {
            PoolRole::Aggregated => "aggregated",
            PoolRole::Prefill => "prefill",
            PoolRole::Decode => "decode",
        }
    }
}

/// The continuous-batching admission policy: how many sequences may
/// run at once, how prompt prefill is chunked, and how the per-
/// iteration token budget is shared between prefill and decode.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BatchScheduler {
    /// Maximum running sequences per server (prefilling + decoding).
    pub max_batch: usize,
    /// Maximum prompt tokens prefilled per iteration.
    pub chunk_tokens: u32,
    /// Token budget per iteration across prefill and decode.
    pub iteration_budget_tokens: u32,
    /// Waiting-queue depth before arrivals are rejected.
    pub max_waiting: usize,
}

impl BatchScheduler {
    /// The scheduler described by `cfg`.
    pub fn from_config(cfg: &ServeConfig) -> Self {
        BatchScheduler {
            max_batch: cfg.max_batch,
            chunk_tokens: cfg.chunk_tokens,
            iteration_budget_tokens: cfg.iteration_budget_tokens,
            max_waiting: cfg.max_waiting,
        }
    }

    /// Prompt tokens to prefill per iteration given the head
    /// sequence's remaining prompt and the decode batch sharing the
    /// iteration: the chunk size, shrunk so prefill plus one decode
    /// token per running sequence fits the iteration budget (always at
    /// least one token, so prefill cannot starve).
    pub fn chunk_for(&self, prefill_remaining: f64, decode_seqs: u32) -> u32 {
        if prefill_remaining <= TOKEN_EPS {
            return 0;
        }
        let budget_left = self
            .iteration_budget_tokens
            .saturating_sub(decode_seqs)
            .max(1);
        (prefill_remaining.ceil() as u32)
            .min(self.chunk_tokens)
            .min(budget_left)
            .max(1)
    }
}

/// One request's serving state. `payload` is the caller's opaque
/// request record, returned untouched on completion.
#[derive(Debug, Clone)]
pub(crate) struct Seq<T> {
    pub payload: T,
    pub id: u64,
    pub input_tokens: u32,
    pub output_tokens: u32,
    /// Priority class (`true` = high); KV transfers stay in-class.
    pub high_priority: bool,
    /// When the sequence first entered service (its original prefill
    /// admission); preserved across preemption and KV transfer.
    pub started_at: Option<SimTime>,
    /// Prompt tokens this admission must prefill (the full prompt, or
    /// prompt + generated-so-far after a recompute preemption).
    pub prefill_total: f64,
    pub prefill_done: f64,
    /// Tokens generated so far (survives preemption: the recompute
    /// prefill regenerates their KV, then decode resumes here).
    pub decoded: f64,
    /// KV entries resident on this server.
    pub kv_tokens: f64,
    /// KV blocks held from the server's pager.
    pub blocks: u32,
    /// polca-req lifecycle accumulator. Write-only from the engine's
    /// perspective — scheduling never reads it, so tracing cannot
    /// perturb outcomes.
    pub trace: ReqSpan,
}

impl<T> Seq<T> {
    pub fn fresh(
        payload: T,
        id: u64,
        input_tokens: u32,
        output_tokens: u32,
        high_priority: bool,
    ) -> Self {
        Seq {
            payload,
            id,
            input_tokens,
            output_tokens,
            high_priority,
            started_at: None,
            prefill_total: input_tokens as f64,
            prefill_done: 0.0,
            decoded: 0.0,
            kv_tokens: 0.0,
            blocks: 0,
            trace: ReqSpan::default(),
        }
    }

    fn is_prefilling(&self) -> bool {
        self.prefill_done + TOKEN_EPS < self.prefill_total
    }

    /// KV tokens that must be resident once this admission's prefill
    /// completes, plus one decode token — the up-front allocation.
    fn admission_tokens(&self) -> f64 {
        self.prefill_total.max(self.kv_tokens) + 1.0
    }
}

/// A finished request leaving the engine.
#[derive(Debug, Clone)]
pub struct Completion<T> {
    /// The caller's request record, returned untouched.
    pub payload: T,
    /// Server that generated the final token.
    pub server: usize,
    /// When the request first entered service (prefill start).
    pub started_at: SimTime,
    /// The accumulated polca-req lifecycle span.
    pub span: ReqSpan,
}

/// Everything one engine operation produced for one server.
#[derive(Debug)]
pub(crate) struct PumpResult<T> {
    pub completions: Vec<Completion<T>>,
    /// Sequences that finished prefill on a prefill-pool server and
    /// now need a KV transfer to a decode server.
    pub handoffs: Vec<Seq<T>>,
    pub preemptions: u64,
    /// New `(at, version)` wake for this server; `None` keeps any
    /// previously scheduled wake (version unchanged) or means idle.
    pub wake: Option<(SimTime, u64)>,
}

impl<T> Default for PumpResult<T> {
    fn default() -> Self {
        PumpResult {
            completions: Vec::new(),
            handoffs: Vec::new(),
            preemptions: 0,
            wake: None,
        }
    }
}

/// One server of the batched row.
#[derive(Debug, Clone)]
pub(crate) struct BatchServer<T> {
    pub id: usize,
    pub high_priority: bool,
    pub role: PoolRole,
    pub sched: BatchScheduler,
    pager: KvPager,
    waiting: VecDeque<Seq<T>>,
    prefilling: VecDeque<Seq<T>>,
    decoding: Vec<Seq<T>>,

    deployment: InferenceModel,
    dvfs: DvfsModel,
    locked_mhz: Option<f64>,
    pool_clock_mhz: Option<f64>,
    brake: bool,

    /// Start of the current fluid epoch.
    epoch_start: SimTime,
    /// Wall seconds per iteration under the current composition and
    /// clock (infinite when idle).
    iter_s: f64,
    /// Prompt tokens prefilled per iteration in the current epoch.
    prefill_per_iter: f64,
    /// Monotone guard against stale wake events.
    pub version: u64,

    /// Workload intensity of the current composition.
    intensity: f64,
    /// Cached instantaneous server power.
    pub power_watts: f64,

    // Power envelope (mirrors the legacy server's model exactly).
    spec_gpus: usize,
    non_gpu_base_watts: f64,
    non_gpu_per_gpu_watt: f64,
    hot_idle_intensity: f64,
    power_scale: f64,
}

impl<T> BatchServer<T> {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: usize,
        high_priority: bool,
        role: PoolRole,
        sched: BatchScheduler,
        pager: KvPager,
        deployment: InferenceModel,
        pool_clock_mhz: Option<f64>,
        spec_gpus: usize,
        non_gpu_base_watts: f64,
        non_gpu_per_gpu_watt: f64,
        hot_idle_intensity: f64,
        power_scale: f64,
    ) -> Self {
        let mut server = BatchServer {
            id,
            high_priority,
            role,
            sched,
            pager,
            waiting: VecDeque::new(),
            prefilling: VecDeque::new(),
            decoding: Vec::new(),
            deployment,
            dvfs: DvfsModel::default(),
            locked_mhz: None,
            pool_clock_mhz,
            brake: false,
            epoch_start: SimTime::ZERO,
            iter_s: f64::INFINITY,
            prefill_per_iter: 0.0,
            version: 0,
            intensity: 0.0,
            power_watts: 0.0,
            spec_gpus,
            non_gpu_base_watts,
            non_gpu_per_gpu_watt,
            hot_idle_intensity,
            power_scale,
        };
        server.refresh_power();
        server
    }

    pub fn running(&self) -> usize {
        self.prefilling.len() + self.decoding.len()
    }

    pub fn waiting_len(&self) -> usize {
        self.waiting.len()
    }

    /// Routing load: everything queued or running here.
    pub fn load(&self) -> usize {
        self.running() + self.waiting.len()
    }

    pub fn has_waiting(&self, id: u64) -> bool {
        self.waiting.iter().any(|s| s.id == id)
    }

    /// Whether a request needing `tokens` KV entries can ever run here.
    pub fn fits(&self, tokens: f64) -> bool {
        self.pager.blocks_for_tokens(tokens) <= self.pager.total_blocks()
    }

    pub fn push_waiting(&mut self, seq: Seq<T>) {
        self.waiting.push_back(seq);
    }

    /// Enqueues a KV-transferred sequence (bypasses the waiting cap:
    /// its prefill work is already spent).
    pub fn push_transfer(&mut self, seq: Seq<T>) {
        self.waiting.push_back(seq);
    }

    /// The SM clock honoring brake > lock > pool clock > max.
    pub fn effective_clock_mhz(&self) -> f64 {
        let gpu = self.deployment.gpu();
        if self.brake {
            return gpu.power_brake_clock_mhz();
        }
        let mut clock = self.locked_mhz.unwrap_or(gpu.max_sm_clock_mhz);
        if let Some(pool) = self.pool_clock_mhz {
            clock = clock.min(pool);
        }
        clock
    }

    fn clock_ratio(&self) -> f64 {
        (self.effective_clock_mhz() / self.deployment.gpu().max_sm_clock_mhz).clamp(1e-3, 1.0)
    }

    /// Recomputes the cached instantaneous power from the current
    /// composition's intensity — the same envelope as the legacy
    /// server: deployment GPUs at the blended intensity (hot-idle when
    /// the batch is empty), spare GPUs idling, chassis overhead, all
    /// times the study's power scale.
    fn refresh_power(&mut self) {
        let gpu = self.deployment.gpu();
        let intensity = if self.running() == 0 {
            self.hot_idle_intensity
        } else {
            self.intensity
        };
        let per_gpu = gpu.idle_watts
            + (gpu.transient_peak_watts - gpu.idle_watts)
                * intensity
                * self.dvfs.power_scale(self.clock_ratio());
        let gpu_watts = per_gpu * self.deployment.n_gpus() as f64;
        let spare = self.spec_gpus.saturating_sub(self.deployment.n_gpus()) as f64;
        let total_gpu = gpu_watts + spare * gpu.idle_watts;
        self.power_watts =
            (total_gpu + self.non_gpu_base_watts + self.non_gpu_per_gpu_watt * total_gpu)
                * self.power_scale;
    }

    /// Advances fluid progress from `epoch_start` to `now` at the
    /// current epoch's rates, growing decode KV allocations and
    /// preempting the youngest sequences if the pool runs dry.
    /// Returns the number of preemptions.
    fn advance_to(&mut self, now: SimTime, prof: &Profiler) -> u64 {
        let t0 = self.epoch_start.as_secs();
        let dt = now.saturating_sub(self.epoch_start).as_secs();
        self.epoch_start = now;
        if dt <= 0.0 || self.running() == 0 || !self.iter_s.is_finite() {
            return 0;
        }
        let iters = dt / self.iter_s;

        // polca-req energy attribution: this epoch burned
        // `power_watts × dt` joules (the power cached at the last
        // recompute, so a capped or braked epoch is priced at its
        // slowed draw). Split it across the batch in proportion to
        // token progress — the requests inside a brake-slowed
        // iteration visibly pay for it.
        let prefill_adv = self
            .prefilling
            .front()
            .map(|h| (iters * self.prefill_per_iter).min(h.prefill_total - h.prefill_done))
            .unwrap_or(0.0);
        let decode_adv: f64 = self
            .decoding
            .iter()
            .map(|s| iters.min((s.output_tokens as f64 - s.decoded).max(0.0)))
            .sum();
        let advanced = prefill_adv + decode_adv;
        let joules_per_token = if advanced > TOKEN_EPS {
            self.power_watts * dt / advanced
        } else {
            0.0
        };

        if let Some(head) = self.prefilling.front_mut() {
            let adv = (iters * self.prefill_per_iter).min(head.prefill_total - head.prefill_done);
            head.prefill_done += adv;
            head.kv_tokens += adv;
            head.trace.joules += adv * joules_per_token;
            if head.trace.preemptions > 0 {
                head.trace.recompute_s += dt;
            } else {
                head.trace.prefill_s += dt;
            }
        }
        for seq in &mut self.decoding {
            let before = seq.decoded;
            let adv = iters.min((seq.output_tokens as f64 - seq.decoded).max(0.0));
            seq.decoded += adv;
            seq.kv_tokens += adv;
            if adv > 0.0 {
                seq.trace.joules += adv * joules_per_token;
                seq.trace.decode_s += dt;
                if seq.trace.first_token_s.is_none() && seq.decoded + TOKEN_EPS >= 1.0 {
                    // The first token crossed inside this epoch; it
                    // completed after the fraction of an iteration it
                    // still needed.
                    seq.trace.first_token_s = Some(t0 + (1.0 - before).max(0.0) * self.iter_s);
                }
                if let Some(prev) = seq.trace.last_token_s {
                    // The gap spanning the epoch boundary: the first
                    // token of this epoch lands one iteration in.
                    seq.trace.tbt_max_s = seq.trace.tbt_max_s.max(t0 + self.iter_s - prev);
                }
                if adv > 1.0 {
                    seq.trace.tbt_max_s = seq.trace.tbt_max_s.max(self.iter_s);
                }
                seq.trace.last_token_s = Some(t0 + adv * self.iter_s);
            }
        }

        let _g = prof.time(Phase::ServeKvAlloc);
        let mut preempted = 0;
        loop {
            let need: u32 = self
                .decoding
                .iter()
                .map(|s| {
                    self.pager
                        .blocks_for_tokens(s.kv_tokens)
                        .saturating_sub(s.blocks)
                })
                .sum();
            if need <= self.pager.free_blocks() {
                break;
            }
            // KV exhaustion: preempt the youngest running sequence —
            // free its blocks, remember its generated tokens, and
            // recompute its prefill when it is next admitted.
            let mut victim = self.decoding.pop().expect("KV exhaustion with empty batch");
            self.pager.free(victim.blocks);
            victim.blocks = 0;
            victim.prefill_total = victim.input_tokens as f64 + victim.decoded;
            victim.prefill_done = 0.0;
            victim.kv_tokens = 0.0;
            victim.trace.preemptions += 1;
            victim.trace.recompute_tokens += victim.prefill_total;
            self.waiting.push_front(victim);
            preempted += 1;
        }
        for seq in &mut self.decoding {
            let need = self
                .pager
                .blocks_for_tokens(seq.kv_tokens)
                .saturating_sub(seq.blocks);
            if need > 0 {
                let ok = self.pager.try_alloc(need);
                debug_assert!(ok, "growth allocation after preemption must fit");
                seq.blocks += need;
            }
        }
        prof.record_max(
            ProfCounter::ServeKvPeakBlocks,
            self.pager.used_blocks() as u64,
        );
        if preempted > 0 {
            prof.count(ProfCounter::ServePreemptions, preempted);
        }
        preempted
    }

    /// Processes composition boundaries reached by `advance_to`:
    /// finished prefills move to decode (or hand off on a prefill-pool
    /// server), finished decodes complete and free their KV.
    fn boundaries(&mut self, result: &mut PumpResult<T>) {
        while let Some(head) = self.prefilling.front() {
            if head.is_prefilling() {
                break;
            }
            let mut seq = self.prefilling.pop_front().expect("checked front");
            seq.prefill_done = seq.prefill_total;
            seq.kv_tokens = seq.kv_tokens.max(seq.prefill_total);
            if self.role == PoolRole::Prefill {
                self.pager.free(seq.blocks);
                seq.blocks = 0;
                result.handoffs.push(seq);
            } else {
                self.decoding.push(seq);
            }
        }
        let mut i = 0;
        while i < self.decoding.len() {
            if self.decoding[i].decoded + TOKEN_EPS >= self.decoding[i].output_tokens as f64 {
                let seq = self.decoding.remove(i);
                self.pager.free(seq.blocks);
                result.completions.push(Completion {
                    payload: seq.payload,
                    server: self.id,
                    started_at: seq.started_at.expect("completed without admission"),
                    span: seq.trace,
                });
            } else {
                i += 1;
            }
        }
    }

    /// Admits waiting sequences FCFS while the batch has a slot and
    /// the pager can hold their admission allocation. The head blocks
    /// the queue when it does not fit (no skipping — FCFS within the
    /// server's priority class).
    fn admit(&mut self, now: SimTime, prof: &Profiler) {
        let _g = prof.time(Phase::ServeSchedule);
        while self.running() < self.sched.max_batch {
            let Some(head) = self.waiting.front() else {
                break;
            };
            let need = self.pager.blocks_for_tokens(head.admission_tokens());
            let allocated = {
                let _a = prof.time(Phase::ServeKvAlloc);
                self.pager.try_alloc(need)
            };
            if !allocated {
                break;
            }
            let mut seq = self.waiting.pop_front().expect("checked front");
            seq.blocks = need;
            seq.started_at.get_or_insert(now);
            if seq.is_prefilling() {
                self.prefilling.push_back(seq);
            } else {
                self.decoding.push(seq);
            }
        }
        prof.record_max(ProfCounter::ServePeakBatch, self.running() as u64);
        prof.record_max(
            ProfCounter::ServeKvPeakBlocks,
            self.pager.used_blocks() as u64,
        );
    }

    /// Recomputes the epoch from the current composition: iteration
    /// profile, DVFS-slowed iteration time, per-sequence rates, cached
    /// power, and the earliest boundary. Always bumps the wake
    /// version, so any previously scheduled wake goes stale.
    fn recompute(&mut self, now: SimTime) -> Option<(SimTime, u64)> {
        self.epoch_start = now;
        self.version += 1;
        let d = self.decoding.len() as u32;
        let prefill_remaining = self
            .prefilling
            .front()
            .map(|s| s.prefill_total - s.prefill_done)
            .unwrap_or(0.0);
        let p = self.sched.chunk_for(prefill_remaining, d);
        if p == 0 && d == 0 {
            self.iter_s = f64::INFINITY;
            self.prefill_per_iter = 0.0;
            self.intensity = 0.0;
            self.refresh_power();
            return None;
        }
        let profile = self.deployment.iteration_profile(&BatchComposition {
            prefill_tokens: p,
            decode_seqs: d,
        });
        let slowdown = self
            .dvfs
            .slowdown(self.clock_ratio(), profile.compute_fraction);
        self.iter_s = profile.duration_s * slowdown;
        self.prefill_per_iter = p as f64;
        self.intensity = profile.intensity;
        self.refresh_power();

        let mut iters = f64::INFINITY;
        if p > 0 {
            iters = iters.min(prefill_remaining / p as f64);
        }
        for seq in &self.decoding {
            iters = iters.min((seq.output_tokens as f64 - seq.decoded).max(TOKEN_EPS));
        }
        if d > 0 {
            let bound = iters.ceil().max(1.0) as u64;
            if let Some(n) = self.exhaustion_iters(bound) {
                iters = iters.min(n as f64);
            }
        }
        debug_assert!(iters.is_finite() && iters > 0.0);
        let wake = now + SimTime::from_secs(iters * self.iter_s);
        Some((wake, self.version))
    }

    /// The earliest whole iteration count (≤ `bound`) at which decode
    /// KV growth would exceed the free pool, found by binary search
    /// (block demand is monotone in the iteration count).
    fn exhaustion_iters(&self, bound: u64) -> Option<u64> {
        let free = self.pager.free_blocks();
        let need_at = |n: f64| -> u32 {
            self.decoding
                .iter()
                .map(|s| {
                    let adv = n.min((s.output_tokens as f64 - s.decoded).max(0.0));
                    self.pager
                        .blocks_for_tokens(s.kv_tokens + adv)
                        .saturating_sub(s.blocks)
                })
                .sum()
        };
        if need_at(bound as f64) <= free {
            return None;
        }
        let (mut lo, mut hi) = (1u64, bound);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if need_at(mid as f64) > free {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        Some(lo)
    }

    /// Full service cycle at `now`: advance fluid progress, process
    /// boundaries, admit from the waiting queue, re-derive the epoch.
    pub fn pump(&mut self, now: SimTime, prof: &Profiler, result: &mut PumpResult<T>) {
        result.preemptions += self.advance_to(now, prof);
        self.boundaries(result);
        self.admit(now, prof);
        result.wake = self.recompute(now);
    }

    /// Whether `version` is the server's live wake.
    pub fn wake_is_live(&self, version: u64) -> bool {
        self.version == version
    }

    /// Applies a delivered OOB control action. Progress is advanced at
    /// the old rates first; if the effective clock changed, the epoch
    /// is re-derived (legacy `remaining-work` rescaling falls out of
    /// the fluid model). Cap actions are accepted and ignored, like
    /// the legacy server.
    pub fn apply_action(
        &mut self,
        now: SimTime,
        action: ControlAction,
        prof: &Profiler,
        result: &mut PumpResult<T>,
    ) {
        result.preemptions += self.advance_to(now, prof);
        let before = self.effective_clock_mhz();
        match action {
            ControlAction::LockClock { mhz } => {
                self.locked_mhz = Some(self.deployment.gpu().clamp_clock(mhz));
            }
            ControlAction::UnlockClock => self.locked_mhz = None,
            ControlAction::PowerBrake { on } => self.brake = on,
            ControlAction::PowerCap { .. } | ControlAction::ClearPowerCap => {}
        }
        if (self.effective_clock_mhz() - before).abs() > f64::EPSILON {
            self.boundaries(result);
            self.admit(now, prof);
            result.wake = self.recompute(now);
        }
    }

    /// Mean KV occupancy of this server's pager.
    pub fn kv_occupancy(&self) -> f64 {
        self.pager.occupancy()
    }
}
