//! Paged KV-cache accounting: fixed-size token blocks carved out of
//! the HBM left over after weights and the runtime reserve.
//!
//! The pager is deliberately simple — a block budget and a free count.
//! What makes it interesting is who calls it: the batch engine
//! allocates a sequence's prompt blocks up front at admission
//! (vLLM-style), grows the allocation one block at a time as decode
//! appends tokens, and on exhaustion preempts the youngest running
//! sequence, freeing its blocks for older work and recomputing its
//! prefill later.

/// Tolerance when converting fluid token counts to whole blocks, so a
/// sequence that advanced to exactly a block boundary (modulo float
/// error) does not claim a block for the error term.
pub(crate) const TOKEN_EPS: f64 = 1e-6;

/// A per-server paged KV-cache allocator: `total_blocks` blocks of
/// `block_tokens` tokens each.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvPager {
    total_blocks: u32,
    free_blocks: u32,
    block_tokens: u32,
}

impl KvPager {
    /// A pager over `total_blocks` blocks of `block_tokens` tokens.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(total_blocks: u32, block_tokens: u32) -> Self {
        assert!(total_blocks > 0, "KV pool must hold at least one block");
        assert!(block_tokens > 0, "KV blocks must hold at least one token");
        KvPager {
            total_blocks,
            free_blocks: total_blocks,
            block_tokens,
        }
    }

    /// Blocks required to hold `tokens` KV entries (0 for an empty
    /// sequence).
    pub fn blocks_for_tokens(&self, tokens: f64) -> u32 {
        if tokens <= TOKEN_EPS {
            return 0;
        }
        ((tokens - TOKEN_EPS) / self.block_tokens as f64).ceil() as u32
    }

    /// Claims `blocks` from the free pool; `false` (and no change) if
    /// the pool cannot satisfy the request.
    pub fn try_alloc(&mut self, blocks: u32) -> bool {
        if blocks > self.free_blocks {
            return false;
        }
        self.free_blocks -= blocks;
        true
    }

    /// Returns `blocks` to the free pool.
    ///
    /// # Panics
    ///
    /// Panics (debug) on freeing more than is outstanding.
    pub fn free(&mut self, blocks: u32) {
        debug_assert!(blocks <= self.used_blocks(), "double free of KV blocks");
        self.free_blocks = (self.free_blocks + blocks).min(self.total_blocks);
    }

    /// Tokens per block.
    pub fn block_tokens(&self) -> u32 {
        self.block_tokens
    }

    /// Total blocks in the pool.
    pub fn total_blocks(&self) -> u32 {
        self.total_blocks
    }

    /// Blocks currently free.
    pub fn free_blocks(&self) -> u32 {
        self.free_blocks
    }

    /// Blocks currently allocated.
    pub fn used_blocks(&self) -> u32 {
        self.total_blocks - self.free_blocks
    }

    /// Allocated fraction of the pool in `[0, 1]`.
    pub fn occupancy(&self) -> f64 {
        self.used_blocks() as f64 / self.total_blocks as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_math_rounds_up() {
        let p = KvPager::new(10, 16);
        assert_eq!(p.blocks_for_tokens(0.0), 0);
        assert_eq!(p.blocks_for_tokens(1.0), 1);
        assert_eq!(p.blocks_for_tokens(16.0), 1);
        assert_eq!(p.blocks_for_tokens(17.0), 2);
        // Float noise at a block boundary does not claim a block.
        assert_eq!(p.blocks_for_tokens(32.0 + 1e-9), 2);
    }

    #[test]
    fn alloc_free_cycle_tracks_occupancy() {
        let mut p = KvPager::new(4, 16);
        assert!(p.try_alloc(3));
        assert_eq!(p.used_blocks(), 3);
        assert!((p.occupancy() - 0.75).abs() < 1e-12);
        // Exhaustion: a request past the free count fails atomically.
        assert!(!p.try_alloc(2));
        assert_eq!(p.used_blocks(), 3);
        assert!(p.try_alloc(1));
        p.free(4);
        assert_eq!(p.free_blocks(), 4);
    }
}
