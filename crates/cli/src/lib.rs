//! Command-line interface for the polca toolkit.
//!
//! Four subcommands cover the workflows a capacity engineer needs:
//!
//! * `characterize` — profile one model/request shape on a simulated
//!   A100 group, optionally under a frequency lock or power cap (§4.2),
//! * `trace` — synthesize and summarize a production-shaped power trace
//!   (§6.4),
//! * `evaluate` — run one policy at one oversubscription level and
//!   report latency/brake/SLO outcomes (§6.5–6.6),
//! * `plan` — sweep oversubscription levels and report the SLO-safe
//!   maximum (Figure 13's workflow).
//!
//! The parser is hand-rolled (`--flag value` pairs) to keep the
//! dependency set minimal; [`parse_args`] is exposed for testing.

use std::collections::HashMap;
use std::fmt;
use std::path::Path;

use polca::{CostModel, OversubscriptionStudy, PolcaPolicy, PolicyKind};
use polca_cluster::RowConfig;
use polca_gpu::{Gpu, GpuSpec};
use polca_llm::{InferenceConfig, InferenceModel, ModelSpec};
use polca_obs::{ObsLevel, Recorder};
use polca_trace::replicate::production_reference;

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Invocation {
    /// The subcommand name.
    pub command: String,
    /// `--key value` options.
    pub options: HashMap<String, String>,
}

/// Errors surfaced to the user.
#[derive(Debug, Clone, PartialEq)]
pub enum CliError {
    /// No subcommand given.
    MissingCommand,
    /// Unknown subcommand.
    UnknownCommand(String),
    /// A `--flag` had no value.
    MissingValue(String),
    /// A value failed to parse.
    BadValue {
        /// The flag.
        flag: String,
        /// The offending value.
        value: String,
    },
    /// Unknown model name.
    UnknownModel(String),
    /// Writing observability artifacts failed.
    Io(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::MissingCommand => write!(f, "missing subcommand; try `polca-cli help`"),
            CliError::UnknownCommand(c) => write!(f, "unknown subcommand `{c}`"),
            CliError::MissingValue(flag) => write!(f, "flag `{flag}` needs a value"),
            CliError::BadValue { flag, value } => {
                write!(f, "cannot parse `{value}` for `{flag}`")
            }
            CliError::UnknownModel(m) => write!(f, "unknown model `{m}`; see `tab03_model_zoo`"),
            CliError::Io(e) => write!(f, "cannot write artifacts: {e}"),
        }
    }
}

impl std::error::Error for CliError {}

/// Parses `argv[1..]` into an [`Invocation`].
///
/// # Errors
///
/// Returns [`CliError`] when no subcommand is present or a flag is
/// missing its value.
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Invocation, CliError> {
    let mut iter = args.into_iter();
    let command = iter.next().ok_or(CliError::MissingCommand)?;
    let mut options = HashMap::new();
    let mut pending: Option<String> = None;
    for arg in iter {
        match pending.take() {
            Some(flag) => {
                options.insert(flag, arg);
            }
            None => {
                let flag = arg.trim_start_matches("--").to_string();
                pending = Some(flag);
            }
        }
    }
    if let Some(flag) = pending {
        return Err(CliError::MissingValue(flag));
    }
    Ok(Invocation { command, options })
}

impl Invocation {
    /// Reads an option with a default, parsing it as `T`.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::BadValue`] on parse failure.
    pub fn get<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, CliError> {
        match self.options.get(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| CliError::BadValue {
                flag: flag.to_string(),
                value: v.clone(),
            }),
        }
    }

    /// Reads an optional option, parsing it as `T`.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::BadValue`] on parse failure.
    pub fn get_opt<T: std::str::FromStr>(&self, flag: &str) -> Result<Option<T>, CliError> {
        match self.options.get(flag) {
            None => Ok(None),
            Some(v) => v.parse().map(Some).map_err(|_| CliError::BadValue {
                flag: flag.to_string(),
                value: v.clone(),
            }),
        }
    }
}

/// Resolves a model by (case-insensitive) name.
pub fn find_model(name: &str) -> Result<ModelSpec, CliError> {
    ModelSpec::all()
        .into_iter()
        .find(|m| m.name.eq_ignore_ascii_case(name))
        .ok_or_else(|| CliError::UnknownModel(name.to_string()))
}

/// Resolves a policy by name.
pub fn find_policy(name: &str) -> Result<PolicyKind, CliError> {
    match name.to_ascii_lowercase().as_str() {
        "polca" => Ok(PolicyKind::Polca),
        "1t-lp" | "one-thresh-low-pri" => Ok(PolicyKind::OneThreshLowPri),
        "1t-all" | "one-thresh-all" => Ok(PolicyKind::OneThreshAll),
        "nocap" | "no-cap" => Ok(PolicyKind::NoCap),
        other => Err(CliError::UnknownCommand(other.to_string())),
    }
}

/// The help text.
pub const HELP: &str = "\
polca-cli — power management for LLM clusters (ASPLOS'24 reproduction)

USAGE: polca-cli <command> [--flag value]...

COMMANDS
  characterize  profile one request shape on a simulated A100 group
                --model BLOOM --input 2048 --output 256 --batch 1
                [--lock MHZ] [--cap WATTS]
  trace         synthesize a production-shaped power trace
                [--days 1] [--seed 17]
  evaluate      run one policy at one oversubscription level
                [--policy polca|1t-lp|1t-all|nocap] [--added 30]
                [--days 2] [--seed 17] [--power-scale 1.0]
                [--obs-out DIR] [--obs-level off|metrics|events|full]
                (--obs-out writes events.jsonl, metrics.json, power.csv,
                 latency.csv, trace.json — open trace.json in Perfetto)
  plan          find the SLO-safe oversubscription maximum
                [--days 2] [--seed 17] [--servers 40]
  help          print this text
";

/// Runs an invocation, writing human-readable output to stdout.
///
/// # Errors
///
/// Returns [`CliError`] on unknown commands or malformed values.
pub fn run(inv: &Invocation) -> Result<(), CliError> {
    match inv.command.as_str() {
        "help" | "--help" | "-h" => {
            print!("{HELP}");
            Ok(())
        }
        "characterize" => characterize(inv),
        "trace" => trace(inv),
        "evaluate" => evaluate(inv),
        "plan" => plan(inv),
        other => Err(CliError::UnknownCommand(other.to_string())),
    }
}

fn characterize(inv: &Invocation) -> Result<(), CliError> {
    let model_name: String = inv.get("model", "BLOOM".to_string())?;
    let model = find_model(&model_name)?;
    let input: u32 = inv.get("input", 2048)?;
    let output: u32 = inv.get("output", 256)?;
    let batch: u32 = inv.get("batch", 1)?;
    let lock: Option<f64> = inv.get_opt("lock")?;
    let cap: Option<f64> = inv.get_opt("cap")?;

    let deployment = InferenceModel::new(model, GpuSpec::a100_80gb())
        .expect("zoo models fit their Table 3 allocations");
    let cfg = InferenceConfig::new(input, output, batch);
    let profile = deployment.profile(&cfg);
    let mut gpu = Gpu::new(GpuSpec::a100_80gb());
    if let Some(mhz) = lock {
        gpu.lock_clock(mhz).map_err(|_| CliError::BadValue {
            flag: "lock".into(),
            value: mhz.to_string(),
        })?;
    }
    if let Some(watts) = cap {
        gpu.set_power_cap(watts).map_err(|_| CliError::BadValue {
            flag: "cap".into(),
            value: watts.to_string(),
        })?;
    }
    let series = deployment.power_series(&cfg, 1, &mut gpu, 0.05);
    let tdp = gpu.spec().tdp_watts;
    println!(
        "{} on {} × {}:",
        deployment.model().name,
        deployment.n_gpus(),
        gpu.spec().name
    );
    println!(
        "  prompt {:>6.2}s at {:.2}/TDP | token {:>7.2}s at {:.2}/TDP",
        profile.prompt.duration_s,
        gpu.power_at(profile.prompt.intensity) / tdp,
        profile.token.duration_s,
        gpu.power_at(profile.token.intensity) / tdp
    );
    println!(
        "  run {:.1}s  peak {:.2}/TDP  mean {:.2}/TDP",
        series.times().last().unwrap_or(&0.0),
        series.peak().unwrap_or(0.0) / tdp,
        series.mean().unwrap_or(0.0) / tdp
    );
    Ok(())
}

fn trace(inv: &Invocation) -> Result<(), CliError> {
    let days: f64 = inv.get("days", 1.0)?;
    let seed: u64 = inv.get("seed", 17)?;
    let row = RowConfig::paper_inference_row();
    let profile = production_reference(&row, days, 2.0, seed);
    let provisioned = row.provisioned_watts();
    println!("production-shaped trace, {days} day(s), seed {seed}:");
    println!(
        "  peak {:.1}%  mean {:.1}%  trough {:.1}% of {:.0} kW provisioned",
        profile.peak().unwrap() / provisioned * 100.0,
        profile.mean().unwrap() / provisioned * 100.0,
        profile.trough().unwrap() / provisioned * 100.0,
        provisioned / 1000.0
    );
    println!(
        "  max rise in 2s {:.1}%, in 40s {:.1}%",
        profile.max_rise_within(2.0).unwrap() / provisioned * 100.0,
        profile.max_rise_within(40.0).unwrap() / provisioned * 100.0
    );
    Ok(())
}

fn evaluate(inv: &Invocation) -> Result<(), CliError> {
    let policy_name: String = inv.get("policy", "polca".to_string())?;
    let kind = find_policy(&policy_name)?;
    let added: f64 = inv.get("added", 30.0)?;
    let days: f64 = inv.get("days", 2.0)?;
    let seed: u64 = inv.get("seed", 17)?;
    let power_scale: f64 = inv.get("power-scale", 1.0)?;
    let obs_out: Option<String> = inv.get_opt("obs-out")?;
    let obs_level = match inv.options.get("obs-level") {
        Some(v) => v.parse::<ObsLevel>().map_err(|_| CliError::BadValue {
            flag: "obs-level".into(),
            value: v.clone(),
        })?,
        // `--obs-out` without an explicit level means "give me everything".
        None if obs_out.is_some() => ObsLevel::Full,
        None => ObsLevel::Off,
    };
    let recorder = Recorder::new(obs_level);

    let mut study = OversubscriptionStudy::new(
        RowConfig::paper_inference_row(),
        PolcaPolicy::default(),
        days,
        seed,
    );
    study.set_record_power(false);
    study.set_recorder(recorder.clone());
    let o = study.run(kind, added / 100.0, power_scale);
    println!(
        "{} at +{added:.0}% servers, power×{power_scale}, {days} day(s):",
        kind.name()
    );
    println!(
        "  normalized latency  LP p50 {:.3} p99 {:.3} | HP p50 {:.3} p99 {:.3}",
        o.low_normalized.p50, o.low_normalized.p99, o.high_normalized.p50, o.high_normalized.p99
    );
    println!(
        "  peak util {:.1}%  brakes {}  SLO {}",
        o.peak_utilization * 100.0,
        o.brake_engagements,
        if o.slo.met { "met" } else { "MISSED" }
    );
    let cost = CostModel::default();
    let value = cost.oversubscription_value(study.row(), added / 100.0);
    println!(
        "  capacity value: {} extra servers ≈ ${:.2}M of avoided datacenter build-out",
        value.extra_servers,
        value.avoided_capex_usd / 1e6
    );
    if let Some(dir) = &obs_out {
        let files = recorder
            .write_dir(Path::new(dir))
            .map_err(|e| CliError::Io(e.to_string()))?;
        println!(
            "  obs artifacts ({obs_level}): {} file(s) in {}/",
            files.len(),
            dir.trim_end_matches('/')
        );
    }
    Ok(())
}

fn plan(inv: &Invocation) -> Result<(), CliError> {
    let days: f64 = inv.get("days", 2.0)?;
    let seed: u64 = inv.get("seed", 17)?;
    let servers: usize = inv.get("servers", 40)?;
    let mut row = RowConfig::paper_inference_row();
    row.base_servers = servers;
    let mut study = OversubscriptionStudy::new(row, PolcaPolicy::default(), days, seed);
    study.set_record_power(false);
    let trainer = study.trained_thresholds();
    study.set_policy(trainer.train());
    println!(
        "trained thresholds: T1 {:.0}% T2 {:.0}% (40s spike {:.1}%)",
        trainer.t1() * 100.0,
        trainer.t2() * 100.0,
        trainer.max_spike_40s_frac * 100.0
    );
    let mut best = 0.0;
    for pct in [0u32, 10, 20, 25, 30, 35, 40] {
        let added = pct as f64 / 100.0;
        let o = study.run(PolicyKind::Polca, added, 1.0);
        let ok = o.slo.met;
        println!(
            "  +{pct:>2}%: brakes {:>4}, LP p99 {:.3}, HP p99 {:.3} — {}",
            o.brake_engagements,
            o.low_normalized.p99,
            o.high_normalized.p99,
            if ok { "SLO met" } else { "SLO MISSED" }
        );
        if ok && added > best {
            best = added;
        }
    }
    println!("plan: deploy up to +{:.0}% servers.", best * 100.0);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_command_and_flags() {
        let inv = parse_args(args(&["evaluate", "--added", "30", "--policy", "polca"])).unwrap();
        assert_eq!(inv.command, "evaluate");
        assert_eq!(inv.get::<f64>("added", 0.0).unwrap(), 30.0);
        assert_eq!(inv.options.get("policy").unwrap(), "polca");
    }

    #[test]
    fn missing_command_is_an_error() {
        assert_eq!(parse_args(args(&[])), Err(CliError::MissingCommand));
    }

    #[test]
    fn dangling_flag_is_an_error() {
        assert_eq!(
            parse_args(args(&["plan", "--days"])),
            Err(CliError::MissingValue("days".into()))
        );
    }

    #[test]
    fn defaults_apply_when_flag_absent() {
        let inv = parse_args(args(&["trace"])).unwrap();
        assert_eq!(inv.get::<u64>("seed", 17).unwrap(), 17);
        assert_eq!(inv.get_opt::<f64>("lock").unwrap(), None);
    }

    #[test]
    fn bad_values_are_reported_with_flag_names() {
        let inv = parse_args(args(&["trace", "--days", "soon"])).unwrap();
        let err = inv.get::<f64>("days", 1.0).unwrap_err();
        assert_eq!(
            err,
            CliError::BadValue {
                flag: "days".into(),
                value: "soon".into()
            }
        );
    }

    #[test]
    fn model_lookup_is_case_insensitive() {
        assert_eq!(find_model("bloom").unwrap().name, "BLOOM");
        assert_eq!(find_model("flan-t5").unwrap().name, "Flan-T5");
        assert!(find_model("gpt5").is_err());
    }

    #[test]
    fn policy_aliases_resolve() {
        assert_eq!(find_policy("POLCA").unwrap(), PolicyKind::Polca);
        assert_eq!(find_policy("1t-lp").unwrap(), PolicyKind::OneThreshLowPri);
        assert_eq!(find_policy("no-cap").unwrap(), PolicyKind::NoCap);
        assert!(find_policy("magic").is_err());
    }

    #[test]
    fn unknown_command_errors_cleanly() {
        let inv = parse_args(args(&["frobnicate"])).unwrap();
        assert!(matches!(run(&inv), Err(CliError::UnknownCommand(_))));
    }

    #[test]
    fn characterize_runs_end_to_end() {
        let inv = parse_args(args(&[
            "characterize",
            "--model",
            "GPT-NeoX",
            "--input",
            "512",
            "--output",
            "32",
        ]))
        .unwrap();
        assert!(run(&inv).is_ok());
    }

    #[test]
    fn help_prints() {
        let inv = parse_args(args(&["help"])).unwrap();
        assert!(run(&inv).is_ok());
        assert!(HELP.contains("characterize"));
    }
}
