//! Command-line interface for the polca toolkit.
//!
//! Five subcommands cover the workflows a capacity engineer needs:
//!
//! * `characterize` — profile one model/request shape on a simulated
//!   A100 group, optionally under a frequency lock or power cap (§4.2),
//! * `trace` — synthesize and summarize a production-shaped power trace
//!   (§6.4), optionally exporting the request stream as Azure-schema
//!   CSV,
//! * `ingest` — read an Azure-2024-style request log, report its
//!   statistics, and fit the generator's diurnal model to it,
//! * `evaluate` — run one policy at one oversubscription level and
//!   report latency/brake/SLO outcomes (§6.5–6.6), or replay an
//!   ingested trace through all four Figure 17 policies
//!   (`--trace-csv`),
//! * `plan` — sweep oversubscription levels and report the SLO-safe
//!   maximum (Figure 13's workflow),
//! * `profile` — self-profile the simulator with polca-prof on the
//!   quick-demo study, print the per-component attribution table, and
//!   emit the `BENCH_*.json` perf-trajectory baselines.
//!
//! The parser is hand-rolled (`--flag value` pairs plus positional
//! arguments) to keep the dependency set minimal; [`parse_args`] is
//! exposed for testing.

use std::collections::HashMap;
use std::fmt;
use std::path::Path;
use std::time::Instant;

use polca::{
    CostModel, DisaggregationConfig, NoCapController, OversubscriptionStudy, PolcaController,
    PolcaPolicy, PolicyKind, SingleThresholdController, TraceEvaluation,
};
use polca_cluster::{EngineKind, PowerController, RowConfig, SiteConfig, SiteReport, SiteSim};
use polca_gpu::{Gpu, GpuSpec};
use polca_ingest::{
    requests_to_csv, IngestedTrace, ReplayOptions, TraceCalibration, TraceReplay, TraceStats,
};
use polca_llm::{InferenceConfig, InferenceModel, ModelSpec};
use polca_obs::{
    BenchReport, CarbonSignal, CarbonTrace, EnergyLedger, EnergyPlan, ObsLevel, ProfCounter,
    Recorder, ReqTraceConfig,
};
use polca_sim::{SimRng, SimTime};
use polca_telemetry::{merge_tick_columns, RowPowerTaps, RowTickBuffer};
use polca_trace::replicate::production_reference;
use polca_trace::{ArrivalGenerator, DiurnalPattern, TraceConfig, WorkloadClass};
use polca_watch::{
    IncidentState, RuleSet, WatchArtifacts, WatchConfig, WatchEnergyConfig, WatchPlane,
};

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Invocation {
    /// The subcommand name.
    pub command: String,
    /// `--key value` options.
    pub options: HashMap<String, String>,
    /// Arguments that are not `--flag value` pairs (e.g. the CSV path
    /// in `polca-cli ingest trace.csv`), in order.
    pub positionals: Vec<String>,
}

/// Errors surfaced to the user.
#[derive(Debug, Clone, PartialEq)]
pub enum CliError {
    /// No subcommand given.
    MissingCommand,
    /// Unknown subcommand.
    UnknownCommand(String),
    /// A `--flag` had no value.
    MissingValue(String),
    /// A value failed to parse.
    BadValue {
        /// The flag.
        flag: String,
        /// The offending value.
        value: String,
    },
    /// Unknown model name.
    UnknownModel(String),
    /// Writing observability artifacts failed.
    Io(String),
    /// Reading, calibrating, or replaying a trace CSV failed.
    Ingest(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::MissingCommand => write!(f, "missing subcommand; try `polca-cli help`"),
            CliError::UnknownCommand(c) => write!(f, "unknown subcommand `{c}`"),
            CliError::MissingValue(flag) => write!(f, "flag `{flag}` needs a value"),
            CliError::BadValue { flag, value } => {
                write!(f, "cannot parse `{value}` for `{flag}`")
            }
            CliError::UnknownModel(m) => write!(f, "unknown model `{m}`; see `tab03_model_zoo`"),
            CliError::Io(e) => write!(f, "cannot write artifacts: {e}"),
            CliError::Ingest(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {}

/// Parses `argv[1..]` into an [`Invocation`].
///
/// # Errors
///
/// Returns [`CliError`] when no subcommand is present or a flag is
/// missing its value.
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Invocation, CliError> {
    /// Flags that take no value; their presence stores `"true"`.
    const BOOL_FLAGS: &[&str] = &[
        "watch",
        "enforce-budgets",
        "profile",
        "split-pools",
        "req-trace",
        "carbon-diurnal",
    ];
    let mut iter = args.into_iter();
    let command = iter.next().ok_or(CliError::MissingCommand)?;
    let mut options = HashMap::new();
    let mut positionals = Vec::new();
    let mut pending: Option<String> = None;
    for arg in iter {
        match pending.take() {
            Some(flag) => {
                options.insert(flag, arg);
            }
            None if arg.starts_with("--") => {
                let flag = arg.trim_start_matches("--").to_string();
                if BOOL_FLAGS.contains(&flag.as_str()) {
                    options.insert(flag, "true".to_string());
                } else {
                    pending = Some(flag);
                }
            }
            None => positionals.push(arg),
        }
    }
    if let Some(flag) = pending {
        return Err(CliError::MissingValue(flag));
    }
    Ok(Invocation {
        command,
        options,
        positionals,
    })
}

impl Invocation {
    /// Reads an option with a default, parsing it as `T`.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::BadValue`] on parse failure.
    pub fn get<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, CliError> {
        match self.options.get(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| CliError::BadValue {
                flag: flag.to_string(),
                value: v.clone(),
            }),
        }
    }

    /// Reads an optional option, parsing it as `T`.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::BadValue`] on parse failure.
    pub fn get_opt<T: std::str::FromStr>(&self, flag: &str) -> Result<Option<T>, CliError> {
        match self.options.get(flag) {
            None => Ok(None),
            Some(v) => v.parse().map(Some).map_err(|_| CliError::BadValue {
                flag: flag.to_string(),
                value: v.clone(),
            }),
        }
    }
}

/// Resolves a model by (case-insensitive) name.
pub fn find_model(name: &str) -> Result<ModelSpec, CliError> {
    ModelSpec::all()
        .into_iter()
        .find(|m| m.name.eq_ignore_ascii_case(name))
        .ok_or_else(|| CliError::UnknownModel(name.to_string()))
}

/// Parses `--engine legacy|batched` plus `--split-pools` into the row
/// serving engine. The batched configuration reuses the §5.2
/// disaggregation constants (interconnect bandwidth, token-pool
/// clock) from [`DisaggregationConfig`].
fn parse_engine(inv: &Invocation) -> Result<EngineKind, CliError> {
    let name: String = inv.get("engine", "legacy".to_string())?;
    let split = inv.options.contains_key("split-pools");
    match name.to_ascii_lowercase().as_str() {
        "legacy" => {
            if split {
                return Err(CliError::BadValue {
                    flag: "split-pools".into(),
                    value: "requires --engine batched".into(),
                });
            }
            Ok(EngineKind::Legacy)
        }
        "batched" => Ok(DisaggregationConfig::default().batched_engine(split)),
        other => Err(CliError::BadValue {
            flag: "engine".into(),
            value: other.to_string(),
        }),
    }
}

/// Human-readable tag for the engine in run headers.
fn engine_tag(engine: &EngineKind) -> &'static str {
    match engine {
        EngineKind::Legacy => "legacy",
        EngineKind::Batched(cfg) if cfg.pools.is_split() => "batched/split-pools",
        EngineKind::Batched(_) => "batched",
    }
}

/// Resolves a policy by name.
pub fn find_policy(name: &str) -> Result<PolicyKind, CliError> {
    match name.to_ascii_lowercase().as_str() {
        "polca" => Ok(PolicyKind::Polca),
        "1t-lp" | "one-thresh-low-pri" => Ok(PolicyKind::OneThreshLowPri),
        "1t-all" | "one-thresh-all" => Ok(PolicyKind::OneThreshAll),
        "nocap" | "no-cap" => Ok(PolicyKind::NoCap),
        other => Err(CliError::UnknownCommand(other.to_string())),
    }
}

/// The help text.
pub const HELP: &str = "\
polca-cli — power management for LLM clusters (ASPLOS'24 reproduction)

USAGE: polca-cli <command> [--flag value]...

COMMANDS
  characterize  profile one request shape on a simulated A100 group
                --model BLOOM --input 2048 --output 256 --batch 1
                [--lock MHZ] [--cap WATTS]
  trace         synthesize a production-shaped power trace
                [--days 1] [--seed 17]
                [--csv-out FILE] export the request stream as
                Azure-schema CSV; generation knobs: [--rate REQ_S]
                [--amplitude 0.25] [--peak-hour 14] [--noise 0.05]
                [--bursts-per-day 6]
  ingest        read an Azure-2024-style request log (CSV), report its
                statistics, and fit the synthetic generator to it
                polca-cli ingest trace.csv  (or --csv trace.csv)
                [--seed 17] [--extrapolate-days 42]
  evaluate      run one policy at one oversubscription level
                [--policy polca|1t-lp|1t-all|nocap] [--added 30]
                [--days 2] [--seed 17] [--power-scale 1.0]
                [--obs-out DIR] [--obs-level off|metrics|events|full]
                (--obs-out writes events.jsonl, metrics.json,
                 metrics.prom, power.csv, latency.csv, trace.json —
                 open trace.json in Perfetto; at the full level also
                 prof.json, prof.folded, prof.trace.json)
                [--engine legacy|batched] row serving engine: the
                default legacy whole-request model (§6.6), or the
                polca-serve continuous-batching engine (iteration-level
                scheduling, paged KV-cache, chunked prefill);
                [--split-pools] with the batched engine runs
                disaggregated prefill/decode pools (§5.2) with KV
                transfer over the interconnect
                [--profile] print the polca-prof attribution table for
                the run (forces obs level full)
                [--req-trace] trace every request's lifecycle with
                polca-req: TTFT/TBT/queue-time histograms per priority
                class land in metrics.prom, and per-request records
                (phase breakdown, preemption/recompute episodes, KV
                hops, joules and joules-per-token) land in
                requests.jsonl plus per-request lanes in trace.json
                (forces obs level >= events)
                [--req-sample N] keep every Nth request record in
                requests.jsonl (histograms still see all requests;
                implies --req-trace)
                [--carbon-trace FILE | --carbon-diurnal] attach the
                polca-energy ledger: trapezoid-integrate ground-truth
                power into Wh / gCO2e rollups per row, PDU, datacenter,
                and site, per priority class, and per prefill/decode
                pool, and print the per-datacenter ledger table; the
                grid carbon-intensity signal comes from a CSV
                (hour,carbon_g_per_kwh; sample-and-hold, wraps) or the
                built-in diurnal model; with --obs-out also writes
                energy.json + energy.csv, energy_*/carbon_* gauges in
                metrics.prom, and counter lanes in trace.json
                [--pue X[,Y,...]] per-datacenter PUE table (default
                1.25; implies --carbon-diurnal when no signal is given)
                [--carbon-budget G_PER_H] / [--carbon-per-token G]
                with --watch, arm the built-in carbon-budget-burn /
                co2e-per-token-high rules on the delayed OOB feed
                [--watch] run the online alerting/incident plane on the
                delayed OOB telemetry (forces obs level >= events; with
                --obs-out also writes incidents.jsonl, report.md, and
                alert markers merged into trace.json)
                [--watch-rules FILE] override the built-in alert rules
                [--rows N] simulate a multi-row fleet (round-robin
                dispatch under per-PDU, datacenter, and site power
                budgets) and print the per-row + aggregate table;
                --rows sizes one *datacenter*, no longer the top of
                the hierarchy — [--datacenters D] simulates a
                D-datacenter site of N rows each;
                [--rows-per-pdu 2] sets the PDU fan-in,
                [--enforce-budgets] brakes every row behind an
                overloaded PDU, datacenter, or site,
                [--fleet-threads K] steps rows on K worker threads
                (0 = all cores); artifacts are byte-identical
                whatever K is;
                [--site-budget-mw X] caps the site at X megawatts,
                [--oversub-dc PCT] / [--oversub-site PCT] derive the
                datacenter / site budget from an oversubscription
                percentage (budget = provisioned / (1 + PCT/100));
                with --obs-out, site artifacts land in DIR/, each
                row's in DIR/rowN/ (global row index), and with
                --watch each datacenter's incident set in DIR/dcD/
                [--jobs N] worker threads for multi-cell runs (the
                four-policy --trace-csv panel); artifacts and tables
                are byte-identical whatever N is
                with --trace-csv FILE: replay an ingested trace through
                all four Figure 17 policies instead of synthesizing;
                [--rate-scale 1.0] [--time-scale 1.0] [--servers 40]
                [--added 30] (--rows N / --datacenters D replays the
                stream across a site fleet under one policy instead;
                all site flags above apply)
  plan          find the SLO-safe oversubscription maximum
                [--days 2] [--seed 17] [--servers 40] [--jobs N]
  profile       self-profile the simulator (polca-prof) on the
                quick-demo study and print the per-component
                attribution table
                [--seed 17] [--reps 3] best-of-N timing repetitions
                [--out DIR] write the full obs artifact set including
                prof.json, prof.folded (load in speedscope), and
                prof.trace.json (open in Perfetto)
                [--bench-out DIR] write the BENCH_sim.json,
                BENCH_watch.json, BENCH_ingest.json, BENCH_serve.json,
                BENCH_fleet.json, BENCH_energy.json perf baselines that
                ci.sh's bench-smoke step gates against
  help          print this text
";

/// Runs an invocation, writing human-readable output to stdout.
///
/// # Errors
///
/// Returns [`CliError`] on unknown commands or malformed values.
pub fn run(inv: &Invocation) -> Result<(), CliError> {
    match inv.command.as_str() {
        "help" | "--help" | "-h" => {
            print!("{HELP}");
            Ok(())
        }
        "characterize" => characterize(inv),
        "trace" => trace(inv),
        "ingest" => ingest(inv),
        "evaluate" => evaluate(inv),
        "plan" => plan(inv),
        "profile" => profile(inv),
        other => Err(CliError::UnknownCommand(other.to_string())),
    }
}

fn characterize(inv: &Invocation) -> Result<(), CliError> {
    let model_name: String = inv.get("model", "BLOOM".to_string())?;
    let model = find_model(&model_name)?;
    let input: u32 = inv.get("input", 2048)?;
    let output: u32 = inv.get("output", 256)?;
    let batch: u32 = inv.get("batch", 1)?;
    let lock: Option<f64> = inv.get_opt("lock")?;
    let cap: Option<f64> = inv.get_opt("cap")?;

    let deployment = InferenceModel::new(model, GpuSpec::a100_80gb())
        .expect("zoo models fit their Table 3 allocations");
    let cfg = InferenceConfig::new(input, output, batch);
    let profile = deployment.profile(&cfg);
    let mut gpu = Gpu::new(GpuSpec::a100_80gb());
    if let Some(mhz) = lock {
        gpu.lock_clock(mhz).map_err(|_| CliError::BadValue {
            flag: "lock".into(),
            value: mhz.to_string(),
        })?;
    }
    if let Some(watts) = cap {
        gpu.set_power_cap(watts).map_err(|_| CliError::BadValue {
            flag: "cap".into(),
            value: watts.to_string(),
        })?;
    }
    let series = deployment.power_series(&cfg, 1, &mut gpu, 0.05);
    let tdp = gpu.spec().tdp_watts;
    println!(
        "{} on {} × {}:",
        deployment.model().name,
        deployment.n_gpus(),
        gpu.spec().name
    );
    println!(
        "  prompt {:>6.2}s at {:.2}/TDP | token {:>7.2}s at {:.2}/TDP",
        profile.prompt.duration_s,
        gpu.power_at(profile.prompt.intensity) / tdp,
        profile.token.duration_s,
        gpu.power_at(profile.token.intensity) / tdp
    );
    println!(
        "  run {:.1}s  peak {:.2}/TDP  mean {:.2}/TDP",
        series.times().last().unwrap_or(&0.0),
        series.peak().unwrap_or(0.0) / tdp,
        series.mean().unwrap_or(0.0) / tdp
    );
    Ok(())
}

fn trace(inv: &Invocation) -> Result<(), CliError> {
    let days: f64 = inv.get("days", 1.0)?;
    let seed: u64 = inv.get("seed", 17)?;
    if let Some(path) = inv.get_opt::<String>("csv-out")? {
        return trace_csv_out(inv, &path, days, seed);
    }
    let row = RowConfig::paper_inference_row();
    let profile = production_reference(&row, days, 2.0, seed);
    let provisioned = row.provisioned_watts();
    println!("production-shaped trace, {days} day(s), seed {seed}:");
    println!(
        "  peak {:.1}%  mean {:.1}%  trough {:.1}% of {:.0} kW provisioned",
        profile.peak().unwrap() / provisioned * 100.0,
        profile.mean().unwrap() / provisioned * 100.0,
        profile.trough().unwrap() / provisioned * 100.0,
        provisioned / 1000.0
    );
    println!(
        "  max rise in 2s {:.1}%, in 40s {:.1}%",
        profile.max_rise_within(2.0).unwrap() / provisioned * 100.0,
        profile.max_rise_within(40.0).unwrap() / provisioned * 100.0
    );
    Ok(())
}

/// RNG stream for the `trace --csv-out` schedule synthesis; fixed so a
/// given seed always exports the same CSV (this is how the bundled
/// `tests/golden/sample_trace.csv` was produced).
const CSV_OUT_STREAM: u64 = 0xC5F0;

fn trace_csv_out(inv: &Invocation, path: &str, days: f64, seed: u64) -> Result<(), CliError> {
    let pattern = DiurnalPattern {
        base_rate: inv.get("rate", DiurnalPattern::default().base_rate)?,
        daily_amplitude: inv.get("amplitude", DiurnalPattern::default().daily_amplitude)?,
        peak_hour: inv.get("peak-hour", DiurnalPattern::default().peak_hour)?,
        short_term_noise: inv.get("noise", DiurnalPattern::default().short_term_noise)?,
        bursts_per_day: inv.get("bursts-per-day", DiurnalPattern::default().bursts_per_day)?,
        ..DiurnalPattern::default()
    };
    let horizon = SimTime::from_days(days);
    let mut rng = SimRng::from_seed_stream(seed, CSV_OUT_STREAM);
    let config = TraceConfig {
        seed,
        horizon,
        schedule: pattern.schedule(horizon.as_secs(), 60.0, &mut rng),
        mix: WorkloadClass::table6(),
    };
    let requests: Vec<_> = ArrivalGenerator::new(&config).collect();
    let csv = requests_to_csv(&requests);
    std::fs::write(path, &csv).map_err(|e| CliError::Io(e.to_string()))?;
    println!(
        "wrote {} requests over {days} day(s) (seed {seed}, base rate {:.2} req/s) to {path}",
        requests.len(),
        pattern.base_rate
    );
    Ok(())
}

fn ingest(inv: &Invocation) -> Result<(), CliError> {
    let path = inv
        .positionals
        .first()
        .cloned()
        .or_else(|| inv.options.get("csv").cloned())
        .ok_or_else(|| CliError::Ingest("usage: polca-cli ingest <trace.csv>".into()))?;
    let seed: u64 = inv.get("seed", 17)?;
    let days: f64 = inv.get("extrapolate-days", 42.0)?;
    let trace = IngestedTrace::from_csv_path(Path::new(&path))
        .map_err(|e| CliError::Ingest(e.to_string()))?;
    println!("ingested {path}:");
    if trace.skipped_rows() > 0 {
        println!(
            "  skipped {} malformed row(s); first: {}",
            trace.skipped_rows(),
            trace
                .row_errors()
                .first()
                .map(String::as_str)
                .unwrap_or("?")
        );
    }
    let stats = TraceStats::from_trace(&trace).map_err(|e| CliError::Ingest(e.to_string()))?;
    print!("{}", stats.report());
    let calibration = TraceCalibration::fit_with_stats(&trace, &stats)
        .map_err(|e| CliError::Ingest(e.to_string()))?;
    print!("{}", calibration.report());
    let config = calibration.trace_config(seed, SimTime::from_days(days));
    println!(
        "  extrapolated schedule: {days:.1} day(s), mean {:.3} req/s, max {:.3} req/s",
        config.schedule.mean_rate(),
        config.schedule.max_rate()
    );
    Ok(())
}

/// Parses `--req-trace` / `--req-sample N` into the polca-req
/// configuration. `--req-sample` alone implies tracing; the stride is
/// floored at 1 so `--req-sample 0` means "keep everything".
fn parse_req_trace(inv: &Invocation) -> Result<Option<ReqTraceConfig>, CliError> {
    let sample: Option<u64> = inv.get_opt("req-sample")?;
    if !inv.options.contains_key("req-trace") && sample.is_none() {
        return Ok(None);
    }
    Ok(Some(ReqTraceConfig {
        sample: sample.unwrap_or(1).max(1),
    }))
}

/// Builds the run recorder, attaching the polca-req trace config and
/// the polca-energy plan when requested.
fn build_recorder(
    obs_level: ObsLevel,
    req: Option<ReqTraceConfig>,
    energy: Option<EnergyPlan>,
) -> Recorder {
    let mut recorder = Recorder::new(obs_level);
    if let Some(cfg) = req {
        recorder = recorder.with_req_trace(cfg);
    }
    if let Some(plan) = energy {
        recorder = recorder.with_energy(plan);
    }
    recorder
}

/// Parses `--carbon-trace CSV | --carbon-diurnal [--pue X[,Y,…]]` into
/// the polca-energy plan. `--pue` alone implies the built-in diurnal
/// grid signal (like `--req-sample` implies `--req-trace`); a
/// comma-separated `--pue` list sets per-datacenter PUEs, clamped to
/// the last entry for higher datacenter indices.
fn parse_energy(inv: &Invocation) -> Result<Option<EnergyPlan>, CliError> {
    let trace_path = inv.options.get("carbon-trace");
    let diurnal = inv.options.contains_key("carbon-diurnal");
    let pue_raw = inv.options.get("pue");
    if trace_path.is_none() && !diurnal && pue_raw.is_none() {
        return Ok(None);
    }
    let signal = match trace_path {
        Some(path) => {
            if diurnal {
                return Err(CliError::BadValue {
                    flag: "carbon-diurnal".into(),
                    value: "conflicts with --carbon-trace".into(),
                });
            }
            let text =
                std::fs::read_to_string(path).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
            let trace = CarbonTrace::from_csv_str(&text).map_err(|e| CliError::BadValue {
                flag: "carbon-trace".into(),
                value: e.to_string(),
            })?;
            CarbonSignal::Trace(trace)
        }
        None => CarbonSignal::diurnal_default(),
    };
    let mut plan = EnergyPlan::new(signal);
    if let Some(raw) = pue_raw {
        let pue: Vec<f64> = raw
            .split(',')
            .map(|p| p.trim().parse::<f64>())
            .collect::<Result<_, _>>()
            .map_err(|_| CliError::BadValue {
                flag: "pue".into(),
                value: raw.clone(),
            })?;
        if pue.is_empty() || pue.iter().any(|p| !p.is_finite() || *p < 1.0) {
            return Err(CliError::BadValue {
                flag: "pue".into(),
                value: raw.clone(),
            });
        }
        plan = plan.with_pue(&pue);
    }
    Ok(Some(plan))
}

/// Prints the per-datacenter energy/carbon ledger table for a finished
/// run, if an energy plan was attached and produced any rows.
fn print_energy_summary(recorder: &Recorder, completed: u64, indent: &str) {
    let run = recorder.artifacts();
    let ledger = run.energy_ledger();
    if ledger.is_empty() {
        return;
    }
    print_energy_ledger(&ledger, completed, indent);
}

/// The ledger table itself (split out so the fleet path can print from
/// an explicitly merged ledger).
fn print_energy_ledger(ledger: &EnergyLedger, completed: u64, indent: &str) {
    println!(
        "{indent}energy ledger (grid mean {:.0} gCO2e/kWh):",
        ledger.mean_g_per_kwh()
    );
    println!(
        "{indent}  {:<6} {:>5} {:>10} {:>12} {:>10} {:>10}",
        "dc", "pue", "IT Wh", "facility Wh", "gCO2e", "rows"
    );
    for &(dc, ref level, pue) in &ledger.datacenters {
        let rows = ledger.rows.iter().filter(|r| r.dc == dc).count();
        println!(
            "{indent}  {:<6} {:>5.2} {:>10.1} {:>12.1} {:>10.1} {:>10}",
            dc, pue, level.it_wh, level.facility_wh, level.co2e_g, rows
        );
    }
    let site = &ledger.site;
    println!(
        "{indent}  site: {:.1} IT Wh ({:.1} busy), {:.1} facility Wh, {:.1} gCO2e",
        site.it_wh, site.busy_wh, site.facility_wh, site.co2e_g
    );
    if site.tokens > 0 {
        println!(
            "{indent}  per token: {:.2} J (busy {:.2} J), {:.4} gCO2e over {} token(s)",
            site.joules_per_token(),
            site.busy_wh * 3600.0 / site.tokens as f64,
            site.co2e_g_per_token(),
            site.tokens
        );
    }
    if completed > 0 {
        println!(
            "{indent}  per request: {:.2} Wh facility (measured, supersedes the \
             utilization-model estimate) over {completed} completed",
            CostModel::default()
                .energy_per_request_wh_measured(ledger, completed)
                .unwrap_or(0.0)
        );
    }
}

/// One-line digest of a finished req-trace run.
fn print_req_summary(recorder: &Recorder, indent: &str) {
    let run = recorder.artifacts();
    if !run.req_trace {
        return;
    }
    let n = run.requests.len();
    if n == 0 {
        println!("{indent}req-trace: 0 request record(s) sampled");
        return;
    }
    let joules: f64 = run.requests.iter().map(|r| r.joules).sum();
    let tokens: f64 = run
        .requests
        .iter()
        .map(|r| f64::from(r.output_tokens.max(1)))
        .sum();
    println!(
        "{indent}req-trace: {n} request record(s) sampled, \
         {:.1} J/request, {:.2} J/token (busy power, sampled set)",
        joules / n as f64,
        joules / tokens
    );
}

/// Builds the watch plane when `--watch` was given, loading
/// `--watch-rules` if present. When an energy plan is active and a
/// carbon threshold (`--carbon-budget` gCO2e/h or `--carbon-per-token`
/// gCO2e) was supplied, the built-in carbon rules ride along on the
/// same delayed OOB feed.
fn build_watch_plane(
    inv: &Invocation,
    provisioned_watts: f64,
    energy: Option<&EnergyPlan>,
) -> Result<Option<WatchPlane>, CliError> {
    if !inv.options.contains_key("watch") {
        return Ok(None);
    }
    let mut cfg = WatchConfig::new(provisioned_watts);
    if let Some(path) = inv.options.get("watch-rules") {
        let text =
            std::fs::read_to_string(path).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
        cfg.rules = RuleSet::parse(&text).map_err(|e| CliError::BadValue {
            flag: "watch-rules".into(),
            value: e.to_string(),
        })?;
    }
    if let Some(plan) = energy {
        let budget: Option<f64> = inv.get_opt("carbon-budget")?;
        let per_token: Option<f64> = inv.get_opt("carbon-per-token")?;
        if budget.is_some() || per_token.is_some() {
            cfg = cfg.with_energy(WatchEnergyConfig {
                signal: plan.signal.clone(),
                pue: plan.pue_for_dc(),
                budget_g_per_h: budget.unwrap_or(f64::INFINITY),
                co2e_per_token_g: per_token.unwrap_or(f64::INFINITY),
                window_s: 600.0,
            });
        }
    }
    Ok(Some(WatchPlane::new(cfg)))
}

/// One-line digest of a finished watch run, plus a line per incident.
fn print_watch_summary(artifacts: &WatchArtifacts, indent: &str) {
    let unresolved = artifacts
        .incidents()
        .iter()
        .filter(|i| i.state != IncidentState::Resolved)
        .count();
    println!(
        "{indent}watch: {} alert(s), {} incident(s) ({unresolved} unresolved at end of run)",
        artifacts.alerts().len(),
        artifacts.incidents().len(),
    );
    for inc in artifacts.incidents() {
        let lag = match inc.detection_lag_s {
            Some(lag) => format!("{lag:.1}s detection lag"),
            None => "onset unknown".to_string(),
        };
        println!(
            "{indent}  #{} {} [{}] {} — {lag}",
            inc.id,
            inc.rule,
            inc.severity,
            inc.state.tag(),
        );
    }
}

/// Writes `incidents.jsonl` + `report.md` into `dir` and re-renders
/// `trace.json` with the watch plane's alert/incident instant markers.
fn write_watch_artifacts(
    recorder: &Recorder,
    artifacts: &WatchArtifacts,
    dir: &str,
) -> Result<(), CliError> {
    let dir_path = Path::new(dir);
    let files = artifacts
        .write_dir(dir_path)
        .map_err(|e| CliError::Io(e.to_string()))?;
    let run = recorder.artifacts();
    let annotated = run.level.events_enabled();
    if annotated {
        std::fs::write(
            dir_path.join("trace.json"),
            run.chrome_trace_json_with(&artifacts.annotations()),
        )
        .map_err(|e| CliError::Io(e.to_string()))?;
    }
    println!(
        "  watch artifacts: {} file(s) in {}/{}",
        files.len(),
        dir.trim_end_matches('/'),
        if annotated {
            " (alert markers merged into trace.json)"
        } else {
            ""
        }
    );
    Ok(())
}

/// The per-row policy controller for the fleet paths, mirroring the
/// Figure 17 panel construction.
fn fleet_controller(
    kind: PolicyKind,
    policy: &PolcaPolicy,
    obs: &Recorder,
) -> Box<dyn PowerController> {
    match kind {
        PolicyKind::Polca => {
            Box::new(PolcaController::new(policy.clone()).with_recorder(obs.clone()))
        }
        PolicyKind::OneThreshLowPri => Box::new(
            SingleThresholdController::low_priority_only(policy.clone()).with_recorder(obs.clone()),
        ),
        PolicyKind::OneThreshAll => Box::new(
            SingleThresholdController::all_workloads(policy.clone()).with_recorder(obs.clone()),
        ),
        PolicyKind::NoCap => {
            Box::new(NoCapController::new(policy.clone()).with_recorder(obs.clone()))
        }
    }
}

/// Flags that, when present, show the caller is aware of the site
/// level; their absence on a multi-row run triggers the
/// compatibility note in [`parse_site_config`].
const SITE_FLAGS: &[&str] = &[
    "datacenters",
    "fleet-threads",
    "site-budget-mw",
    "oversub-dc",
    "oversub-site",
];

/// Parses the site-shape flags shared by the synthetic and
/// trace-replay fleet paths into a [`SiteConfig`] (shape, budgets, and
/// threading; the caller fills `base`). `--fleet-threads 0` means
/// "all cores".
fn parse_site_config(
    inv: &Invocation,
    rows: usize,
    datacenters: usize,
) -> Result<SiteConfig, CliError> {
    if datacenters == 0 {
        return Err(CliError::BadValue {
            flag: "datacenters".into(),
            value: "0".into(),
        });
    }
    if rows == 0 {
        return Err(CliError::BadValue {
            flag: "rows".into(),
            value: "0".into(),
        });
    }
    let mut site = SiteConfig {
        datacenters,
        rows_per_datacenter: rows,
        rows_per_pdu: inv.get("rows-per-pdu", 2)?,
        enforce_budgets: inv.options.contains_key("enforce-budgets"),
        ..SiteConfig::default()
    };
    let threads: usize = inv.get("fleet-threads", 1)?;
    site.threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        threads
    };
    if let Some(mw) = inv.get_opt::<f64>("site-budget-mw")? {
        site.site_budget_watts = Some(mw * 1e6);
    }
    if let Some(pct) = inv.get_opt::<f64>("oversub-dc")? {
        site.datacenter_oversubscription = Some(pct / 100.0);
    }
    if let Some(pct) = inv.get_opt::<f64>("oversub-site")? {
        site.site_oversubscription = Some(pct / 100.0);
    }
    if rows > 1 && datacenters == 1 && !SITE_FLAGS.iter().any(|f| inv.options.contains_key(*f)) {
        println!(
            "note: --rows now sizes one datacenter, not the whole hierarchy; \
             defaulting to a 1-datacenter site (add --datacenters N to scale out)"
        );
    }
    Ok(site)
}

/// Prints the site table: one line per row, an aggregate line, the
/// PDU budget summary, and one line per datacenter (plus the site
/// line when the site level is active).
fn print_site_table(report: &SiteReport, site_active: bool) {
    println!(
        "  {:<6} {:>8} {:>10} {:>9} {:>9} {:>9} {:>7}",
        "row", "offered", "completed", "rejected", "peak kW", "mean kW", "brakes"
    );
    for (i, r) in report.rows.iter().enumerate() {
        println!(
            "  {:<6} {:>8} {:>10} {:>9} {:>9.1} {:>9.1} {:>7}",
            i,
            r.offered,
            r.completed,
            r.rejected,
            r.peak_row_watts / 1000.0,
            r.mean_row_watts / 1000.0,
            r.brake_engagements
        );
    }
    println!(
        "  {:<6} {:>8} {:>10} {:>9} {:>9.1} {:>9.1} {:>7}",
        "fleet",
        report.offered(),
        report.completed(),
        report.rejected(),
        report.site_peak_watts / 1000.0,
        report.mean_site_watts() / 1000.0,
        report.fleet_brake_engagements
    );
    for (pdu, (&peak, &budget)) in report
        .pdu_peak_watts
        .iter()
        .zip(&report.pdu_budget_watts)
        .enumerate()
    {
        println!(
            "  PDU {pdu}: peak {:.1} kW / budget {:.1} kW",
            peak / 1000.0,
            budget / 1000.0
        );
    }
    if report.datacenters == 1 {
        println!(
            "  datacenter: peak {:.1} kW / budget {:.1} kW (util {:.1}%), \
             {} PDU / {} datacenter violation sample(s)",
            report.datacenter_peak_watts[0] / 1000.0,
            report.datacenter_budget_watts / 1000.0,
            report.datacenter_peak_utilization(0) * 100.0,
            report.pdu_violation_samples,
            report.datacenter_violation_samples
        );
    } else {
        for d in 0..report.datacenters {
            println!(
                "  datacenter {d}: peak {:.1} kW / budget {:.1} kW (util {:.1}%)",
                report.datacenter_peak_watts[d] / 1000.0,
                report.datacenter_budget_watts / 1000.0,
                report.datacenter_peak_utilization(d) * 100.0
            );
        }
    }
    if site_active {
        println!(
            "  site: peak {:.2} MW / budget {:.2} MW (util {:.1}%), \
             {} PDU / {} datacenter / {} site violation sample(s)",
            report.site_peak_watts / 1e6,
            report.site_budget_watts / 1e6,
            report.site_peak_utilization() * 100.0,
            report.pdu_violation_samples,
            report.datacenter_violation_samples,
            report.site_violation_samples
        );
    }
}

/// Writes the site-level artifacts into `dir` and each row's
/// artifacts into `dir/rowN/` (global row index, flat across
/// datacenters).
///
/// Each row's `prof.json` lands in its own `rowN/` directory, and the
/// site-level `prof.json` aggregates every row's profile (plus the
/// window loop's own merge and power-aggregation phases) so one file
/// answers "where did the whole site run spend its time".
fn write_site_artifacts(
    recorder: &Recorder,
    report: &SiteReport,
    dir: &str,
    obs_level: ObsLevel,
) -> Result<(), CliError> {
    let dir_path = Path::new(dir);
    for rec in &report.row_recorders {
        recorder.absorb_profiling(rec);
    }
    let mut total = recorder
        .write_dir(dir_path)
        .map_err(|e| CliError::Io(e.to_string()))?
        .len();
    for (i, rec) in report.row_recorders.iter().enumerate() {
        total += rec
            .write_dir(&dir_path.join(format!("row{i}")))
            .map_err(|e| CliError::Io(e.to_string()))?
            .len();
    }
    println!(
        "  obs artifacts ({obs_level}): {total} file(s) in {}/ (site level) and row0..row{}/",
        dir.trim_end_matches('/'),
        report.rows.len() - 1
    );
    Ok(())
}

/// When `--watch` was given on a fleet path, subscribes a per-row
/// tick buffer to `taps` and returns it; the buffered ticks are
/// replayed per datacenter after the run by [`finalize_site_watch`].
fn site_watch_buffer(
    inv: &Invocation,
    taps: &mut RowPowerTaps,
    n_rows: usize,
) -> std::sync::Arc<RowTickBuffer> {
    debug_assert!(inv.options.contains_key("watch"));
    let buffer = RowTickBuffer::new(n_rows);
    taps.subscribe(buffer.clone());
    buffer
}

/// Replays each datacenter's buffered, canonically-merged OOB power
/// stream through its own watch plane and prints/writes the per-DC
/// incident artifacts (`DIR/dcD/`). Replay order is global row order
/// within each datacenter, so the incident set is byte-identical
/// whatever `--fleet-threads` was.
///
/// Fleet watch planes ride the power telemetry only (the event-stream
/// rules stay a single-row feature: row event logs are per-recorder
/// and would interleave across datacenters).
fn finalize_site_watch(
    inv: &Invocation,
    buffer: &RowTickBuffer,
    report: &SiteReport,
    dc_provisioned_watts: f64,
    horizon: SimTime,
    obs_out: Option<&str>,
    energy: Option<&EnergyPlan>,
) -> Result<(), CliError> {
    for d in 0..report.datacenters {
        let columns: Vec<_> = report
            .rows_in_datacenter(d)
            .map(|row| buffer.take_row(row))
            .collect();
        let merged = merge_tick_columns(&columns);
        let plane =
            build_watch_plane(inv, dc_provisioned_watts, energy)?.expect("watch flag checked");
        let sub = plane.subscriber();
        for tick in &merged {
            sub.on_tick(tick.t, tick.truth_watts, tick.observed_watts);
        }
        let artifacts = plane.finalize(horizon);
        println!("  datacenter {d}:");
        print_watch_summary(&artifacts, "    ");
        if let Some(dir) = obs_out {
            let dc_dir = Path::new(dir).join(format!("dc{d}"));
            let files = artifacts
                .write_dir(&dc_dir)
                .map_err(|e| CliError::Io(e.to_string()))?;
            println!(
                "    watch artifacts: {} file(s) in {}/dc{d}/",
                files.len(),
                dir.trim_end_matches('/')
            );
        }
    }
    Ok(())
}

fn evaluate(inv: &Invocation) -> Result<(), CliError> {
    if inv.options.contains_key("trace-csv") {
        return evaluate_trace(inv);
    }
    let rows: usize = inv.get("rows", 1)?;
    let datacenters: usize = inv.get("datacenters", 1)?;
    if rows > 1 || datacenters > 1 {
        return evaluate_fleet(inv, rows, datacenters);
    }
    let policy_name: String = inv.get("policy", "polca".to_string())?;
    let kind = find_policy(&policy_name)?;
    let added: f64 = inv.get("added", 30.0)?;
    let days: f64 = inv.get("days", 2.0)?;
    let seed: u64 = inv.get("seed", 17)?;
    let power_scale: f64 = inv.get("power-scale", 1.0)?;
    let obs_out: Option<String> = inv.get_opt("obs-out")?;
    let profiling = inv.options.contains_key("profile");
    // The watch plane's count rules and burn tracker ride the event
    // stream, so `--watch` needs at least the events level; polca-prof
    // accumulators only exist at the full level.
    let mut obs_level = parse_obs_level(inv, &obs_out)?;
    let req_trace = parse_req_trace(inv)?;
    let energy = parse_energy(inv)?;
    if inv.options.contains_key("watch") || req_trace.is_some() {
        obs_level = obs_level.max(ObsLevel::Events);
    }
    if energy.is_some() {
        // The ledger records through the metrics gate.
        obs_level = obs_level.max(ObsLevel::Metrics);
    }
    if profiling {
        obs_level = obs_level.max(ObsLevel::Full);
    }
    let recorder = build_recorder(obs_level, req_trace, energy.clone());

    let mut study = OversubscriptionStudy::new(
        RowConfig::paper_inference_row(),
        PolcaPolicy::default(),
        days,
        seed,
    );
    study.set_record_power(false);
    study.set_recorder(recorder.clone());
    let engine = parse_engine(inv)?;
    study.set_engine(engine.clone());
    let watch = build_watch_plane(inv, study.row().provisioned_watts(), energy.as_ref())?;
    if let Some(plane) = &watch {
        let mut taps = RowPowerTaps::new();
        taps.subscribe(plane.subscriber());
        study.set_oob_taps(taps);
        recorder.set_tap(plane.event_tap());
    }
    let run_start = Instant::now();
    let o = study.run(kind, added / 100.0, power_scale);
    let run_wall_ns = run_start.elapsed().as_nanos() as u64;
    println!(
        "{} at +{added:.0}% servers, power×{power_scale}, {days} day(s), engine {}:",
        kind.name(),
        engine_tag(&engine)
    );
    println!(
        "  normalized latency  LP p50 {:.3} p99 {:.3} | HP p50 {:.3} p99 {:.3}",
        o.low_normalized.p50, o.low_normalized.p99, o.high_normalized.p50, o.high_normalized.p99
    );
    println!(
        "  peak util {:.1}%  brakes {}  SLO {}",
        o.peak_utilization * 100.0,
        o.brake_engagements,
        if o.slo.met { "met" } else { "MISSED" }
    );
    let cost = CostModel::default();
    let value = cost.oversubscription_value(study.row(), added / 100.0);
    println!(
        "  capacity value: {} extra servers ≈ ${:.2}M of avoided datacenter build-out",
        value.extra_servers,
        value.avoided_capex_usd / 1e6
    );
    print_req_summary(&recorder, "  ");
    print_energy_summary(&recorder, o.counts.1, "  ");
    if profiling {
        // Snapshot before artifact I/O so the table accounts against
        // the run's wall time only.
        let snap = recorder.prof().snapshot();
        println!("  self-profile (polca-prof):");
        for line in snap.attribution_table(run_wall_ns).lines() {
            println!("    {line}");
        }
    }
    if let Some(dir) = &obs_out {
        let files = recorder
            .write_dir(Path::new(dir))
            .map_err(|e| CliError::Io(e.to_string()))?;
        println!(
            "  obs artifacts ({obs_level}): {} file(s) in {}/",
            files.len(),
            dir.trim_end_matches('/')
        );
    }
    if let Some(plane) = &watch {
        recorder.clear_tap();
        let artifacts = plane.finalize(SimTime::from_days(days));
        print_watch_summary(&artifacts, "  ");
        if let Some(dir) = &obs_out {
            write_watch_artifacts(&recorder, &artifacts, dir)?;
        }
    }
    Ok(())
}

/// Parses `--obs-level`, defaulting to `Full` when `--obs-out` is set.
fn parse_obs_level(inv: &Invocation, obs_out: &Option<String>) -> Result<ObsLevel, CliError> {
    match inv.options.get("obs-level") {
        Some(v) => v.parse::<ObsLevel>().map_err(|_| CliError::BadValue {
            flag: "obs-level".into(),
            value: v.clone(),
        }),
        // `--obs-out` without an explicit level means "give me everything".
        None if obs_out.is_some() => Ok(ObsLevel::Full),
        None => Ok(ObsLevel::Off),
    }
}

/// The `evaluate --rows N [--datacenters D]` path: a site fleet on
/// the synthetic production-shaped workload, dispatched round-robin
/// across all rows under per-PDU, datacenter, and site power budgets.
fn evaluate_fleet(inv: &Invocation, rows: usize, datacenters: usize) -> Result<(), CliError> {
    let policy_name: String = inv.get("policy", "polca".to_string())?;
    let kind = find_policy(&policy_name)?;
    let added: f64 = inv.get("added", 30.0)?;
    let days: f64 = inv.get("days", 2.0)?;
    let seed: u64 = inv.get("seed", 17)?;
    let power_scale: f64 = inv.get("power-scale", 1.0)?;
    let mut site = parse_site_config(inv, rows, datacenters)?;
    let obs_out: Option<String> = inv.get_opt("obs-out")?;
    let req_trace = parse_req_trace(inv)?;
    let energy = parse_energy(inv)?;
    let mut obs_level = parse_obs_level(inv, &obs_out)?;
    if req_trace.is_some() {
        obs_level = obs_level.max(ObsLevel::Events);
    }
    if energy.is_some() {
        obs_level = obs_level.max(ObsLevel::Metrics);
    }
    let recorder = build_recorder(obs_level, req_trace, energy.clone());

    // The site serves the same production-shaped workload as the
    // single-row study, scaled so each of the rows sees the
    // oversubscribed per-row offered load after round-robin dispatch.
    let total_rows = rows * datacenters;
    let base_row = RowConfig::paper_inference_row();
    let study = OversubscriptionStudy::new(base_row.clone(), PolcaPolicy::default(), days, seed);
    let horizon = SimTime::from_days(days);
    let config = TraceConfig {
        seed,
        horizon,
        schedule: study
            .base_schedule()
            .scaled((1.0 + added / 100.0) * total_rows as f64),
        mix: WorkloadClass::table6(),
    };
    let source = ArrivalGenerator::new(&config);
    let row = base_row.with_added_servers(added / 100.0);

    site.base.seed = seed;
    site.base.power_scale = power_scale;
    site.base.record_power_series = false;
    site.base.recorder = recorder.clone();
    let engine = parse_engine(inv)?;
    site.base.engine = engine.clone();
    let watch_buffer = if inv.options.contains_key("watch") {
        let mut taps = RowPowerTaps::new();
        let buffer = site_watch_buffer(inv, &mut taps, total_rows);
        site.base.oob_taps = taps;
        Some(buffer)
    } else {
        None
    };
    let site_active = site.site_active();
    let enforce = site.enforce_budgets;
    let policy = PolcaPolicy::default();
    let sim = SiteSim::new(
        row.clone(),
        site,
        |_, rec| fleet_controller(kind, &policy, rec),
        source,
        horizon,
    );
    let report = sim.run();
    if datacenters > 1 {
        println!(
            "{} site: {datacenters} datacenters × {rows} rows (+{added:.0}% servers each), \
             {} PDU(s), {days} day(s), engine {}, budgets {}:",
            kind.name(),
            report.pdu_budget_watts.len(),
            engine_tag(&engine),
            if enforce { "enforced" } else { "monitored" }
        );
    } else {
        println!(
            "{} fleet: {rows} rows (+{added:.0}% servers each), {} PDU(s), \
             {days} day(s), engine {}, budgets {}:",
            kind.name(),
            report.pdu_budget_watts.len(),
            engine_tag(&engine),
            if enforce { "enforced" } else { "monitored" }
        );
    }
    print_site_table(&report, site_active);
    if energy.is_some() {
        // Row energy accounts live in the row-private recorders; merge
        // them into the site recorder in canonical row order so the
        // site-level ledger (table, energy.json) covers the fleet.
        for rec in &report.row_recorders {
            recorder.absorb_energy(rec);
        }
        print_energy_summary(&recorder, report.completed(), "  ");
    }
    if let Some(dir) = &obs_out {
        write_site_artifacts(&recorder, &report, dir, obs_level)?;
    }
    if let Some(buffer) = &watch_buffer {
        finalize_site_watch(
            inv,
            buffer,
            &report,
            rows as f64 * row.provisioned_watts(),
            horizon,
            obs_out.as_deref(),
            energy.as_ref(),
        )?;
    }
    Ok(())
}

/// Drain window appended after the last replayed arrival in the fleet
/// replay path, matching `TraceEvaluation`'s horizon rule.
const FLEET_DRAIN_S: f64 = 1800.0;

fn evaluate_trace(inv: &Invocation) -> Result<(), CliError> {
    let path = inv.options.get("trace-csv").cloned().expect("checked");
    let seed: u64 = inv.get("seed", 17)?;
    let rate_scale: f64 = inv.get("rate-scale", 1.0)?;
    let time_scale: f64 = inv.get("time-scale", 1.0)?;
    let servers: usize = inv.get("servers", 40)?;
    let added: f64 = inv.get("added", 30.0)?;
    let rows: usize = inv.get("rows", 1)?;
    let datacenters: usize = inv.get("datacenters", 1)?;
    let jobs: usize = inv.get("jobs", 1)?;
    let obs_out: Option<String> = inv.get_opt("obs-out")?;
    let req_trace = parse_req_trace(inv)?;
    let energy = parse_energy(inv)?;
    let mut obs_level = parse_obs_level(inv, &obs_out)?;
    if inv.options.contains_key("watch") || req_trace.is_some() {
        obs_level = obs_level.max(ObsLevel::Events);
    }
    if energy.is_some() {
        obs_level = obs_level.max(ObsLevel::Metrics);
    }
    let recorder = build_recorder(obs_level, req_trace, energy.clone());

    let trace = IngestedTrace::from_csv_path_observed(Path::new(&path), &recorder)
        .map_err(|e| CliError::Ingest(e.to_string()))?;
    let replay = TraceReplay::with_options(
        &trace,
        ReplayOptions {
            time_scale,
            rate_scale,
            seed,
        },
    );
    let requests: Vec<_> = replay.collect();
    let n = requests.len();
    let mut row = RowConfig::paper_inference_row();
    row.base_servers = servers;
    let row = row.with_added_servers(added / 100.0);
    let deployed = row.total_servers();
    let eval_row_provisioned = row.provisioned_watts();
    let engine = parse_engine(inv)?;

    if rows > 1 || datacenters > 1 {
        // Site replay: the ingested stream fans out round-robin
        // across all `rows × datacenters` identical rows under one
        // policy.
        let mut site = parse_site_config(inv, rows, datacenters)?;
        let total_rows = rows * datacenters;
        let kind = match inv.get_opt::<String>("policy")? {
            Some(name) => find_policy(&name)?,
            None => PolicyKind::Polca,
        };
        let last_arrival = requests.last().map(|r| r.arrival.as_secs()).unwrap_or(0.0);
        let horizon = SimTime::from_secs(last_arrival + FLEET_DRAIN_S);
        println!(
            "replaying {path} across {total_rows} rows: {n} requests over {:.1} h on \
             {deployed} servers/row (+{added:.0}% oversubscribed, rate ×{rate_scale}, \
             time ×{time_scale})",
            trace.duration_s() * time_scale / 3600.0
        );
        site.base.seed = seed;
        site.base.record_power_series = false;
        site.base.recorder = recorder.clone();
        site.base.engine = engine.clone();
        let watch_buffer = if inv.options.contains_key("watch") {
            let mut taps = RowPowerTaps::new();
            let buffer = site_watch_buffer(inv, &mut taps, total_rows);
            site.base.oob_taps = taps;
            Some(buffer)
        } else {
            None
        };
        let site_active = site.site_active();
        let enforce = site.enforce_budgets;
        let policy = PolcaPolicy::default();
        let sim = SiteSim::new(
            row.clone(),
            site,
            |_, rec| fleet_controller(kind, &policy, rec),
            requests.into_iter(),
            horizon,
        );
        let report = sim.run();
        println!(
            "{} fleet: {} PDU(s), budgets {}:",
            kind.name(),
            report.pdu_budget_watts.len(),
            if enforce { "enforced" } else { "monitored" }
        );
        print_site_table(&report, site_active);
        if energy.is_some() {
            for rec in &report.row_recorders {
                recorder.absorb_energy(rec);
            }
            print_energy_summary(&recorder, report.completed(), "  ");
        }
        if let Some(dir) = &obs_out {
            write_site_artifacts(&recorder, &report, dir, obs_level)?;
        }
        if let Some(buffer) = &watch_buffer {
            finalize_site_watch(
                inv,
                buffer,
                &report,
                rows as f64 * row.provisioned_watts(),
                horizon,
                obs_out.as_deref(),
                energy.as_ref(),
            )?;
        }
        return Ok(());
    }

    let mut eval = TraceEvaluation::new(row, PolcaPolicy::default(), requests, seed);
    eval.set_recorder(recorder.clone());
    eval.set_engine(engine.clone());

    println!(
        "replaying {path}: {n} requests over {:.1} h on {deployed} servers \
         (+{added:.0}% oversubscribed, rate ×{rate_scale}, time ×{time_scale}, engine {})",
        trace.duration_s() * time_scale / 3600.0,
        engine_tag(&engine)
    );
    let kinds: Vec<PolicyKind> = match inv.get_opt::<String>("policy")? {
        Some(name) => vec![find_policy(&name)?],
        None => PolicyKind::all().to_vec(),
    };
    println!(
        "  {:<18} {:>8} {:>8} {:>10} {:>7}",
        "policy", "LP p99", "HP p99", "peak util", "brakes"
    );
    let watch_on = inv.options.contains_key("watch");
    let mut first_watch: Option<(PolicyKind, WatchArtifacts)> = None;
    if !watch_on && kinds.len() > 1 {
        // Full Figure 17 panel with no watch plane: every cell is
        // pure, so run them on `--jobs` worker threads. Outcomes and
        // per-cell recorders come back in canonical panel order, so
        // the table and the absorbed artifacts are byte-identical to
        // a sequential run whatever `jobs` is.
        for o in eval.run_all(jobs) {
            println!(
                "  {:<18} {:>8.3} {:>8.3} {:>9.1}% {:>7}",
                o.kind.name(),
                o.low_normalized.p99,
                o.high_normalized.p99,
                o.peak_utilization * 100.0,
                o.brake_engagements
            );
        }
    } else {
        if jobs > 1 {
            println!("  note: --watch and single-policy runs are sequential; ignoring --jobs");
        }
        // Each policy run gets its own watch plane: the replay clock
        // restarts per run, and a shared engine would see time jump
        // backwards. The obs-out incident artifacts come from the
        // first policy's plane (POLCA when running the full
        // comparison).
        let provisioned = eval_row_provisioned;
        for kind in kinds {
            let watch = build_watch_plane(inv, provisioned, energy.as_ref())?;
            if let Some(plane) = &watch {
                let mut taps = RowPowerTaps::new();
                taps.subscribe(plane.subscriber());
                eval.set_oob_taps(taps);
                recorder.set_tap(plane.event_tap());
            }
            let o = eval.run(kind);
            println!(
                "  {:<18} {:>8.3} {:>8.3} {:>9.1}% {:>7}",
                kind.name(),
                o.low_normalized.p99,
                o.high_normalized.p99,
                o.peak_utilization * 100.0,
                o.brake_engagements
            );
            if let Some(plane) = watch {
                recorder.clear_tap();
                let artifacts = plane.finalize(eval.horizon());
                print_watch_summary(&artifacts, "    ");
                if first_watch.is_none() {
                    first_watch = Some((kind, artifacts));
                }
            }
        }
    }
    print_req_summary(&recorder, "  ");
    // On the multi-policy panel the ledger aggregates every cell (each
    // run contributes one row-0 account, merged in canonical order).
    print_energy_summary(&recorder, 0, "  ");
    if let Some(dir) = &obs_out {
        let files = recorder
            .write_dir(Path::new(dir))
            .map_err(|e| CliError::Io(e.to_string()))?;
        println!(
            "  obs artifacts ({obs_level}): {} file(s) in {}/",
            files.len(),
            dir.trim_end_matches('/')
        );
        if let Some((kind, artifacts)) = &first_watch {
            println!("  watch artifacts below are from the {} run", kind.name());
            write_watch_artifacts(&recorder, artifacts, dir)?;
        }
    }
    Ok(())
}

fn plan(inv: &Invocation) -> Result<(), CliError> {
    let days: f64 = inv.get("days", 2.0)?;
    let seed: u64 = inv.get("seed", 17)?;
    let servers: usize = inv.get("servers", 40)?;
    let jobs: usize = inv.get("jobs", 1)?;
    let mut row = RowConfig::paper_inference_row();
    row.base_servers = servers;
    let mut study = OversubscriptionStudy::new(row, PolcaPolicy::default(), days, seed);
    study.set_record_power(false);
    let trainer = study.trained_thresholds();
    study.set_policy(trainer.train());
    println!(
        "trained thresholds: T1 {:.0}% T2 {:.0}% (40s spike {:.1}%)",
        trainer.t1() * 100.0,
        trainer.t2() * 100.0,
        trainer.max_spike_40s_frac * 100.0
    );
    // The sweep runner executes the levels on `--jobs` worker threads
    // and hands back outcomes in level order, so the printed table is
    // byte-identical whatever `jobs` is.
    const LEVELS: [u32; 7] = [0, 10, 20, 25, 30, 35, 40];
    let cells: Vec<(PolicyKind, f64, f64)> = LEVELS
        .iter()
        .map(|&pct| (PolicyKind::Polca, pct as f64 / 100.0, 1.0))
        .collect();
    let outcomes = study.sweep(&cells, jobs);
    let mut best = 0.0;
    for (&pct, o) in LEVELS.iter().zip(&outcomes) {
        let added = pct as f64 / 100.0;
        let ok = o.slo.met;
        println!(
            "  +{pct:>2}%: brakes {:>4}, LP p99 {:.3}, HP p99 {:.3} — {}",
            o.brake_engagements,
            o.low_normalized.p99,
            o.high_normalized.p99,
            if ok { "SLO met" } else { "SLO MISSED" }
        );
        if ok && added > best {
            best = added;
        }
    }
    println!("plan: deploy up to +{:.0}% servers.", best * 100.0);
    Ok(())
}

/// The `profile` subcommand: self-profiles the simulator with
/// polca-prof on the quick-demo oversubscription study, prints the
/// per-component attribution table, and (on request) writes the
/// profiling artifact set and the `BENCH_*.json` perf baselines.
///
/// The reference run and the arrival-trace cache are warmed by an
/// un-instrumented run first, so the timed repetitions measure
/// simulation work rather than one-off synthesis, and the attribution
/// table can account for ≥90 % of the measured wall time.
fn profile(inv: &Invocation) -> Result<(), CliError> {
    let seed: u64 = inv.get("seed", 17)?;
    let reps: usize = inv.get("reps", 3)?.max(1);
    let out: Option<String> = inv.get_opt("out")?;
    let bench_out: Option<String> = inv.get_opt("bench-out")?;

    // --- sim: the quick-demo study under POLCA, fully instrumented ---
    let mut study = OversubscriptionStudy::quick_demo(seed);
    study.set_record_power(false);
    let _ = study.run(PolicyKind::Polca, 0.30, 1.0); // warm caches
    let recorder = Recorder::new(ObsLevel::Full);
    study.set_recorder(recorder.clone());
    let start = Instant::now();
    for _ in 0..reps {
        let _ = study.run(PolicyKind::Polca, 0.30, 1.0);
    }
    let wall = start.elapsed();
    let wall_ns = wall.as_nanos() as u64;
    let snap = recorder.prof().snapshot();
    let sim_s = study.days() * 86_400.0 * reps as f64;
    let events = snap.counter(ProfCounter::EventsPopped);
    let wall_s = wall.as_secs_f64();
    let sim_rate = sim_s / wall_s;
    let event_rate = events as f64 / wall_s;
    println!(
        "profiled quick-demo study (seed {seed}, {reps} rep(s)): \
         {sim_s:.0} simulated s, {events} events in {wall_s:.3} s wall"
    );
    println!(
        "  {sim_rate:.0} simulated-seconds/sec  {event_rate:.0} events/sec  \
         peak queue depth {}",
        snap.counter(ProfCounter::PeakQueueDepth)
    );
    print!("{}", snap.attribution_table(wall_ns));

    // --- watch: attach cost of the online alerting plane ---
    // Best-of-N on both sides: the quick-demo run is milliseconds
    // long, so single samples are too noisy for the ci.sh gate.
    let mut base_s = f64::MAX;
    let mut watch_s = f64::MAX;
    let (mut alerts, mut incidents) = (0, 0);
    for _ in 0..reps {
        base_s = base_s.min(profile_study_run(&mut study));
        let rec = Recorder::new(ObsLevel::Full);
        study.set_recorder(rec.clone());
        let plane = WatchPlane::new(WatchConfig::new(study.row().provisioned_watts()));
        let mut taps = RowPowerTaps::new();
        plane.attach(&mut taps, &rec);
        study.set_oob_taps(taps);
        let start = Instant::now();
        let _ = study.run(PolicyKind::Polca, 0.30, 1.0);
        watch_s = watch_s.min(start.elapsed().as_secs_f64());
        rec.clear_tap();
        study.set_oob_taps(RowPowerTaps::new());
        let artifacts = plane.finalize(SimTime::from_days(study.days()));
        alerts = artifacts.alerts().len();
        incidents = artifacts.incidents().len();
    }
    let watch_overhead_pct = if base_s > 0.0 {
        (watch_s - base_s) / base_s * 100.0
    } else {
        0.0
    };
    println!(
        "watch plane: baseline {base_s:.3} s, with watch {watch_s:.3} s \
         ({watch_overhead_pct:+.1}% — {alerts} alert(s), {incidents} incident(s))"
    );

    // --- ingest: CSV parse / stats / calibrate / replay pipeline ---
    let csv = profile_ingest_corpus(seed);
    let rows = csv.lines().count().saturating_sub(1);
    let (mut parse_s, mut stats_s, mut calibrate_s, mut replay_s) =
        (f64::MAX, f64::MAX, f64::MAX, f64::MAX);
    for _ in 0..reps {
        let start = Instant::now();
        let trace = IngestedTrace::from_reader(csv.as_bytes())
            .map_err(|e| CliError::Ingest(e.to_string()))?;
        parse_s = parse_s.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        let stats = TraceStats::from_trace(&trace).map_err(|e| CliError::Ingest(e.to_string()))?;
        stats_s = stats_s.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        let _ = TraceCalibration::fit_with_stats(&trace, &stats)
            .map_err(|e| CliError::Ingest(e.to_string()))?;
        calibrate_s = calibrate_s.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        let replay = TraceReplay::with_options(
            &trace,
            ReplayOptions {
                rate_scale: 1.3,
                ..ReplayOptions::default()
            },
        );
        let _ = replay.count();
        replay_s = replay_s.min(start.elapsed().as_secs_f64());
    }
    let rows_per_s = rows as f64 / parse_s;
    println!(
        "ingest: {rows} rows — parse {:.1} us ({rows_per_s:.0} rows/sec), \
         stats {:.1} us, calibrate {:.1} us, replay {:.1} us",
        parse_s * 1e6,
        stats_s * 1e6,
        calibrate_s * 1e6,
        replay_s * 1e6
    );

    // --- serve: the continuous-batching engine on the same study ---
    let mut serve_study = OversubscriptionStudy::quick_demo(seed);
    serve_study.set_record_power(false);
    serve_study.set_engine(DisaggregationConfig::default().batched_engine(false));
    let _ = serve_study.run(PolicyKind::Polca, 0.30, 1.0); // warm caches
    let serve_rec = Recorder::new(ObsLevel::Full);
    serve_study.set_recorder(serve_rec.clone());
    let mut serve_wall = f64::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        let _ = serve_study.run(PolicyKind::Polca, 0.30, 1.0);
        serve_wall = serve_wall.min(start.elapsed().as_secs_f64());
    }
    let serve_snap = serve_rec.prof().snapshot();
    let serve_sim_rate = serve_study.days() * 86_400.0 / serve_wall;
    println!(
        "serve engine (batched): {serve_sim_rate:.0} simulated-seconds/sec — \
         peak batch {}, peak KV blocks {}, {} preemption(s)",
        serve_snap.counter(ProfCounter::ServePeakBatch),
        serve_snap.counter(ProfCounter::ServeKvPeakBlocks),
        serve_snap.counter(ProfCounter::ServePreemptions),
    );

    // --- fleet: the site simulator, sequential vs all-core stepping ---
    let fleet_dcs = FLEET_BENCH_DCS;
    let fleet_rows = FLEET_BENCH_ROWS_PER_DC;
    let fleet_horizon_s = FLEET_BENCH_HORIZON_S;
    let fleet_requests = profile_fleet_requests(seed, fleet_horizon_s);
    let threads_max = std::thread::available_parallelism().map_or(1, usize::from);
    let fleet_best = |threads: usize| -> f64 {
        let mut best = f64::MAX;
        for _ in 0..reps {
            best = best.min(profile_fleet_run(seed, threads, &fleet_requests));
        }
        best
    };
    let fleet_seq = fleet_best(1);
    let fleet_par = if threads_max > 1 {
        fleet_best(threads_max)
    } else {
        fleet_seq
    };
    let fleet_wall = fleet_seq.min(fleet_par);
    let fleet_speedup = fleet_seq / fleet_par;
    let fleet_rate = fleet_horizon_s / fleet_wall;
    println!(
        "fleet (site sim): {fleet_dcs} datacenters × {fleet_rows} rows, \
         {fleet_horizon_s:.0} simulated s — 1 thread {fleet_seq:.3} s, \
         {threads_max} thread(s) {fleet_par:.3} s ({fleet_speedup:.2}×, \
         {fleet_rate:.0} simulated-seconds/sec)"
    );

    // --- energy: ledger-attach cost on the same study ---
    // Best-of-N on both sides like the watch pair; the baseline runs at
    // the same metrics level so the delta isolates the ledger itself.
    let mut energy_base_s = f64::MAX;
    let mut energy_s = f64::MAX;
    let (mut ledger_wh, mut ledger_g) = (0.0, 0.0);
    for _ in 0..reps {
        let rec = Recorder::new(ObsLevel::Metrics);
        study.set_recorder(rec);
        let start = Instant::now();
        let _ = study.run(PolicyKind::Polca, 0.30, 1.0);
        energy_base_s = energy_base_s.min(start.elapsed().as_secs_f64());
        let rec = Recorder::new(ObsLevel::Metrics)
            .with_energy(EnergyPlan::new(CarbonSignal::diurnal_default()));
        study.set_recorder(rec.clone());
        let start = Instant::now();
        let _ = study.run(PolicyKind::Polca, 0.30, 1.0);
        energy_s = energy_s.min(start.elapsed().as_secs_f64());
        let ledger = rec.artifacts().energy_ledger();
        ledger_wh = ledger.site.facility_wh;
        ledger_g = ledger.site.co2e_g;
    }
    let energy_overhead_pct = if energy_base_s > 0.0 {
        (energy_s - energy_base_s) / energy_base_s * 100.0
    } else {
        0.0
    };
    println!(
        "energy ledger: baseline {energy_base_s:.3} s, with ledger {energy_s:.3} s \
         ({energy_overhead_pct:+.1}% — {ledger_wh:.1} facility Wh, {ledger_g:.1} gCO2e)"
    );

    if let Some(dir) = &out {
        let files = recorder
            .write_dir(Path::new(dir))
            .map_err(|e| CliError::Io(e.to_string()))?;
        println!(
            "profiling artifacts: {} file(s) in {}/ (prof.json, prof.folded, prof.trace.json, …)",
            files.len(),
            dir.trim_end_matches('/')
        );
    }
    if let Some(dir) = &bench_out {
        let dir_path = Path::new(dir);
        let sim = BenchReport::new("sim")
            .metric("sim_s_per_s", sim_rate)
            .metric("events_per_s", event_rate)
            .metric("wall_s", wall_s)
            .metric("ns_per_event", wall_ns as f64 / events.max(1) as f64)
            .metric("coverage_pct", snap.coverage(wall_ns) * 100.0)
            .metric_u64("events", events)
            .metric_u64(
                "peak_queue_depth",
                snap.counter(ProfCounter::PeakQueueDepth),
            )
            .phases(&snap);
        let watch = BenchReport::new("watch")
            .metric("watch_runs_per_s", 1.0 / watch_s.max(1e-9))
            .metric("wall_s_baseline", base_s)
            .metric("wall_s_watch", watch_s)
            .metric("overhead_pct", watch_overhead_pct)
            .metric_u64("alerts", alerts as u64)
            .metric_u64("incidents", incidents as u64);
        let ingest = BenchReport::new("ingest")
            .metric("rows_per_s", rows_per_s)
            .metric("parse_s", parse_s)
            .metric("stats_s", stats_s)
            .metric("calibrate_s", calibrate_s)
            .metric("replay_s", replay_s)
            .metric_u64("rows", rows as u64);
        let serve = BenchReport::new("serve")
            .metric("serve_sim_s_per_s", serve_sim_rate)
            .metric("wall_s", serve_wall)
            .metric_u64(
                "peak_batch",
                serve_snap.counter(ProfCounter::ServePeakBatch),
            )
            .metric_u64(
                "kv_peak_blocks",
                serve_snap.counter(ProfCounter::ServeKvPeakBlocks),
            )
            .metric_u64(
                "preemptions",
                serve_snap.counter(ProfCounter::ServePreemptions),
            );
        let fleet = BenchReport::new("fleet")
            .metric("fleet_sim_s_per_s", fleet_rate)
            .metric("fleet_parallel_speedup", fleet_speedup)
            .metric("wall_s_threads_1", fleet_seq)
            .metric("wall_s_threads_max", fleet_par)
            .metric_u64("threads_max", threads_max as u64)
            .metric_u64("datacenters", fleet_dcs as u64)
            .metric_u64("rows_per_datacenter", fleet_rows as u64);
        let energy = BenchReport::new("energy")
            .metric("energy_runs_per_s", 1.0 / energy_s.max(1e-9))
            .metric("wall_s_baseline", energy_base_s)
            .metric("wall_s_energy", energy_s)
            .metric("overhead_pct", energy_overhead_pct)
            .metric("site_facility_wh", ledger_wh)
            .metric("site_co2e_g", ledger_g);
        for report in [&sim, &watch, &ingest, &serve, &fleet, &energy] {
            let path = report
                .write(dir_path)
                .map_err(|e| CliError::Io(e.to_string()))?;
            println!("wrote {}", path.display());
        }
    }
    Ok(())
}

/// One timed, fully-instrumented quick-demo run on a fresh recorder
/// (the watch-overhead baseline).
fn profile_study_run(study: &mut OversubscriptionStudy) -> f64 {
    let rec = Recorder::new(ObsLevel::Full);
    study.set_recorder(rec.clone());
    let start = Instant::now();
    let _ = study.run(PolicyKind::Polca, 0.30, 1.0);
    start.elapsed().as_secs_f64()
}

/// RNG stream for the `profile` ingest corpus (mirrors the
/// `ingest` Criterion bench so their row shapes match).
const PROFILE_CORPUS_STREAM: u64 = 0xBE7C;

/// A one-hour synthetic trace exported through the user-facing CSV
/// path — the corpus the ingest pipeline is profiled on.
fn profile_ingest_corpus(seed: u64) -> String {
    let pattern = DiurnalPattern {
        base_rate: 1.5,
        ..DiurnalPattern::default()
    };
    let horizon_s = 3_600.0;
    let mut rng = SimRng::from_seed_stream(seed, PROFILE_CORPUS_STREAM);
    let config = TraceConfig {
        seed,
        horizon: SimTime::from_secs(horizon_s),
        schedule: pattern.schedule(horizon_s, 60.0, &mut rng),
        mix: WorkloadClass::table6(),
    };
    let requests: Vec<_> = ArrivalGenerator::new(&config).collect();
    requests_to_csv(&requests)
}

/// Shape of the `profile` fleet pass / `BENCH_fleet.json` workload: a
/// 100-row site (25 datacenters × 4 rows) of small rows. The horizon is
/// sized so one rep takes ~100 ms — long enough that per-run setup
/// jitter stays well inside the bench-smoke tolerance, short enough for
/// ci-smoke territory.
const FLEET_BENCH_DCS: usize = 25;
/// Rows per datacenter in the fleet bench workload.
const FLEET_BENCH_ROWS_PER_DC: usize = 4;
/// Simulated horizon of one fleet bench run, in seconds.
const FLEET_BENCH_HORIZON_S: f64 = 8640.0;
/// RNG stream for the fleet bench arrival schedule.
const FLEET_BENCH_STREAM: u64 = 0xF1EE;

/// The small row every fleet bench run simulates.
fn profile_fleet_row() -> RowConfig {
    let mut row = RowConfig::paper_inference_row();
    row.base_servers = 4;
    row
}

/// Pre-materializes the fleet bench arrival stream once (synthesis is
/// not what the bench measures), sized to keep all 100 rows busy.
fn profile_fleet_requests(seed: u64, horizon_s: f64) -> Vec<polca_cluster::Request> {
    let pattern = DiurnalPattern {
        base_rate: 20.0,
        ..DiurnalPattern::default()
    };
    let mut rng = SimRng::from_seed_stream(seed, FLEET_BENCH_STREAM);
    let config = TraceConfig {
        seed,
        horizon: SimTime::from_secs(horizon_s),
        schedule: pattern.schedule(horizon_s, 60.0, &mut rng),
        mix: WorkloadClass::table6(),
    };
    ArrivalGenerator::new(&config).collect()
}

/// One timed fleet bench run at `threads` worker threads.
fn profile_fleet_run(seed: u64, threads: usize, requests: &[polca_cluster::Request]) -> f64 {
    let mut site = SiteConfig {
        datacenters: FLEET_BENCH_DCS,
        rows_per_datacenter: FLEET_BENCH_ROWS_PER_DC,
        rows_per_pdu: 2,
        threads,
        ..SiteConfig::default()
    };
    site.base.seed = seed;
    site.base.record_power_series = false;
    let policy = PolcaPolicy::default();
    let sim = SiteSim::new(
        profile_fleet_row(),
        site,
        |_, rec| fleet_controller(PolicyKind::Polca, &policy, rec),
        requests.iter().copied(),
        SimTime::from_secs(FLEET_BENCH_HORIZON_S),
    );
    let start = Instant::now();
    let _ = sim.run();
    start.elapsed().as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_command_and_flags() {
        let inv = parse_args(args(&["evaluate", "--added", "30", "--policy", "polca"])).unwrap();
        assert_eq!(inv.command, "evaluate");
        assert_eq!(inv.get::<f64>("added", 0.0).unwrap(), 30.0);
        assert_eq!(inv.options.get("policy").unwrap(), "polca");
    }

    #[test]
    fn missing_command_is_an_error() {
        assert_eq!(parse_args(args(&[])), Err(CliError::MissingCommand));
    }

    #[test]
    fn dangling_flag_is_an_error() {
        assert_eq!(
            parse_args(args(&["plan", "--days"])),
            Err(CliError::MissingValue("days".into()))
        );
    }

    #[test]
    fn watch_is_a_boolean_flag() {
        // `--watch` consumes no value, even mid-argv or trailing.
        let inv = parse_args(args(&["evaluate", "--watch", "--days", "1"])).unwrap();
        assert_eq!(inv.options.get("watch").unwrap(), "true");
        assert_eq!(inv.get::<f64>("days", 0.0).unwrap(), 1.0);
        let inv = parse_args(args(&["evaluate", "--watch"])).unwrap();
        assert!(inv.options.contains_key("watch"));
    }

    #[test]
    fn defaults_apply_when_flag_absent() {
        let inv = parse_args(args(&["trace"])).unwrap();
        assert_eq!(inv.get::<u64>("seed", 17).unwrap(), 17);
        assert_eq!(inv.get_opt::<f64>("lock").unwrap(), None);
    }

    #[test]
    fn bad_values_are_reported_with_flag_names() {
        let inv = parse_args(args(&["trace", "--days", "soon"])).unwrap();
        let err = inv.get::<f64>("days", 1.0).unwrap_err();
        assert_eq!(
            err,
            CliError::BadValue {
                flag: "days".into(),
                value: "soon".into()
            }
        );
    }

    #[test]
    fn model_lookup_is_case_insensitive() {
        assert_eq!(find_model("bloom").unwrap().name, "BLOOM");
        assert_eq!(find_model("flan-t5").unwrap().name, "Flan-T5");
        assert!(find_model("gpt5").is_err());
    }

    #[test]
    fn policy_aliases_resolve() {
        assert_eq!(find_policy("POLCA").unwrap(), PolicyKind::Polca);
        assert_eq!(find_policy("1t-lp").unwrap(), PolicyKind::OneThreshLowPri);
        assert_eq!(find_policy("no-cap").unwrap(), PolicyKind::NoCap);
        assert!(find_policy("magic").is_err());
    }

    #[test]
    fn unknown_command_errors_cleanly() {
        let inv = parse_args(args(&["frobnicate"])).unwrap();
        assert!(matches!(run(&inv), Err(CliError::UnknownCommand(_))));
    }

    #[test]
    fn characterize_runs_end_to_end() {
        let inv = parse_args(args(&[
            "characterize",
            "--model",
            "GPT-NeoX",
            "--input",
            "512",
            "--output",
            "32",
        ]))
        .unwrap();
        assert!(run(&inv).is_ok());
    }

    #[test]
    fn help_prints() {
        let inv = parse_args(args(&["help"])).unwrap();
        assert!(run(&inv).is_ok());
        assert!(HELP.contains("characterize"));
        assert!(HELP.contains("ingest"));
        assert!(HELP.contains("--trace-csv"));
        assert!(HELP.contains("--datacenters"));
        assert!(HELP.contains("--fleet-threads"));
        assert!(HELP.contains("BENCH_fleet.json"));
    }

    #[test]
    fn site_flags_parse_into_the_site_config() {
        let inv = parse_args(args(&[
            "evaluate",
            "--rows",
            "3",
            "--datacenters",
            "4",
            "--fleet-threads",
            "2",
            "--site-budget-mw",
            "1.5",
            "--oversub-dc",
            "25",
            "--oversub-site",
            "10",
            "--enforce-budgets",
        ]))
        .unwrap();
        let site = parse_site_config(&inv, 3, 4).unwrap();
        assert_eq!(site.datacenters, 4);
        assert_eq!(site.rows_per_datacenter, 3);
        assert_eq!(site.threads, 2);
        assert_eq!(site.site_budget_watts, Some(1.5e6));
        assert_eq!(site.datacenter_oversubscription, Some(0.25));
        assert_eq!(site.site_oversubscription, Some(0.10));
        assert!(site.enforce_budgets);
        assert!(site.site_active());
        // --fleet-threads 0 means "all cores" (at least one).
        let inv = parse_args(args(&["evaluate", "--rows", "2", "--fleet-threads", "0"])).unwrap();
        assert!(parse_site_config(&inv, 2, 1).unwrap().threads >= 1);
        // A zero-datacenter or zero-row site is a clean CLI error, not
        // a hierarchy panic.
        assert!(matches!(
            parse_site_config(&inv, 2, 0),
            Err(CliError::BadValue { .. })
        ));
        assert!(matches!(
            parse_site_config(&inv, 0, 2),
            Err(CliError::BadValue { .. })
        ));
    }

    #[test]
    fn positionals_coexist_with_flags() {
        let inv = parse_args(args(&["ingest", "trace.csv", "--seed", "3"])).unwrap();
        assert_eq!(inv.positionals, vec!["trace.csv".to_string()]);
        assert_eq!(inv.get::<u64>("seed", 0).unwrap(), 3);
        let inv = parse_args(args(&["ingest"])).unwrap();
        assert!(inv.positionals.is_empty());
    }

    #[test]
    fn ingest_without_a_path_is_an_error() {
        let inv = parse_args(args(&["ingest"])).unwrap();
        assert_eq!(
            run(&inv),
            Err(CliError::Ingest(
                "usage: polca-cli ingest <trace.csv>".into()
            ))
        );
    }

    #[test]
    fn ingest_reports_missing_files_cleanly() {
        let inv = parse_args(args(&["ingest", "/nonexistent/trace.csv"])).unwrap();
        assert!(matches!(run(&inv), Err(CliError::Ingest(_))));
    }

    #[test]
    fn evaluate_with_watch_writes_incident_artifacts() {
        let dir = std::env::temp_dir().join(format!("polca-cli-watch-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let out = dir.to_string_lossy().to_string();
        let inv = parse_args(args(&[
            "evaluate",
            "--watch",
            "--days",
            "0.05",
            "--added",
            "30",
            "--obs-out",
            &out,
        ]))
        .unwrap();
        run(&inv).unwrap();
        for file in ["incidents.jsonl", "report.md", "metrics.prom", "trace.json"] {
            assert!(dir.join(file).exists(), "{file} missing");
        }
        let report = std::fs::read_to_string(dir.join("report.md")).unwrap();
        assert!(report.contains("# Watch report"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_watch_rules_file_is_a_clean_error() {
        let dir = std::env::temp_dir().join(format!("polca-cli-rules-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let rules = dir.join("rules.txt");
        std::fs::write(&rules, "bad nonsense x=1\n").unwrap();
        let rules_str = rules.to_string_lossy().to_string();
        let inv = parse_args(args(&[
            "evaluate",
            "--watch",
            "--watch-rules",
            &rules_str,
            "--days",
            "0.05",
        ]))
        .unwrap();
        assert!(matches!(run(&inv), Err(CliError::BadValue { .. })));
        let inv = parse_args(args(&[
            "evaluate",
            "--watch",
            "--watch-rules",
            "/nonexistent/rules.txt",
            "--days",
            "0.05",
        ]))
        .unwrap();
        assert!(matches!(run(&inv), Err(CliError::Io(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn enforce_budgets_is_a_boolean_flag() {
        let inv = parse_args(args(&["evaluate", "--enforce-budgets", "--rows", "4"])).unwrap();
        assert_eq!(inv.options.get("enforce-budgets").unwrap(), "true");
        assert_eq!(inv.get::<usize>("rows", 1).unwrap(), 4);
    }

    #[test]
    fn req_trace_is_a_boolean_flag() {
        let inv = parse_args(args(&["evaluate", "--req-trace", "--req-sample", "4"])).unwrap();
        assert_eq!(inv.options.get("req-trace").unwrap(), "true");
        assert_eq!(inv.get::<u64>("req-sample", 1).unwrap(), 4);
        // --req-sample alone implies tracing; bare --req-trace samples
        // every request.
        let inv = parse_args(args(&["evaluate", "--req-sample", "4"])).unwrap();
        assert_eq!(parse_req_trace(&inv).unwrap().unwrap().sample, 4);
        let inv = parse_args(args(&["evaluate", "--req-trace"])).unwrap();
        assert_eq!(parse_req_trace(&inv).unwrap().unwrap().sample, 1);
        let inv = parse_args(args(&["evaluate"])).unwrap();
        assert!(parse_req_trace(&inv).unwrap().is_none());
    }

    #[test]
    fn evaluate_req_trace_writes_requests_jsonl() {
        let dir = std::env::temp_dir().join(format!("polca-cli-req-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let out = dir.to_string_lossy().to_string();
        let inv = parse_args(args(&[
            "evaluate",
            "--engine",
            "batched",
            "--req-trace",
            "--days",
            "0.02",
            "--added",
            "30",
            "--obs-out",
            &out,
        ]))
        .unwrap();
        run(&inv).unwrap();
        let body = std::fs::read_to_string(dir.join("requests.jsonl")).unwrap();
        let first = body.lines().next().expect("at least one record");
        for field in ["\"ttft_s\":", "\"tbt_mean_s\":", "\"joules_per_token\":"] {
            assert!(first.contains(field), "{field} missing from {first}");
        }
        let prom = std::fs::read_to_string(dir.join("metrics.prom")).unwrap();
        assert!(prom.contains("req_ttft_s"), "TTFT histogram missing");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn evaluate_fleet_writes_per_row_artifacts() {
        let dir = std::env::temp_dir().join(format!("polca-cli-fleet-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let out = dir.to_string_lossy().to_string();
        let inv = parse_args(args(&[
            "evaluate",
            "--rows",
            "3",
            "--rows-per-pdu",
            "2",
            "--days",
            "0.02",
            "--added",
            "30",
            "--obs-out",
            &out,
        ]))
        .unwrap();
        run(&inv).unwrap();
        assert!(dir.join("metrics.json").exists(), "fleet metrics missing");
        for row in 0..3 {
            let row_dir = dir.join(format!("row{row}"));
            for file in ["events.jsonl", "metrics.json", "prof.json", "prof.folded"] {
                assert!(row_dir.join(file).exists(), "row{row}/{file} missing");
            }
        }
        // The fleet-level prof.json aggregates the absorbed per-row
        // profiles (row phases present) on top of the fleet recorder's
        // own aggregation phase and occupancy gauge.
        let fleet_prof = std::fs::read_to_string(dir.join("prof.json")).unwrap();
        assert!(fleet_prof.contains("\"row.step\""), "{fleet_prof}");
        assert!(
            fleet_prof.contains("\"fleet.power_aggregation\""),
            "{fleet_prof}"
        );
        assert!(
            fleet_prof.contains("\"batched_tick_occupancy\""),
            "{fleet_prof}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn evaluate_site_writes_per_datacenter_artifacts() {
        let dir = std::env::temp_dir().join(format!("polca-cli-site-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let out = dir.to_string_lossy().to_string();
        let inv = parse_args(args(&[
            "evaluate",
            "--rows",
            "2",
            "--datacenters",
            "2",
            "--fleet-threads",
            "2",
            "--watch",
            "--days",
            "0.02",
            "--added",
            "30",
            "--obs-out",
            &out,
        ]))
        .unwrap();
        run(&inv).unwrap();
        assert!(dir.join("metrics.json").exists(), "site metrics missing");
        for row in 0..4 {
            assert!(
                dir.join(format!("row{row}/events.jsonl")).exists(),
                "row{row} artifacts missing"
            );
        }
        for d in 0..2 {
            for file in ["incidents.jsonl", "report.md"] {
                assert!(
                    dir.join(format!("dc{d}/{file}")).exists(),
                    "dc{d}/{file} missing"
                );
            }
        }
        // The site-level prom export partitions datacenter gauges.
        let prom = std::fs::read_to_string(dir.join("metrics.prom")).unwrap();
        assert!(prom.contains("datacenter=\"1\""), "{prom}");
        assert!(prom.contains("site_power_w"), "{prom}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn trace_csv_fleet_replay_runs_on_the_golden_trace() {
        let csv = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../tests/golden/sample_trace.csv"
        );
        let inv = parse_args(args(&[
            "evaluate",
            "--trace-csv",
            csv,
            "--rows",
            "2",
            "--servers",
            "10",
            "--time-scale",
            "0.05",
        ]))
        .unwrap();
        run(&inv).unwrap();
    }

    #[test]
    fn plan_accepts_a_jobs_flag() {
        let inv = parse_args(args(&["plan", "--jobs", "4"])).unwrap();
        assert_eq!(inv.get::<usize>("jobs", 1).unwrap(), 4);
    }

    #[test]
    fn trace_export_then_ingest_round_trips_through_the_cli() {
        let dir = std::env::temp_dir().join(format!("polca-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("exported.csv");
        let csv_str = csv.to_string_lossy().to_string();
        let inv = parse_args(args(&[
            "trace",
            "--csv-out",
            &csv_str,
            "--days",
            "0.02",
            "--rate",
            "1.0",
            "--seed",
            "5",
        ]))
        .unwrap();
        run(&inv).unwrap();
        let body = std::fs::read_to_string(&csv).unwrap();
        assert!(body.starts_with("timestamp_s,context_tokens,generated_tokens,priority\n"));
        assert!(body.lines().count() > 100);
        // The exported file ingests back without losing a single row.
        let trace = IngestedTrace::from_csv_path(&csv).unwrap();
        assert_eq!(trace.len(), body.lines().count() - 1);
        assert_eq!(trace.skipped_rows(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
