//! `polca-cli` entry point — see the crate docs in `lib.rs`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let inv = match polca_cli::parse_args(args) {
        Ok(inv) => inv,
        Err(err) => {
            eprintln!("error: {err}");
            eprint!("{}", polca_cli::HELP);
            return ExitCode::FAILURE;
        }
    };
    match polca_cli::run(&inv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::FAILURE
        }
    }
}
