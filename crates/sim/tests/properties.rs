//! Property-based tests for the simulation engine.

use proptest::prelude::*;

use polca_sim::{EventQueue, SimRng, SimTime};

proptest! {
    #[test]
    fn event_queue_pops_in_non_decreasing_time_order(times in prop::collection::vec(0.0..1e6f64, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_secs(t), i);
        }
        let mut last = SimTime::ZERO;
        while let Some((at, _)) = q.pop() {
            prop_assert!(at >= last);
            last = at;
        }
    }

    #[test]
    fn event_queue_is_fifo_for_equal_times(n in 1usize..100) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule(SimTime::from_secs(1.0), i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn event_queue_conserves_events(times in prop::collection::vec(0.0..100.0f64, 0..100)) {
        let mut q = EventQueue::new();
        for &t in &times {
            q.schedule(SimTime::from_secs(t), ());
        }
        prop_assert_eq!(q.len(), times.len());
        let popped = std::iter::from_fn(|| q.pop()).count();
        prop_assert_eq!(popped, times.len());
        prop_assert!(q.is_empty());
    }

    #[test]
    fn sim_time_ordering_is_consistent_with_seconds(a in 0.0..1e9f64, b in 0.0..1e9f64) {
        let (ta, tb) = (SimTime::from_secs(a), SimTime::from_secs(b));
        prop_assert_eq!(ta < tb, a < b);
        prop_assert_eq!(ta == tb, a == b);
        prop_assert!((ta + tb).as_secs() >= ta.as_secs());
        prop_assert_eq!(ta.saturating_sub(tb).as_secs(), (a - b).max(0.0));
    }

    #[test]
    fn exponential_samples_are_positive(seed in 0u64..1000, rate in 0.001..100.0f64) {
        let mut rng = SimRng::from_seed_stream(seed, 1);
        for _ in 0..50 {
            prop_assert!(rng.exponential(rate) > 0.0);
        }
    }

    #[test]
    fn uniform_samples_stay_in_range(seed in 0u64..1000, lo in -1e3..1e3f64, width in 0.001..1e3f64) {
        let mut rng = SimRng::from_seed_stream(seed, 2);
        let hi = lo + width;
        for _ in 0..50 {
            let x = rng.uniform(lo, hi);
            prop_assert!((lo..hi).contains(&x));
        }
    }

    #[test]
    fn weighted_index_only_picks_positive_weights(seed in 0u64..1000, weights in prop::collection::vec(0.0..10.0f64, 1..10)) {
        let mut rng = SimRng::from_seed_stream(seed, 3);
        if let Some(idx) = rng.weighted_index(&weights) {
            prop_assert!(idx < weights.len());
            // The chosen index must have sampling mass unless everything
            // was zero (in which case weighted_index returns None).
            prop_assert!(weights.iter().any(|&w| w > 0.0));
        } else {
            prop_assert!(weights.iter().all(|&w| w == 0.0));
        }
    }

    #[test]
    fn rng_streams_are_reproducible(seed in 0u64..10_000, stream in 0u64..100) {
        let mut a = SimRng::from_seed_stream(seed, stream);
        let mut b = SimRng::from_seed_stream(seed, stream);
        for _ in 0..20 {
            prop_assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
        }
    }
}
