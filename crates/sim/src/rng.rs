//! Deterministic random number generation and distribution samplers.
//!
//! Every stochastic component in the workspace (arrival processes, burst
//! models, telemetry jitter, OOB failure injection) draws from a [`SimRng`]
//! derived from a single experiment seed plus a *stream* identifier. Two
//! components with different streams never share state, so adding a new
//! consumer of randomness does not perturb existing ones — essential when
//! comparing power policies on identical request streams.

use crate::chacha::ChaCha8;

/// A seedable, splittable simulation RNG.
///
/// Backed by the in-tree [ChaCha8 keystream](crate::chacha) so the
/// workspace builds without registry access.
///
/// # Examples
///
/// ```
/// use polca_sim::SimRng;
///
/// let mut a = SimRng::from_seed_stream(42, 0);
/// let mut b = SimRng::from_seed_stream(42, 0);
/// assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0)); // deterministic
///
/// let mut c = SimRng::from_seed_stream(42, 1);
/// // different stream, independent sequence
/// let _ = c.uniform(0.0, 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: ChaCha8,
}

impl SimRng {
    /// Creates an RNG from an experiment `seed` and a component `stream`.
    pub fn from_seed_stream(seed: u64, stream: u64) -> Self {
        SimRng {
            inner: ChaCha8::new(seed, stream),
        }
    }

    /// Derives a child RNG for a sub-component, keyed by `stream`.
    ///
    /// The child is independent of `self` and of children with other
    /// streams; deriving a child does not advance this RNG.
    pub fn child(&self, stream: u64) -> SimRng {
        SimRng {
            inner: self
                .inner
                .with_stream(self.inner.stream() ^ splitmix(stream)),
        }
    }

    /// The next 32 raw keystream bits.
    pub fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    /// The next 64 raw keystream bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Fills `dest` with keystream bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let word = self.inner.next_u32().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }

    /// A uniform sample in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.inner.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Samples an exponential inter-arrival time with the given `rate`
    /// (events per second). Used by the Poisson request-arrival process.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        // Inverse CDF; guard the log(0) corner.
        let u = self.next_f64().max(f64::MIN_POSITIVE);
        -u.ln() / rate
    }

    /// Samples a standard normal via the Box-Muller transform, scaled to
    /// `mean`/`std_dev`.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "std_dev must be non-negative");
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Samples a log-normal with the given parameters of the underlying
    /// normal. Used for bursty token-length distributions.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty uniform range");
        let x = lo + self.next_f64() * (hi - lo);
        // Floating-point rounding can land exactly on `hi`; keep the
        // half-open contract.
        if x >= hi {
            hi.next_down().max(lo)
        } else {
            x
        }
    }

    /// Uniform integer sample in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty uniform range");
        let span = hi - lo;
        if span == u64::MAX {
            return self.inner.next_u64();
        }
        // Fixed-point multiply maps the keystream onto [0, span]; the
        // bias is at most (span + 1) / 2^64, far below anything the
        // simulator's statistics can resolve.
        let scaled = (self.inner.next_u64() as u128 * (span as u128 + 1)) >> 64;
        lo + scaled as u64
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.next_f64() < p
    }

    /// Picks an index according to the given non-negative `weights`.
    ///
    /// Returns `None` if `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().sum();
        if weights.is_empty() || total <= 0.0 {
            return None;
        }
        let mut x = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return Some(i);
            }
            x -= w;
        }
        Some(weights.len() - 1)
    }
}

/// SplitMix64 finalizer — decorrelates sequential stream ids.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::from_seed_stream(7, 3);
        let mut b = SimRng::from_seed_stream(7, 3);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_streams_are_independent() {
        let mut a = SimRng::from_seed_stream(7, 0);
        let mut b = SimRng::from_seed_stream(7, 1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn child_streams_are_stable_and_distinct() {
        let root = SimRng::from_seed_stream(1, 0);
        let mut c1 = root.child(5);
        let mut c1_again = root.child(5);
        let mut c2 = root.child(6);
        assert_eq!(c1.next_u64(), c1_again.next_u64());
        let mut c1 = root.child(5);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn exponential_mean_approximates_inverse_rate() {
        let mut rng = SimRng::from_seed_stream(11, 0);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = SimRng::from_seed_stream(13, 0);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean = {mean}");
        assert!((var - 4.0).abs() < 0.2, "var = {var}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::from_seed_stream(17, 0);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
        // Out-of-range p is clamped, not a panic.
        assert!(rng.chance(2.0));
        assert!(!rng.chance(-1.0));
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = SimRng::from_seed_stream(19, 0);
        assert_eq!(rng.weighted_index(&[]), None);
        assert_eq!(rng.weighted_index(&[0.0, 0.0]), None);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[rng.weighted_index(&[1.0, 2.0, 1.0]).unwrap()] += 1;
        }
        let frac1 = counts[1] as f64 / 30_000.0;
        assert!((frac1 - 0.5).abs() < 0.02, "frac1 = {frac1}");
        assert!(counts[0] > 0 && counts[2] > 0);
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = SimRng::from_seed_stream(23, 0);
        for _ in 0..1000 {
            let x = rng.uniform(2.0, 3.0);
            assert!((2.0..3.0).contains(&x));
            let u = rng.uniform_u64(5, 7);
            assert!((5..=7).contains(&u));
        }
    }
}
