//! The event queue at the heart of the discrete-event simulator.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use polca_obs::QueueProbe;

use crate::time::SimTime;

/// A monotonic priority queue of timed events.
///
/// Events scheduled for the same timestamp are delivered in the order they
/// were scheduled (FIFO tie-breaking), which keeps runs deterministic.
/// Popping an event advances the queue's notion of *now*; scheduling in the
/// past is a logic error and panics.
///
/// # Examples
///
/// ```
/// use polca_sim::{EventQueue, SimTime};
///
/// #[derive(Debug, PartialEq)]
/// enum Ev { RequestArrival, TelemetrySample }
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(0.1), Ev::TelemetrySample);
/// q.schedule(SimTime::from_secs(0.1), Ev::RequestArrival);
/// // Same timestamp: FIFO order.
/// assert_eq!(q.pop().unwrap().1, Ev::TelemetrySample);
/// assert_eq!(q.pop().unwrap().1, Ev::RequestArrival);
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    now: SimTime,
    probe: Option<QueueProbe>,
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with `now == SimTime::ZERO`.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            probe: None,
        }
    }

    /// Attaches an observability probe; subsequent schedule/pop activity
    /// is reported through it. Probes backed by a disabled recorder cost
    /// one branch per operation.
    pub fn set_probe(&mut self, probe: QueueProbe) {
        self.probe = Some(probe);
    }

    /// The timestamp of the most recently popped event (the simulation's
    /// current time).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than [`now`](Self::now): the simulator
    /// never travels backwards.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduled event in the past: {at} < {}",
            self.now
        );
        let _t = self.probe.as_ref().and_then(QueueProbe::time_push);
        self.heap.push(Reverse(Entry {
            at,
            seq: self.seq,
            event,
        }));
        self.seq += 1;
        if let Some(p) = &self.probe {
            p.on_schedule(self.heap.len());
        }
    }

    /// Schedules `event` `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Removes and returns the next event, advancing `now` to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let _t = self.probe.as_ref().and_then(QueueProbe::time_pop);
        let Reverse(entry) = self.heap.pop()?;
        self.now = entry.at;
        if let Some(p) = &self.probe {
            p.on_pop(self.heap.len());
        }
        Some((entry.at, entry.event))
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3.0), 3);
        q.schedule(SimTime::from_secs(1.0), 1);
        q.schedule(SimTime::from_secs(2.0), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_at_equal_timestamps() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_secs(1.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances_with_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5.0), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5.0));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5.0), ());
        q.pop();
        q.schedule(SimTime::from_secs(1.0), ());
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2.0), "a");
        q.pop();
        q.schedule_in(SimTime::from_secs(3.0), "b");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t.as_secs(), 5.0);
    }

    #[test]
    fn len_and_peek() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_secs(1.0), ());
        q.schedule(SimTime::from_secs(0.5), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(0.5)));
    }
}
