//! A self-contained ChaCha8 keystream generator.
//!
//! The workspace builds on machines with no access to crates.io, so the
//! RNG core that `rand_chacha` used to provide lives in-tree. ChaCha8
//! gives the same properties the simulator needs: a 256-bit key derived
//! from the experiment seed, a 64-bit *stream* selector so independent
//! components never share state, deterministic output, and cheap
//! cloning. (This is the reduced-round ChaCha of Bernstein's original
//! specification; 8 rounds is ample for simulation-quality randomness.)

/// The ChaCha constant `"expand 32-byte k"` as four little-endian words.
const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A buffered ChaCha8 block generator.
#[derive(Debug, Clone)]
pub(crate) struct ChaCha8 {
    key: [u32; 8],
    stream: u64,
    /// Block counter of the *next* block to generate.
    counter: u64,
    /// The current 16-word keystream block.
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means the buffer is exhausted.
    idx: usize,
}

impl ChaCha8 {
    /// Builds a generator from a 64-bit seed and a stream selector.
    ///
    /// The 256-bit key is expanded from `seed` with SplitMix64 so that
    /// nearby seeds produce unrelated keys; `stream` occupies the nonce
    /// words, so every `(seed, stream)` pair is an independent sequence.
    pub(crate) fn new(seed: u64, stream: u64) -> Self {
        let mut s = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let word = splitmix64(&mut s);
            pair[0] = word as u32;
            pair[1] = (word >> 32) as u32;
        }
        ChaCha8 {
            key,
            stream,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }

    /// The stream selector this generator was built with.
    pub(crate) fn stream(&self) -> u64 {
        self.stream
    }

    /// A fresh generator with the same key but a different stream,
    /// starting at the beginning of its keystream.
    pub(crate) fn with_stream(&self, stream: u64) -> Self {
        ChaCha8 {
            key: self.key,
            stream,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.stream as u32;
        state[15] = (self.stream >> 32) as u32;
        let mut x = state;
        for _ in 0..4 {
            // Column round.
            quarter(&mut x, 0, 4, 8, 12);
            quarter(&mut x, 1, 5, 9, 13);
            quarter(&mut x, 2, 6, 10, 14);
            quarter(&mut x, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut x, 0, 5, 10, 15);
            quarter(&mut x, 1, 6, 11, 12);
            quarter(&mut x, 2, 7, 8, 13);
            quarter(&mut x, 3, 4, 9, 14);
        }
        for (out, (a, b)) in self.buf.iter_mut().zip(x.iter().zip(state.iter())) {
            *out = a.wrapping_add(*b);
        }
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }

    /// The next 32 keystream bits.
    pub(crate) fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    /// The next 64 keystream bits.
    pub(crate) fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[inline(always)]
fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

/// One SplitMix64 step: advances `state` and returns the mixed output.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keystream_is_deterministic() {
        let mut a = ChaCha8::new(1, 2);
        let mut b = ChaCha8::new(1, 2);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_differ() {
        let mut a = ChaCha8::new(1, 0);
        let mut b = ChaCha8::new(1, 1);
        assert!((0..64).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    fn seeds_differ() {
        let mut a = ChaCha8::new(1, 0);
        let mut b = ChaCha8::new(2, 0);
        assert!((0..64).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    fn output_is_roughly_balanced() {
        // Sanity: the keystream is not obviously biased.
        let mut rng = ChaCha8::new(42, 0);
        let ones: u32 = (0..1000).map(|_| rng.next_u32().count_ones()).sum();
        let total = 32_000.0;
        let frac = ones as f64 / total;
        assert!((0.47..0.53).contains(&frac), "bit balance {frac}");
    }
}
