//! Deterministic discrete-event simulation engine.
//!
//! The paper evaluates POLCA with "a discrete event simulator ... built for
//! a high-traffic scenario" (§6.4). This crate provides the engine that the
//! cluster model in `polca-cluster` and the experiment driver in `polca`
//! are built on:
//!
//! * [`SimTime`] — a total-ordered simulation timestamp in seconds,
//! * [`EventQueue`] — a monotonic priority queue of timed events with
//!   FIFO tie-breaking at equal timestamps,
//! * [`rng`] — seedable, stream-split random number generation plus the
//!   distribution samplers used by the workload generators (exponential
//!   inter-arrivals, Box-Muller normals, log-normal bursts).
//!
//! Everything is deterministic: the same seed reproduces the same run
//! bit-for-bit, which the experiment harness relies on when comparing
//! policies on identical request streams.
//!
//! # Examples
//!
//! ```
//! use polca_sim::{EventQueue, SimTime};
//!
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::from_secs(2.0), "second");
//! q.schedule(SimTime::from_secs(1.0), "first");
//! let (t, e) = q.pop().unwrap();
//! assert_eq!((t.as_secs(), e), (1.0, "first"));
//! ```

#![deny(missing_docs)]

mod chacha;
pub mod queue;
pub mod rng;
pub mod time;

pub use queue::EventQueue;
pub use rng::SimRng;
pub use time::SimTime;
