//! Simulation timestamps.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A simulation timestamp in seconds since the start of the run.
///
/// `SimTime` wraps an `f64` but provides a total order (via
/// [`f64::total_cmp`]) so it can key the event queue, and its constructors
/// reject NaN so arithmetic stays well-defined throughout a run.
///
/// # Examples
///
/// ```
/// use polca_sim::SimTime;
///
/// let t = SimTime::from_secs(1.5) + SimTime::from_secs(0.5);
/// assert_eq!(t.as_secs(), 2.0);
/// assert!(t > SimTime::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimTime(f64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a timestamp from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is NaN or negative.
    pub fn from_secs(secs: f64) -> Self {
        assert!(!secs.is_nan(), "SimTime cannot be NaN");
        assert!(secs >= 0.0, "SimTime cannot be negative");
        SimTime(secs)
    }

    /// Creates a timestamp from minutes.
    pub fn from_mins(mins: f64) -> Self {
        Self::from_secs(mins * 60.0)
    }

    /// Creates a timestamp from hours.
    pub fn from_hours(hours: f64) -> Self {
        Self::from_secs(hours * 3600.0)
    }

    /// Creates a timestamp from days.
    pub fn from_days(days: f64) -> Self {
        Self::from_secs(days * 86_400.0)
    }

    /// This timestamp in seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// This timestamp in hours.
    pub fn as_hours(self) -> f64 {
        self.0 / 3600.0
    }

    /// This timestamp in days.
    pub fn as_days(self) -> f64 {
        self.0 / 86_400.0
    }

    /// Saturating subtraction: returns `ZERO` instead of going negative.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime((self.0 - rhs.0).max(0.0))
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// # Panics
    ///
    /// Panics (in debug builds) if the result would be negative; simulation
    /// time never runs backwards. Use [`SimTime::saturating_sub`] when the
    /// operands may legitimately cross.
    fn sub(self, rhs: SimTime) -> SimTime {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction went negative");
        SimTime((self.0 - rhs.0).max(0.0))
    }
}

impl Default for SimTime {
    fn default() -> Self {
        SimTime::ZERO
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_are_consistent() {
        assert_eq!(SimTime::from_mins(1.0).as_secs(), 60.0);
        assert_eq!(SimTime::from_hours(1.0).as_secs(), 3600.0);
        assert_eq!(SimTime::from_days(1.0).as_hours(), 24.0);
        assert_eq!(SimTime::from_days(2.0).as_days(), 2.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = SimTime::from_secs(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_rejected() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(SimTime::ZERO.min(a), SimTime::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(5.0) - SimTime::from_secs(3.0);
        assert_eq!(t.as_secs(), 2.0);
        let mut u = SimTime::ZERO;
        u += SimTime::from_secs(1.5);
        assert_eq!(u.as_secs(), 1.5);
        assert_eq!(
            SimTime::from_secs(1.0).saturating_sub(SimTime::from_secs(2.0)),
            SimTime::ZERO
        );
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_secs(1.25).to_string(), "1.250s");
    }
}
