//! Concrete monitor adapters: DCGM (in-band) and SMBPBI (out-of-band).
//!
//! §3.4's methodology runs DCGM at 100 ms to capture counters (at a
//! 5–10 W server-power overhead) and validates against IPMI, while the
//! provider-side characterization must survive with the slow OOB
//! SMBPBI reader. These adapters wrap the raw sampling/delay primitives
//! into the concrete instruments the paper uses.

use polca_sim::{SimRng, SimTime};

use crate::delay::DelayedSignal;
use crate::interfaces::MonitorInterface;
use crate::sampler::PeriodicSampler;

/// The in-band DCGM power/counter monitor: 100 ms cadence, small
/// measurement noise, and the §3.4 server-power overhead while enabled.
#[derive(Debug, Clone)]
pub struct DcgmMonitor {
    sampler: PeriodicSampler,
    rng: SimRng,
    enabled: bool,
}

impl DcgmMonitor {
    /// Creates a DCGM monitor at the default 100 ms interval.
    pub fn new(seed: u64) -> Self {
        DcgmMonitor {
            sampler: PeriodicSampler::new(SimTime::from_secs(0.1)).with_noise(1.5),
            rng: SimRng::from_seed_stream(seed, 0xDC60),
            enabled: true,
        }
    }

    /// Enables or disables profiling (disabled runs avoid the overhead —
    /// the paper measures performance "in a separate run without DCGM
    /// profiling").
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether profiling is active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Extra server power drawn while profiling, in watts.
    pub fn overhead_watts(&self) -> f64 {
        if self.enabled {
            MonitorInterface::DCGM_OVERHEAD_WATTS
        } else {
            0.0
        }
    }

    /// Whether a sample is due at `now`.
    pub fn is_due(&self, now: SimTime) -> bool {
        self.enabled && self.sampler.is_due(now)
    }

    /// Takes a (noisy) power sample, advancing the sampling clock.
    ///
    /// Returns `None` while disabled.
    pub fn sample(&mut self, true_power_watts: f64) -> Option<f64> {
        if !self.enabled {
            return None;
        }
        self.sampler.advance();
        Some(
            self.sampler
                .measure(true_power_watts, &mut self.rng)
                .max(0.0),
        )
    }
}

/// The out-of-band SMBPBI power reader: ~5 s cadence with multi-second
/// staleness — "quite slow in practice" (§3.1).
#[derive(Debug, Clone)]
pub struct SmbpbiReader {
    sampler: PeriodicSampler,
    signal: DelayedSignal,
}

impl SmbpbiReader {
    /// Creates a reader with the Table 1 cadence (5 s) and a matching
    /// propagation delay.
    pub fn new() -> Self {
        SmbpbiReader {
            sampler: PeriodicSampler::new(SimTime::from_secs(5.0)),
            signal: DelayedSignal::new(SimTime::from_secs(5.0)),
        }
    }

    /// Feeds the true device power at `now` (called by the simulation on
    /// its own cadence).
    ///
    /// # Panics
    ///
    /// Panics if `now` moves backwards.
    pub fn observe(&mut self, now: SimTime, true_power_watts: f64) {
        self.signal.record(now, true_power_watts);
    }

    /// Whether the management controller would poll at `now`.
    pub fn is_due(&self, now: SimTime) -> bool {
        self.sampler.is_due(now)
    }

    /// Polls the reader, returning the *stale* power value visible OOB,
    /// or `None` if nothing has propagated yet.
    pub fn poll(&mut self, now: SimTime) -> Option<f64> {
        self.sampler.advance();
        self.signal.read(now)
    }
}

impl Default for SmbpbiReader {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn dcgm_costs_power_only_while_enabled() {
        let mut m = DcgmMonitor::new(1);
        assert_eq!(m.overhead_watts(), 7.5);
        m.set_enabled(false);
        assert_eq!(m.overhead_watts(), 0.0);
        assert_eq!(m.sample(300.0), None);
    }

    #[test]
    fn dcgm_samples_are_noisy_but_unbiased() {
        let mut m = DcgmMonitor::new(2);
        let n = 5000;
        let mean: f64 = (0..n).map(|_| m.sample(300.0).unwrap()).sum::<f64>() / n as f64;
        assert!((mean - 300.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn dcgm_cadence_is_100ms() {
        let mut m = DcgmMonitor::new(3);
        assert!(m.is_due(t(0.0)));
        m.sample(100.0);
        assert!(!m.is_due(t(0.05)));
        assert!(m.is_due(t(0.1)));
    }

    #[test]
    fn smbpbi_readings_are_stale_by_seconds() {
        let mut r = SmbpbiReader::new();
        r.observe(t(0.0), 100.0);
        r.observe(t(5.0), 400.0);
        r.observe(t(10.0), 250.0);
        // Polling at t = 10: the freshest visible value is from t ≤ 5.
        assert_eq!(r.poll(t(10.0)), Some(400.0));
    }

    #[test]
    fn smbpbi_returns_none_before_anything_propagates() {
        let mut r = SmbpbiReader::new();
        r.observe(t(0.0), 100.0);
        assert_eq!(r.poll(t(1.0)), None);
    }

    #[test]
    fn smbpbi_is_much_slower_than_dcgm() {
        let dcgm = DcgmMonitor::new(4);
        let smbpbi = SmbpbiReader::new();
        let mut dcgm_due = 0;
        let mut smbpbi_due = 0;
        let mut d = dcgm.clone();
        let mut s = smbpbi.clone();
        for k in 0..100 {
            let now = t(k as f64 * 0.1);
            if d.is_due(now) {
                dcgm_due += 1;
                d.sample(100.0);
            }
            if s.is_due(now) {
                smbpbi_due += 1;
                s.observe(now, 100.0);
                s.poll(now);
            }
        }
        assert!(dcgm_due >= 40 * smbpbi_due, "{dcgm_due} vs {smbpbi_due}");
    }
}
