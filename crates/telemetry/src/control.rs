//! The out-of-band control plane.
//!
//! In a virtualized cloud, the provider can only reach GPUs through OOB
//! interfaces like SMBPBI (§3.3). Those interfaces are *slow* — frequency
//! and power capping "can take as long as 40 s to take effect" — and
//! *unreliable* — they "may sometimes fail without signaling completion
//! or errors". Only the power brake is fast (≤ 5 s), at the cost of
//! bringing GPUs "down to almost a halt".
//!
//! [`OobControlPlane`] models command dispatch with per-action latency
//! ranges and silent-failure injection. The POLCA power manager issues
//! commands here; the cluster simulator applies the ones that survive.

use std::collections::VecDeque;

use polca_obs::{Event, Label, ProfCounter, Recorder};
use polca_sim::{SimRng, SimTime};

/// A power-management action targeting one server's GPUs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ControlAction {
    /// Lock all GPUs' SM clocks to the given frequency.
    LockClock {
        /// Target SM clock in MHz.
        mhz: f64,
    },
    /// Remove the frequency lock.
    UnlockClock,
    /// Set a per-GPU power cap.
    PowerCap {
        /// Cap in watts per GPU.
        watts: f64,
    },
    /// Remove the power cap.
    ClearPowerCap,
    /// Engage or release the power brake.
    PowerBrake {
        /// `true` to engage.
        on: bool,
    },
}

impl ControlAction {
    /// Whether this action travels the fast power-brake path rather than
    /// the slow SMBPBI capping path.
    pub fn is_brake(&self) -> bool {
        matches!(self, ControlAction::PowerBrake { .. })
    }
}

/// A command in flight (or delivered) on the OOB plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlCommand {
    /// Monotonic command id.
    pub id: u64,
    /// Target server index within the row.
    pub server: usize,
    /// The requested action.
    pub action: ControlAction,
    /// When the command was issued.
    pub issued_at: SimTime,
    /// When the command takes effect at the device (if it survives).
    pub effective_at: SimTime,
}

/// The OOB command dispatcher.
///
/// # Examples
///
/// ```
/// use polca_sim::SimTime;
/// use polca_telemetry::{ControlAction, OobControlPlane};
///
/// let mut plane = OobControlPlane::new(42);
/// plane.issue(SimTime::ZERO, 3, ControlAction::LockClock { mhz: 1275.0 });
/// // Nothing lands before the OOB latency window opens.
/// assert!(plane.deliver_due(SimTime::from_secs(10.0)).is_empty());
/// // By 40 s the command (if it didn't silently fail) has landed.
/// let delivered = plane.deliver_due(SimTime::from_secs(40.0));
/// assert!(delivered.len() <= 1);
/// ```
#[derive(Debug, Clone)]
pub struct OobControlPlane {
    /// Capping-path latency range `[min, max)` in seconds (Table 2: up to
    /// 40 s).
    cap_latency_s: (f64, f64),
    /// Brake-path latency range `[min, max)` in seconds (Table 2: ≤ 5 s).
    brake_latency_s: (f64, f64),
    /// Probability a capping command silently fails.
    failure_rate: f64,
    rng: SimRng,
    in_flight: VecDeque<ControlCommand>,
    next_id: u64,
    issued: u64,
    silently_failed: u64,
    recorder: Recorder,
}

impl OobControlPlane {
    /// Creates a control plane with the paper's latency envelope:
    /// capping 20–40 s, brake 2–5 s, no failure injection.
    pub fn new(seed: u64) -> Self {
        OobControlPlane {
            cap_latency_s: (20.0, 40.0),
            brake_latency_s: (2.0, 5.0),
            failure_rate: 0.0,
            rng: SimRng::from_seed_stream(seed, 0x0C01_1701),
            in_flight: VecDeque::new(),
            next_id: 0,
            issued: 0,
            silently_failed: 0,
            recorder: Recorder::disabled(),
        }
    }

    /// Attaches an observability recorder: issued and silently lost
    /// commands are traced as `oob_sent` / `oob_lost` events and
    /// counted per command path.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// Overrides the capping-path latency range in seconds.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or negative.
    pub fn with_cap_latency(mut self, min_s: f64, max_s: f64) -> Self {
        assert!(0.0 <= min_s && min_s < max_s, "invalid latency range");
        self.cap_latency_s = (min_s, max_s);
        self
    }

    /// Overrides the brake-path latency range in seconds.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or negative.
    pub fn with_brake_latency(mut self, min_s: f64, max_s: f64) -> Self {
        assert!(0.0 <= min_s && min_s < max_s, "invalid latency range");
        self.brake_latency_s = (min_s, max_s);
        self
    }

    /// Injects silent command failures with probability `rate` (clamped
    /// to `[0, 1]`). Failed commands consume latency and then simply
    /// never arrive — exactly the failure mode §3.3 describes.
    pub fn with_failure_rate(mut self, rate: f64) -> Self {
        self.failure_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Issues `action` against `server` at time `now`, returning the
    /// command id.
    pub fn issue(&mut self, now: SimTime, server: usize, action: ControlAction) -> u64 {
        let (lo, hi) = if action.is_brake() {
            self.brake_latency_s
        } else {
            self.cap_latency_s
        };
        let latency = self.rng.uniform(lo, hi);
        let id = self.next_id;
        self.next_id += 1;
        self.issued += 1;
        let path = if action.is_brake() { "brake" } else { "cap" };
        self.recorder
            .prof()
            .count(ProfCounter::OobCommandsIssued, 1);
        self.recorder
            .add("oob.commands_issued", Label::Tag(path), 1);
        if self.rng.chance(self.failure_rate) && !action.is_brake() {
            // Silent failure: the command vanishes without an error.
            self.silently_failed += 1;
            self.recorder.add("oob.commands_lost", Label::Tag(path), 1);
            self.recorder.record(Event::OobCommandLost {
                t: now.as_secs(),
                server,
                command: id,
            });
            return id;
        }
        let cmd = ControlCommand {
            id,
            server,
            action,
            issued_at: now,
            effective_at: now + SimTime::from_secs(latency),
        };
        self.recorder
            .observe("oob.latency_s", Label::Tag(path), latency);
        self.recorder.record(Event::OobCommandSent {
            t: now.as_secs(),
            server,
            command: id,
            effective_at: cmd.effective_at.as_secs(),
        });
        // Keep in_flight sorted by effective time (insertion point from
        // the back; queues are short).
        let pos = self
            .in_flight
            .iter()
            .position(|c| c.effective_at > cmd.effective_at)
            .unwrap_or(self.in_flight.len());
        self.in_flight.insert(pos, cmd);
        id
    }

    /// Pops and returns every command whose actuation time has arrived.
    pub fn deliver_due(&mut self, now: SimTime) -> Vec<ControlCommand> {
        let mut due = Vec::new();
        while let Some(front) = self.in_flight.front() {
            if front.effective_at <= now {
                due.push(self.in_flight.pop_front().expect("front exists"));
            } else {
                break;
            }
        }
        if !due.is_empty() {
            self.recorder
                .prof()
                .count(ProfCounter::OobCommandsDelivered, due.len() as u64);
        }
        due
    }

    /// The actuation time of the next pending command, if any.
    pub fn next_delivery(&self) -> Option<SimTime> {
        self.in_flight.front().map(|c| c.effective_at)
    }

    /// Commands currently in flight.
    pub fn in_flight_len(&self) -> usize {
        self.in_flight.len()
    }

    /// Total commands issued.
    pub fn issued_count(&self) -> u64 {
        self.issued
    }

    /// Commands that silently failed (observable to tests and audits,
    /// not to the manager).
    pub fn silently_failed_count(&self) -> u64 {
        self.silently_failed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn capping_commands_take_tens_of_seconds() {
        let mut plane = OobControlPlane::new(1);
        plane.issue(SimTime::ZERO, 0, ControlAction::LockClock { mhz: 1275.0 });
        assert!(plane.deliver_due(t(19.9)).is_empty());
        let delivered = plane.deliver_due(t(40.0));
        assert_eq!(delivered.len(), 1);
        let latency = delivered[0].effective_at - delivered[0].issued_at;
        assert!((20.0..40.0).contains(&latency.as_secs()));
    }

    #[test]
    fn brake_commands_are_fast() {
        let mut plane = OobControlPlane::new(2);
        plane.issue(SimTime::ZERO, 0, ControlAction::PowerBrake { on: true });
        let delivered = plane.deliver_due(t(5.0));
        assert_eq!(delivered.len(), 1);
        assert!(delivered[0].effective_at.as_secs() <= 5.0);
    }

    #[test]
    fn delivery_order_is_by_effective_time() {
        let mut plane = OobControlPlane::new(3);
        for server in 0..20 {
            plane.issue(SimTime::ZERO, server, ControlAction::UnlockClock);
        }
        let delivered = plane.deliver_due(t(100.0));
        assert_eq!(delivered.len(), 20);
        for w in delivered.windows(2) {
            assert!(w[0].effective_at <= w[1].effective_at);
        }
    }

    #[test]
    fn silent_failures_never_deliver() {
        let mut plane = OobControlPlane::new(4).with_failure_rate(1.0);
        for _ in 0..10 {
            plane.issue(SimTime::ZERO, 0, ControlAction::PowerCap { watts: 325.0 });
        }
        assert!(plane.deliver_due(t(1000.0)).is_empty());
        assert_eq!(plane.silently_failed_count(), 10);
        assert_eq!(plane.issued_count(), 10);
    }

    #[test]
    fn brakes_are_exempt_from_failure_injection() {
        // The brake is the safety net; the paper treats it as reliable.
        let mut plane = OobControlPlane::new(5).with_failure_rate(1.0);
        plane.issue(SimTime::ZERO, 0, ControlAction::PowerBrake { on: true });
        assert_eq!(plane.deliver_due(t(10.0)).len(), 1);
    }

    #[test]
    fn command_ids_are_unique_and_monotonic() {
        let mut plane = OobControlPlane::new(6);
        let a = plane.issue(SimTime::ZERO, 0, ControlAction::UnlockClock);
        let b = plane.issue(SimTime::ZERO, 1, ControlAction::UnlockClock);
        assert!(b > a);
    }

    #[test]
    fn next_delivery_tracks_front() {
        let mut plane = OobControlPlane::new(7);
        assert_eq!(plane.next_delivery(), None);
        plane.issue(SimTime::ZERO, 0, ControlAction::PowerBrake { on: true });
        let next = plane.next_delivery().unwrap();
        assert!(next.as_secs() <= 5.0);
        assert_eq!(plane.in_flight_len(), 1);
    }

    #[test]
    fn custom_latency_ranges_apply() {
        let mut plane = OobControlPlane::new(8).with_cap_latency(1.0, 2.0);
        plane.issue(SimTime::ZERO, 0, ControlAction::LockClock { mhz: 1110.0 });
        assert_eq!(plane.deliver_due(t(2.0)).len(), 1);
    }

    #[test]
    #[should_panic(expected = "invalid latency range")]
    fn empty_latency_range_rejected() {
        let _ = OobControlPlane::new(9).with_cap_latency(5.0, 5.0);
    }
}
