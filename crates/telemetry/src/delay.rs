//! Telemetry signals with propagation delay.

use std::collections::VecDeque;

use polca_sim::SimTime;

/// A scalar telemetry signal whose readings become visible only after a
/// fixed propagation delay.
///
/// Table 2 lists a 2 s power-telemetry delay at the row level: when the
/// power manager reads the row power at time `t`, it actually observes
/// the value from `t − 2 s`. That staleness is why the upper POLCA
/// threshold must absorb the maximum power spike over the control
/// latency window.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayedSignal {
    delay: SimTime,
    history: VecDeque<(SimTime, f64)>,
}

impl DelayedSignal {
    /// Creates a signal with the given propagation `delay`.
    pub fn new(delay: SimTime) -> Self {
        DelayedSignal {
            delay,
            history: VecDeque::new(),
        }
    }

    /// The configured propagation delay.
    pub fn delay(&self) -> SimTime {
        self.delay
    }

    /// Records the true value at time `now`.
    ///
    /// # Panics
    ///
    /// Panics if `now` is earlier than the last recorded timestamp.
    pub fn record(&mut self, now: SimTime, value: f64) {
        if let Some(&(last, _)) = self.history.back() {
            assert!(now >= last, "telemetry recorded out of order");
        }
        self.history.push_back((now, value));
        // Drop entries older than needed for any future read (keep one
        // entry at or before the horizon so reads stay answerable).
        let horizon = now.saturating_sub(self.delay);
        while self.history.len() > 1 && self.history[1].0 <= horizon {
            self.history.pop_front();
        }
    }

    /// Reads the signal as seen at time `now`: the most recent value
    /// recorded at or before `now − delay`. Returns `None` if no reading
    /// has propagated yet.
    pub fn read(&self, now: SimTime) -> Option<f64> {
        let horizon = now.saturating_sub(self.delay);
        if now < self.delay {
            return None;
        }
        self.history
            .iter()
            .take_while(|(t, _)| *t <= horizon)
            .last()
            .map(|&(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn nothing_visible_before_delay_elapses() {
        let mut sig = DelayedSignal::new(t(2.0));
        sig.record(t(0.0), 1.0);
        assert_eq!(sig.read(t(0.0)), None);
        assert_eq!(sig.read(t(1.9)), None);
        assert_eq!(sig.read(t(2.0)), Some(1.0));
    }

    #[test]
    fn reads_are_stale_by_the_delay() {
        let mut sig = DelayedSignal::new(t(2.0));
        for i in 0..10 {
            sig.record(t(i as f64), i as f64 * 100.0);
        }
        // At t = 9, horizon is 7.
        assert_eq!(sig.read(t(9.0)), Some(700.0));
        assert_eq!(sig.read(t(9.5)), Some(700.0));
        assert_eq!(sig.read(t(10.0)), Some(800.0));
    }

    #[test]
    fn zero_delay_reads_latest() {
        let mut sig = DelayedSignal::new(SimTime::ZERO);
        sig.record(t(1.0), 5.0);
        sig.record(t(2.0), 6.0);
        assert_eq!(sig.read(t(2.0)), Some(6.0));
    }

    #[test]
    fn history_is_pruned_but_reads_stay_correct() {
        let mut sig = DelayedSignal::new(t(2.0));
        for i in 0..10_000 {
            let now = t(i as f64 * 0.1);
            sig.record(now, i as f64);
            if i > 100 {
                assert!(sig.read(now).is_some());
            }
        }
        // The buffer must not grow unboundedly: 2 s at 0.1 s cadence is
        // ~21 entries plus slack.
        assert!(sig.history.len() < 50, "history len {}", sig.history.len());
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn out_of_order_recording_panics() {
        let mut sig = DelayedSignal::new(t(1.0));
        sig.record(t(5.0), 1.0);
        sig.record(t(4.0), 2.0);
    }
}
