//! Fan-out subscription for delayed OOB telemetry signals.
//!
//! The row power manager is not the only consumer of the 2 s delayed
//! row-power signal: an online monitoring plane (alerting, SLO burn
//! tracking) must watch the *same* stale readings the operator sees —
//! never the simulator's ground truth. [`RowPowerTaps`] is the
//! publish/subscribe seam: the cluster simulator publishes each
//! telemetry tick to every registered [`RowPowerSubscriber`], carrying
//! the delayed observation (or its absence, before the first reading
//! propagates) plus a separate ground-truth reference feed that
//! subscribers may use **only** for annotation — e.g. measuring how
//! late a delayed-signal detection fired relative to the true event.
//!
//! Subscribers take `&self` and use interior mutability, mirroring the
//! `polca-obs` recorder idiom, so one subscriber handle can sit behind
//! the simulator's cloneable configuration struct.

use std::fmt;
use std::sync::Arc;

use polca_sim::SimTime;

/// A consumer of the row-level OOB power telemetry stream.
///
/// Callbacks fire once per row telemetry tick (2 s in the paper's
/// Table 1 configuration). `on_observed` / `on_gap` carry what an
/// operator actually sees — the [`DelayedSignal`] read, stale by the
/// Table 2 propagation delay. `on_truth` carries the instantaneous
/// ground-truth power and exists solely so monitoring planes can
/// annotate detections with the true event time; acting on it would
/// give a subscriber information no production system has.
///
/// [`DelayedSignal`]: crate::delay::DelayedSignal
pub trait RowPowerSubscriber: Send + Sync {
    /// A delayed reading became visible at `now`.
    fn on_observed(&self, now: SimTime, watts: f64);

    /// A telemetry tick at `now` had no propagated reading yet.
    fn on_gap(&self, _now: SimTime) {}

    /// Ground-truth row power at `now` (annotation only).
    fn on_truth(&self, _now: SimTime, _watts: f64) {}

    /// One complete telemetry tick: the ground-truth reading plus the
    /// delayed view (`None` while nothing has propagated). The default
    /// forwards to the three fine-grained callbacks, truth first;
    /// subscribers with interior locking can override it to take their
    /// lock once per tick instead of twice.
    fn on_tick(&self, now: SimTime, truth_watts: f64, observed: Option<f64>) {
        self.on_truth(now, truth_watts);
        match observed {
            Some(watts) => self.on_observed(now, watts),
            None => self.on_gap(now),
        }
    }

    /// Row-qualified variant of [`on_tick`](Self::on_tick), fired when
    /// the tap set carries a fleet row index. The default discards the
    /// row and forwards to `on_tick`, so single-row subscribers (the
    /// watch plane, overhead probes) work unchanged in a fleet; fleet
    /// aware subscribers override this to partition state per row.
    fn on_row_tick(&self, row: usize, now: SimTime, truth_watts: f64, observed: Option<f64>) {
        let _ = row;
        self.on_tick(now, truth_watts, observed);
    }
}

/// A cloneable set of [`RowPowerSubscriber`] handles.
///
/// Lives inside the simulator configuration, which derives `Clone` and
/// `PartialEq`; clones share the underlying subscribers (they are
/// `Arc`s), and equality compares only the subscriber *count* — the
/// set is wiring, not data, exactly like the obs recorder's
/// level-only equality.
#[derive(Clone, Default)]
pub struct RowPowerTaps {
    subs: Vec<Arc<dyn RowPowerSubscriber>>,
    row: usize,
}

impl fmt::Debug for RowPowerTaps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RowPowerTaps")
            .field("subscribers", &self.subs.len())
            .field("row", &self.row)
            .finish()
    }
}

impl PartialEq for RowPowerTaps {
    fn eq(&self, other: &Self) -> bool {
        self.subs.len() == other.subs.len() && self.row == other.row
    }
}

impl RowPowerTaps {
    /// An empty tap set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a subscriber.
    pub fn subscribe(&mut self, sub: Arc<dyn RowPowerSubscriber>) {
        self.subs.push(sub);
    }

    /// A clone of this tap set publishing as fleet row `row`: same
    /// shared subscribers, different row qualifier on every tick. Row
    /// 0 is the default, so a single-row simulator and `for_row(0)`
    /// are indistinguishable.
    pub fn for_row(&self, row: usize) -> Self {
        let mut taps = self.clone();
        taps.row = row;
        taps
    }

    /// The fleet row index this tap set publishes as (0 by default).
    pub fn row(&self) -> usize {
        self.row
    }

    /// Whether any subscriber is registered.
    pub fn is_empty(&self) -> bool {
        self.subs.is_empty()
    }

    /// Number of registered subscribers.
    pub fn len(&self) -> usize {
        self.subs.len()
    }

    /// Publishes the ground-truth reading for this tick.
    pub fn publish_truth(&self, now: SimTime, watts: f64) {
        for sub in &self.subs {
            sub.on_truth(now, watts);
        }
    }

    /// Publishes the delayed observation for this tick (`None` while
    /// nothing has propagated yet).
    pub fn publish_observed(&self, now: SimTime, observed: Option<f64>) {
        for sub in &self.subs {
            match observed {
                Some(watts) => sub.on_observed(now, watts),
                None => sub.on_gap(now),
            }
        }
    }

    /// Publishes one complete telemetry tick — ground truth plus the
    /// delayed view — as a single
    /// [`RowPowerSubscriber::on_row_tick`] call per subscriber,
    /// qualified by this tap set's row index (the default
    /// `on_row_tick` drops the row and lands on `on_tick`, so
    /// existing subscribers observe the historical behaviour).
    pub fn publish_tick(&self, now: SimTime, truth_watts: f64, observed: Option<f64>) {
        for sub in &self.subs {
            sub.on_row_tick(self.row, now, truth_watts, observed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[derive(Default)]
    struct Probe {
        log: Mutex<Vec<String>>,
    }

    impl RowPowerSubscriber for Probe {
        fn on_observed(&self, now: SimTime, watts: f64) {
            self.log
                .lock()
                .unwrap()
                .push(format!("obs@{}={watts}", now.as_secs()));
        }
        fn on_gap(&self, now: SimTime) {
            self.log
                .lock()
                .unwrap()
                .push(format!("gap@{}", now.as_secs()));
        }
        fn on_truth(&self, now: SimTime, watts: f64) {
            self.log
                .lock()
                .unwrap()
                .push(format!("truth@{}={watts}", now.as_secs()));
        }
    }

    #[test]
    fn publishes_reach_every_subscriber() {
        let a = Arc::new(Probe::default());
        let b = Arc::new(Probe::default());
        let mut taps = RowPowerTaps::new();
        taps.subscribe(a.clone());
        taps.subscribe(b.clone());
        assert_eq!(taps.len(), 2);
        taps.publish_truth(SimTime::from_secs(2.0), 100.0);
        taps.publish_observed(SimTime::from_secs(2.0), None);
        taps.publish_observed(SimTime::from_secs(4.0), Some(100.0));
        for p in [&a, &b] {
            let log = p.log.lock().unwrap();
            assert_eq!(*log, vec!["truth@2=100", "gap@2", "obs@4=100"]);
        }
    }

    #[test]
    fn empty_taps_are_cheap_noops() {
        let taps = RowPowerTaps::new();
        assert!(taps.is_empty());
        taps.publish_truth(SimTime::ZERO, 1.0);
        taps.publish_observed(SimTime::ZERO, Some(1.0));
    }

    #[test]
    fn equality_is_by_subscriber_count() {
        let mut a = RowPowerTaps::new();
        let b = RowPowerTaps::new();
        assert_eq!(a, b);
        a.subscribe(Arc::new(Probe::default()));
        assert_ne!(a, b);
        let mut c = RowPowerTaps::new();
        c.subscribe(Arc::new(Probe::default()));
        assert_eq!(a, c);
    }

    #[test]
    fn row_qualifier_reaches_fleet_aware_subscribers() {
        #[derive(Default)]
        struct RowProbe {
            log: Mutex<Vec<(usize, u64)>>,
        }
        impl RowPowerSubscriber for RowProbe {
            fn on_observed(&self, _now: SimTime, _watts: f64) {}
            fn on_row_tick(&self, row: usize, now: SimTime, _truth: f64, _obs: Option<f64>) {
                self.log.lock().unwrap().push((row, now.as_secs() as u64));
            }
        }
        let probe = Arc::new(RowProbe::default());
        let mut taps = RowPowerTaps::new();
        taps.subscribe(probe.clone());
        assert_eq!(taps.row(), 0);
        taps.publish_tick(SimTime::from_secs(2.0), 100.0, None);
        let row3 = taps.for_row(3);
        assert_eq!(row3.row(), 3);
        row3.publish_tick(SimTime::from_secs(4.0), 100.0, Some(99.0));
        assert_eq!(*probe.log.lock().unwrap(), vec![(0, 2), (3, 4)]);
    }

    #[test]
    fn row_agnostic_subscribers_see_plain_ticks_from_any_row() {
        let probe = Arc::new(Probe::default());
        let mut taps = RowPowerTaps::new();
        taps.subscribe(probe.clone());
        taps.for_row(7)
            .publish_tick(SimTime::from_secs(2.0), 50.0, Some(49.0));
        // Default on_row_tick discards the row: truth then observed.
        assert_eq!(*probe.log.lock().unwrap(), vec!["truth@2=50", "obs@2=49"]);
    }

    #[test]
    fn equality_includes_row_index() {
        let taps = RowPowerTaps::new();
        assert_eq!(taps, taps.for_row(0));
        assert_ne!(taps, taps.for_row(1));
    }

    #[test]
    fn clones_share_subscribers() {
        let probe = Arc::new(Probe::default());
        let mut taps = RowPowerTaps::new();
        taps.subscribe(probe.clone());
        let clone = taps.clone();
        clone.publish_truth(SimTime::from_secs(1.0), 5.0);
        assert_eq!(probe.log.lock().unwrap().len(), 1);
    }
}
