//! The interface catalog of Table 1 and row parameters of Table 2.

/// What a monitoring interface measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Granularity {
    /// CPU package and DRAM (RAPL).
    CpuDram,
    /// A single GPU.
    Gpu,
    /// A whole server (BMC/IPMI).
    Server,
    /// A row of racks behind one PDU.
    RowOfRacks,
}

/// Whether an interface is reachable from inside the VM (in-band) or only
/// from the management plane (out-of-band).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Path {
    /// In-band: requires GPU driver / guest access; fast.
    InBand,
    /// Out-of-band: management controller path; slow but always available
    /// to the provider.
    OutOfBand,
}

/// One row of the paper's Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorInterface {
    /// Interface name.
    pub name: &'static str,
    /// What it measures.
    pub granularity: Granularity,
    /// In-band or out-of-band.
    pub path: Path,
    /// Fastest supported sampling interval in seconds.
    pub min_interval_s: f64,
    /// Slowest typical sampling interval in seconds.
    pub max_interval_s: f64,
}

impl MonitorInterface {
    /// Intel RAPL: CPU and DRAM power, in-band, 1–10 ms.
    pub const fn rapl() -> Self {
        MonitorInterface {
            name: "RAPL",
            granularity: Granularity::CpuDram,
            path: Path::InBand,
            min_interval_s: 0.001,
            max_interval_s: 0.010,
        }
    }

    /// NVIDIA DCGM: per-GPU counters, in-band, 100 ms+.
    pub const fn dcgm() -> Self {
        MonitorInterface {
            name: "DCGM",
            granularity: Granularity::Gpu,
            path: Path::InBand,
            min_interval_s: 0.1,
            max_interval_s: 1.0,
        }
    }

    /// NVIDIA SMBPBI: per-GPU power OOB, 5 s+ ("quite slow in practice").
    pub const fn smbpbi() -> Self {
        MonitorInterface {
            name: "SMBPBI",
            granularity: Granularity::Gpu,
            path: Path::OutOfBand,
            min_interval_s: 5.0,
            max_interval_s: 10.0,
        }
    }

    /// IPMI: server power via the BMC, OOB, 1–5 s.
    pub const fn ipmi() -> Self {
        MonitorInterface {
            name: "IPMI",
            granularity: Granularity::Server,
            path: Path::OutOfBand,
            min_interval_s: 1.0,
            max_interval_s: 5.0,
        }
    }

    /// Row manager: aggregate row power, OOB, every 2 s.
    pub const fn row_manager() -> Self {
        MonitorInterface {
            name: "Row manager",
            granularity: Granularity::RowOfRacks,
            path: Path::OutOfBand,
            min_interval_s: 2.0,
            max_interval_s: 2.0,
        }
    }

    /// All interfaces of Table 1, in table order.
    pub fn table1() -> Vec<MonitorInterface> {
        vec![
            Self::rapl(),
            Self::dcgm(),
            Self::smbpbi(),
            Self::ipmi(),
            Self::row_manager(),
        ]
    }

    /// Extra server power the paper attributes to running DCGM
    /// continuously ("5–10 W", §3.4), in watts.
    pub const DCGM_OVERHEAD_WATTS: f64 = 7.5;
}

/// The row-level parameters of Table 2, which also parameterize the
/// POLCA evaluation cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct RowParameters {
    /// Servers behind the row PDU.
    pub servers: usize,
    /// Server model name.
    pub server_type: &'static str,
    /// Row power telemetry propagation delay in seconds.
    pub power_telemetry_delay_s: f64,
    /// Power brake actuation latency in seconds.
    pub power_brake_latency_s: f64,
    /// OOB frequency/power capping latency in seconds (worst case).
    pub oob_control_latency_s: f64,
}

impl Default for RowParameters {
    /// The production row of Table 2: 40 DGX-A100 servers, 2 s telemetry,
    /// 5 s brake, 40 s OOB control.
    fn default() -> Self {
        RowParameters {
            servers: 40,
            server_type: "DGX-A100",
            power_telemetry_delay_s: 2.0,
            power_brake_latency_s: 5.0,
            oob_control_latency_s: 40.0,
        }
    }
}

impl RowParameters {
    /// The UPS-imposed deadline on a power-capping response, in seconds
    /// (§3.3: "the power capping deadline required by the UPS is within
    /// 10 s").
    pub const UPS_CAPPING_DEADLINE_S: f64 = 10.0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_five_interfaces() {
        let t = MonitorInterface::table1();
        assert_eq!(t.len(), 5);
        let names: Vec<&str> = t.iter().map(|i| i.name).collect();
        assert_eq!(names, ["RAPL", "DCGM", "SMBPBI", "IPMI", "Row manager"]);
    }

    #[test]
    fn in_band_is_faster_than_out_of_band() {
        // The paper's core telemetry constraint.
        let ib_max = MonitorInterface::table1()
            .into_iter()
            .filter(|i| i.path == Path::InBand)
            .map(|i| i.min_interval_s)
            .fold(0.0, f64::max);
        let oob_min = MonitorInterface::table1()
            .into_iter()
            .filter(|i| i.path == Path::OutOfBand)
            .map(|i| i.min_interval_s)
            .fold(f64::INFINITY, f64::min);
        assert!(ib_max < oob_min);
    }

    #[test]
    fn intervals_are_well_formed() {
        for i in MonitorInterface::table1() {
            assert!(i.min_interval_s > 0.0, "{}", i.name);
            assert!(i.min_interval_s <= i.max_interval_s, "{}", i.name);
        }
    }

    #[test]
    fn row_parameters_match_table2() {
        let p = RowParameters::default();
        assert_eq!(p.servers, 40);
        assert_eq!(p.power_telemetry_delay_s, 2.0);
        assert_eq!(p.power_brake_latency_s, 5.0);
        assert_eq!(p.oob_control_latency_s, 40.0);
    }

    #[test]
    fn oob_capping_misses_the_ups_deadline_but_brake_meets_it() {
        // §3.3/§6.2: the design tension POLCA resolves.
        let p = RowParameters::default();
        assert!(p.oob_control_latency_s > RowParameters::UPS_CAPPING_DEADLINE_S);
        assert!(p.power_brake_latency_s < RowParameters::UPS_CAPPING_DEADLINE_S);
    }
}
