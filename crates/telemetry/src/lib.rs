//! Cloud GPU telemetry and control planes.
//!
//! §3 of the paper catalogs the monitoring and control interfaces
//! available in an LLM cluster (Tables 1 and 2) and the challenges they
//! create for power management: in-band (IB) tools are fast but
//! unavailable to the provider under passthrough virtualization, while
//! out-of-band (OOB) interfaces are slow — "up to 40 s to implement on a
//! single server" — and "may sometimes fail without signaling completion
//! or errors". POLCA's whole design flows from those constraints.
//!
//! * [`interfaces`] — the static interface catalog of Table 1 and the
//!   row-level parameters of Table 2,
//! * [`delay`] — [`delay::DelayedSignal`]: telemetry with a
//!   configurable propagation delay (the 2 s row-power delay),
//! * [`sampler`] — periodic sampling clocks with jitter and measurement
//!   noise (DCGM's 100 ms, IPMI's 1–5 s, the row manager's 2 s),
//! * [`control`] — [`control::OobControlPlane`]: command
//!   dispatch with actuation latency ranges and silent-failure injection,
//! * [`fanout`] — [`fanout::RowPowerTaps`]: publish/subscribe fan-out of
//!   the delayed row-power stream to passive observers (the online watch
//!   plane), with a ground-truth reference feed for annotation only.
//!
//! # Examples
//!
//! ```
//! use polca_sim::SimTime;
//! use polca_telemetry::delay::DelayedSignal;
//!
//! let mut sig = DelayedSignal::new(SimTime::from_secs(2.0));
//! sig.record(SimTime::from_secs(0.0), 100.0);
//! sig.record(SimTime::from_secs(2.0), 200.0);
//! // At t = 2 s the manager still sees the reading from t = 0.
//! assert_eq!(sig.read(SimTime::from_secs(2.0)), Some(100.0));
//! ```

pub mod buffer;
pub mod control;
pub mod delay;
pub mod fanout;
pub mod interfaces;
pub mod monitors;
pub mod sampler;

pub use buffer::{merge_tick_columns, BufferedTick, RowTickBuffer};
pub use control::{ControlAction, ControlCommand, OobControlPlane};
pub use delay::DelayedSignal;
pub use fanout::{RowPowerSubscriber, RowPowerTaps};
pub use interfaces::{Granularity, MonitorInterface, Path, RowParameters};
pub use monitors::{DcgmMonitor, SmbpbiReader};
pub use sampler::PeriodicSampler;
