//! Periodic sampling clocks with optional measurement noise.

use polca_sim::{SimRng, SimTime};

/// A fixed-interval sampling clock, e.g. DCGM at 100 ms or the row
/// manager at 2 s.
///
/// The sampler hands out due timestamps; the caller reads the underlying
/// signal at each tick. Optional Gaussian measurement noise models sensor
/// inaccuracy.
///
/// # Examples
///
/// ```
/// use polca_sim::SimTime;
/// use polca_telemetry::PeriodicSampler;
///
/// let mut s = PeriodicSampler::new(SimTime::from_secs(2.0));
/// assert_eq!(s.next_due(), SimTime::ZERO);
/// s.advance();
/// assert_eq!(s.next_due(), SimTime::from_secs(2.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PeriodicSampler {
    interval: SimTime,
    next_due: SimTime,
    noise_std: f64,
}

impl PeriodicSampler {
    /// Creates a sampler with the given interval, first due at time zero.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(interval: SimTime) -> Self {
        assert!(interval > SimTime::ZERO, "interval must be positive");
        PeriodicSampler {
            interval,
            next_due: SimTime::ZERO,
            noise_std: 0.0,
        }
    }

    /// Adds zero-mean Gaussian measurement noise with the given standard
    /// deviation (absolute units of the measured quantity).
    ///
    /// # Panics
    ///
    /// Panics if `std` is negative.
    pub fn with_noise(mut self, std: f64) -> Self {
        assert!(std >= 0.0, "noise std must be non-negative");
        self.noise_std = std;
        self
    }

    /// The sampling interval.
    pub fn interval(&self) -> SimTime {
        self.interval
    }

    /// The next timestamp at which a sample is due.
    pub fn next_due(&self) -> SimTime {
        self.next_due
    }

    /// Whether a sample is due at or before `now`.
    pub fn is_due(&self, now: SimTime) -> bool {
        now >= self.next_due
    }

    /// Advances to the next tick, returning the tick that was consumed.
    pub fn advance(&mut self) -> SimTime {
        let due = self.next_due;
        self.next_due += self.interval;
        due
    }

    /// Applies this sampler's measurement noise to a true value.
    pub fn measure(&self, true_value: f64, rng: &mut SimRng) -> f64 {
        if self.noise_std == 0.0 {
            true_value
        } else {
            rng.normal(true_value, self.noise_std)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn ticks_advance_by_interval() {
        let mut s = PeriodicSampler::new(t(0.1));
        assert_eq!(s.advance(), t(0.0));
        assert_eq!(s.advance(), t(0.1));
        assert!((s.next_due().as_secs() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn is_due_boundaries() {
        let mut s = PeriodicSampler::new(t(2.0));
        assert!(s.is_due(SimTime::ZERO));
        s.advance();
        assert!(!s.is_due(t(1.99)));
        assert!(s.is_due(t(2.0)));
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_rejected() {
        let _ = PeriodicSampler::new(SimTime::ZERO);
    }

    #[test]
    fn noiseless_measurement_is_exact() {
        let s = PeriodicSampler::new(t(1.0));
        let mut rng = SimRng::from_seed_stream(1, 0);
        assert_eq!(s.measure(123.0, &mut rng), 123.0);
    }

    #[test]
    fn noisy_measurement_is_unbiased() {
        let s = PeriodicSampler::new(t(1.0)).with_noise(5.0);
        let mut rng = SimRng::from_seed_stream(2, 0);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| s.measure(100.0, &mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 100.0).abs() < 0.2, "mean {mean}");
    }
}
