//! Per-row telemetry tick buffering for deferred, deterministic
//! replay.
//!
//! A multi-datacenter site steps its rows on a worker pool, so
//! subscribers that fold ticks from *different* rows into shared state
//! (the watch plane's burn windows, for example) would observe a
//! thread-dependent interleaving. [`RowTickBuffer`] is the
//! determinism-preserving adapter: it subscribes to the fleet's
//! [`RowPowerTaps`](crate::RowPowerTaps), appends each tick to a
//! per-row vector under a per-row lock — rows never contend, and each
//! row's own ticks arrive in simulation order regardless of which
//! worker stepped it — and after the run hands the buffered columns
//! back so the caller can merge them in canonical row order and replay
//! aggregate ticks into any single-stream subscriber.

use std::sync::{Arc, Mutex};

use polca_sim::SimTime;

use crate::fanout::RowPowerSubscriber;

/// One buffered telemetry tick of one row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BufferedTick {
    /// Tick time.
    pub t: SimTime,
    /// Ground-truth row power, in watts.
    pub truth_watts: f64,
    /// The delayed observation (`None` before the first reading
    /// propagates).
    pub observed_watts: Option<f64>,
}

/// A [`RowPowerSubscriber`] that records every row's ticks instead of
/// acting on them; see the [module docs](self).
pub struct RowTickBuffer {
    rows: Vec<Mutex<Vec<BufferedTick>>>,
}

impl RowTickBuffer {
    /// A buffer for `rows` fleet rows, ready to subscribe.
    pub fn new(rows: usize) -> Arc<Self> {
        Arc::new(RowTickBuffer {
            rows: (0..rows).map(|_| Mutex::new(Vec::new())).collect(),
        })
    }

    /// Number of rows buffered.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Takes row `row`'s buffered ticks (in simulation order), leaving
    /// the slot empty.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn take_row(&self, row: usize) -> Vec<BufferedTick> {
        std::mem::take(&mut self.rows[row].lock().expect("tick buffer poisoned"))
    }
}

impl RowPowerSubscriber for RowTickBuffer {
    fn on_observed(&self, _now: SimTime, _watts: f64) {}

    fn on_row_tick(&self, row: usize, now: SimTime, truth_watts: f64, observed: Option<f64>) {
        if let Some(slot) = self.rows.get(row) {
            slot.lock()
                .expect("tick buffer poisoned")
                .push(BufferedTick {
                    t: now,
                    truth_watts,
                    observed_watts: observed,
                });
        }
    }
}

/// Merges equal-length per-row tick columns into one aggregate tick
/// stream: truth is the sum across rows, and the observed value is the
/// sum only when *every* row has one (a single un-propagated row makes
/// the aggregate unobservable, exactly as a site-level meter behind
/// the slowest feed would behave).
///
/// Rows on a lockstep telemetry grid produce identical tick times;
/// ragged columns are truncated to the shortest.
pub fn merge_tick_columns(columns: &[Vec<BufferedTick>]) -> Vec<BufferedTick> {
    let Some(len) = columns.iter().map(Vec::len).min() else {
        return Vec::new();
    };
    (0..len)
        .map(|k| {
            let t = columns[0][k].t;
            let truth_watts = columns.iter().map(|c| c[k].truth_watts).sum();
            let observed_watts = columns
                .iter()
                .map(|c| c[k].observed_watts)
                .sum::<Option<f64>>();
            BufferedTick {
                t,
                truth_watts,
                observed_watts,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick(t: f64, truth: f64, obs: Option<f64>) -> BufferedTick {
        BufferedTick {
            t: SimTime::from_secs(t),
            truth_watts: truth,
            observed_watts: obs,
        }
    }

    #[test]
    fn buffers_ticks_per_row_in_order() {
        let buf = RowTickBuffer::new(2);
        buf.on_row_tick(1, SimTime::from_secs(2.0), 10.0, None);
        buf.on_row_tick(0, SimTime::from_secs(2.0), 20.0, Some(19.0));
        buf.on_row_tick(1, SimTime::from_secs(4.0), 11.0, Some(10.0));
        assert_eq!(buf.n_rows(), 2);
        assert_eq!(buf.take_row(0), vec![tick(2.0, 20.0, Some(19.0))]);
        assert_eq!(
            buf.take_row(1),
            vec![tick(2.0, 10.0, None), tick(4.0, 11.0, Some(10.0))]
        );
        assert!(buf.take_row(1).is_empty(), "take drains the slot");
    }

    #[test]
    fn merge_sums_truth_and_gates_observed_on_all_rows() {
        let merged = merge_tick_columns(&[
            vec![tick(2.0, 10.0, None), tick(4.0, 11.0, Some(10.0))],
            vec![tick(2.0, 5.0, Some(5.0)), tick(4.0, 6.0, Some(6.0))],
        ]);
        assert_eq!(
            merged,
            vec![tick(2.0, 15.0, None), tick(4.0, 17.0, Some(16.0))]
        );
        assert!(merge_tick_columns(&[]).is_empty());
    }
}
