//! Property-based tests for the POLCA controller state machine.

use proptest::prelude::*;

use polca::{NoCapController, PolcaController, PolcaPolicy};
use polca_cluster::{ControlRequest, PowerController, RowContext};
use polca_sim::SimTime;
use polca_telemetry::ControlAction;

fn ctx() -> RowContext {
    RowContext {
        provisioned_watts: 100_000.0,
        n_servers: 52,
    }
}

/// Runs a utilization trajectory through a controller, returning every
/// command batch.
fn drive(controller: &mut impl PowerController, utils: &[f64]) -> Vec<Vec<ControlRequest>> {
    utils
        .iter()
        .enumerate()
        .map(|(k, &u)| {
            controller.on_telemetry(
                SimTime::from_secs(k as f64 * 2.0),
                Some(u * 100_000.0),
                &ctx(),
            )
        })
        .collect()
}

proptest! {
    #[test]
    fn commands_only_flow_on_transitions(utils in prop::collection::vec(0.0..1.2f64, 1..200)) {
        let mut c = PolcaController::new(PolcaPolicy::default());
        let batches = drive(&mut c, &utils);
        // Total command batches with content never exceed transitions + 1.
        let non_empty = batches.iter().filter(|b| !b.is_empty()).count() as u64;
        prop_assert!(non_empty <= c.transitions() + 1);
    }

    #[test]
    fn brake_on_is_always_followed_by_brake_off_before_next_on(utils in prop::collection::vec(0.0..1.3f64, 1..300)) {
        let mut c = PolcaController::new(PolcaPolicy::default());
        let mut braked = false;
        for batch in drive(&mut c, &utils) {
            for cmd in batch {
                if let ControlAction::PowerBrake { on } = cmd.action {
                    prop_assert_ne!(on, braked, "redundant brake command");
                    braked = on;
                }
            }
        }
    }

    #[test]
    fn steady_low_power_eventually_uncaps_everything(high in 0.90..0.99f64) {
        let mut c = PolcaController::new(PolcaPolicy::default());
        // Spike up, then hold far below every threshold.
        let mut utils = vec![high; 5];
        utils.extend(std::iter::repeat_n(0.5, 20));
        let batches = drive(&mut c, &utils);
        // The last batches must contain no new caps, and the state must
        // have fully unwound (nothing more to say at 50 %).
        let trailing: usize = batches[20..].iter().map(Vec::len).sum();
        prop_assert_eq!(trailing, 0, "controller still chattering at idle");
    }

    #[test]
    fn locks_never_target_invalid_frequencies(utils in prop::collection::vec(0.0..1.3f64, 1..200)) {
        let mut c = PolcaController::new(PolcaPolicy::default());
        for batch in drive(&mut c, &utils) {
            for cmd in batch {
                if let ControlAction::LockClock { mhz } = cmd.action {
                    prop_assert!((210.0..=1410.0).contains(&mhz), "lock at {mhz} MHz");
                }
            }
        }
    }

    #[test]
    fn hysteresis_band_produces_no_commands(
        offset in 0.0..0.04f64,
        n in 1usize..50,
    ) {
        // Utilization wandering inside (t1 - gap, t1) after a T1 entry:
        // the controller must hold its state silently.
        let p = PolcaPolicy::default();
        let mut c = PolcaController::new(p.clone());
        let mut utils = vec![p.t1_frac + 0.01]; // enter T1
        utils.extend((0..n).map(|k| {
            let wobble = if k % 2 == 0 { offset } else { -offset };
            (p.t1_frac - p.uncap_gap / 2.0 + wobble).clamp(p.t1_uncap_frac() + 0.001, p.t2_frac - 0.001)
        }));
        let batches = drive(&mut c, &utils);
        let after_entry: usize = batches[1..].iter().map(Vec::len).sum();
        prop_assert_eq!(after_entry, 0, "commands inside the hysteresis band");
    }

    #[test]
    fn nocap_controller_only_ever_brakes(utils in prop::collection::vec(0.0..1.3f64, 1..200)) {
        let mut c = NoCapController::new(PolcaPolicy::default());
        for batch in drive(&mut c, &utils) {
            for cmd in batch {
                prop_assert!(
                    matches!(cmd.action, ControlAction::PowerBrake { .. }),
                    "No-cap issued {cmd:?}"
                );
            }
        }
    }

    #[test]
    fn missing_telemetry_is_always_a_noop(n in 1usize..50) {
        let mut c = PolcaController::new(PolcaPolicy::default());
        for k in 0..n {
            let out = c.on_telemetry(SimTime::from_secs(k as f64 * 2.0), None, &ctx());
            prop_assert!(out.is_empty());
        }
        prop_assert_eq!(c.transitions(), 0);
    }
}
