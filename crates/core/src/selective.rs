//! The workload-aware POLCA extension (§6.7).
//!
//! "POLCA could be extended to use workload-specific power profiles to
//! reduce the impact on performance, while getting the most power
//! savings." The dual-threshold controller caps *every* low-priority
//! server when a threshold trips; [`SelectiveController`] instead
//! estimates how many watts must be reclaimed and caps only the minimum
//! number of low-priority servers that covers it, expanding or shrinking
//! the capped set as the overshoot evolves.

use polca_cluster::{ControlRequest, ControlTarget, PowerController, RowContext};
use polca_sim::SimTime;
use polca_telemetry::ControlAction;

use crate::policy::PolcaPolicy;

/// A proportional, per-server variant of the POLCA controller.
///
/// Above T1 it caps `ceil(overshoot / reclaim_per_server)` low-priority
/// servers at the T1 clock (round-robin over the low-priority pool so the
/// capping burden rotates); the brake safety net is unchanged. High
/// priority is never touched — the selective reclaim happens entirely in
/// the low-priority pool, maximizing power savings per unit of
/// performance impact.
#[derive(Debug, Clone)]
pub struct SelectiveController {
    policy: PolcaPolicy,
    /// Watts one capped low-priority server reclaims (from the workload
    /// power profile; a BLOOM token-phase server at 1110 MHz sheds
    /// ~600 W).
    reclaim_per_server_watts: f64,
    /// Ids of the row's low-priority servers.
    low_priority_servers: Vec<usize>,
    /// How many of them are currently capped (a prefix of the rotated
    /// pool).
    capped: usize,
    /// Rotation offset so the same servers are not always capped first.
    rotation: usize,
    braked: bool,
}

impl SelectiveController {
    /// Creates the controller for a row whose low-priority servers are
    /// `low_priority_servers`.
    ///
    /// # Panics
    ///
    /// Panics if `reclaim_per_server_watts` is not strictly positive.
    pub fn new(
        policy: PolcaPolicy,
        low_priority_servers: Vec<usize>,
        reclaim_per_server_watts: f64,
    ) -> Self {
        assert!(
            reclaim_per_server_watts > 0.0,
            "per-server reclaim must be positive"
        );
        SelectiveController {
            policy,
            reclaim_per_server_watts,
            low_priority_servers,
            capped: 0,
            rotation: 0,
            braked: false,
        }
    }

    /// How many low-priority servers are currently capped.
    pub fn capped_servers(&self) -> usize {
        self.capped
    }

    fn server_at(&self, idx: usize) -> usize {
        let n = self.low_priority_servers.len();
        self.low_priority_servers[(self.rotation + idx) % n]
    }

    /// Adjusts the capped prefix to `target`, emitting only the deltas.
    fn resize_capped(&mut self, target: usize, cmds: &mut Vec<ControlRequest>) {
        let target = target.min(self.low_priority_servers.len());
        while self.capped < target {
            cmds.push(ControlRequest {
                target: ControlTarget::Server(self.server_at(self.capped)),
                action: ControlAction::LockClock {
                    mhz: self.policy.t1_low_mhz,
                },
            });
            self.capped += 1;
        }
        while self.capped > target {
            self.capped -= 1;
            cmds.push(ControlRequest {
                target: ControlTarget::Server(self.server_at(self.capped)),
                action: ControlAction::UnlockClock,
            });
        }
        if target == 0 && !self.low_priority_servers.is_empty() {
            // Rotate the pool so capping burden moves around.
            self.rotation = (self.rotation + 1) % self.low_priority_servers.len();
        }
    }
}

impl PowerController for SelectiveController {
    fn on_telemetry(
        &mut self,
        _now: SimTime,
        observed_row_watts: Option<f64>,
        ctx: &RowContext,
    ) -> Vec<ControlRequest> {
        let Some(watts) = observed_row_watts else {
            return Vec::new();
        };
        let u = watts / ctx.provisioned_watts;
        let p = &self.policy;
        let mut cmds = Vec::new();

        // Brake safety net, identical to the baseline controllers.
        if self.braked {
            if u <= p.brake_release_frac {
                self.braked = false;
                cmds.push(ControlRequest {
                    target: ControlTarget::All,
                    action: ControlAction::PowerBrake { on: false },
                });
            } else {
                return cmds;
            }
        } else if u >= p.brake_frac {
            self.braked = true;
            return vec![ControlRequest {
                target: ControlTarget::All,
                action: ControlAction::PowerBrake { on: true },
            }];
        }

        if u >= p.t1_frac {
            // Cap exactly enough servers to bring power back to the
            // uncap level (hysteresis built into the target).
            let target_watts = p.t1_uncap_frac() * ctx.provisioned_watts;
            let overshoot = watts - target_watts;
            let needed = (overshoot / self.reclaim_per_server_watts).ceil() as usize;
            if needed > self.capped {
                self.resize_capped(needed, &mut cmds);
            }
        } else if u < p.t1_uncap_frac() && self.capped > 0 {
            // Release one server per tick: gradual uncapping avoids the
            // sawtooth a bulk release would cause.
            let target = self.capped - 1;
            self.resize_capped(target, &mut cmds);
        }
        cmds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> RowContext {
        RowContext {
            provisioned_watts: 100_000.0,
            n_servers: 8,
        }
    }

    fn controller() -> SelectiveController {
        SelectiveController::new(PolcaPolicy::default(), vec![0, 2, 4, 6], 3000.0)
    }

    fn tick(c: &mut SelectiveController, t: f64, frac: f64) -> Vec<ControlRequest> {
        c.on_telemetry(SimTime::from_secs(t), Some(frac * 100_000.0), &ctx())
    }

    #[test]
    fn caps_proportionally_to_the_overshoot() {
        // 82 % observed, target 75 % ⇒ 7 kW overshoot ⇒ 3 servers at
        // 3 kW reclaim each.
        let mut c = controller();
        let cmds = tick(&mut c, 0.0, 0.82);
        assert_eq!(c.capped_servers(), 3);
        assert_eq!(cmds.len(), 3);
        // A smaller overshoot caps fewer…
        let mut c = controller();
        let cmds = tick(&mut c, 0.0, 0.805);
        assert_eq!(c.capped_servers(), 2, "{cmds:?}");
        // …and a huge one saturates at the pool size.
        let mut c = controller();
        tick(&mut c, 0.0, 0.99);
        assert_eq!(c.capped_servers(), 4);
    }

    #[test]
    fn below_threshold_releases_gradually() {
        let mut c = controller();
        tick(&mut c, 0.0, 0.82);
        assert_eq!(c.capped_servers(), 3);
        // Well below the uncap level: one server released per tick.
        tick(&mut c, 2.0, 0.70);
        assert_eq!(c.capped_servers(), 2);
        tick(&mut c, 4.0, 0.70);
        assert_eq!(c.capped_servers(), 1);
    }

    #[test]
    fn hysteresis_band_holds_the_capped_set() {
        let mut c = controller();
        tick(&mut c, 0.0, 0.805);
        let capped = c.capped_servers();
        assert!(capped > 0);
        // Between uncap (75 %) and T1 (80 %): no change either way.
        assert!(tick(&mut c, 2.0, 0.78).is_empty());
        assert!(tick(&mut c, 4.0, 0.76).is_empty());
        assert_eq!(c.capped_servers(), capped);
    }

    #[test]
    fn only_low_priority_servers_are_ever_locked() {
        let mut c = controller();
        for (k, frac) in [0.85, 0.9, 0.7, 0.6, 0.95].iter().enumerate() {
            for cmd in tick(&mut c, k as f64 * 2.0, *frac) {
                match cmd.target {
                    ControlTarget::Server(id) => assert!([0, 2, 4, 6].contains(&id)),
                    ControlTarget::All => {
                        assert!(matches!(cmd.action, ControlAction::PowerBrake { .. }))
                    }
                    other => panic!("unexpected target {other:?}"),
                }
            }
        }
    }

    #[test]
    fn brake_fires_at_the_limit() {
        let mut c = controller();
        let cmds = tick(&mut c, 0.0, 1.01);
        assert_eq!(cmds.len(), 1);
        assert_eq!(cmds[0].action, ControlAction::PowerBrake { on: true });
        // And releases below the release threshold.
        let cmds = tick(&mut c, 2.0, 0.80);
        assert_eq!(cmds[0].action, ControlAction::PowerBrake { on: false });
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_reclaim_rejected() {
        let _ = SelectiveController::new(PolcaPolicy::default(), vec![0], 0.0);
    }
}
