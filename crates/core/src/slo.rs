//! The service-level objectives of Table 6.

use polca_stats::Quantiles;

/// Latency and safety SLOs per Table 6: normalized latency impact caps
/// per priority class, and zero power-brake events.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SloTargets {
    /// Max normalized p50 latency for high priority (paper: 1.01).
    pub high_p50: f64,
    /// Max normalized p99 latency for high priority (paper: 1.05).
    pub high_p99: f64,
    /// Max normalized p50 latency for low priority (paper: 1.05).
    pub low_p50: f64,
    /// Max normalized p99 latency for low priority (paper: 1.50).
    pub low_p99: f64,
    /// Max tolerated power-brake events (paper: 0).
    pub max_brake_events: u64,
}

impl Default for SloTargets {
    fn default() -> Self {
        SloTargets {
            high_p50: 1.01,
            high_p99: 1.05,
            low_p50: 1.05,
            low_p99: 1.50,
            max_brake_events: 0,
        }
    }
}

/// The outcome of checking a run against [`SloTargets`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SloReport {
    /// Whether every objective was met.
    pub met: bool,
    /// Human-readable violations, empty when `met`.
    pub violations: Vec<String>,
}

impl SloTargets {
    /// Checks normalized latency digests and the brake count against the
    /// targets.
    pub fn check(
        &self,
        low_normalized: &Quantiles,
        high_normalized: &Quantiles,
        brake_events: u64,
    ) -> SloReport {
        let mut violations = Vec::new();
        let mut check = |name: &str, value: f64, limit: f64| {
            if value > limit {
                violations.push(format!("{name}: {value:.3} > {limit:.3}"));
            }
        };
        check("high-priority p50", high_normalized.p50, self.high_p50);
        check("high-priority p99", high_normalized.p99, self.high_p99);
        check("low-priority p50", low_normalized.p50, self.low_p50);
        check("low-priority p99", low_normalized.p99, self.low_p99);
        if brake_events > self.max_brake_events {
            violations.push(format!(
                "power brakes: {brake_events} > {}",
                self.max_brake_events
            ));
        }
        SloReport {
            met: violations.is_empty(),
            violations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quantiles(p50: f64, p99: f64) -> Quantiles {
        Quantiles {
            p50,
            p90: p50.max(p99 * 0.9),
            p99,
            max: p99 * 1.2,
            min: 1.0,
            mean: p50,
            count: 100,
        }
    }

    #[test]
    fn defaults_match_table6() {
        let t = SloTargets::default();
        assert_eq!(t.high_p50, 1.01);
        assert_eq!(t.high_p99, 1.05);
        assert_eq!(t.low_p50, 1.05);
        assert_eq!(t.low_p99, 1.50);
        assert_eq!(t.max_brake_events, 0);
    }

    #[test]
    fn compliant_run_passes() {
        let report =
            SloTargets::default().check(&quantiles(1.02, 1.30), &quantiles(1.005, 1.02), 0);
        assert!(report.met, "{:?}", report.violations);
    }

    #[test]
    fn high_priority_p50_breach_is_reported() {
        let report = SloTargets::default().check(&quantiles(1.0, 1.0), &quantiles(1.02, 1.0), 0);
        assert!(!report.met);
        assert!(report.violations[0].contains("high-priority p50"));
    }

    #[test]
    fn brake_events_violate() {
        let report = SloTargets::default().check(&quantiles(1.0, 1.0), &quantiles(1.0, 1.0), 1);
        assert!(!report.met);
        assert!(report.violations[0].contains("power brakes"));
    }

    #[test]
    fn low_priority_gets_more_headroom_than_high() {
        let t = SloTargets::default();
        assert!(t.low_p50 > t.high_p50);
        assert!(t.low_p99 > t.high_p99);
    }
}
