//! The service-level objectives of Table 6.

use std::fmt;

use polca_cluster::Priority;
use polca_stats::Quantiles;

/// Latency and safety SLOs per Table 6: normalized latency impact caps
/// per priority class, and zero power-brake events.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SloTargets {
    /// Max normalized p50 latency for high priority (paper: 1.01).
    pub high_p50: f64,
    /// Max normalized p99 latency for high priority (paper: 1.05).
    pub high_p99: f64,
    /// Max normalized p50 latency for low priority (paper: 1.05).
    pub low_p50: f64,
    /// Max normalized p99 latency for low priority (paper: 1.50).
    pub low_p99: f64,
    /// Max tolerated power-brake events (paper: 0).
    pub max_brake_events: u64,
}

impl Default for SloTargets {
    fn default() -> Self {
        SloTargets {
            high_p50: 1.01,
            high_p99: 1.05,
            low_p50: 1.05,
            low_p99: 1.50,
            max_brake_events: 0,
        }
    }
}

/// Which latency quantile an SLO constrains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum SloQuantile {
    /// The median.
    P50,
    /// The 99th percentile.
    P99,
}

impl fmt::Display for SloQuantile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SloQuantile::P50 => write!(f, "p50"),
            SloQuantile::P99 => write!(f, "p99"),
        }
    }
}

/// One objective breach, carrying the class, quantile, and the observed
/// vs target values — shared by the end-of-run checker and the online
/// watch plane so "what counts as a violation" has exactly one
/// definition.
///
/// `Display` reproduces the strings the old `Vec<String>` report
/// carried (e.g. `high-priority p50: 1.200 > 1.010`), so snapshots and
/// event-log goldens are unchanged.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum SloViolation {
    /// A normalized latency quantile exceeded its Table 6 cap.
    Latency {
        /// The priority class whose objective was breached.
        priority: Priority,
        /// Which quantile breached.
        quantile: SloQuantile,
        /// The normalized latency observed.
        observed: f64,
        /// The Table 6 cap it exceeded.
        target: f64,
    },
    /// More power-brake events than the target tolerates (paper: any).
    BrakeEvents {
        /// Brake engagements observed.
        observed: u64,
        /// The tolerated maximum.
        limit: u64,
    },
    /// An online multi-window burn-rate breach: the class is consuming
    /// its error budget faster than the alerting threshold in both the
    /// fast and slow windows. Produced by the watch plane, never by the
    /// end-of-run checker.
    BurnRate {
        /// The priority class burning its budget.
        priority: Priority,
        /// Fast-window length in seconds (Google-SRE style: 5 m).
        window_fast_s: f64,
        /// Slow-window length in seconds (1 h).
        window_slow_s: f64,
        /// Burn multiple over the fast window (1.0 = exactly on budget).
        fast_burn: f64,
        /// Burn multiple over the slow window.
        slow_burn: f64,
    },
}

/// Lower-case class label matching the historical report strings.
fn class(priority: Priority) -> &'static str {
    match priority {
        Priority::Low => "low",
        Priority::High => "high",
    }
}

impl fmt::Display for SloViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SloViolation::Latency {
                priority,
                quantile,
                observed,
                target,
            } => write!(
                f,
                "{}-priority {quantile}: {observed:.3} > {target:.3}",
                class(*priority)
            ),
            SloViolation::BrakeEvents { observed, limit } => {
                write!(f, "power brakes: {observed} > {limit}")
            }
            SloViolation::BurnRate {
                priority,
                window_fast_s,
                window_slow_s,
                fast_burn,
                slow_burn,
            } => write!(
                f,
                "{}-priority burn-rate: {fast_burn:.1}x over {window_fast_s:.0}s and \
                 {slow_burn:.1}x over {window_slow_s:.0}s",
                class(*priority)
            ),
        }
    }
}

/// The outcome of checking a run against [`SloTargets`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SloReport {
    /// Whether every objective was met.
    pub met: bool,
    /// Typed violations, empty when `met`; `Display` renders the
    /// historical human-readable strings.
    pub violations: Vec<SloViolation>,
}

impl SloTargets {
    /// Checks normalized latency digests and the brake count against the
    /// targets.
    pub fn check(
        &self,
        low_normalized: &Quantiles,
        high_normalized: &Quantiles,
        brake_events: u64,
    ) -> SloReport {
        let mut violations = Vec::new();
        let mut check = |priority: Priority, quantile: SloQuantile, observed: f64, target: f64| {
            if observed > target {
                violations.push(SloViolation::Latency {
                    priority,
                    quantile,
                    observed,
                    target,
                });
            }
        };
        check(
            Priority::High,
            SloQuantile::P50,
            high_normalized.p50,
            self.high_p50,
        );
        check(
            Priority::High,
            SloQuantile::P99,
            high_normalized.p99,
            self.high_p99,
        );
        check(
            Priority::Low,
            SloQuantile::P50,
            low_normalized.p50,
            self.low_p50,
        );
        check(
            Priority::Low,
            SloQuantile::P99,
            low_normalized.p99,
            self.low_p99,
        );
        if brake_events > self.max_brake_events {
            violations.push(SloViolation::BrakeEvents {
                observed: brake_events,
                limit: self.max_brake_events,
            });
        }
        SloReport {
            met: violations.is_empty(),
            violations,
        }
    }

    /// The normalized-latency cap for `priority`/`quantile`.
    pub fn latency_target(&self, priority: Priority, quantile: SloQuantile) -> f64 {
        match (priority, quantile) {
            (Priority::High, SloQuantile::P50) => self.high_p50,
            (Priority::High, SloQuantile::P99) => self.high_p99,
            (Priority::Low, SloQuantile::P50) => self.low_p50,
            (Priority::Low, SloQuantile::P99) => self.low_p99,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quantiles(p50: f64, p99: f64) -> Quantiles {
        Quantiles {
            p50,
            p90: p50.max(p99 * 0.9),
            p99,
            max: p99 * 1.2,
            min: 1.0,
            mean: p50,
            count: 100,
        }
    }

    #[test]
    fn defaults_match_table6() {
        let t = SloTargets::default();
        assert_eq!(t.high_p50, 1.01);
        assert_eq!(t.high_p99, 1.05);
        assert_eq!(t.low_p50, 1.05);
        assert_eq!(t.low_p99, 1.50);
        assert_eq!(t.max_brake_events, 0);
    }

    #[test]
    fn compliant_run_passes() {
        let report =
            SloTargets::default().check(&quantiles(1.02, 1.30), &quantiles(1.005, 1.02), 0);
        assert!(report.met, "{:?}", report.violations);
    }

    #[test]
    fn high_priority_p50_breach_is_reported() {
        let report = SloTargets::default().check(&quantiles(1.0, 1.0), &quantiles(1.02, 1.0), 0);
        assert!(!report.met);
        assert_eq!(
            report.violations[0],
            SloViolation::Latency {
                priority: Priority::High,
                quantile: SloQuantile::P50,
                observed: 1.02,
                target: 1.01,
            }
        );
        assert!(report.violations[0]
            .to_string()
            .contains("high-priority p50"));
    }

    #[test]
    fn brake_events_violate() {
        let report = SloTargets::default().check(&quantiles(1.0, 1.0), &quantiles(1.0, 1.0), 1);
        assert!(!report.met);
        assert_eq!(
            report.violations[0],
            SloViolation::BrakeEvents {
                observed: 1,
                limit: 0
            }
        );
        assert!(report.violations[0].to_string().contains("power brakes"));
    }

    #[test]
    fn display_matches_the_historical_strings() {
        let latency = SloViolation::Latency {
            priority: Priority::High,
            quantile: SloQuantile::P50,
            observed: 1.2,
            target: 1.01,
        };
        assert_eq!(latency.to_string(), "high-priority p50: 1.200 > 1.010");
        let brakes = SloViolation::BrakeEvents {
            observed: 3,
            limit: 0,
        };
        assert_eq!(brakes.to_string(), "power brakes: 3 > 0");
        let burn = SloViolation::BurnRate {
            priority: Priority::Low,
            window_fast_s: 300.0,
            window_slow_s: 3600.0,
            fast_burn: 15.25,
            slow_burn: 7.04,
        };
        assert_eq!(
            burn.to_string(),
            "low-priority burn-rate: 15.2x over 300s and 7.0x over 3600s"
        );
    }

    #[test]
    fn latency_target_lookup_matches_fields() {
        let t = SloTargets::default();
        assert_eq!(
            t.latency_target(Priority::High, SloQuantile::P50),
            t.high_p50
        );
        assert_eq!(
            t.latency_target(Priority::High, SloQuantile::P99),
            t.high_p99
        );
        assert_eq!(t.latency_target(Priority::Low, SloQuantile::P50), t.low_p50);
        assert_eq!(t.latency_target(Priority::Low, SloQuantile::P99), t.low_p99);
    }

    #[test]
    fn low_priority_gets_more_headroom_than_high() {
        let t = SloTargets::default();
        assert!(t.low_p50 > t.high_p50);
        assert!(t.low_p99 > t.high_p99);
    }
}
