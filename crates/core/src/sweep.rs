//! Deterministic parallel execution of sweep cells.
//!
//! The paper's figures are grids of independent simulation cells —
//! four policies × several oversubscription levels × power scales
//! (Figures 14, 17, 18). Each cell is a pure function of its inputs,
//! so the only thing parallelism is allowed to change is wall-clock
//! time: [`run_parallel`] executes cells on scoped worker threads that
//! claim indices from a shared counter, writes each result into its
//! own slot, and returns the slots in index order. Callers that need
//! merged side artifacts (event logs, metrics) collect them per cell
//! and fold them in the returned canonical order, which makes the
//! merged output byte-identical to a sequential run.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `f(0..n)` on up to `jobs` worker threads and returns the
/// results in index order.
///
/// `jobs == 1` (or `n <= 1`) degenerates to a plain sequential loop on
/// the calling thread — no threads are spawned, so single-job sweeps
/// behave exactly like the historical sequential driver. With more
/// jobs, scoped threads claim indices from an atomic counter; claiming
/// order is racy but *completion placement* is not — result `i` always
/// lands in slot `i`.
///
/// A panic in any cell propagates to the caller once the scope joins.
///
/// # Panics
///
/// Panics if `jobs` is zero.
///
/// # Examples
///
/// ```
/// let squares = polca::sweep::run_parallel(4, 8, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn run_parallel<T, F>(jobs: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(jobs > 0, "a sweep needs at least one worker");
    let workers = jobs.min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = f(i);
                *slots[i].lock().unwrap() = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("every claimed index produced a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_come_back_in_index_order() {
        let sequential = run_parallel(1, 10, |i| i * 3);
        let parallel = run_parallel(4, 10, |i| i * 3);
        assert_eq!(sequential, (0..10).map(|i| i * 3).collect::<Vec<_>>());
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let calls = AtomicU64::new(0);
        let out = run_parallel(8, 100, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i));
    }

    #[test]
    fn more_jobs_than_cells_is_fine() {
        assert_eq!(run_parallel(16, 2, |i| i), vec![0, 1]);
        assert_eq!(run_parallel(3, 0, |i| i), Vec::<usize>::new());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_jobs_is_rejected() {
        run_parallel(0, 4, |i| i);
    }

    #[test]
    fn worker_panics_propagate() {
        let caught = std::panic::catch_unwind(|| {
            run_parallel(2, 4, |i| {
                if i == 2 {
                    panic!("cell exploded");
                }
                i
            })
        });
        assert!(caught.is_err());
    }
}
