//! Datacenter economics of oversubscription.
//!
//! The paper motivates POLCA economically: "it improves power
//! efficiency, reduces costs through fewer datacenters, and helps to
//! promptly meet the demand" (§1), because "building new datacenters is
//! expensive; and crucially, it takes a long time" (§1, \[7\]). This
//! module quantifies that: the capital value of the server capacity
//! oversubscription unlocks, and the energy bill of a simulated run.

use polca_cluster::RowConfig;
use polca_obs::EnergyLedger;

use crate::experiment::PolicyOutcome;

/// Cost-model parameters, in line with the warehouse-scale literature
/// the paper cites (Barroso et al. \[7\]).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CostModel {
    /// Capital cost of datacenter power capacity, USD per megawatt of
    /// critical load (construction + power/cooling infrastructure).
    pub capex_per_mw_usd: f64,
    /// Power usage effectiveness: facility power / IT power.
    pub pue: f64,
    /// Electricity price, USD per kWh.
    pub energy_price_per_kwh_usd: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            capex_per_mw_usd: 10_000_000.0,
            pue: 1.25,
            energy_price_per_kwh_usd: 0.08,
        }
    }
}

/// The value statement for one oversubscribed row.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct OversubscriptionValue {
    /// Extra servers hosted without new power capacity.
    pub extra_servers: usize,
    /// Power capacity (MW of critical load) that would otherwise have
    /// had to be built to host those servers at their rated draw.
    pub avoided_capacity_mw: f64,
    /// Capital expenditure avoided, USD.
    pub avoided_capex_usd: f64,
}

impl CostModel {
    /// Values hosting `added_fraction` more servers in `row` without new
    /// capacity: the avoided build-out is the rated power of the extra
    /// servers, scaled by PUE (facility overhead would have been built
    /// too).
    ///
    /// # Panics
    ///
    /// Panics if `added_fraction` is negative.
    pub fn oversubscription_value(
        &self,
        row: &RowConfig,
        added_fraction: f64,
    ) -> OversubscriptionValue {
        assert!(added_fraction >= 0.0, "added fraction cannot be negative");
        let extra_servers = row
            .clone()
            .with_added_servers(added_fraction)
            .total_servers()
            - row.total_servers();
        let avoided_it_watts = extra_servers as f64 * row.server_spec.provisioned_watts;
        let avoided_capacity_mw = avoided_it_watts * self.pue / 1e6;
        OversubscriptionValue {
            extra_servers,
            avoided_capacity_mw,
            avoided_capex_usd: avoided_capacity_mw * self.capex_per_mw_usd,
        }
    }

    /// The energy consumed by a run, in kWh (IT energy × PUE).
    pub fn energy_kwh(&self, outcome: &PolicyOutcome, row: &RowConfig, days: f64) -> f64 {
        let mean_watts = outcome.mean_utilization * row.provisioned_watts();
        mean_watts * self.pue * days * 24.0 / 1000.0
    }

    /// The electricity bill of a run, in USD.
    pub fn energy_cost_usd(&self, outcome: &PolicyOutcome, row: &RowConfig, days: f64) -> f64 {
        self.energy_kwh(outcome, row, days) * self.energy_price_per_kwh_usd
    }

    /// Energy per completed request in watt-hours — the power-efficiency
    /// metric oversubscription improves (more work amortizes the idle
    /// and facility overhead).
    ///
    /// This is the *aggregate* estimator: it spreads the whole row's
    /// mean draw — hot-idle floor, idle servers, and the PUE facility
    /// overhead included — evenly across completed requests. The
    /// polca-req ledger (`ReqRecord::joules`) is the *attributed*
    /// view of the same quantity: each request is charged only the
    /// busy power of the iterations it actually rode, so idle and
    /// facility overhead are excluded. The aggregate therefore upper-
    /// bounds the mean of the per-request ledger, and the two agree
    /// within the idle/PUE overhead factor (see the
    /// `aggregate_energy_estimator_bounds_the_req_ledger` test in
    /// `tests/req_trace.rs`).
    pub fn energy_per_request_wh(
        &self,
        outcome: &PolicyOutcome,
        row: &RowConfig,
        days: f64,
    ) -> Option<f64> {
        let completed = outcome.counts.1;
        self.energy_per_request_wh_raw(outcome.mean_utilization, completed, row, days)
    }

    /// [`energy_per_request_wh`](Self::energy_per_request_wh) from raw
    /// utilization and counts, for outcome types other than
    /// [`PolicyOutcome`] (the trace-replay paths).
    pub fn energy_per_request_wh_raw(
        &self,
        mean_utilization: f64,
        completed: u64,
        row: &RowConfig,
        days: f64,
    ) -> Option<f64> {
        if completed == 0 {
            return None;
        }
        let mean_watts = mean_utilization * row.provisioned_watts();
        let energy_kwh = mean_watts * self.pue * days * 24.0 / 1000.0;
        Some(energy_kwh * 1000.0 / completed as f64)
    }

    /// Energy per completed request in watt-hours, *measured*: when a
    /// polca-energy ledger was attached to the run, use its integrated
    /// facility energy instead of the utilization × PUE estimator. The
    /// ledger already applied its own (possibly per-datacenter) PUE, so
    /// this model's [`pue`](CostModel::pue) constant plays no part —
    /// the two planes cannot double-count facility overhead. Returns
    /// `None` when the ledger is empty or no requests completed, in
    /// which case callers fall back to the estimator.
    pub fn energy_per_request_wh_measured(
        &self,
        ledger: &EnergyLedger,
        completed: u64,
    ) -> Option<f64> {
        if ledger.is_empty() || completed == 0 {
            return None;
        }
        Some(ledger.site.facility_wh / completed as f64)
    }

    /// [`energy_per_request_wh`](Self::energy_per_request_wh) preferring
    /// the measured ledger value when one is available: the exact
    /// trapezoidal integral replaces the documented upper-bound
    /// estimator, which stays as the ledger-off fallback.
    pub fn energy_per_request_wh_with_ledger(
        &self,
        ledger: Option<&EnergyLedger>,
        mean_utilization: f64,
        completed: u64,
        row: &RowConfig,
        days: f64,
    ) -> Option<f64> {
        ledger
            .and_then(|l| self.energy_per_request_wh_measured(l, completed))
            .or_else(|| self.energy_per_request_wh_raw(mean_utilization, completed, row, days))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{OversubscriptionStudy, PolicyKind};

    #[test]
    fn thirty_percent_on_the_paper_row_avoids_a_megawatt_scale_buildout() {
        let model = CostModel::default();
        let row = RowConfig::paper_inference_row();
        let value = model.oversubscription_value(&row, 0.30);
        assert_eq!(value.extra_servers, 12);
        // 12 × 6.5 kW × 1.25 PUE ≈ 97.5 kW ⇒ ~ $1M of avoided capex per row.
        assert!((value.avoided_capacity_mw - 0.0975).abs() < 0.001);
        assert!(value.avoided_capex_usd > 900_000.0);
    }

    #[test]
    fn zero_added_servers_is_worth_nothing() {
        let model = CostModel::default();
        let value = model.oversubscription_value(&RowConfig::paper_inference_row(), 0.0);
        assert_eq!(value.extra_servers, 0);
        assert_eq!(value.avoided_capex_usd, 0.0);
    }

    #[test]
    fn oversubscription_improves_energy_per_request() {
        let mut study = OversubscriptionStudy::quick_demo(5);
        let days = study.days();
        let row = study.row().clone();
        let model = CostModel::default();
        let base = study.run(PolicyKind::NoCap, 0.0, 1.0);
        let over = study.run(PolicyKind::Polca, 0.30, 1.0);
        let base_epr = model.energy_per_request_wh(&base, &row, days).unwrap();
        let over_row = row.clone().with_added_servers(0.30);
        let over_epr = model.energy_per_request_wh(&over, &over_row, days).unwrap();
        // More requests amortize the hot-idle floor: energy per request
        // improves (or at worst stays flat).
        assert!(over_epr <= base_epr * 1.02, "{over_epr} vs {base_epr}");
        // And the bill reflects actual consumption.
        assert!(model.energy_cost_usd(&over, &row, days) > 0.0);
    }

    #[test]
    #[should_panic(expected = "cannot be negative")]
    fn negative_fraction_rejected() {
        let _ =
            CostModel::default().oversubscription_value(&RowConfig::paper_inference_row(), -0.1);
    }

    fn ledger_with_facility_wh(facility_wh: f64) -> EnergyLedger {
        EnergyLedger::from_rows(&[polca_obs::RowEnergy {
            row: 0,
            pdu: 0,
            dc: 0,
            pue: 1.25,
            horizon_s: 3600.0,
            it_wh: facility_wh / 1.25,
            busy_wh: facility_wh / 2.0,
            facility_wh,
            co2e_g: 0.0,
            wh_low: 0.0,
            wh_high: facility_wh / 1.25,
            pool_wh: vec![("aggregated", facility_wh / 1.25)],
            tokens_low: 0,
            tokens_high: 100,
            samples: Vec::new(),
        }])
    }

    #[test]
    fn measured_energy_per_request_replaces_the_estimator() {
        let model = CostModel::default();
        let row = RowConfig::paper_inference_row();
        let ledger = ledger_with_facility_wh(500.0);
        assert_eq!(
            model.energy_per_request_wh_measured(&ledger, 50),
            Some(10.0)
        );
        assert_eq!(model.energy_per_request_wh_measured(&ledger, 0), None);
        let empty = EnergyLedger::from_rows(&[]);
        assert_eq!(model.energy_per_request_wh_measured(&empty, 50), None);
        // With a ledger attached, the dispatcher reports the measured
        // value; without one it falls back to the estimator.
        let measured = model
            .energy_per_request_wh_with_ledger(Some(&ledger), 0.8, 50, &row, 1.0)
            .unwrap();
        assert_eq!(measured, 10.0);
        let estimated = model
            .energy_per_request_wh_with_ledger(None, 0.8, 50, &row, 1.0)
            .unwrap();
        assert_eq!(
            Some(estimated),
            model.energy_per_request_wh_raw(0.8, 50, &row, 1.0)
        );
        // The estimator spreads the full mean draw (idle floor + PUE)
        // over requests, so it dominates any realistic measured value.
        assert!(estimated > measured);
    }
}
