//! POLCA's dual-threshold controller and the §6.6 baselines.
//!
//! All controllers are driven by the cluster simulator's 2 s row
//! telemetry (already delayed by the Table 2 propagation lag) and issue
//! commands over the slow OOB plane. They emit commands only on state
//! *transitions* — re-sending the full cap set every tick would swamp a
//! 40 s-latency control path.

use polca_cluster::{ControlRequest, ControlTarget, PowerController, Priority, RowContext};
use polca_obs::{Event, Label, Recorder};
use polca_sim::SimTime;
use polca_telemetry::ControlAction;

use crate::policy::PolcaPolicy;

/// Internal mode of the dual-threshold state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Uncapped,
    T1,
    T2 {
        /// Whether the high-priority gentle cap has been applied (it
        /// only is when power stays above T2 after the low-priority cap).
        hp_capped: bool,
    },
    Brake,
}

impl Mode {
    /// Trace label for the mode (the `from`/`to` of
    /// `controller_transition` events).
    fn name(self) -> &'static str {
        match self {
            Mode::Uncapped => "Uncapped",
            Mode::T1 => "T1",
            Mode::T2 { hp_capped: false } => "T2",
            Mode::T2 { hp_capped: true } => "T2+HP",
            Mode::Brake => "Brake",
        }
    }
}

/// The POLCA power manager (§6.3).
///
/// # Control flow (the paper's Figure 12)
///
/// ```text
///   PDU (row-level power)
///        │  telemetry every 2 s (stale by 2 s)
///        ▼
///   Rack manager / power manager  ←— this type
///        │  per-priority frequency caps / brake (state transitions only)
///        ▼
///   OOB control plane (SMBPBI, 20–40 s; brake 2–5 s)
///        │
///        ▼
///   BMC → per-GPU clock locks on every server of the target priority
/// ```
///
/// "We assume a homogeneous distribution of power and caps for fast
/// control": decisions are made on the aggregate row power and applied
/// uniformly to a priority class.
///
/// # Examples
///
/// ```
/// use polca::{PolcaController, PolcaPolicy};
/// use polca_cluster::{PowerController, RowContext};
/// use polca_sim::SimTime;
///
/// let mut polca = PolcaController::new(PolcaPolicy::default());
/// let ctx = RowContext { provisioned_watts: 260_000.0, n_servers: 52 };
/// // Quiet cluster: no commands.
/// let cmds = polca.on_telemetry(SimTime::from_secs(2.0), Some(150_000.0), &ctx);
/// assert!(cmds.is_empty());
/// // Above T1 (80 %): cap the low-priority servers.
/// let cmds = polca.on_telemetry(SimTime::from_secs(4.0), Some(215_000.0), &ctx);
/// assert_eq!(cmds.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct PolcaController {
    policy: PolcaPolicy,
    mode: Mode,
    transitions: u64,
    /// When observed power first dipped below the current mode's uncap
    /// level (`None` while at or above it). De-escalation waits until
    /// the dip has lasted `uncap_dwell_s` — see [`PolcaPolicy`].
    below_since: Option<SimTime>,
    recorder: Recorder,
}

impl PolcaController {
    /// Creates the controller in the uncapped state.
    pub fn new(policy: PolcaPolicy) -> Self {
        PolcaController {
            policy,
            mode: Mode::Uncapped,
            transitions: 0,
            below_since: None,
            recorder: Recorder::disabled(),
        }
    }

    /// Returns the controller with an observability recorder attached:
    /// mode changes are traced as `controller_transition` events and
    /// counted per target mode.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// The policy in force.
    pub fn policy(&self) -> &PolcaPolicy {
        &self.policy
    }

    /// Mode transitions performed so far (capping churn; the hysteresis
    /// ablation measures this).
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    fn cap_low(&self, mhz: f64) -> ControlRequest {
        ControlRequest {
            target: ControlTarget::Priority(Priority::Low),
            action: ControlAction::LockClock { mhz },
        }
    }

    fn cap_high(&self, mhz: f64) -> ControlRequest {
        ControlRequest {
            target: ControlTarget::Priority(Priority::High),
            action: ControlAction::LockClock { mhz },
        }
    }

    fn uncap(&self, priority: Priority) -> ControlRequest {
        ControlRequest {
            target: ControlTarget::Priority(priority),
            action: ControlAction::UnlockClock,
        }
    }

    fn brake(&self, on: bool) -> ControlRequest {
        ControlRequest {
            target: ControlTarget::All,
            action: ControlAction::PowerBrake { on },
        }
    }
}

impl PowerController for PolcaController {
    fn on_telemetry(
        &mut self,
        now: SimTime,
        observed_row_watts: Option<f64>,
        ctx: &RowContext,
    ) -> Vec<ControlRequest> {
        let Some(watts) = observed_row_watts else {
            return Vec::new();
        };
        let u = watts / ctx.provisioned_watts;
        let before = self.mode;
        let mut cmds = Vec::new();

        // Conservative uncapping: the dip below the uncap level must
        // persist for a full dwell (one worst-case OOB round trip)
        // before caps are released, or a burst arriving during the
        // 20–40 s command flight would find the row uncapped.
        let below_uncap = match self.mode {
            Mode::T1 => u < self.policy.t1_uncap_frac(),
            Mode::T2 { .. } => u < self.policy.t2_uncap_frac(),
            Mode::Uncapped | Mode::Brake => false,
        };
        let uncap_ready = if below_uncap {
            let since = *self.below_since.get_or_insert(now);
            now.as_secs() - since.as_secs() >= self.policy.uncap_dwell_s
        } else {
            self.below_since = None;
            false
        };

        let p = &self.policy;
        self.mode = match self.mode {
            Mode::Brake => {
                if u <= p.brake_release_frac {
                    // Release the brake but resume fully capped: the row
                    // was at the limit moments ago.
                    cmds.push(self.brake(false));
                    cmds.push(self.cap_low(p.t2_low_mhz));
                    cmds.push(self.cap_high(p.t2_high_mhz));
                    Mode::T2 { hp_capped: true }
                } else {
                    Mode::Brake
                }
            }
            Mode::Uncapped => {
                if u >= p.brake_frac {
                    cmds.push(self.brake(true));
                    Mode::Brake
                } else if u >= p.t2_frac {
                    cmds.push(self.cap_low(p.t2_low_mhz));
                    Mode::T2 { hp_capped: false }
                } else if u >= p.t1_frac {
                    cmds.push(self.cap_low(p.t1_low_mhz));
                    Mode::T1
                } else {
                    Mode::Uncapped
                }
            }
            Mode::T1 => {
                if u >= p.brake_frac {
                    cmds.push(self.brake(true));
                    Mode::Brake
                } else if u >= p.t2_frac {
                    cmds.push(self.cap_low(p.t2_low_mhz));
                    Mode::T2 { hp_capped: false }
                } else if uncap_ready {
                    cmds.push(self.uncap(Priority::Low));
                    Mode::Uncapped
                } else {
                    Mode::T1
                }
            }
            Mode::T2 { hp_capped } => {
                if u >= p.brake_frac {
                    cmds.push(self.brake(true));
                    Mode::Brake
                } else if u >= p.t2_frac && !hp_capped {
                    // The low-priority cap did not bring power under T2:
                    // gently cap high priority too (§6.3).
                    cmds.push(self.cap_high(p.t2_high_mhz));
                    Mode::T2 { hp_capped: true }
                } else if uncap_ready {
                    if hp_capped {
                        cmds.push(self.uncap(Priority::High));
                    }
                    cmds.push(self.cap_low(p.t1_low_mhz));
                    Mode::T1
                } else {
                    Mode::T2 { hp_capped }
                }
            }
        };
        if self.mode != before {
            self.transitions += 1;
            self.below_since = None;
            self.recorder
                .add("controller.transitions", Label::Tag(self.mode.name()), 1);
            self.recorder.record(Event::ControllerTransition {
                t: now.as_secs(),
                from: before.name(),
                to: self.mode.name(),
            });
        }
        cmds
    }
}

/// The `1-Thresh-Low-Pri` and `1-Thresh-All` baselines (§6.6): a single
/// threshold at T2 that immediately applies the hard cap, with the same
/// UPS brake fallback.
#[derive(Debug, Clone)]
pub struct SingleThresholdController {
    policy: PolcaPolicy,
    /// Whether the threshold caps every server or only low priority.
    cap_all: bool,
    capped: bool,
    braked: bool,
    recorder: Recorder,
}

impl SingleThresholdController {
    /// `1-Thresh-Low-Pri`: one threshold (T2) capping low priority only.
    pub fn low_priority_only(policy: PolcaPolicy) -> Self {
        SingleThresholdController {
            policy,
            cap_all: false,
            capped: false,
            braked: false,
            recorder: Recorder::disabled(),
        }
    }

    /// `1-Thresh-All`: one threshold (T2) capping every server.
    pub fn all_workloads(policy: PolcaPolicy) -> Self {
        SingleThresholdController {
            policy,
            cap_all: true,
            capped: false,
            braked: false,
            recorder: Recorder::disabled(),
        }
    }

    /// Returns the controller with an observability recorder attached.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    fn state_name(capped: bool, braked: bool) -> &'static str {
        match (braked, capped) {
            (true, _) => "Brake",
            (false, true) => "Capped",
            (false, false) => "Uncapped",
        }
    }

    fn trace_transition(&self, now: SimTime, from: (bool, bool)) {
        let from = Self::state_name(from.0, from.1);
        let to = Self::state_name(self.capped, self.braked);
        if from != to {
            self.recorder
                .add("controller.transitions", Label::Tag(to), 1);
            self.recorder.record(Event::ControllerTransition {
                t: now.as_secs(),
                from,
                to,
            });
        }
    }
}

impl PowerController for SingleThresholdController {
    fn on_telemetry(
        &mut self,
        now: SimTime,
        observed_row_watts: Option<f64>,
        ctx: &RowContext,
    ) -> Vec<ControlRequest> {
        let Some(watts) = observed_row_watts else {
            return Vec::new();
        };
        let u = watts / ctx.provisioned_watts;
        let p = &self.policy;
        let before = (self.capped, self.braked);
        let mut cmds = Vec::new();
        if self.braked {
            if u <= p.brake_release_frac {
                self.braked = false;
                cmds.push(ControlRequest {
                    target: ControlTarget::All,
                    action: ControlAction::PowerBrake { on: false },
                });
            } else {
                return cmds;
            }
        } else if u >= p.brake_frac {
            self.braked = true;
            cmds.push(ControlRequest {
                target: ControlTarget::All,
                action: ControlAction::PowerBrake { on: true },
            });
            self.trace_transition(now, before);
            return cmds;
        }
        if !self.capped && u >= p.t2_frac {
            self.capped = true;
            let target = if self.cap_all {
                ControlTarget::All
            } else {
                ControlTarget::Priority(Priority::Low)
            };
            cmds.push(ControlRequest {
                target,
                action: ControlAction::LockClock { mhz: p.t2_low_mhz },
            });
        } else if self.capped && u < p.t2_uncap_frac() {
            self.capped = false;
            let target = if self.cap_all {
                ControlTarget::All
            } else {
                ControlTarget::Priority(Priority::Low)
            };
            cmds.push(ControlRequest {
                target,
                action: ControlAction::UnlockClock,
            });
        }
        self.trace_transition(now, before);
        cmds
    }
}

/// The `No-cap` baseline (§6.6): no proactive capping at all. The only
/// thing standing between the row and a power-safety incident is the
/// involuntary UPS-triggered power brake at the provisioned limit —
/// which is exactly what "lacks power brake protection ... impacts P99
/// and P100 latency" costs.
#[derive(Debug, Clone)]
pub struct NoCapController {
    policy: PolcaPolicy,
    braked: bool,
    recorder: Recorder,
}

impl NoCapController {
    /// Creates the baseline with the default brake limits.
    pub fn new(policy: PolcaPolicy) -> Self {
        NoCapController {
            policy,
            braked: false,
            recorder: Recorder::disabled(),
        }
    }

    /// Returns the controller with an observability recorder attached.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    fn trace_transition(&self, now: SimTime, to_braked: bool) {
        let (from, to) = if to_braked {
            ("Uncapped", "Brake")
        } else {
            ("Brake", "Uncapped")
        };
        self.recorder
            .add("controller.transitions", Label::Tag(to), 1);
        self.recorder.record(Event::ControllerTransition {
            t: now.as_secs(),
            from,
            to,
        });
    }
}

impl PowerController for NoCapController {
    fn on_telemetry(
        &mut self,
        now: SimTime,
        observed_row_watts: Option<f64>,
        ctx: &RowContext,
    ) -> Vec<ControlRequest> {
        let Some(watts) = observed_row_watts else {
            return Vec::new();
        };
        let u = watts / ctx.provisioned_watts;
        let p = &self.policy;
        if !self.braked && u >= p.brake_frac {
            self.braked = true;
            self.trace_transition(now, true);
            return vec![ControlRequest {
                target: ControlTarget::All,
                action: ControlAction::PowerBrake { on: true },
            }];
        }
        if self.braked && u <= p.brake_release_frac {
            self.braked = false;
            self.trace_transition(now, false);
            return vec![ControlRequest {
                target: ControlTarget::All,
                action: ControlAction::PowerBrake { on: false },
            }];
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> RowContext {
        RowContext {
            provisioned_watts: 100_000.0,
            n_servers: 40,
        }
    }

    fn tick(c: &mut impl PowerController, t: f64, frac: f64) -> Vec<ControlRequest> {
        c.on_telemetry(SimTime::from_secs(t), Some(frac * 100_000.0), &ctx())
    }

    fn is_lock(cr: &ControlRequest, priority: Priority, mhz: f64) -> bool {
        cr.target == ControlTarget::Priority(priority)
            && cr.action == ControlAction::LockClock { mhz }
    }

    #[test]
    fn no_observation_means_no_action() {
        let mut c = PolcaController::new(PolcaPolicy::default());
        assert!(c.on_telemetry(SimTime::ZERO, None, &ctx()).is_empty());
    }

    #[test]
    fn t1_caps_low_priority_at_base_clock() {
        let mut c = PolcaController::new(PolcaPolicy::default());
        assert!(tick(&mut c, 0.0, 0.70).is_empty());
        let cmds = tick(&mut c, 2.0, 0.82);
        assert_eq!(cmds.len(), 1);
        assert!(is_lock(&cmds[0], Priority::Low, 1275.0));
        // Holding above T1 does not re-issue.
        assert!(tick(&mut c, 4.0, 0.83).is_empty());
    }

    #[test]
    fn t2_escalates_low_then_high() {
        let mut c = PolcaController::new(PolcaPolicy::default());
        let cmds = tick(&mut c, 0.0, 0.90);
        assert_eq!(cmds.len(), 1);
        assert!(is_lock(&cmds[0], Priority::Low, 1110.0));
        // Still above T2 on the next tick: gently cap high priority.
        let cmds = tick(&mut c, 2.0, 0.90);
        assert_eq!(cmds.len(), 1);
        assert!(is_lock(&cmds[0], Priority::High, 1305.0));
        // And no further churn while it stays high (short of the brake).
        assert!(tick(&mut c, 4.0, 0.95).is_empty());
    }

    #[test]
    fn hysteresis_prevents_oscillation_at_threshold() {
        // Dwell 0 isolates the *gap* hysteresis under test here.
        let mut c = PolcaController::new(PolcaPolicy::default().with_uncap_dwell(0.0));
        tick(&mut c, 0.0, 0.82); // cap at T1
                                 // Dipping just below T1 must NOT uncap (uncap level is 75 %).
        assert!(tick(&mut c, 2.0, 0.79).is_empty());
        assert!(tick(&mut c, 4.0, 0.78).is_empty());
        // Only below 75 % does it uncap.
        let cmds = tick(&mut c, 6.0, 0.74);
        assert_eq!(cmds.len(), 1);
        assert_eq!(cmds[0].action, ControlAction::UnlockClock);
        assert_eq!(c.transitions(), 2);
    }

    #[test]
    fn t2_deescalates_to_t1_not_straight_to_uncapped() {
        let mut c = PolcaController::new(PolcaPolicy::default().with_uncap_dwell(0.0));
        tick(&mut c, 0.0, 0.90);
        tick(&mut c, 2.0, 0.90); // hp capped
        let cmds = tick(&mut c, 4.0, 0.80); // below T2 uncap (84 %)
                                            // Expect: unlock high, relax low to the T1 clock.
        assert_eq!(cmds.len(), 2);
        assert!(cmds
            .iter()
            .any(|c| c.target == ControlTarget::Priority(Priority::High)
                && c.action == ControlAction::UnlockClock));
        assert!(cmds.iter().any(|c| is_lock(c, Priority::Low, 1275.0)));
    }

    #[test]
    fn brake_fires_at_provisioned_limit_and_releases_into_t2() {
        let mut c = PolcaController::new(PolcaPolicy::default());
        let cmds = tick(&mut c, 0.0, 1.01);
        assert_eq!(cmds.len(), 1);
        assert_eq!(cmds[0].action, ControlAction::PowerBrake { on: true });
        assert_eq!(cmds[0].target, ControlTarget::All);
        // Still high: hold the brake.
        assert!(tick(&mut c, 2.0, 0.95).is_empty());
        // Released below 92 %: caps resume at full T2.
        let cmds = tick(&mut c, 4.0, 0.85);
        assert_eq!(cmds.len(), 3);
        assert_eq!(cmds[0].action, ControlAction::PowerBrake { on: false });
        assert!(cmds.iter().any(|c| is_lock(c, Priority::Low, 1110.0)));
        assert!(cmds.iter().any(|c| is_lock(c, Priority::High, 1305.0)));
    }

    #[test]
    fn zero_gap_ablation_oscillates() {
        // Without the 5 % hysteresis gap, a load hovering at T1 churns.
        // (Dwell 0 on both sides so the gap is the only variable.)
        let gapless = PolcaPolicy::default()
            .with_uncap_gap(0.0)
            .with_uncap_dwell(0.0);
        let mut c = PolcaController::new(gapless);
        let mut churn = 0;
        for k in 0..50 {
            let frac = if k % 2 == 0 { 0.805 } else { 0.795 };
            churn += tick(&mut c, k as f64 * 2.0, frac).len();
        }
        assert!(churn >= 40, "expected churn, got {churn} commands");

        let mut c = PolcaController::new(PolcaPolicy::default().with_uncap_dwell(0.0));
        let mut calm = 0;
        for k in 0..50 {
            let frac = if k % 2 == 0 { 0.805 } else { 0.795 };
            calm += tick(&mut c, k as f64 * 2.0, frac).len();
        }
        assert!(calm <= 1, "hysteresis should suppress churn, got {calm}");
    }

    #[test]
    fn uncap_waits_out_the_dwell() {
        // Default policy: a dip below the uncap level must persist for
        // 60 s (one worst-case OOB round trip) before caps come off —
        // a 2 s dip must NOT trigger de-escalation.
        let mut c = PolcaController::new(PolcaPolicy::default());
        tick(&mut c, 0.0, 0.82); // cap at T1
        assert!(tick(&mut c, 2.0, 0.74).is_empty()); // dip starts
        assert!(tick(&mut c, 30.0, 0.74).is_empty()); // 28 s < dwell
                                                      // A bounce above the uncap level resets the clock…
        assert!(tick(&mut c, 40.0, 0.78).is_empty());
        assert!(tick(&mut c, 42.0, 0.74).is_empty()); // new dip starts
        assert!(tick(&mut c, 100.0, 0.74).is_empty()); // 58 s < dwell
                                                       // …and only a dip that outlasts the dwell uncaps.
        let cmds = tick(&mut c, 104.0, 0.74); // 62 s ≥ dwell
        assert_eq!(cmds.len(), 1);
        assert_eq!(cmds[0].action, ControlAction::UnlockClock);
    }

    #[test]
    fn single_threshold_low_pri_caps_hard_immediately() {
        let mut c = SingleThresholdController::low_priority_only(PolcaPolicy::default());
        assert!(tick(&mut c, 0.0, 0.85).is_empty()); // below 89 %: nothing
        let cmds = tick(&mut c, 2.0, 0.90);
        assert_eq!(cmds.len(), 1);
        assert!(is_lock(&cmds[0], Priority::Low, 1110.0));
    }

    #[test]
    fn single_threshold_all_caps_everyone() {
        let mut c = SingleThresholdController::all_workloads(PolcaPolicy::default());
        let cmds = tick(&mut c, 0.0, 0.90);
        assert_eq!(cmds.len(), 1);
        assert_eq!(cmds[0].target, ControlTarget::All);
        assert_eq!(cmds[0].action, ControlAction::LockClock { mhz: 1110.0 });
        // Uncap below 84 %.
        let cmds = tick(&mut c, 2.0, 0.83);
        assert_eq!(cmds[0].action, ControlAction::UnlockClock);
    }

    #[test]
    fn no_cap_only_ever_brakes() {
        let mut c = NoCapController::new(PolcaPolicy::default());
        assert!(tick(&mut c, 0.0, 0.95).is_empty());
        let cmds = tick(&mut c, 2.0, 1.02);
        assert_eq!(cmds.len(), 1);
        assert_eq!(cmds[0].action, ControlAction::PowerBrake { on: true });
        let cmds = tick(&mut c, 4.0, 0.80);
        assert_eq!(cmds[0].action, ControlAction::PowerBrake { on: false });
    }

    #[test]
    fn baselines_brake_where_polca_would_have_capped_first() {
        // Ramp the same utilization trajectory through POLCA and No-cap:
        // POLCA starts capping at 80 %, No-cap lets it ride to the limit.
        let trajectory = [0.7, 0.82, 0.9, 0.96, 1.01];
        let mut polca = PolcaController::new(PolcaPolicy::default());
        let mut nocap = NoCapController::new(PolcaPolicy::default());
        let mut polca_caps = 0;
        let mut nocap_braked = false;
        for (k, &f) in trajectory.iter().enumerate() {
            polca_caps += tick(&mut polca, k as f64 * 2.0, f)
                .iter()
                .filter(|c| matches!(c.action, ControlAction::LockClock { .. }))
                .count();
            nocap_braked |= tick(&mut nocap, k as f64 * 2.0, f)
                .iter()
                .any(|c| c.action == ControlAction::PowerBrake { on: true });
        }
        assert!(polca_caps >= 2, "POLCA should have escalated caps");
        assert!(nocap_braked, "No-cap should have hit the UPS brake");
    }
}
