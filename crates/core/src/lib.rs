//! POLCA: power oversubscription for LLM inference clusters.
//!
//! This crate implements the paper's primary contribution (§6): a
//! "robust, reliable, and readily deployable" power-oversubscription
//! framework that exploits the statistical multiplexing headroom of LLM
//! inference clusters (Insight 9) to deploy ~30 % more servers under an
//! unchanged row power budget.
//!
//! The design follows §6.3:
//!
//! * **Dual thresholds.** A lower threshold T1 (80 % of provisioned
//!   power) frequency-caps low-priority servers to the A100 base clock
//!   (1275 MHz); an upper threshold T2 (89 %) caps them further
//!   (1110 MHz) and, if power stays high, also caps high-priority
//!   servers gently (1305 MHz). See [`policy::PolcaPolicy`] and
//!   Table 5's [`policy::PowerMode`].
//! * **Hysteresis.** Uncapping happens 5 % below each threshold so the
//!   row does not oscillate between capping and uncapping.
//! * **Power-brake safety net.** If power still reaches the provisioned
//!   limit, the fast (≤5 s) OOB power brake halts all GPUs before the
//!   10 s UPS deadline — POLCA's thresholds are chosen so this (almost)
//!   never fires.
//! * **Trained thresholds.** [`thresholds::ThresholdTrainer`] derives
//!   T1/T2 from a historical trace: T2 absorbs the maximum power spike
//!   within the 40 s OOB capping latency (Table 4: 11.8 %).
//!
//! Baselines from §6.6 — `1-Thresh-Low-Pri`, `1-Thresh-All`, `No-cap` —
//! are in [`controller`], and [`experiment`] drives the full evaluation
//! (Figures 13–18, Table 6).
//!
//! # Examples
//!
//! ```
//! use polca::{OversubscriptionStudy, PolicyKind};
//!
//! let mut study = OversubscriptionStudy::quick_demo(42);
//! let outcome = study.run(PolicyKind::Polca, 0.30, 1.0);
//! assert_eq!(outcome.brake_engagements, 0);
//! ```

pub mod controller;
pub mod cost;
pub mod disaggregation;
pub mod experiment;
pub mod policy;
pub mod replay;
pub mod selective;
pub mod slo;
pub mod sweep;
pub mod thresholds;

pub use controller::{NoCapController, PolcaController, SingleThresholdController};
pub use cost::{CostModel, OversubscriptionValue};
pub use disaggregation::{Disaggregation, DisaggregationConfig};
pub use experiment::{OversubscriptionStudy, PolicyKind, PolicyOutcome};
pub use policy::{PolcaPolicy, PowerMode};
pub use replay::{ReplayOutcome, TraceEvaluation};
pub use selective::SelectiveController;
pub use slo::{SloQuantile, SloReport, SloTargets, SloViolation};
pub use thresholds::ThresholdTrainer;
