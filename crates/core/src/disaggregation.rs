//! Phase-splitting deployment analysis (§5.2, Splitwise \[49\]).
//!
//! "It would be interesting to separate prompt computation and token
//! processing on different GPUs, which enables us to only power cap GPUs
//! that run the token phases. Such separation would require transferring
//! intermediate state between the prompt and token GPUs, which is
//! promising given the high-bandwidth Infiniband interconnects in LLM
//! clusters."
//!
//! [`Disaggregation`] sizes the two pools from the workload mix (Little's
//! law on per-phase service times), prices the KV-cache transfer over the
//! interconnect, and compares the power envelope against an aggregated
//! deployment at equal throughput.

use polca_cluster::{EngineKind, RowConfig, HOT_IDLE_INTENSITY};
use polca_gpu::DvfsModel;
use polca_llm::{InferenceConfig, InferenceModel};
use polca_serve::ServeConfig;
use polca_trace::WorkloadClass;

/// A phase-split deployment plan for one row.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct Disaggregation {
    /// Servers dedicated to prompt processing (full clock).
    pub prompt_servers: usize,
    /// Servers dedicated to token generation (permanently capped).
    pub token_servers: usize,
    /// The permanent token-pool SM clock in MHz.
    pub token_clock_mhz: f64,
    /// Mean KV-cache transfer time per request, in seconds.
    pub kv_transfer_s: f64,
    /// Mean end-to-end latency including the transfer, in seconds.
    pub request_latency_s: f64,
    /// Mean latency of the equivalent aggregated deployment, in seconds.
    pub aggregated_latency_s: f64,
    /// Peak row power of the split deployment, in watts.
    pub peak_watts: f64,
    /// Peak row power of the aggregated deployment at the same
    /// throughput, in watts.
    pub aggregated_peak_watts: f64,
}

/// Parameters of the splitting analysis.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DisaggregationConfig {
    /// Interconnect bandwidth for KV shipping, bytes/s (the paper points
    /// at InfiniBand; DGX-A100 has 8×200 Gb/s HCAs ⇒ ~200 GB/s).
    pub interconnect_bytes_per_s: f64,
    /// Target utilization for each pool (headroom against queueing).
    pub pool_utilization: f64,
    /// Token-pool SM clock in MHz (the §5.2 "lower frequencies during
    /// the token phase").
    pub token_clock_mhz: f64,
}

impl Default for DisaggregationConfig {
    fn default() -> Self {
        DisaggregationConfig {
            interconnect_bytes_per_s: 200e9,
            pool_utilization: 0.8,
            token_clock_mhz: 1110.0,
        }
    }
}

impl DisaggregationConfig {
    /// The continuous-batching engine matching this analysis. With
    /// `split_pools`, the row runs disaggregated prefill/decode pools:
    /// KV-cache handoffs ship over this interconnect and the decode
    /// pool holds the §5.2 token clock; otherwise every server serves
    /// both phases (aggregated) under the default [`ServeConfig`].
    pub fn batched_engine(&self, split_pools: bool) -> EngineKind {
        if split_pools {
            EngineKind::Batched(ServeConfig::split_pools(
                self.interconnect_bytes_per_s,
                Some(self.token_clock_mhz),
            ))
        } else {
            EngineKind::Batched(ServeConfig::default())
        }
    }
}

impl Disaggregation {
    /// Plans a phase-split deployment for `row` serving the given mix at
    /// `total_servers` worth of aggregated capacity.
    ///
    /// # Panics
    ///
    /// Panics if the mix is empty or the row's model does not fit.
    pub fn plan(row: &RowConfig, mix: &[WorkloadClass], config: &DisaggregationConfig) -> Self {
        assert!(!mix.is_empty(), "mix must be non-empty");
        let deployment = InferenceModel::new(row.model.clone(), row.server_spec.gpu.clone())
            .expect("row model must fit");
        let dvfs = DvfsModel::default();
        let gpu = &row.server_spec.gpu;
        let spec = &row.server_spec;
        let r_token = config.token_clock_mhz / gpu.max_sm_clock_mhz;

        // Mix-weighted per-phase service times and intensities.
        let mut prompt_s = 0.0;
        let mut token_s = 0.0;
        let mut token_s_capped = 0.0;
        let mut prompt_intensity = 0.0;
        let mut token_intensity = 0.0;
        let mut kv_bytes = 0.0;
        for class in mix {
            let (input, output) = class.mean_shape();
            let profile = deployment.profile(&InferenceConfig::new(input as u32, output as u32, 1));
            prompt_s += class.share * profile.prompt.duration_s;
            token_s += class.share * profile.token.duration_s;
            token_s_capped += class.share * profile.token.duration_at_clock(&dvfs, r_token);
            prompt_intensity += class.share * profile.prompt.intensity;
            token_intensity += class.share * profile.token.intensity;
            kv_bytes += class.share * input * deployment.model().kv_bytes_per_token(2.0);
        }
        let kv_transfer_s = kv_bytes / config.interconnect_bytes_per_s;

        // Size the pools by Little's law at the configured utilization,
        // for the throughput the aggregated row sustains at the same
        // utilization.
        let total = row.total_servers() as f64;
        let aggregated_service = prompt_s + token_s;
        let rate = config.pool_utilization * total / aggregated_service;
        let prompt_pool = (rate * prompt_s / config.pool_utilization).ceil().max(1.0);
        let token_pool = (rate * token_s_capped / config.pool_utilization)
            .ceil()
            .max(1.0);

        // Power: each pool at its own operating point, busy at the pool
        // utilization, hot-idle otherwise.
        let server_power = |intensity: f64, clock_ratio: f64| {
            let per_gpu = gpu.idle_watts
                + (gpu.transient_peak_watts - gpu.idle_watts)
                    * intensity
                    * dvfs.power_scale(clock_ratio);
            spec.server_power_watts(per_gpu * spec.n_gpus as f64)
        };
        let u = config.pool_utilization;
        let prompt_pool_watts = prompt_pool
            * (u * server_power(prompt_intensity, 1.0)
                + (1.0 - u) * server_power(HOT_IDLE_INTENSITY, 1.0));
        let token_pool_watts = token_pool
            * (u * server_power(token_intensity, r_token)
                + (1.0 - u) * server_power(HOT_IDLE_INTENSITY, r_token));
        // Aggregated peak: every server alternates phases at full clock.
        let busy_mix = (prompt_s * server_power(prompt_intensity, 1.0)
            + token_s * server_power(token_intensity, 1.0))
            / aggregated_service;
        let aggregated_watts =
            total * (u * busy_mix + (1.0 - u) * server_power(HOT_IDLE_INTENSITY, 1.0));

        Disaggregation {
            prompt_servers: prompt_pool as usize,
            token_servers: token_pool as usize,
            token_clock_mhz: config.token_clock_mhz,
            kv_transfer_s,
            request_latency_s: prompt_s + kv_transfer_s + token_s_capped,
            aggregated_latency_s: aggregated_service,
            peak_watts: prompt_pool_watts + token_pool_watts,
            aggregated_peak_watts: aggregated_watts,
        }
    }

    /// Power saved relative to the aggregated deployment, as a fraction.
    pub fn power_saving(&self) -> f64 {
        1.0 - self.peak_watts / self.aggregated_peak_watts
    }

    /// Latency overhead relative to the aggregated deployment, as a
    /// fraction (KV transfer plus the capped token pool).
    pub fn latency_overhead(&self) -> f64 {
        self.request_latency_s / self.aggregated_latency_s - 1.0
    }

    /// Total servers in the split deployment.
    pub fn total_servers(&self) -> usize {
        self.prompt_servers + self.token_servers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> Disaggregation {
        Disaggregation::plan(
            &RowConfig::paper_inference_row(),
            &WorkloadClass::table6(),
            &DisaggregationConfig::default(),
        )
    }

    #[test]
    fn token_pool_dominates_the_deployment() {
        // Prompt phases are a small fraction of request time, so the
        // capped token pool holds most servers — which is exactly why
        // phase splitting saves power.
        let p = plan();
        assert!(p.token_servers >= 8 * p.prompt_servers, "{p:?}");
        assert!(p.total_servers() <= 42, "pool sizing blew up: {p:?}");
    }

    #[test]
    fn splitting_saves_meaningful_power() {
        let p = plan();
        assert!(
            p.power_saving() > 0.05,
            "saving {:.3} ({:.0} W vs {:.0} W)",
            p.power_saving(),
            p.peak_watts,
            p.aggregated_peak_watts
        );
    }

    #[test]
    fn kv_transfer_is_milliseconds_over_infiniband() {
        // "promising given the high-bandwidth Infiniband interconnects":
        // shipping a few GB of KV-cache takes tens of milliseconds
        // against a multi-second prompt phase.
        let p = plan();
        assert!(p.kv_transfer_s < 0.1, "transfer {:.4}s", p.kv_transfer_s);
        assert!(
            p.latency_overhead() < 0.05,
            "overhead {:.3}",
            p.latency_overhead()
        );
    }

    #[test]
    fn slower_interconnect_raises_the_overhead() {
        let row = RowConfig::paper_inference_row();
        let mix = WorkloadClass::table6();
        let fast = Disaggregation::plan(&row, &mix, &DisaggregationConfig::default());
        let slow = Disaggregation::plan(
            &row,
            &mix,
            &DisaggregationConfig {
                interconnect_bytes_per_s: 1e9, // plain 10 GbE
                ..DisaggregationConfig::default()
            },
        );
        assert!(slow.kv_transfer_s > 50.0 * fast.kv_transfer_s);
        assert!(slow.latency_overhead() > fast.latency_overhead());
    }

    #[test]
    fn deeper_token_caps_save_more_power_but_cost_latency() {
        let row = RowConfig::paper_inference_row();
        let mix = WorkloadClass::table6();
        let shallow = Disaggregation::plan(
            &row,
            &mix,
            &DisaggregationConfig {
                token_clock_mhz: 1305.0,
                ..DisaggregationConfig::default()
            },
        );
        let deep = Disaggregation::plan(
            &row,
            &mix,
            &DisaggregationConfig {
                token_clock_mhz: 900.0,
                ..DisaggregationConfig::default()
            },
        );
        assert!(deep.peak_watts < shallow.peak_watts);
        assert!(deep.request_latency_s >= shallow.request_latency_s);
    }
}
