//! Policy evaluation on a replayed (ingested) request stream.
//!
//! [`OversubscriptionStudy`](crate::experiment::OversubscriptionStudy)
//! synthesizes its workload; [`TraceEvaluation`] instead takes an
//! explicit request stream — typically `polca-ingest`'s `TraceReplay`
//! of a production CSV — and runs the Figure 17 policy comparison on
//! it verbatim. The reference for latency normalization is the same
//! stream through an un-capped row (`NoopController`), cached across
//! policy runs so the four policies share one reference.

use std::sync::OnceLock;

use polca_cluster::{
    ClusterSim, EngineKind, NoopController, PowerController, Request, RowConfig, SimConfig,
};
use polca_obs::Recorder;
use polca_sim::SimTime;
use polca_stats::Quantiles;
use polca_telemetry::RowPowerTaps;

use crate::controller::{NoCapController, PolcaController, SingleThresholdController};
use crate::experiment::PolicyKind;
use crate::policy::PolcaPolicy;

/// Drain time appended after the last arrival so in-flight requests
/// finish inside the simulation horizon.
const DRAIN_S: f64 = 1800.0;

/// What one policy produced on the replayed stream.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ReplayOutcome {
    /// The policy that ran.
    pub kind: PolicyKind,
    /// Raw low-priority latency quantiles in seconds.
    pub low_raw: Quantiles,
    /// Raw high-priority latency quantiles in seconds.
    pub high_raw: Quantiles,
    /// Low-priority quantiles normalized to the un-capped reference.
    pub low_normalized: Quantiles,
    /// High-priority quantiles normalized to the un-capped reference.
    pub high_normalized: Quantiles,
    /// Power-brake events during the run.
    pub brake_engagements: u64,
    /// Peak row power over provisioned power.
    pub peak_utilization: f64,
    /// Mean row power over provisioned power.
    pub mean_utilization: f64,
    /// Requests offered / completed / rejected.
    pub counts: (u64, u64, u64),
    /// OOB control commands issued.
    pub commands_issued: u64,
}

/// Runs the Figure 17 policy comparison on a fixed request stream.
#[derive(Debug, Clone)]
pub struct TraceEvaluation {
    row: RowConfig,
    policy: PolcaPolicy,
    seed: u64,
    until: SimTime,
    requests: Vec<Request>,
    record_power: bool,
    engine: EngineKind,
    recorder: Recorder,
    oob_taps: RowPowerTaps,
    reference: OnceLock<(Quantiles, Quantiles)>,
}

impl TraceEvaluation {
    /// Builds an evaluation of `requests` on `row`. The horizon is the
    /// last arrival plus a 30-minute drain window (override with
    /// [`set_horizon`](TraceEvaluation::set_horizon)).
    pub fn new(row: RowConfig, policy: PolcaPolicy, requests: Vec<Request>, seed: u64) -> Self {
        let last_arrival = requests.last().map(|r| r.arrival.as_secs()).unwrap_or(0.0);
        TraceEvaluation {
            row,
            policy,
            seed,
            until: SimTime::from_secs(last_arrival + DRAIN_S),
            requests,
            record_power: false,
            engine: EngineKind::Legacy,
            recorder: Recorder::disabled(),
            oob_taps: RowPowerTaps::new(),
            reference: OnceLock::new(),
        }
    }

    /// Overrides the simulation horizon.
    pub fn set_horizon(&mut self, until: SimTime) {
        self.until = until;
    }

    /// Enables/disables the row-power timeseries in reports.
    pub fn set_record_power(&mut self, record: bool) {
        self.record_power = record;
    }

    /// Selects the row serving engine for every subsequent run,
    /// including the cached un-capped reference — normalization always
    /// compares like with like. Call before the first run: a reference
    /// cached under another engine is not invalidated.
    pub fn set_engine(&mut self, engine: EngineKind) {
        self.engine = engine;
    }

    /// The serving engine runs execute on.
    pub fn engine(&self) -> &EngineKind {
        &self.engine
    }

    /// Attaches an observability recorder to subsequent policy runs
    /// (the cached reference run stays un-instrumented, like the
    /// synthetic study).
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// Attaches delayed-telemetry subscribers (the online watch plane)
    /// to subsequent policy runs; the cached reference run stays
    /// un-instrumented.
    pub fn set_oob_taps(&mut self, taps: RowPowerTaps) {
        self.oob_taps = taps;
    }

    /// Number of requests in the replayed stream.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// The simulation horizon.
    pub fn horizon(&self) -> SimTime {
        self.until
    }

    fn sim_config(&self, recorder: Recorder) -> SimConfig {
        SimConfig {
            seed: self.seed,
            record_power_series: self.record_power,
            engine: self.engine.clone(),
            recorder,
            ..SimConfig::default()
        }
    }

    fn quantiles_or_unit(samples: &[f64]) -> Quantiles {
        Quantiles::from_samples(samples).unwrap_or(Quantiles {
            p50: 1.0,
            p90: 1.0,
            p99: 1.0,
            max: 1.0,
            min: 1.0,
            mean: 1.0,
            count: 0,
        })
    }

    /// Runs (and caches) the un-capped reference on the same stream.
    fn reference(&self) -> (Quantiles, Quantiles) {
        *self.reference.get_or_init(|| {
            let sim = ClusterSim::new(
                self.row.clone(),
                self.sim_config(Recorder::disabled()),
                NoopController,
            );
            let report = sim.run(self.requests.clone(), self.until);
            (
                Self::quantiles_or_unit(&report.low_latencies_s),
                Self::quantiles_or_unit(&report.high_latencies_s),
            )
        })
    }

    /// The policy controller instance for `kind`, recording into `obs`.
    ///
    /// Public so fleet-scale drivers can hand each row its own
    /// controller built from this evaluation's policy parameters.
    pub fn controller(&self, kind: PolicyKind, obs: Recorder) -> Box<dyn PowerController> {
        match kind {
            PolicyKind::Polca => {
                Box::new(PolcaController::new(self.policy.clone()).with_recorder(obs))
            }
            PolicyKind::OneThreshLowPri => Box::new(
                SingleThresholdController::low_priority_only(self.policy.clone())
                    .with_recorder(obs),
            ),
            PolicyKind::OneThreshAll => Box::new(
                SingleThresholdController::all_workloads(self.policy.clone()).with_recorder(obs),
            ),
            PolicyKind::NoCap => {
                Box::new(NoCapController::new(self.policy.clone()).with_recorder(obs))
            }
        }
    }

    /// Replays the stream under `kind` and normalizes against the
    /// cached un-capped reference.
    pub fn run(&mut self, kind: PolicyKind) -> ReplayOutcome {
        let obs = self.recorder.clone();
        let taps = self.oob_taps.clone();
        self.run_cell(kind, &obs, &taps)
    }

    /// One pure comparison cell: replays the stream under `kind`,
    /// recording into `obs` and publishing telemetry to `taps`. Takes
    /// `&self` (only the interior-mutable reference cache is touched)
    /// so [`run_all`](TraceEvaluation::run_all) can execute policies on
    /// worker threads.
    pub fn run_cell(&self, kind: PolicyKind, obs: &Recorder, taps: &RowPowerTaps) -> ReplayOutcome {
        let (ref_low, ref_high) = self.reference();
        let controller = self.controller(kind, obs.clone());
        let provisioned = self.row.provisioned_watts();
        let mut config = self.sim_config(obs.clone());
        config.oob_taps = taps.clone();
        let sim = ClusterSim::new(self.row.clone(), config, controller);
        let report = sim.run(self.requests.clone(), self.until);
        let low_raw = Self::quantiles_or_unit(&report.low_latencies_s);
        let high_raw = Self::quantiles_or_unit(&report.high_latencies_s);
        ReplayOutcome {
            kind,
            low_normalized: low_raw.normalized_to(&ref_low),
            high_normalized: high_raw.normalized_to(&ref_high),
            low_raw,
            high_raw,
            brake_engagements: report.brake_engagements,
            peak_utilization: report.peak_row_watts / provisioned,
            mean_utilization: report.mean_row_watts / provisioned,
            counts: (report.offered, report.completed, report.rejected),
            commands_issued: report.commands_issued,
        }
    }

    /// Runs the full Figure 17 policy panel on `jobs` worker threads
    /// and returns outcomes in figure order. Per-policy recorders are
    /// absorbed into the attached recorder in that same canonical
    /// order, so artifacts are byte-identical whatever `jobs` is.
    ///
    /// # Panics
    ///
    /// Panics if `jobs` is zero.
    pub fn run_all(&self, jobs: usize) -> Vec<ReplayOutcome> {
        let kinds = PolicyKind::all();
        let results = crate::sweep::run_parallel(jobs, kinds.len(), |i| {
            let cell_obs = self.recorder.fresh_cell();
            let outcome = self.run_cell(kinds[i], &cell_obs, &self.oob_taps);
            (outcome, cell_obs)
        });
        results
            .into_iter()
            .map(|(outcome, cell_obs)| {
                self.recorder.absorb(&cell_obs);
                outcome
            })
            .collect()
    }

    /// The row configuration the stream replays on.
    pub fn row(&self) -> &RowConfig {
        &self.row
    }

    /// The replayed request stream, in arrival order.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// The experiment seed (OOB latency draws).
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polca_cluster::Priority;

    fn burst_requests(n: u64, gap_s: f64) -> Vec<Request> {
        (0..n)
            .map(|i| {
                Request::new(
                    i,
                    SimTime::from_secs(i as f64 * gap_s),
                    1200,
                    400,
                    if i % 2 == 0 {
                        Priority::High
                    } else {
                        Priority::Low
                    },
                )
            })
            .collect()
    }

    fn small_row() -> RowConfig {
        let mut row = RowConfig::paper_inference_row();
        row.base_servers = 20;
        row
    }

    #[test]
    fn nocap_on_reference_stream_normalizes_to_unity() {
        let requests = burst_requests(400, 2.0);
        let mut eval = TraceEvaluation::new(small_row(), PolcaPolicy::default(), requests, 3);
        let outcome = eval.run(PolicyKind::NoCap);
        assert_eq!(outcome.counts.0, 400);
        assert!((outcome.low_normalized.p99 - 1.0).abs() < 1e-9);
        assert!((outcome.high_normalized.p99 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn all_policies_run_on_the_same_stream() {
        let requests = burst_requests(300, 1.5);
        let mut eval = TraceEvaluation::new(small_row(), PolcaPolicy::default(), requests, 3);
        for kind in PolicyKind::all() {
            let outcome = eval.run(kind);
            assert_eq!(outcome.kind, kind);
            assert_eq!(outcome.counts.0, 300);
            assert!(outcome.counts.1 > 0, "{kind:?} completed nothing");
        }
    }

    #[test]
    fn parallel_policy_panel_matches_sequential_runs() {
        let requests = burst_requests(300, 1.5);
        let eval = TraceEvaluation::new(small_row(), PolcaPolicy::default(), requests.clone(), 3);
        let outcomes = eval.run_all(4);
        let mut seq = TraceEvaluation::new(small_row(), PolcaPolicy::default(), requests, 3);
        assert_eq!(outcomes.len(), PolicyKind::all().len());
        for (got, kind) in outcomes.iter().zip(PolicyKind::all()) {
            let want = seq.run(kind);
            assert_eq!(got.kind, want.kind);
            assert_eq!(got.counts, want.counts);
            assert_eq!(got.commands_issued, want.commands_issued);
            assert_eq!(got.low_normalized.p99, want.low_normalized.p99);
            assert_eq!(got.high_normalized.p99, want.high_normalized.p99);
        }
    }

    #[test]
    fn horizon_covers_the_drain_window() {
        let requests = burst_requests(10, 60.0);
        let eval = TraceEvaluation::new(small_row(), PolcaPolicy::default(), requests, 1);
        assert!(eval.horizon().as_secs() >= 9.0 * 60.0 + 1800.0);
        assert_eq!(eval.len(), 10);
    }
}
