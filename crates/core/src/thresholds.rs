//! Threshold selection from historical traces (§6.3, §6.5).
//!
//! "POLCA selects the power value for the thresholds by analyzing
//! historical power usage traces. ... The upper threshold (T2) is chosen
//! to avoid power brakes. POLCA sets the threshold based on the observed
//! value of maximum power spike in 40 s (the OOB capping delay) over the
//! available trace." The paper trains on the first week of its six-week
//! trace and evaluates on the remaining five (§6.4).

use polca_stats::TimeSeries;

use crate::policy::PolcaPolicy;

/// Derives POLCA thresholds from a training trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdTrainer {
    /// Worst observed power rise within the OOB capping latency, as a
    /// fraction of provisioned power.
    pub max_spike_40s_frac: f64,
    /// Worst observed rise within the 2 s telemetry window.
    pub max_spike_2s_frac: f64,
    /// Peak utilization of the training trace.
    pub peak_utilization: f64,
}

impl ThresholdTrainer {
    /// Analyzes `trace` (row power in watts) against the row's
    /// `provisioned_watts`.
    ///
    /// # Panics
    ///
    /// Panics if the trace has fewer than two samples or
    /// `provisioned_watts` is not strictly positive.
    pub fn from_trace(trace: &TimeSeries, provisioned_watts: f64) -> Self {
        assert!(
            provisioned_watts > 0.0,
            "provisioned power must be positive"
        );
        let spike40 = trace
            .max_rise_within(40.0)
            .expect("trace needs at least two samples");
        let spike2 = trace
            .max_rise_within(2.0)
            .expect("trace needs at least two samples");
        ThresholdTrainer {
            max_spike_40s_frac: spike40 / provisioned_watts,
            max_spike_2s_frac: spike2 / provisioned_watts,
            peak_utilization: trace.peak().expect("non-empty trace") / provisioned_watts,
        }
    }

    /// Safety margin subtracted on top of the observed spike: covers the
    /// 2 s telemetry staleness and the amplification of spikes once more
    /// servers share the row (oversubscription synchronizes more prompt
    /// phases per burst).
    pub const SPIKE_MARGIN: f64 = 0.05;

    /// The trained upper threshold T2: provisioned power minus the
    /// worst 40 s spike minus [`SPIKE_MARGIN`](Self::SPIKE_MARGIN),
    /// rounded to the nearest percent (the paper lands on 89 %).
    pub fn t2(&self) -> f64 {
        let t2 = 1.0 - self.max_spike_40s_frac - Self::SPIKE_MARGIN;
        (t2 * 100.0).round() / 100.0
    }

    /// The trained lower threshold T1: 9 % below T2 (the paper's 80/89
    /// pairing), clamped to stay positive.
    pub fn t1(&self) -> f64 {
        (self.t2() - 0.09).max(0.01)
    }

    /// A [`PolcaPolicy`] with the trained thresholds and the Table 5
    /// clocks.
    pub fn train(&self) -> PolcaPolicy {
        PolcaPolicy::default().with_thresholds(self.t1(), self.t2())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trace whose worst 40 s rise is exactly `spike` of provisioned.
    fn trace_with_spike(provisioned: f64, spike: f64) -> TimeSeries {
        let mut ts = TimeSeries::new();
        for k in 0..200 {
            let t = k as f64 * 2.0;
            let base = 0.6 * provisioned;
            let v = if (100.0..130.0).contains(&t) {
                base + spike * provisioned
            } else {
                base
            };
            ts.push(t, v);
        }
        ts
    }

    #[test]
    fn trained_thresholds_absorb_spike_plus_margin() {
        let trace = trace_with_spike(100_000.0, 0.06);
        let trainer = ThresholdTrainer::from_trace(&trace, 100_000.0);
        assert!((trainer.max_spike_40s_frac - 0.06).abs() < 0.001);
        // T2 = 1 − spike − margin = 0.89, the paper's operating point.
        assert!((trainer.t2() - 0.89).abs() < 0.011);
        assert!((trainer.t1() - (trainer.t2() - 0.09)).abs() < 1e-12);
    }

    #[test]
    fn bigger_spikes_train_lower_thresholds() {
        let calm = ThresholdTrainer::from_trace(&trace_with_spike(1e5, 0.05), 1e5);
        let spiky = ThresholdTrainer::from_trace(&trace_with_spike(1e5, 0.20), 1e5);
        assert!(spiky.t2() < calm.t2());
        assert!(spiky.t1() < calm.t1());
    }

    #[test]
    fn trained_policy_is_valid() {
        let trainer = ThresholdTrainer::from_trace(&trace_with_spike(1e5, 0.118), 1e5);
        let policy = trainer.train();
        assert!(policy.t1_frac < policy.t2_frac);
        assert!(policy.t2_frac <= 1.0);
        assert_eq!(policy.t1_low_mhz, 1275.0);
    }

    #[test]
    fn spike_stats_are_ordered() {
        let trainer = ThresholdTrainer::from_trace(&trace_with_spike(1e5, 0.118), 1e5);
        assert!(trainer.max_spike_40s_frac >= trainer.max_spike_2s_frac);
        assert!(trainer.peak_utilization > 0.6);
    }

    #[test]
    #[should_panic(expected = "provisioned power must be positive")]
    fn zero_provisioned_rejected() {
        let _ = ThresholdTrainer::from_trace(&trace_with_spike(1e5, 0.1), 0.0);
    }
}
