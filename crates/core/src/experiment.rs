//! The POLCA oversubscription evaluation driver (§6.4–§6.6).
//!
//! [`OversubscriptionStudy`] reproduces the paper's pipeline end to end:
//!
//! 1. synthesize the production reference power trace (Table 4
//!    statistics),
//! 2. invert it into an arrival-rate schedule (§6.4's synthetic trace,
//!    MAPE ≤ 3 %),
//! 3. replay that trace — scaled up with the added servers — through the
//!    cluster simulator under a policy,
//! 4. normalize per-priority latency quantiles against the un-capped,
//!    un-oversubscribed reference run,
//! 5. check the Table 6 SLOs.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use polca_cluster::{ClusterSim, EngineKind, Priority, Request, RowConfig, SimConfig};
use polca_obs::{Event, Phase, ProfCounter, Recorder};
use polca_sim::SimTime;
use polca_stats::{Quantiles, TimeSeries};
use polca_telemetry::RowPowerTaps;
use polca_trace::replicate::{production_reference, ProductionReplicator};
use polca_trace::{ArrivalGenerator, RateSchedule, TraceConfig, WorkloadClass};

use crate::controller::{NoCapController, PolcaController, SingleThresholdController};
use crate::policy::PolcaPolicy;
use crate::slo::{SloReport, SloTargets};
use crate::thresholds::ThresholdTrainer;

/// The four policies compared in Figures 17 and 18.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum PolicyKind {
    /// The dual-threshold POLCA policy.
    Polca,
    /// `1-Thresh-Low-Pri`: single threshold, low priority capped hard.
    OneThreshLowPri,
    /// `1-Thresh-All`: single threshold, everyone capped hard.
    OneThreshAll,
    /// `No-cap`: nothing but the involuntary UPS brake.
    NoCap,
}

impl PolicyKind {
    /// All policies in figure order.
    pub const fn all() -> [PolicyKind; 4] {
        [
            PolicyKind::Polca,
            PolicyKind::OneThreshLowPri,
            PolicyKind::OneThreshAll,
            PolicyKind::NoCap,
        ]
    }

    /// The label used in the paper's figures.
    pub const fn name(self) -> &'static str {
        match self {
            PolicyKind::Polca => "POLCA",
            PolicyKind::OneThreshLowPri => "1-Thresh-Low-Pri",
            PolicyKind::OneThreshAll => "1-Thresh-All",
            PolicyKind::NoCap => "No-cap",
        }
    }
}

/// Everything one policy run produces.
#[derive(Debug, Clone, serde::Serialize)]
pub struct PolicyOutcome {
    /// The policy that ran.
    pub kind: PolicyKind,
    /// Added-server fraction (0.30 = +30 %).
    pub added_fraction: f64,
    /// Workload power multiplier (1.05 = the "+5 %" drift experiment).
    pub power_scale: f64,
    /// Low-priority latency quantiles normalized to the reference run.
    pub low_normalized: Quantiles,
    /// High-priority latency quantiles normalized to the reference run.
    pub high_normalized: Quantiles,
    /// Raw low-priority latency quantiles in seconds.
    pub low_raw: Quantiles,
    /// Raw high-priority latency quantiles in seconds.
    pub high_raw: Quantiles,
    /// Power-brake events during the run.
    pub brake_engagements: u64,
    /// Low-priority goodput normalized to the reference run.
    pub low_throughput_norm: f64,
    /// High-priority goodput normalized to the reference run.
    pub high_throughput_norm: f64,
    /// Peak row power over provisioned power.
    pub peak_utilization: f64,
    /// Mean row power over provisioned power.
    pub mean_utilization: f64,
    /// Row power at the 2 s telemetry cadence (empty if disabled).
    pub row_power: TimeSeries,
    /// Table 6 SLO evaluation.
    pub slo: SloReport,
    /// Requests offered / completed / rejected.
    pub counts: (u64, u64, u64),
    /// OOB control commands issued (capping churn; the hysteresis
    /// ablation tracks this).
    pub commands_issued: u64,
}

/// A cached reference (un-capped, un-oversubscribed) run.
#[derive(Debug, Clone)]
struct Reference {
    low: Quantiles,
    high: Quantiles,
    low_goodput: f64,
    high_goodput: f64,
}

/// The end-to-end evaluation pipeline.
///
/// Every `(policy, added_fraction, power_scale)` cell is a *pure* job:
/// [`run_cell`] takes `&self` plus an explicit recorder/tap pair and
/// touches only interior-mutable caches (the reference run and the
/// synthesized arrival traces), so the deterministic sweep runner can
/// execute cells from worker threads while the canonical-order merge
/// keeps artifacts byte-identical to a sequential run.
///
/// [`run_cell`]: OversubscriptionStudy::run_cell
#[derive(Debug)]
pub struct OversubscriptionStudy {
    row: RowConfig,
    policy: PolcaPolicy,
    days: f64,
    seed: u64,
    slo: SloTargets,
    profile: TimeSeries,
    base_schedule: RateSchedule,
    record_power: bool,
    engine: EngineKind,
    reference: OnceLock<Reference>,
    /// Synthesized arrival traces keyed by `added_fraction` bits —
    /// every policy compared at the same oversubscription level replays
    /// the identical stream, so synthesizing it once per level is both
    /// a determinism statement and the dominant sweep-setup saving.
    trace_cache: Mutex<HashMap<u64, Arc<Vec<Request>>>>,
    recorder: Recorder,
    oob_taps: RowPowerTaps,
}

impl Clone for OversubscriptionStudy {
    fn clone(&self) -> Self {
        OversubscriptionStudy {
            row: self.row.clone(),
            policy: self.policy.clone(),
            days: self.days,
            seed: self.seed,
            slo: self.slo,
            profile: self.profile.clone(),
            base_schedule: self.base_schedule.clone(),
            record_power: self.record_power,
            engine: self.engine.clone(),
            reference: self.reference.clone(),
            trace_cache: Mutex::new(
                self.trace_cache
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .clone(),
            ),
            recorder: self.recorder.clone(),
            oob_taps: self.oob_taps.clone(),
        }
    }
}

impl OversubscriptionStudy {
    /// Builds the study: synthesizes the production reference for
    /// `days` days and inverts it into the base arrival schedule.
    ///
    /// # Panics
    ///
    /// Panics if `days` is not strictly positive.
    pub fn new(row: RowConfig, policy: PolcaPolicy, days: f64, seed: u64) -> Self {
        assert!(days > 0.0, "study needs a positive duration");
        let profile = production_reference(&row, days, 60.0, seed);
        let replicator = ProductionReplicator::new(&row, &WorkloadClass::table6());
        let base_schedule = replicator
            .schedule_from_profile(&profile)
            .expect("synthesized profile is well-formed");
        OversubscriptionStudy {
            row,
            policy,
            days,
            seed,
            slo: SloTargets::default(),
            profile,
            base_schedule,
            record_power: true,
            engine: EngineKind::Legacy,
            reference: OnceLock::new(),
            trace_cache: Mutex::new(HashMap::new()),
            recorder: Recorder::disabled(),
            oob_taps: RowPowerTaps::new(),
        }
    }

    /// The paper-scale study: the Table 2 row (40 DGX-A100 servers) over
    /// a six-week trace with the default POLCA policy.
    pub fn paper_scale(seed: u64) -> Self {
        Self::new(
            RowConfig::paper_inference_row(),
            PolcaPolicy::default(),
            42.0,
            seed,
        )
    }

    /// A small, fast study for demos and doc tests: a 20-server row over
    /// a ~2.4 h trace. (20 servers keep the ±30 % oversubscription steps
    /// evenly divisible between the two priority classes, like the
    /// paper's 40-server row.)
    pub fn quick_demo(seed: u64) -> Self {
        let mut row = RowConfig::paper_inference_row();
        row.base_servers = 20;
        Self::new(row, PolcaPolicy::default(), 0.1, seed)
    }

    /// The synthesized production power profile driving the study.
    pub fn production_profile(&self) -> &TimeSeries {
        &self.profile
    }

    /// The base (non-oversubscribed) arrival-rate schedule.
    pub fn base_schedule(&self) -> &RateSchedule {
        &self.base_schedule
    }

    /// The row configuration (base deployment).
    pub fn row(&self) -> &RowConfig {
        &self.row
    }

    /// The policy parameters used for POLCA runs.
    pub fn policy(&self) -> &PolcaPolicy {
        &self.policy
    }

    /// Overrides the policy (threshold sweeps).
    pub fn set_policy(&mut self, policy: PolcaPolicy) {
        self.policy = policy;
    }

    /// Disables row-power recording (large sweeps).
    pub fn set_record_power(&mut self, record: bool) {
        self.record_power = record;
    }

    /// Selects the row serving engine for every subsequent run,
    /// including the cached reference — latencies normalize against an
    /// un-capped reference on the *same* engine, so the comparison
    /// isolates the policy, not the serving model.
    ///
    /// Call before the first run: a reference cached under another
    /// engine is not invalidated.
    pub fn set_engine(&mut self, engine: EngineKind) {
        self.engine = engine;
    }

    /// The serving engine runs execute on.
    pub fn engine(&self) -> &EngineKind {
        &self.engine
    }

    /// Attaches an observability recorder. Policy runs started after
    /// this call record events, metrics, and profiling spans into it;
    /// the cached reference run stays un-instrumented so the event log
    /// does not depend on whether the reference was already warm.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// The attached recorder (disabled unless [`set_recorder`] was
    /// called).
    ///
    /// [`set_recorder`]: OversubscriptionStudy::set_recorder
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Attaches delayed-telemetry subscribers (the online watch plane).
    /// Like the recorder, taps apply to policy runs only — the cached
    /// reference run stays un-instrumented.
    pub fn set_oob_taps(&mut self, taps: RowPowerTaps) {
        self.oob_taps = taps;
    }

    /// The study duration in days.
    pub fn days(&self) -> f64 {
        self.days
    }

    /// Trains thresholds on the first week (or the whole profile if
    /// shorter), as §6.4 prescribes. The training trace is regenerated
    /// at the 2 s row-telemetry resolution so that 40 s spikes are
    /// visible (the scheduling profile itself is minute-grained).
    pub fn trained_thresholds(&self) -> ThresholdTrainer {
        let _span = self.recorder.time("study.threshold_training");
        let train_days = self.days.min(7.0);
        let fine = production_reference(&self.row, train_days, 2.0, self.seed);
        ThresholdTrainer::from_trace(&fine, self.row.provisioned_watts())
    }

    fn sim_config(&self, power_scale: f64) -> SimConfig {
        SimConfig {
            seed: self.seed,
            power_scale,
            record_power_series: self.record_power,
            engine: self.engine.clone(),
            ..SimConfig::default()
        }
    }

    fn trace(&self, added_fraction: f64) -> TraceConfig {
        TraceConfig {
            seed: self.seed,
            horizon: SimTime::from_days(self.days),
            schedule: self.base_schedule.scaled(1.0 + added_fraction),
            mix: WorkloadClass::table6(),
        }
    }

    fn quantiles_or_unit(samples: &[f64]) -> Quantiles {
        Quantiles::from_samples(samples).unwrap_or(Quantiles {
            p50: 1.0,
            p90: 1.0,
            p99: 1.0,
            max: 1.0,
            min: 1.0,
            mean: 1.0,
            count: 0,
        })
    }

    /// The synthesized arrival trace for `added_fraction`, materialized
    /// once and shared by every subsequent cell at the same level. The
    /// `study.trace_synthesis` span fires only on cache misses, so its
    /// count equals the number of *distinct* oversubscription levels a
    /// sweep visits, not the number of cells.
    fn cached_arrivals(&self, added_fraction: f64, obs: &Recorder) -> Arc<Vec<Request>> {
        let mut cache = self.trace_cache.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(trace) = cache.get(&added_fraction.to_bits()) {
            obs.prof().count(ProfCounter::TraceCacheHits, 1);
            return Arc::clone(trace);
        }
        obs.prof().count(ProfCounter::TraceCacheMisses, 1);
        let trace = {
            let _span = obs.time("study.trace_synthesis");
            let _phase = obs.prof().time(Phase::TraceSynthesis);
            Arc::new(ArrivalGenerator::new(&self.trace(added_fraction)).collect::<Vec<Request>>())
        };
        cache.insert(added_fraction.to_bits(), Arc::clone(&trace));
        trace
    }

    /// Runs (and caches) the reference: no added servers, no policy.
    /// The run stays un-instrumented so artifacts never depend on
    /// whether the cache was already warm.
    fn reference(&self) -> &Reference {
        self.reference.get_or_init(|| {
            let sim = ClusterSim::new(
                self.row.clone(),
                self.sim_config(1.0),
                polca_cluster::NoopController,
            );
            let arrivals = self.cached_arrivals(0.0, &Recorder::disabled());
            let report = sim.run(arrivals.iter().cloned(), SimTime::from_days(self.days));
            Reference {
                low: Self::quantiles_or_unit(&report.low_latencies_s),
                high: Self::quantiles_or_unit(&report.high_latencies_s),
                low_goodput: report.goodput(Priority::Low),
                high_goodput: report.goodput(Priority::High),
            }
        })
    }

    /// Runs `kind` with `added_fraction` more servers (and a
    /// proportionally scaled workload) at `power_scale` workload power,
    /// recording into the study's attached recorder and taps.
    pub fn run(
        &mut self,
        kind: PolicyKind,
        added_fraction: f64,
        power_scale: f64,
    ) -> PolicyOutcome {
        let obs = self.recorder.clone();
        let taps = self.oob_taps.clone();
        self.run_cell(kind, added_fraction, power_scale, &obs, &taps)
    }

    /// One pure sweep cell: runs `kind` at `added_fraction` /
    /// `power_scale` against the study's cached reference, recording
    /// events and metrics into `obs` and publishing telemetry to
    /// `taps`. Takes `&self` — only the interior-mutable reference and
    /// trace caches are touched — so the sweep runner may call it from
    /// several worker threads at once.
    pub fn run_cell(
        &self,
        kind: PolicyKind,
        added_fraction: f64,
        power_scale: f64,
        obs: &Recorder,
        taps: &RowPowerTaps,
    ) -> PolicyOutcome {
        let reference = self.reference();
        let row = self.row.clone().with_added_servers(added_fraction);
        let provisioned = row.provisioned_watts();
        let mut config = self.sim_config(power_scale);
        config.recorder = obs.clone();
        config.oob_taps = taps.clone();
        let trace = self.cached_arrivals(added_fraction, obs);
        let arrivals = trace.iter().cloned();
        let until = SimTime::from_days(self.days);
        let report = match kind {
            PolicyKind::Polca => ClusterSim::new(
                row,
                config,
                PolcaController::new(self.policy.clone()).with_recorder(obs.clone()),
            )
            .run(arrivals, until),
            PolicyKind::OneThreshLowPri => ClusterSim::new(
                row,
                config,
                SingleThresholdController::low_priority_only(self.policy.clone())
                    .with_recorder(obs.clone()),
            )
            .run(arrivals, until),
            PolicyKind::OneThreshAll => ClusterSim::new(
                row,
                config,
                SingleThresholdController::all_workloads(self.policy.clone())
                    .with_recorder(obs.clone()),
            )
            .run(arrivals, until),
            PolicyKind::NoCap => ClusterSim::new(
                row,
                config,
                NoCapController::new(self.policy.clone()).with_recorder(obs.clone()),
            )
            .run(arrivals, until),
        };

        let low_raw = Self::quantiles_or_unit(&report.low_latencies_s);
        let high_raw = Self::quantiles_or_unit(&report.high_latencies_s);
        let low_normalized = low_raw.normalized_to(&reference.low);
        let high_normalized = high_raw.normalized_to(&reference.high);
        let slo = self
            .slo
            .check(&low_normalized, &high_normalized, report.brake_engagements);
        for violation in &slo.violations {
            obs.record_with(|| Event::SloViolation {
                t: until.as_secs(),
                detail: format!("{}: {violation}", kind.name()),
            });
        }
        PolicyOutcome {
            kind,
            added_fraction,
            power_scale,
            low_normalized,
            high_normalized,
            low_raw,
            high_raw,
            brake_engagements: report.brake_engagements,
            low_throughput_norm: report.goodput(Priority::Low) / reference.low_goodput,
            high_throughput_norm: report.goodput(Priority::High) / reference.high_goodput,
            peak_utilization: report.peak_row_watts / provisioned,
            mean_utilization: report.mean_row_watts / provisioned,
            row_power: report.row_power,
            slo,
            counts: (report.offered, report.completed, report.rejected),
            commands_issued: report.commands_issued,
        }
    }

    /// Executes every `(policy, added_fraction, power_scale)` cell on
    /// `jobs` worker threads and returns the outcomes in cell order.
    ///
    /// Each cell runs against a fresh recorder at the study recorder's
    /// capture level; the per-cell recorders are then absorbed into the
    /// study recorder in canonical cell order, so `events.jsonl` (and
    /// every artifact derived from events and metrics) is byte-for-byte
    /// identical whatever `jobs` is — parallelism changes wall-clock
    /// time, never output.
    ///
    /// # Panics
    ///
    /// Panics if `jobs` is zero.
    pub fn sweep(&self, cells: &[(PolicyKind, f64, f64)], jobs: usize) -> Vec<PolicyOutcome> {
        let results = crate::sweep::run_parallel(jobs, cells.len(), |i| {
            let (kind, added_fraction, power_scale) = cells[i];
            let cell_obs = self.recorder.fresh_cell();
            let outcome =
                self.run_cell(kind, added_fraction, power_scale, &cell_obs, &self.oob_taps);
            (outcome, cell_obs)
        });
        results
            .into_iter()
            .map(|(outcome, cell_obs)| {
                self.recorder.absorb(&cell_obs);
                outcome
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> OversubscriptionStudy {
        // 20 base servers so +25 %/+30 % splits evenly between priority
        // classes (the paper's 40-server row has the same property).
        let mut row = RowConfig::paper_inference_row();
        row.base_servers = 20;
        OversubscriptionStudy::new(row, PolcaPolicy::default(), 1.0, 9)
    }

    #[test]
    fn reference_run_is_uncapped_and_unit_normalized() {
        let mut s = study();
        let outcome = s.run(PolicyKind::NoCap, 0.0, 1.0);
        assert_eq!(outcome.brake_engagements, 0);
        assert!((outcome.low_normalized.p50 - 1.0).abs() < 1e-9);
        assert!((outcome.high_normalized.p50 - 1.0).abs() < 1e-9);
        assert!(outcome.slo.met, "{:?}", outcome.slo.violations);
        assert!(outcome.peak_utilization < 0.9);
    }

    #[test]
    fn polca_at_thirty_percent_meets_slos_without_brakes() {
        // The headline result (§6.5/§6.6, Table 6).
        let mut s = study();
        let outcome = s.run(PolicyKind::Polca, 0.30, 1.0);
        assert_eq!(outcome.brake_engagements, 0);
        assert!(outcome.slo.met, "violations: {:?}", outcome.slo.violations);
        // High priority is essentially untouched.
        assert!(outcome.high_normalized.p50 < 1.01);
        // Low priority pays a visible but bounded cost.
        assert!(outcome.low_normalized.p99 < 1.5);
        // Throughput loss is minor (< 2 %, Figure 14).
        assert!(outcome.low_throughput_norm > 0.97);
        assert!(outcome.high_throughput_norm > 0.99);
    }

    #[test]
    fn polca_keeps_power_under_the_budget() {
        let mut s = study();
        let outcome = s.run(PolicyKind::Polca, 0.30, 1.0);
        assert!(
            outcome.peak_utilization <= 1.0,
            "peak {:.3}",
            outcome.peak_utilization
        );
        // Oversubscription actually uses the budget harder than baseline.
        let base = s.run(PolicyKind::NoCap, 0.0, 1.0);
        assert!(outcome.mean_utilization > base.mean_utilization);
    }

    #[test]
    fn thresholds_trained_from_the_profile_are_near_the_paper() {
        let s = study();
        let trainer = s.trained_thresholds();
        let t2 = trainer.t2();
        assert!((0.80..=0.95).contains(&t2), "t2 {t2}");
        assert!(trainer.t1() < t2);
    }

    #[test]
    fn policy_kinds_enumerate_in_figure_order() {
        let names: Vec<&str> = PolicyKind::all().iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            ["POLCA", "1-Thresh-Low-Pri", "1-Thresh-All", "No-cap"]
        );
    }

    #[test]
    fn quick_demo_is_consistent() {
        let mut s = OversubscriptionStudy::quick_demo(3);
        let outcome = s.run(PolicyKind::Polca, 0.30, 1.0);
        assert!(outcome.counts.0 > 0, "demo must offer requests");
    }

    #[test]
    fn trace_synthesis_runs_once_per_oversubscription_level() {
        let mut s = OversubscriptionStudy::quick_demo(5);
        s.set_recorder(polca_obs::Recorder::new(polca_obs::ObsLevel::Full));
        s.run(PolicyKind::Polca, 0.30, 1.0);
        s.run(PolicyKind::NoCap, 0.30, 1.0);
        s.run(PolicyKind::NoCap, 0.30, 1.05);
        // The 0.0 level was already materialized by the (un-instrumented)
        // reference run, so this is a cache hit too.
        s.run(PolicyKind::NoCap, 0.0, 1.0);
        let spans = s.recorder().artifacts().spans;
        let synth = spans.get("study.trace_synthesis").expect("span recorded");
        assert_eq!(
            synth.count, 1,
            "one synthesis for four runs at two levels (0.30 cached, 0.0 warmed by the reference)"
        );
    }

    #[test]
    fn cached_trace_reproduces_the_lazy_generator_byte_for_byte() {
        let s = OversubscriptionStudy::quick_demo(6);
        let cached = s.cached_arrivals(0.25, &Recorder::disabled());
        let lazy: Vec<Request> = ArrivalGenerator::new(&s.trace(0.25)).collect();
        assert!(!cached.is_empty());
        assert_eq!(*cached, lazy);
    }

    #[test]
    fn sweep_outcomes_match_individual_runs_in_cell_order() {
        let cells = [
            (PolicyKind::Polca, 0.30, 1.0),
            (PolicyKind::NoCap, 0.30, 1.0),
            (PolicyKind::NoCap, 0.0, 1.0),
        ];
        let s = OversubscriptionStudy::quick_demo(7);
        let swept = s.sweep(&cells, 2);
        let mut seq = OversubscriptionStudy::quick_demo(7);
        for (got, &(kind, added, scale)) in swept.iter().zip(&cells) {
            let want = seq.run(kind, added, scale);
            assert_eq!(got.kind, want.kind);
            assert_eq!(got.counts, want.counts);
            assert_eq!(got.brake_engagements, want.brake_engagements);
            assert_eq!(got.low_normalized.p99, want.low_normalized.p99);
            assert_eq!(got.peak_utilization, want.peak_utilization);
            assert_eq!(got.row_power.values(), want.row_power.values());
        }
    }

    #[test]
    fn parallel_sweep_artifacts_are_byte_identical_to_single_job() {
        let cells = [
            (PolicyKind::Polca, 0.30, 1.0),
            (PolicyKind::OneThreshAll, 0.30, 1.0),
            (PolicyKind::NoCap, 0.30, 1.0),
            (PolicyKind::NoCap, 0.0, 1.0),
        ];
        let run = |jobs: usize| {
            let mut s = OversubscriptionStudy::quick_demo(8);
            s.set_recorder(polca_obs::Recorder::new(polca_obs::ObsLevel::Events));
            s.sweep(&cells, jobs);
            s.recorder().artifacts()
        };
        let (one, four) = (run(1), run(4));
        assert!(!one.events.is_empty());
        assert_eq!(one.events_jsonl(), four.events_jsonl());
        assert_eq!(one.metrics_json(), four.metrics_json());
        assert_eq!(one.chrome_trace_json(), four.chrome_trace_json());
    }
}
