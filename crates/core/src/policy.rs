//! The POLCA policy parameters and the power modes of Table 5.

/// The capping state a server group is in, per the paper's Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum PowerMode {
    /// No caps anywhere.
    Uncapped,
    /// Threshold T1 breached: low priority frequency-capped (1275 MHz),
    /// high priority untouched.
    T1,
    /// Threshold T2 breached: low priority capped hard (1110 MHz); high
    /// priority gently capped (1305 MHz) if power stays high.
    T2,
    /// Power brake: everything at 288 MHz.
    Brake,
}

impl PowerMode {
    /// The SM clock (MHz) Table 5 assigns to *low-priority* workloads in
    /// this mode, or `None` when uncapped.
    pub fn low_priority_clock_mhz(self, policy: &PolcaPolicy) -> Option<f64> {
        match self {
            PowerMode::Uncapped => None,
            PowerMode::T1 => Some(policy.t1_low_mhz),
            PowerMode::T2 => Some(policy.t2_low_mhz),
            PowerMode::Brake => Some(policy.brake_mhz),
        }
    }

    /// The SM clock (MHz) Table 5 assigns to *high-priority* workloads in
    /// this mode, or `None` when uncapped. In T2 this applies only after
    /// the low-priority cap alone proved insufficient.
    pub fn high_priority_clock_mhz(self, policy: &PolcaPolicy) -> Option<f64> {
        match self {
            PowerMode::Uncapped | PowerMode::T1 => None,
            PowerMode::T2 => Some(policy.t2_high_mhz),
            PowerMode::Brake => Some(policy.brake_mhz),
        }
    }
}

/// All tunable parameters of the POLCA dual-threshold policy (§6.3,
/// Table 5), expressed as fractions of the row's provisioned power and
/// A100 clock points.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PolcaPolicy {
    /// Lower capping threshold as a fraction of provisioned power
    /// (paper: 0.80).
    pub t1_frac: f64,
    /// Upper capping threshold (paper: 0.89 — provisioned minus the max
    /// 40 s power spike).
    pub t2_frac: f64,
    /// Hysteresis: uncap this far below the corresponding threshold
    /// (paper: 0.05, "sufficiently below the capping threshold to avoid
    /// hysteresis").
    pub uncap_gap: f64,
    /// Fraction at which the power brake fires (the provisioned limit).
    pub brake_frac: f64,
    /// Fraction below which an engaged brake is released.
    pub brake_release_frac: f64,
    /// T1 low-priority clock in MHz (paper: 1275, the A100 base clock).
    pub t1_low_mhz: f64,
    /// T2 low-priority clock in MHz (paper: 1110).
    pub t2_low_mhz: f64,
    /// T2 high-priority clock in MHz (paper: 1305).
    pub t2_high_mhz: f64,
    /// Power-brake clock in MHz (paper: 288).
    pub brake_mhz: f64,
    /// How long observed power must stay below an uncap level before
    /// the controller de-escalates, in seconds.
    ///
    /// The paper's control path is slow — 2 s-stale telemetry and
    /// 20–40 s OOB command latency — so an uncap issued on a transient
    /// dip hands power back exactly when a burst may be starting, and
    /// the corrective re-cap cannot land for another ~40 s. Requiring
    /// the dip to persist for at least the worst-case actuation delay
    /// keeps caps in place through the dip-then-surge pattern that
    /// otherwise walks the row into the power brake ("POLCA
    /// conservatively uncaps", §6.3).
    pub uncap_dwell_s: f64,
}

impl Default for PolcaPolicy {
    /// The configuration the paper selects: T1 = 80 %, T2 = 89 %, 5 %
    /// uncap gap, Table 5 clocks.
    fn default() -> Self {
        PolcaPolicy {
            t1_frac: 0.80,
            t2_frac: 0.89,
            uncap_gap: 0.05,
            brake_frac: 1.0,
            brake_release_frac: 0.92,
            t1_low_mhz: 1275.0,
            t2_low_mhz: 1110.0,
            t2_high_mhz: 1305.0,
            brake_mhz: 288.0,
            // Worst-case OOB latency (40 s) + telemetry staleness (2 s)
            // with margin: a dip must outlast one full actuation round
            // trip before caps are released.
            uncap_dwell_s: 60.0,
        }
    }
}

impl PolcaPolicy {
    /// Returns the policy with different thresholds (the Figure 13
    /// T1/T2 space search).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < t1 < t2 <= 1`.
    pub fn with_thresholds(mut self, t1: f64, t2: f64) -> Self {
        assert!(
            0.0 < t1 && t1 < t2 && t2 <= 1.0,
            "thresholds must satisfy 0 < t1 < t2 <= 1"
        );
        self.t1_frac = t1;
        self.t2_frac = t2;
        self
    }

    /// Returns the policy with a different T1 low-priority capping
    /// frequency (the Figure 15a sweep).
    ///
    /// # Panics
    ///
    /// Panics if `mhz` is not strictly positive.
    pub fn with_t1_frequency(mut self, mhz: f64) -> Self {
        assert!(mhz > 0.0, "frequency must be positive");
        self.t1_low_mhz = mhz;
        self
    }

    /// Returns the policy with a different hysteresis gap (ablation).
    ///
    /// # Panics
    ///
    /// Panics if `gap` is negative.
    pub fn with_uncap_gap(mut self, gap: f64) -> Self {
        assert!(gap >= 0.0, "uncap gap cannot be negative");
        self.uncap_gap = gap;
        self
    }

    /// Returns the policy with a different uncap dwell (ablation; 0
    /// restores instantaneous de-escalation).
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative.
    pub fn with_uncap_dwell(mut self, secs: f64) -> Self {
        assert!(secs >= 0.0, "uncap dwell cannot be negative");
        self.uncap_dwell_s = secs;
        self
    }

    /// The uncap level for T1 (fraction of provisioned power).
    pub fn t1_uncap_frac(&self) -> f64 {
        self.t1_frac - self.uncap_gap
    }

    /// The uncap level for T2 (fraction of provisioned power).
    pub fn t2_uncap_frac(&self) -> f64 {
        self.t2_frac - self.uncap_gap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_table5_and_section63() {
        let p = PolcaPolicy::default();
        assert_eq!(p.t1_frac, 0.80);
        assert_eq!(p.t2_frac, 0.89);
        assert_eq!(p.uncap_gap, 0.05);
        assert_eq!(p.t1_low_mhz, 1275.0);
        assert_eq!(p.t2_low_mhz, 1110.0);
        assert_eq!(p.t2_high_mhz, 1305.0);
        assert_eq!(p.brake_mhz, 288.0);
        // One worst-case control round trip (40s OOB + 2s telemetry,
        // with margin) before caps are released.
        assert_eq!(p.uncap_dwell_s, 60.0);
    }

    #[test]
    fn table5_mode_clock_assignments() {
        let p = PolcaPolicy::default();
        assert_eq!(PowerMode::Uncapped.low_priority_clock_mhz(&p), None);
        assert_eq!(PowerMode::Uncapped.high_priority_clock_mhz(&p), None);
        assert_eq!(PowerMode::T1.low_priority_clock_mhz(&p), Some(1275.0));
        assert_eq!(PowerMode::T1.high_priority_clock_mhz(&p), None);
        assert_eq!(PowerMode::T2.low_priority_clock_mhz(&p), Some(1110.0));
        assert_eq!(PowerMode::T2.high_priority_clock_mhz(&p), Some(1305.0));
        assert_eq!(PowerMode::Brake.low_priority_clock_mhz(&p), Some(288.0));
        assert_eq!(PowerMode::Brake.high_priority_clock_mhz(&p), Some(288.0));
    }

    #[test]
    fn uncap_levels_sit_below_thresholds() {
        let p = PolcaPolicy::default();
        assert!((p.t1_uncap_frac() - 0.75).abs() < 1e-12);
        assert!((p.t2_uncap_frac() - 0.84).abs() < 1e-12);
    }

    #[test]
    fn threshold_override_validates_ordering() {
        let p = PolcaPolicy::default().with_thresholds(0.75, 0.85);
        assert_eq!(p.t1_frac, 0.75);
        assert_eq!(p.t2_frac, 0.85);
    }

    #[test]
    #[should_panic(expected = "0 < t1 < t2")]
    fn inverted_thresholds_rejected() {
        let _ = PolcaPolicy::default().with_thresholds(0.9, 0.8);
    }

    #[test]
    fn lower_modes_run_faster_clocks() {
        let p = PolcaPolicy::default();
        let t1 = PowerMode::T1.low_priority_clock_mhz(&p).unwrap();
        let t2 = PowerMode::T2.low_priority_clock_mhz(&p).unwrap();
        let brake = PowerMode::Brake.low_priority_clock_mhz(&p).unwrap();
        assert!(t1 > t2 && t2 > brake);
    }
}
