//! Shared harness for the figure/table regeneration binaries and the
//! Criterion benches.
//!
//! Every table and figure in the paper's evaluation has a matching
//! binary in `src/bin/` (`fig04_training_timeseries`,
//! `tab04_production_stats`, …) that prints the rows/series the paper
//! reports, and a Criterion bench in `benches/` that measures the
//! simulation kernel behind it. See `EXPERIMENTS.md` at the workspace
//! root for the full index and the recorded paper-vs-measured values.
//!
//! Binaries honor these environment variables:
//!
//! * `POLCA_DAYS` — trace length in days for the POLCA evaluation
//!   figures (defaults vary per figure; Figure 16–18 default to the
//!   paper's six weeks when unset *and* `POLCA_FULL=1`, else one week),
//! * `POLCA_SEED` — experiment seed (default 17).

use polca_stats::TimeSeries;

/// Reads an `f64` environment knob with a default.
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Reads a `u64` environment knob with a default.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The evaluation trace length in days: `POLCA_DAYS` if set, else the
/// paper's six weeks under `POLCA_FULL=1`, else `quick_default`.
pub fn eval_days(quick_default: f64) -> f64 {
    if let Ok(v) = std::env::var("POLCA_DAYS") {
        if let Ok(days) = v.parse() {
            return days;
        }
    }
    if std::env::var("POLCA_FULL").is_ok_and(|v| v == "1") {
        42.0
    } else {
        quick_default
    }
}

/// The experiment seed (`POLCA_SEED`, default 17).
pub fn seed() -> u64 {
    env_u64("POLCA_SEED", 17)
}

/// Prints a header line for a figure/table binary.
pub fn header(id: &str, caption: &str) {
    println!("== {id}: {caption} ==");
}

/// Renders a small ASCII sparkline of a timeseries (for power traces in
/// terminal output).
pub fn sparkline(ts: &TimeSeries, width: usize) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if ts.is_empty() || width == 0 {
        return String::new();
    }
    let (lo, hi) = (ts.trough().unwrap_or(0.0), ts.peak().unwrap_or(1.0));
    let span = (hi - lo).max(f64::EPSILON);
    let values = ts.values();
    let chunk = (values.len() as f64 / width as f64).max(1.0);
    (0..width.min(values.len()))
        .map(|i| {
            let start = (i as f64 * chunk) as usize;
            let end = (((i + 1) as f64 * chunk) as usize).min(values.len()).max(start + 1);
            let mean: f64 =
                values[start..end].iter().sum::<f64>() / (end - start) as f64;
            let idx = ((mean - lo) / span * 7.0).round() as usize;
            GLYPHS[idx.min(7)]
        })
        .collect()
}

/// Formats a fraction as a percent string with one decimal.
pub fn pct(frac: f64) -> String {
    format!("{:.1}%", frac * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_readers_fall_back_to_defaults() {
        assert_eq!(env_f64("POLCA_DOES_NOT_EXIST", 3.5), 3.5);
        assert_eq!(env_u64("POLCA_DOES_NOT_EXIST", 7), 7);
    }

    #[test]
    fn sparkline_has_requested_width() {
        let ts: TimeSeries = (0..100).map(|i| (i as f64, (i as f64).sin())).collect();
        let s = sparkline(&ts, 20);
        assert_eq!(s.chars().count(), 20);
    }

    #[test]
    fn sparkline_of_empty_series_is_empty() {
        assert_eq!(sparkline(&TimeSeries::new(), 10), "");
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.305), "30.5%");
    }
}
