//! Shared harness for the figure/table regeneration binaries and the
//! Criterion benches.
//!
//! Every table and figure in the paper's evaluation has a matching
//! binary in `src/bin/` (`fig04_training_timeseries`,
//! `tab04_production_stats`, …) that prints the rows/series the paper
//! reports, and a Criterion bench in `benches/` that measures the
//! simulation kernel behind it. See `EXPERIMENTS.md` at the workspace
//! root for the full index and the recorded paper-vs-measured values.
//!
//! Binaries honor these environment variables:
//!
//! * `POLCA_DAYS` — trace length in days for the POLCA evaluation
//!   figures (defaults vary per figure; Figure 16–18 default to the
//!   paper's six weeks when unset *and* `POLCA_FULL=1`, else one week),
//! * `POLCA_SEED` — experiment seed (default 17).

use std::io;
use std::path::{Path, PathBuf};

use polca_obs::BenchReport;
use polca_stats::TimeSeries;

/// Reads an `f64` environment knob with a default.
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Reads a `u64` environment knob with a default.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The evaluation trace length in days: `POLCA_DAYS` if set, else the
/// paper's six weeks under `POLCA_FULL=1`, else `quick_default`.
pub fn eval_days(quick_default: f64) -> f64 {
    if let Ok(v) = std::env::var("POLCA_DAYS") {
        if let Ok(days) = v.parse() {
            return days;
        }
    }
    if std::env::var("POLCA_FULL").is_ok_and(|v| v == "1") {
        42.0
    } else {
        quick_default
    }
}

/// The experiment seed (`POLCA_SEED`, default 17).
pub fn seed() -> u64 {
    env_u64("POLCA_SEED", 17)
}

/// Prints a header line for a figure/table binary.
pub fn header(id: &str, caption: &str) {
    println!("== {id}: {caption} ==");
}

/// Renders a small ASCII sparkline of a timeseries (for power traces in
/// terminal output).
pub fn sparkline(ts: &TimeSeries, width: usize) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if ts.is_empty() || width == 0 {
        return String::new();
    }
    let (lo, hi) = (ts.trough().unwrap_or(0.0), ts.peak().unwrap_or(1.0));
    let span = (hi - lo).max(f64::EPSILON);
    let values = ts.values();
    let chunk = (values.len() as f64 / width as f64).max(1.0);
    (0..width.min(values.len()))
        .map(|i| {
            let start = (i as f64 * chunk) as usize;
            let end = (((i + 1) as f64 * chunk) as usize)
                .min(values.len())
                .max(start + 1);
            let mean: f64 = values[start..end].iter().sum::<f64>() / (end - start) as f64;
            let idx = ((mean - lo) / span * 7.0).round() as usize;
            GLYPHS[idx.min(7)]
        })
        .collect()
}

/// Formats a fraction as a percent string with one decimal.
pub fn pct(frac: f64) -> String {
    format!("{:.1}%", frac * 100.0)
}

/// Parses `--obs-out DIR` from the process arguments (also accepts
/// `--obs-out=DIR` and the `POLCA_OBS_OUT` environment variable).
///
/// Figure binaries that support artifact emission call this once and,
/// when it returns a directory, save their printed tables/series there
/// alongside the recorder's own artifact files.
pub fn obs_out_arg() -> Option<PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--obs-out" {
            return args.next().map(PathBuf::from);
        }
        if let Some(dir) = arg.strip_prefix("--obs-out=") {
            return Some(PathBuf::from(dir));
        }
    }
    std::env::var_os("POLCA_OBS_OUT").map(PathBuf::from)
}

/// Where Criterion benches drop their machine-readable `BENCH_*.json`
/// reports: `POLCA_BENCH_OUT` if set, else `target/bench/`.
///
/// The *committed* baselines at the repository root are written by
/// `polca-cli profile --bench-out .` instead; the bench-emitted copies
/// are point-in-time measurements for local comparison.
pub fn bench_out_dir() -> PathBuf {
    std::env::var_os("POLCA_BENCH_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            // Bench binaries run with the package dir as CWD; anchor
            // the default on the workspace-level target directory.
            PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/bench"))
        })
}

/// Writes `report` into [`bench_out_dir`], printing the path (or the
/// error — a bench run must not fail over a perf-report write).
pub fn write_bench_report(report: &BenchReport) {
    match report.write(&bench_out_dir()) {
        Ok(path) => println!("bench report: {}", path.display()),
        Err(e) => eprintln!("bench report BENCH_{}.json not written: {e}", report.name()),
    }
}

/// The shared table writer for the figure/table binaries.
///
/// Collects labelled rows once, then renders them twice: an aligned
/// text table on stdout (first column left-aligned, the rest
/// right-aligned) and, on request, the same rows as CSV via the obs
/// exporter — so every binary prints and saves through one code path
/// instead of hand-rolling `println!` widths.
#[derive(Debug, Clone)]
pub struct Table {
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(columns: &[&str]) -> Self {
        Table {
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; missing cells render empty, extras are kept.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Prints the aligned text table to stdout.
    pub fn print(&self) {
        let ncols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.columns.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        for row in [&self.columns].into_iter().chain(self.rows.iter()) {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let render = |row: &[String]| {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = w.saturating_sub(cell.chars().count());
                if i == 0 {
                    line.push_str(cell);
                    line.push_str(&" ".repeat(pad));
                } else {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(cell);
                }
            }
            println!("{}", line.trim_end());
        };
        render(&self.columns);
        for row in &self.rows {
            render(row);
        }
    }

    /// The table as CSV (header plus rows), via the obs exporter.
    pub fn csv(&self) -> String {
        let cols: Vec<&str> = self.columns.iter().map(String::as_str).collect();
        polca_obs::export::csv_table(&cols, &self.rows)
    }

    /// Writes the CSV rendering to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_csv(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.csv())
    }
}

/// Saves a timeseries as a two-column CSV (`t_name,v_name`), creating
/// parent directories.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_series_csv(path: &Path, t_name: &str, v_name: &str, ts: &TimeSeries) -> io::Result<()> {
    let rows: Vec<Vec<String>> = ts
        .times()
        .iter()
        .zip(ts.values())
        .map(|(t, v)| vec![format!("{t}"), format!("{v}")])
        .collect();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, polca_obs::export::csv_table(&[t_name, v_name], &rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_readers_fall_back_to_defaults() {
        assert_eq!(env_f64("POLCA_DOES_NOT_EXIST", 3.5), 3.5);
        assert_eq!(env_u64("POLCA_DOES_NOT_EXIST", 7), 7);
    }

    #[test]
    fn sparkline_has_requested_width() {
        let ts: TimeSeries = (0..100).map(|i| (i as f64, (i as f64).sin())).collect();
        let s = sparkline(&ts, 20);
        assert_eq!(s.chars().count(), 20);
    }

    #[test]
    fn sparkline_of_empty_series_is_empty() {
        assert_eq!(sparkline(&TimeSeries::new(), 10), "");
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.305), "30.5%");
    }

    #[test]
    fn table_renders_csv_through_obs_exporter() {
        let mut t = Table::new(&["policy", "brakes"]);
        t.row(vec!["POLCA".into(), "0".into()]);
        t.row(vec!["No-cap".into(), "12".into()]);
        assert_eq!(t.csv(), "policy,brakes\nPOLCA,0\nNo-cap,12\n");
    }

    #[test]
    fn series_csv_round_trips_points() {
        let ts: TimeSeries = [(0.0, 1.0), (2.0, 3.5)].into_iter().collect();
        let path =
            std::env::temp_dir().join(format!("polca-bench-series-{}.csv", std::process::id()));
        save_series_csv(&path, "t_s", "watts", &ts).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, "t_s,watts\n0,1\n2,3.5\n");
        std::fs::remove_file(&path).unwrap();
    }
}
