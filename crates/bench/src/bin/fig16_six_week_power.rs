//! Figure 16: row-level power utilization — default servers vs +30 %
//! servers, at 2 s and 5 min averaging.

use polca::{OversubscriptionStudy, PolicyKind, PolcaPolicy};
use polca_bench::{eval_days, header, pct, seed, sparkline};
use polca_cluster::RowConfig;

fn main() {
    header(
        "Figure 16",
        "Row-level power utilization, default vs +30% servers (2s and 5min averages)",
    );
    let days = eval_days(7.0);
    let mut study = OversubscriptionStudy::new(
        RowConfig::paper_inference_row(),
        PolcaPolicy::default(),
        days,
        seed(),
    );
    let provisioned = study.row().provisioned_watts();
    let base = study.run(PolicyKind::NoCap, 0.0, 1.0);
    let over = study.run(PolicyKind::Polca, 0.30, 1.0);

    for (label, o) in [("default servers", &base), ("+30% servers   ", &over)] {
        let five_min = o.row_power.resample_mean(300.0).scaled(1.0 / provisioned);
        println!("\n{label}:");
        println!("  5min avg  {}", sparkline(&five_min, 70));
        println!(
            "  mean {:>6}  peak(2s) {:>6}  max 2s rise {:>6}  max 40s rise {:>6}  brakes {}",
            pct(o.mean_utilization),
            pct(o.peak_utilization),
            pct(o.row_power.max_rise_within(2.0).unwrap() / provisioned),
            pct(o.row_power.max_rise_within(40.0).unwrap() / provisioned),
            o.brake_engagements
        );
    }
    println!(
        "\npaper: the 5min average follows the same diurnal pattern with a higher \
         offset; spikes grow because more workloads can trigger together"
    );
}
