//! Figure 16: row-level power utilization — default servers vs +30 %
//! servers, at 2 s and 5 min averaging.
//!
//! With `--obs-out DIR` (or `POLCA_OBS_OUT=DIR`) the exact 5-minute
//! utilization series printed as sparklines are saved as
//! `fig16_util_default.csv` / `fig16_util_oversub.csv`, alongside the
//! recorder's own artifacts (event log, metrics, Perfetto trace).

use polca::{OversubscriptionStudy, PolcaPolicy, PolicyKind};
use polca_bench::{eval_days, header, obs_out_arg, pct, save_series_csv, seed, sparkline};
use polca_cluster::RowConfig;
use polca_obs::{ObsLevel, Recorder};

fn main() {
    header(
        "Figure 16",
        "Row-level power utilization, default vs +30% servers (2s and 5min averages)",
    );
    let days = eval_days(7.0);
    let obs_out = obs_out_arg();
    let recorder = if obs_out.is_some() {
        Recorder::new(ObsLevel::Full)
    } else {
        Recorder::disabled()
    };
    let mut study = OversubscriptionStudy::new(
        RowConfig::paper_inference_row(),
        PolcaPolicy::default(),
        days,
        seed(),
    );
    study.set_recorder(recorder.clone());
    let provisioned = study.row().provisioned_watts();
    let base = study.run(PolicyKind::NoCap, 0.0, 1.0);
    let over = study.run(PolicyKind::Polca, 0.30, 1.0);

    for (label, slug, o) in [
        ("default servers", "fig16_util_default.csv", &base),
        ("+30% servers   ", "fig16_util_oversub.csv", &over),
    ] {
        let five_min = o.row_power.resample_mean(300.0).scaled(1.0 / provisioned);
        println!("\n{label}:");
        println!("  5min avg  {}", sparkline(&five_min, 70));
        println!(
            "  mean {:>6}  peak(2s) {:>6}  max 2s rise {:>6}  max 40s rise {:>6}  brakes {}",
            pct(o.mean_utilization),
            pct(o.peak_utilization),
            pct(o.row_power.max_rise_within(2.0).unwrap() / provisioned),
            pct(o.row_power.max_rise_within(40.0).unwrap() / provisioned),
            o.brake_engagements
        );
        if let Some(dir) = &obs_out {
            save_series_csv(&dir.join(slug), "t_s", "utilization", &five_min)
                .expect("write fig16 series CSV");
        }
    }
    if let Some(dir) = &obs_out {
        let files = recorder.write_dir(dir).expect("write obs artifacts");
        println!(
            "\nobs artifacts: {} file(s) in {}",
            files.len() + 2,
            dir.display()
        );
    }
    println!(
        "\npaper: the 5min average follows the same diurnal pattern with a higher \
         offset; spikes grow because more workloads can trigger together"
    );
}
