//! Table 5: power modes for low- and high-priority workloads.

use polca::{PolcaPolicy, PowerMode};
use polca_bench::{header, obs_out_arg, Table};

fn main() {
    header("Table 5", "Power modes for low and high priority workloads");
    let policy = PolcaPolicy::default();
    let mut table = Table::new(&["Mode", "Low Priority", "High Priority"]);
    for (mode, label) in [
        (PowerMode::Uncapped, "Uncapped"),
        (PowerMode::T1, "Threshold T1"),
        (PowerMode::T2, "Threshold T2"),
        (PowerMode::Brake, "Power brake"),
    ] {
        let fmt = |clock: Option<f64>| match clock {
            None => "Uncapped".to_string(),
            Some(mhz) => format!("Frequency capped ({mhz:.0} MHz)"),
        };
        table.row(vec![
            label.to_string(),
            fmt(mode.low_priority_clock_mhz(&policy)),
            fmt(mode.high_priority_clock_mhz(&policy)),
        ]);
    }
    table.print();
    if let Some(dir) = obs_out_arg() {
        table
            .save_csv(&dir.join("tab05_power_modes.csv"))
            .expect("write tab05 CSV");
    }
    println!(
        "\nthresholds: T1 = {:.0} %, T2 = {:.0} % of provisioned power; \
         uncap {:.0} % below each threshold",
        policy.t1_frac * 100.0,
        policy.t2_frac * 100.0,
        policy.uncap_gap * 100.0
    );
    println!("paper: T1 1275 MHz LP | T2 1110 MHz LP + 1305 MHz HP | brake 288 MHz");
}
