//! Table 4: LLM cluster power usage in production — training vs
//! inference.

use polca::{OversubscriptionStudy, PolcaPolicy, PolicyKind};
use polca_bench::{eval_days, header, pct, seed};
use polca_cluster::{RowConfig, TrainingCluster};

fn main() {
    header("Table 4", "LLM cluster power usage in production");

    // Training column: a synchronized 40-server training row.
    let training = TrainingCluster::paper_training_row();
    let t_series = training.row_power_series(600.0, 0.1, seed());
    let t_prov = training.provisioned_watts();
    let t_peak = t_series.peak().unwrap() / t_prov;
    let t_spike2 = t_series.max_rise_within(2.0).unwrap() / t_prov;
    let t_spike40 = t_series.max_rise_within(40.0).unwrap() / t_prov;

    // Inference column: the production-shaped row at its base deployment.
    let days = eval_days(2.0);
    let mut study = OversubscriptionStudy::new(
        RowConfig::paper_inference_row(),
        PolcaPolicy::default(),
        days,
        seed(),
    );
    let o = study.run(PolicyKind::NoCap, 0.0, 1.0);
    let i_peak = o.peak_utilization;
    let i_spike2 = o.row_power.max_rise_within(2.0).unwrap() / study.row().provisioned_watts();
    let i_spike40 = o.row_power.max_rise_within(40.0).unwrap() / study.row().provisioned_watts();

    println!("{:<28} {:>10} {:>10}", "", "Training", "Inference");
    println!(
        "{:<28} {:>10} {:>10}",
        "Peak power utilization",
        pct(t_peak),
        pct(i_peak)
    );
    println!(
        "{:<28} {:>10} {:>10}",
        "Power usage pattern", "coordinated", "diurnal"
    );
    println!(
        "{:<28} {:>10} {:>10}",
        "Max. power spike in 2s",
        pct(t_spike2),
        pct(i_spike2)
    );
    println!(
        "{:<28} {:>10} {:>10}",
        "Max. power spike in 40s",
        pct(t_spike40),
        pct(i_spike40)
    );
    println!(
        "{:<28} {:>10} {:>10}",
        "Oversubscription headroom",
        pct(1.0 - t_peak),
        pct(1.0 - i_peak)
    );
    println!(
        "\npaper: peak 97% vs 79% | 2s spike 37.5% vs 9% | 40s spike n/a vs 11.8% \
         | headroom ~3% vs ~21%"
    );
}
