//! Extension: the §6.7 workload-aware (selective) controller.
//!
//! Instead of capping *every* low-priority server at a threshold, the
//! selective controller caps only as many as the measured overshoot
//! requires, rotating the burden. This compares it against the standard
//! dual-threshold POLCA at +30 % servers.

use polca::{PolcaPolicy, SelectiveController};
use polca_bench::{eval_days, header, seed};
use polca_cluster::{ClusterSim, Priority, RowConfig, SimConfig};
use polca_sim::SimTime;
use polca_stats::Quantiles;
use polca_trace::replicate::{production_reference, ProductionReplicator};
use polca_trace::{ArrivalGenerator, TraceConfig, WorkloadClass};

fn main() {
    header(
        "Extension (§6.7)",
        "Selective (workload-aware) capping vs uniform dual-threshold POLCA at +30%",
    );
    let days = eval_days(2.0);
    let base_row = RowConfig::paper_inference_row();
    let profile = production_reference(&base_row, days, 60.0, seed());
    let replicator = ProductionReplicator::new(&base_row, &WorkloadClass::table6());
    let schedule = replicator
        .schedule_from_profile(&profile)
        .expect("synthesized profile is well-formed")
        .scaled(1.3);
    let row = base_row.with_added_servers(0.30);
    let until = SimTime::from_days(days);
    let trace = TraceConfig {
        seed: seed(),
        horizon: until,
        schedule,
        mix: WorkloadClass::table6(),
    };

    // Per-server reclaim estimate: a busy low-priority server dropping
    // from max clock to the T1 clock sheds roughly this many watts.
    let reclaim = 250.0;
    let low_ids: Vec<usize> = row
        .build_servers()
        .iter()
        .filter(|s| s.priority() == Priority::Low)
        .map(|s| s.id())
        .collect();

    println!(
        "{:<12} {:>9} {:>8} {:>8} {:>8} {:>8}",
        "controller", "commands", "brakes", "peak%", "LP p99s", "HP p99s"
    );
    let selective = SelectiveController::new(PolcaPolicy::default(), low_ids, reclaim);
    let report_sel = ClusterSim::new(
        row.clone(),
        SimConfig {
            seed: seed(),
            record_power_series: false,
            ..SimConfig::default()
        },
        selective,
    )
    .run(ArrivalGenerator::new(&trace), until);
    let polca = polca::PolcaController::new(PolcaPolicy::default());
    let report_std = ClusterSim::new(
        row,
        SimConfig {
            seed: seed(),
            record_power_series: false,
            ..SimConfig::default()
        },
        polca,
    )
    .run(ArrivalGenerator::new(&trace), until);

    for (name, report) in [("selective", &report_sel), ("dual-thresh", &report_std)] {
        let lp = Quantiles::from_samples(&report.low_latencies_s).unwrap();
        let hp = Quantiles::from_samples(&report.high_latencies_s).unwrap();
        println!(
            "{:<12} {:>9} {:>8} {:>8.1} {:>8.1} {:>8.1}",
            name,
            report.commands_issued,
            report.brake_engagements,
            report.peak_row_watts / RowConfig::paper_inference_row().provisioned_watts() * 100.0,
            lp.p99,
            hp.p99
        );
    }
    println!(
        "\nselective capping cuts OOB command traffic ~15x and spreads the burden, \
         but without the T2 escalation stage it contains peaks less firmly (an \
         occasional brake slips through) — evidence for the paper's preference \
         for the simple, aggressive dual-threshold design (§6.2)"
    );
}
