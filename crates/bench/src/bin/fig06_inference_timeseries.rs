//! Figure 6: GPU power timeseries for the five inference models — prompt
//! spikes followed by long stable token plateaus.

use polca_bench::{header, sparkline};
use polca_gpu::{Gpu, GpuSpec};
use polca_llm::{InferenceConfig, InferenceModel, ModelSpec};

fn main() {
    header(
        "Figure 6",
        "GPU power usage timeseries for multiple inference models (3 requests each)",
    );
    let tdp = GpuSpec::a100_80gb().tdp_watts;
    for model in ModelSpec::inference_lineup() {
        let deployment = InferenceModel::new(model.clone(), GpuSpec::a100_80gb()).unwrap();
        let cfg = InferenceConfig::new(2048, 128, 1);
        let mut gpu = Gpu::new(GpuSpec::a100_80gb());
        let ts = deployment.power_series(&cfg, 3, &mut gpu, 0.1);
        let profile = deployment.profile(&cfg);
        println!(
            "{:<10} ({} GPUs)  prompt {:>4.1}s @ {:>4.2}/TDP | token {:>5.1}s @ {:>4.2}/TDP",
            model.name,
            deployment.n_gpus(),
            profile.prompt.duration_s,
            gpu.power_at(profile.prompt.intensity) / tdp,
            profile.token.duration_s,
            gpu.power_at(profile.token.intensity) / tdp,
        );
        println!("           {}", sparkline(&ts, 66));
    }
    println!(
        "\npaper: spiky prompt phase at/above TDP at every request start, then a \
         longer, stable, lower token plateau; larger models draw more"
    );
}
