//! Figure 15: POLCA parameter sweeps — the T1 capping frequency and the
//! low-priority server fraction.

use polca::{OversubscriptionStudy, PolcaPolicy, PolicyKind};
use polca_bench::{eval_days, header, seed};
use polca_cluster::RowConfig;

fn main() {
    header("Figure 15", "Parameter sweeps for POLCA (+30% servers)");
    let days = eval_days(2.0);

    println!("(a) T1 low-priority capping frequency:");
    println!(
        "{:>9} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "SM MHz", "LP p50", "LP p99", "HP p50", "HP p99", "brakes"
    );
    for mhz in [1350.0, 1305.0, 1275.0, 1200.0, 1150.0] {
        let mut study = OversubscriptionStudy::new(
            RowConfig::paper_inference_row(),
            PolcaPolicy::default().with_t1_frequency(mhz),
            days,
            seed(),
        );
        study.set_record_power(false);
        let o = study.run(PolicyKind::Polca, 0.30, 1.0);
        println!(
            "{:>9.0} {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>7}",
            mhz,
            o.low_normalized.p50,
            o.low_normalized.p99,
            o.high_normalized.p50,
            o.high_normalized.p99,
            o.brake_engagements
        );
    }

    println!("\n(b) low-priority server fraction:");
    println!(
        "{:>9} {:>7} {:>7} {:>7} {:>7} {:>7} {:>6}",
        "LP frac", "LP p50", "LP p99", "HP p50", "HP p99", "brakes", "SLO"
    );
    for lp_frac in [0.25, 0.40, 0.50, 0.60, 0.75] {
        let row = RowConfig::paper_inference_row().with_low_priority_fraction(lp_frac);
        let mut study = OversubscriptionStudy::new(row, PolcaPolicy::default(), days, seed());
        study.set_record_power(false);
        let o = study.run(PolicyKind::Polca, 0.30, 1.0);
        println!(
            "{:>8.0}% {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>7} {:>6}",
            lp_frac * 100.0,
            o.low_normalized.p50,
            o.low_normalized.p99,
            o.high_normalized.p50,
            o.high_normalized.p99,
            o.brake_engagements,
            if o.slo.met { "met" } else { "MISS" }
        );
    }
    println!(
        "\npaper: below 1275 MHz the low-priority SLO breaks (hence 1275 at T1); \
         shrinking the low-priority pool pushes capping onto high-priority work \
         and can violate its P99 SLO"
    );
}
