//! Extension: §5.2 prompt/token phase splitting (Splitwise \[49\]).
//!
//! "Separate prompt computation and token processing on different GPUs,
//! which enables us to only power cap GPUs that run the token phases."
//! This analysis sizes the two pools for the Table 6 mix on BLOOM-176B,
//! prices the KV-cache transfer over the interconnect, and compares the
//! power envelope against the aggregated deployment.

use polca::{Disaggregation, DisaggregationConfig};
use polca_bench::header;
use polca_cluster::RowConfig;
use polca_trace::WorkloadClass;

fn main() {
    header(
        "Extension (§5.2)",
        "Prompt/token disaggregation with token-pool frequency capping",
    );
    let row = RowConfig::paper_inference_row();
    let mix = WorkloadClass::table6();

    println!(
        "{:>10} {:>8} {:>8} {:>10} {:>11} {:>11} {:>9}",
        "token MHz", "prompt", "token", "KV xfer", "latency +", "row power", "saving"
    );
    for token_mhz in [1410.0, 1305.0, 1110.0, 900.0] {
        let plan = Disaggregation::plan(
            &row,
            &mix,
            &DisaggregationConfig {
                token_clock_mhz: token_mhz,
                ..DisaggregationConfig::default()
            },
        );
        println!(
            "{:>10.0} {:>8} {:>8} {:>9.0}ms {:>10.1}% {:>9.0}kW {:>8.1}%",
            token_mhz,
            plan.prompt_servers,
            plan.token_servers,
            plan.kv_transfer_s * 1000.0,
            plan.latency_overhead() * 100.0,
            plan.peak_watts / 1000.0,
            plan.power_saving() * 100.0
        );
    }

    println!("\ninterconnect sensitivity (token pool at 1110 MHz):");
    for (label, bw) in [
        ("InfiniBand 200 GB/s", 200e9),
        ("100 GbE      12 GB/s", 12e9),
        ("10 GbE      1.2 GB/s", 1.2e9),
    ] {
        let plan = Disaggregation::plan(
            &row,
            &mix,
            &DisaggregationConfig {
                interconnect_bytes_per_s: bw,
                ..DisaggregationConfig::default()
            },
        );
        println!(
            "  {label}: KV transfer {:>7.1} ms, latency overhead {:>5.1}%",
            plan.kv_transfer_s * 1000.0,
            plan.latency_overhead() * 100.0
        );
    }
    println!(
        "\nthe token pool holds ~90% of servers and can run permanently capped; \
         shipping the KV cache costs milliseconds over InfiniBand — the premise \
         the authors later built out as Splitwise"
    );
}
