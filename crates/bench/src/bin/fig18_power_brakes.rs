//! Figure 18: power-brake event counts per policy, for nominal and +5 %
//! power-intensive workloads.
//!
//! With `--obs-out DIR` (or `POLCA_OBS_OUT=DIR`) the printed table is
//! also saved as `fig18_power_brakes.csv` and the full observability
//! artifacts of the instrumented runs (event log, metrics, Perfetto
//! trace) land in the same directory.

use polca::{OversubscriptionStudy, PolcaPolicy, PolicyKind};
use polca_bench::{eval_days, header, obs_out_arg, seed, Table};
use polca_cluster::RowConfig;
use polca_obs::{ObsLevel, Recorder};

fn main() {
    header(
        "Figure 18",
        "Number of power brake events per policy at 30% oversubscription",
    );
    let days = eval_days(7.0);
    let obs_out = obs_out_arg();
    let recorder = if obs_out.is_some() {
        Recorder::new(ObsLevel::Full)
    } else {
        Recorder::disabled()
    };
    let mut study = OversubscriptionStudy::new(
        RowConfig::paper_inference_row(),
        PolcaPolicy::default(),
        days,
        seed(),
    );
    study.set_record_power(false);
    study.set_recorder(recorder.clone());
    let mut table = Table::new(&["policy", "brakes", "brakes/day"]);
    for power_scale in [1.0, 1.05] {
        for kind in PolicyKind::all() {
            let suffix = if power_scale > 1.0 { "+5%" } else { "" };
            let o = study.run(kind, 0.30, power_scale);
            table.row(vec![
                format!("{}{}", kind.name(), suffix),
                o.brake_engagements.to_string(),
                format!("{:.2}", o.brake_engagements as f64 / days),
            ]);
        }
    }
    table.print();
    if let Some(dir) = obs_out {
        table
            .save_csv(&dir.join("fig18_power_brakes.csv"))
            .expect("write fig18 CSV");
        let files = recorder.write_dir(&dir).expect("write obs artifacts");
        println!(
            "\nobs artifacts: {} file(s) in {}",
            files.len() + 1,
            dir.display()
        );
    }
    println!(
        "\npaper: POLCA incurs zero brakes in the standard scenario and the fewest \
         when workloads become 5% more power-intensive; No-cap incurs the most"
    );
}
