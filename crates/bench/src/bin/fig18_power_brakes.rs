//! Figure 18: power-brake event counts per policy, for nominal and +5 %
//! power-intensive workloads.

use polca::{OversubscriptionStudy, PolicyKind, PolcaPolicy};
use polca_bench::{eval_days, header, seed};
use polca_cluster::RowConfig;

fn main() {
    header(
        "Figure 18",
        "Number of power brake events per policy at 30% oversubscription",
    );
    let days = eval_days(7.0);
    let mut study = OversubscriptionStudy::new(
        RowConfig::paper_inference_row(),
        PolcaPolicy::default(),
        days,
        seed(),
    );
    study.set_record_power(false);
    println!("{:<22} {:>8} {:>14}", "policy", "brakes", "brakes/day");
    for power_scale in [1.0, 1.05] {
        for kind in PolicyKind::all() {
            let suffix = if power_scale > 1.0 { "+5%" } else { "" };
            let o = study.run(kind, 0.30, power_scale);
            println!(
                "{:<22} {:>8} {:>14.2}",
                format!("{}{}", kind.name(), suffix),
                o.brake_engagements,
                o.brake_engagements as f64 / days
            );
        }
    }
    println!(
        "\npaper: POLCA incurs zero brakes in the standard scenario and the fewest \
         when workloads become 5% more power-intensive; No-cap incurs the most"
    );
}
