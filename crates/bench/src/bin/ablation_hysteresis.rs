//! Ablation: the 5 % uncap hysteresis gap (§6.3).
//!
//! "POLCA selects an uncapping power value sufficiently below the capping
//! threshold to avoid hysteresis. Doing so helps avoid constant capping
//! and uncapping, which could overwhelm the power management system."
//! This ablation removes the gap and counts the OOB command traffic.

use polca::{OversubscriptionStudy, PolcaPolicy, PolicyKind};
use polca_bench::{eval_days, header, seed};
use polca_cluster::RowConfig;

fn main() {
    header(
        "Ablation",
        "Uncap hysteresis gap: OOB command volume and SLO outcome at +30% servers",
    );
    let days = eval_days(2.0);
    println!(
        "{:>6} {:>14} {:>8} {:>7} {:>7} {:>6}",
        "gap%", "OOB commands", "brakes", "LP p99", "HP p99", "SLO"
    );
    for gap in [0.0, 0.01, 0.03, 0.05, 0.08] {
        let mut study = OversubscriptionStudy::new(
            RowConfig::paper_inference_row(),
            PolcaPolicy::default().with_uncap_gap(gap),
            days,
            seed(),
        );
        study.set_record_power(false);
        let o = study.run(PolicyKind::Polca, 0.30, 1.0);
        println!(
            "{:>6.0} {:>14} {:>8} {:>7.3} {:>7.3} {:>6}",
            gap * 100.0,
            o.commands_issued,
            o.brake_engagements,
            o.low_normalized.p99,
            o.high_normalized.p99,
            if o.slo.met { "met" } else { "MISS" }
        );
    }
    println!(
        "\nwithout the gap the controller flaps between capped and uncapped every \
         few ticks at the threshold, flooding the 40s-latency OOB plane"
    );
}
