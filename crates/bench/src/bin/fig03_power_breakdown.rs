//! Figure 3: provisioned power breakdown of an 8×A100-80GB server.

use polca_bench::header;
use polca_cluster::ServerSpec;

fn main() {
    header("Figure 3", "Provisioned power (8xA100-80GB server)");
    let spec = ServerSpec::dgx_a100();
    println!(
        "{} rated at {:.1} kW:",
        spec.name,
        spec.provisioned_watts / 1000.0
    );
    for (component, watts) in spec.provisioned_breakdown() {
        let frac = watts / spec.provisioned_watts;
        let bar = "█".repeat((frac * 50.0).round() as usize);
        println!(
            "{component:<8} {watts:>6.0} W  {:>5.1}%  {bar}",
            frac * 100.0
        );
    }
    println!(
        "\nobserved peak {:.0} W — derating headroom {:.0} W per server (§5)",
        spec.peak_power_watts(),
        spec.derating_headroom_watts()
    );
    println!("paper: GPUs ~50%, fans ~25%, CPUs+others the rest; peak never above 5700 W");
}
