//! Figure 11: server and GPU peak power normalized to TDP in a
//! production-like cluster.

use polca_bench::{header, seed};
use polca_cluster::ServerSpec;
use polca_llm::{InferenceConfig, InferenceModel, ModelSpec};
use polca_sim::SimRng;
use polca_stats::{pearson, Summary};

fn main() {
    header(
        "Figure 11",
        "Server and GPU peak power normalized to TDP (40 servers)",
    );
    let spec = ServerSpec::dgx_a100();
    let deployment = InferenceModel::new(ModelSpec::bloom_176b(), spec.gpu.clone()).unwrap();
    let gpu_tdp_total = spec.gpu.tdp_watts * spec.n_gpus as f64;
    let mut rng = SimRng::from_seed_stream(seed(), 0xF11);

    let mut gpu_peaks = Vec::new();
    let mut server_peaks = Vec::new();
    let mut gpu_share = Summary::new();
    println!(
        "{:>6} {:>14} {:>16} {:>10}",
        "server", "GPU peak/TDP", "server peak/6.5kW", "GPU share"
    );
    for s in 0..40 {
        // Each server's peak is set by the heaviest prompt it served.
        let input = rng.uniform_u64(2048, 8192) as u32;
        let profile = deployment.profile(&InferenceConfig::new(input, 256, 1));
        let jitter = 1.0 + rng.normal(0.0, 0.01);
        let per_gpu = spec.gpu.idle_watts
            + (spec.gpu.transient_peak_watts - spec.gpu.idle_watts)
                * profile.peak_intensity()
                * jitter;
        let gpu_watts = per_gpu * spec.n_gpus as f64;
        let server_watts = spec.server_power_watts(gpu_watts);
        gpu_peaks.push(gpu_watts / gpu_tdp_total);
        server_peaks.push(server_watts / spec.provisioned_watts);
        // Mean GPU share measured at the token-phase operating point.
        let token_gpu = (spec.gpu.idle_watts
            + (spec.gpu.transient_peak_watts - spec.gpu.idle_watts) * profile.token.intensity)
            * spec.n_gpus as f64;
        gpu_share.record(token_gpu / spec.server_power_watts(token_gpu));
        if s < 8 {
            println!(
                "{:>6} {:>14.3} {:>16.3} {:>9.1}%",
                s,
                gpu_watts / gpu_tdp_total,
                server_watts / spec.provisioned_watts,
                token_gpu / spec.server_power_watts(token_gpu) * 100.0
            );
        }
    }
    println!("   ... ({} servers total)", gpu_peaks.len());
    let corr = pearson(&gpu_peaks, &server_peaks).unwrap();
    let gpu_peak_summary: Summary = gpu_peaks.iter().copied().collect();
    println!(
        "\nGPU peak/TDP range: {:.3}..{:.3} (above 1.0 ⇒ beyond TDP, up to +{:.0} W/server)",
        gpu_peak_summary.min().unwrap(),
        gpu_peak_summary.max().unwrap(),
        (gpu_peak_summary.max().unwrap() - 1.0) * gpu_tdp_total
    );
    println!("server-vs-GPU peak correlation: {corr:.3}");
    println!(
        "GPU share of server power: {:.1}% on average",
        gpu_share.mean().unwrap() * 100.0
    );
    println!(
        "\npaper: GPU ≈60% of server power; GPU peaks exceed aggregate TDP by up to \
         500 W; server and GPU peaks highly correlated"
    );
}
