//! Table 6: workload distribution and SLO outcomes under POLCA.

use polca::{OversubscriptionStudy, PolcaPolicy, PolicyKind, SloTargets};
use polca_bench::{eval_days, header, seed};
use polca_cluster::RowConfig;
use polca_trace::WorkloadClass;

fn main() {
    header("Table 6", "Workload distribution and SLOs");
    println!(
        "{:<12} {:<13} {:<13} {:>6} {:>9}",
        "Workload", "Prompt size", "Output size", "Ratio", "Priority"
    );
    for c in WorkloadClass::table6() {
        let f = c.high_priority_fraction;
        let priority = if f == 0.0 {
            "Low".to_string()
        } else if f == 1.0 {
            "High".to_string()
        } else {
            format!("{:.0}:{:.0}", f * 100.0, (1.0 - f) * 100.0)
        };
        println!(
            "{:<12} {:<13} {:<13} {:>5.0}% {:>9}",
            c.name,
            format!("{}-{}", c.prompt_range.0, c.prompt_range.1),
            format!("{}-{}", c.output_range.0, c.output_range.1),
            c.share * 100.0,
            priority
        );
    }

    let days = eval_days(2.0);
    let mut study = OversubscriptionStudy::new(
        RowConfig::paper_inference_row(),
        PolcaPolicy::default(),
        days,
        seed(),
    );
    let o = study.run(PolicyKind::Polca, 0.30, 1.0);
    let slo = SloTargets::default();
    println!("\nPOLCA at +30 % servers over {days:.0} days:");
    println!(
        "{:<28} {:>13} {:>13}",
        "Metric", "High priority", "Low priority"
    );
    println!(
        "{:<28} {:>12.1}% {:>12.1}%   (SLO < {:.0}% / < {:.0}%)",
        "P50 latency impact",
        (o.high_normalized.p50 - 1.0) * 100.0,
        (o.low_normalized.p50 - 1.0) * 100.0,
        (slo.high_p50 - 1.0) * 100.0,
        (slo.low_p50 - 1.0) * 100.0
    );
    println!(
        "{:<28} {:>12.1}% {:>12.1}%   (SLO < {:.0}% / < {:.0}%)",
        "P99 latency impact",
        (o.high_normalized.p99 - 1.0) * 100.0,
        (o.low_normalized.p99 - 1.0) * 100.0,
        (slo.high_p99 - 1.0) * 100.0,
        (slo.low_p99 - 1.0) * 100.0
    );
    println!(
        "{:<28} {:>13} {:>13}   (SLO = 0)",
        "Number of power brakes", o.brake_engagements, o.brake_engagements
    );
    println!(
        "\nSLOs {}",
        if o.slo.met {
            "met".to_string()
        } else {
            format!("violated: {:?}", o.slo.violations)
        }
    );
}
