//! Ablation: per-server request buffer depth (§6.6).
//!
//! "Our simulator assumes a one-request buffer per server to simulate
//! queueing delays. This is based on the typical load balanced setup,
//! reducing the chance of simultaneous capping." This ablation sweeps
//! the buffer depth under POLCA at +30 % servers.

use polca::{OversubscriptionStudy, PolcaPolicy, PolicyKind};
use polca_bench::{eval_days, header, seed};
use polca_cluster::RowConfig;

fn main() {
    header(
        "Ablation",
        "Per-server buffer depth under POLCA at +30% servers",
    );
    let days = eval_days(2.0);
    println!(
        "{:>7} {:>9} {:>7} {:>7} {:>7} {:>9} {:>6}",
        "buffer", "rejected", "LP p50", "LP p99", "HP p99", "LP tput", "SLO"
    );
    for depth in [0usize, 1, 2, 4, 8] {
        let mut row = RowConfig::paper_inference_row();
        row.buffer_capacity = depth;
        let mut study = OversubscriptionStudy::new(row, PolcaPolicy::default(), days, seed());
        study.set_record_power(false);
        let o = study.run(PolicyKind::Polca, 0.30, 1.0);
        println!(
            "{:>7} {:>9} {:>7.3} {:>7.3} {:>7.3} {:>9.4} {:>6}",
            depth,
            o.counts.2,
            o.low_normalized.p50,
            o.low_normalized.p99,
            o.high_normalized.p99,
            o.low_throughput_norm,
            if o.slo.met { "met" } else { "MISS" }
        );
    }
    println!(
        "\ndeeper buffers trade rejected requests for queueing latency: depth 1 \
         (the paper's choice) keeps both tails and goodput inside the SLOs"
    );
}
