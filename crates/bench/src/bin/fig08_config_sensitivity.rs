//! Figure 8: power (mean, peak) and latency sensitivity to input, batch,
//! and output sizes across the inference lineup.

use polca_bench::header;
use polca_gpu::{Gpu, GpuSpec};
use polca_llm::{InferenceConfig, InferenceModel, ModelSpec};

fn deployments() -> Vec<InferenceModel> {
    ModelSpec::inference_lineup()
        .into_iter()
        .map(|m| InferenceModel::new(m, GpuSpec::a100_80gb()).unwrap())
        .collect()
}

fn row(label: u32, deployments: &[InferenceModel], cfg: impl Fn(u32) -> InferenceConfig) {
    let gpu = Gpu::new(GpuSpec::a100_80gb());
    let tdp = gpu.spec().tdp_watts;
    print!("{label:>6}");
    for d in deployments {
        let p = d.profile(&cfg(label));
        print!(
            " | {:>4.2}/{:>4.2} {:>6.1}s",
            gpu.power_at(p.peak_intensity()) / tdp,
            gpu.power_at(p.mean_intensity()) / tdp,
            p.total_time_s()
        );
    }
    println!();
}

fn head(deployments: &[InferenceModel]) {
    print!("{:>6}", "");
    for d in deployments {
        print!(" | {:^16}", d.model().name);
    }
    println!();
    print!("{:>6}", "size");
    for _ in deployments {
        print!(" | {:>9} {:>6}", "peak/mean", "lat");
    }
    println!();
}

fn main() {
    header(
        "Figure 8",
        "Power (peak/mean, normalized to TDP) and latency sensitivity to request shape",
    );
    let ds = deployments();

    println!("\n(a,b) input size (output=128, batch=1):");
    head(&ds);
    for input in [256, 512, 1024, 2048, 4096, 8192] {
        row(input, &ds, |i| InferenceConfig::new(i, 128, 1));
    }

    println!("\n(c,d) batch size (input=1024, output=128):");
    head(&ds);
    for batch in [1, 2, 4, 8, 16] {
        row(batch, &ds, |b| InferenceConfig::new(1024, 128, b));
    }

    println!("\n(e,f) output size (input=1024, batch=1):");
    head(&ds);
    for output in [128, 256, 512, 1024, 2048, 4096] {
        row(output, &ds, |o| InferenceConfig::new(1024, o, 1));
    }

    println!(
        "\npaper: peak power rises with input and batch size; mean power stays flat; \
         output size only stretches latency linearly (Insight 5)"
    );
}
