//! Figure 10: peak power reduction vs performance reduction across
//! SM frequencies, models, and BLOOM request shapes.

use polca_bench::header;
use polca_gpu::{DvfsModel, Gpu, GpuSpec};
use polca_llm::{InferenceConfig, InferenceModel, ModelSpec};

const FREQS: [f64; 7] = [1410.0, 1360.0, 1310.0, 1260.0, 1210.0, 1160.0, 1110.0];

fn reductions(deployment: &InferenceModel, cfg: &InferenceConfig, mhz: f64) -> (f64, f64) {
    let dvfs = DvfsModel::default();
    let profile = deployment.profile(cfg);
    let mut gpu = Gpu::new(GpuSpec::a100_80gb());
    let base_peak = gpu.power_at(profile.peak_intensity());
    let base_time = profile.total_time_s();
    gpu.lock_clock(mhz).unwrap();
    let peak = gpu.power_at(profile.peak_intensity());
    let time = profile.total_time_at_clock(&dvfs, mhz / 1410.0);
    (1.0 - peak / base_peak, time / base_time - 1.0)
}

fn main() {
    header(
        "Figure 10",
        "Peak power reduction vs. performance reduction varying GPU SM frequencies",
    );

    println!("(a) all models (input=2048, output=256, batch=1):");
    println!(
        "{:<10} peak-power-red% → perf-red% per frequency step",
        "model"
    );
    for model in ModelSpec::inference_lineup() {
        let d = InferenceModel::new(model, GpuSpec::a100_80gb()).unwrap();
        let cfg = InferenceConfig::new(2048, 256, 1);
        print!("{:<10}", d.model().name);
        for mhz in FREQS {
            let (power, perf) = reductions(&d, &cfg, mhz);
            print!(" {:>4.1}→{:<4.1}", power * 100.0, perf * 100.0);
        }
        println!();
    }

    println!("\n(b) BLOOM request shapes:");
    let bloom = InferenceModel::new(ModelSpec::bloom_176b(), GpuSpec::a100_80gb()).unwrap();
    for (label, cfg) in [
        ("b=1 i=512 ", InferenceConfig::new(512, 256, 1)),
        ("b=1 i=2048", InferenceConfig::new(2048, 256, 1)),
        ("b=1 i=8192", InferenceConfig::new(8192, 256, 1)),
        ("b=16 i=512", InferenceConfig::new(512, 256, 16)),
    ] {
        print!("{label:<10}");
        for mhz in FREQS {
            let (power, perf) = reductions(&bloom, &cfg, mhz);
            print!(" {:>4.1}→{:<4.1}", power * 100.0, perf * 100.0);
        }
        println!();
    }

    println!("\n(c) performance vs SM frequency (BLOOM b=1 i=2048):");
    let cfg = InferenceConfig::new(2048, 256, 1);
    for mhz in FREQS {
        let (_, perf) = reductions(&bloom, &cfg, mhz);
        println!(
            "  {:>6.0} MHz  perf {:>5.1}% of max",
            mhz,
            (1.0 / (1.0 + perf)) * 100.0
        );
    }

    println!(
        "\npaper: superlinear trade-off — up to 20% peak power reclaimed for ≤7% \
         perf loss; bigger prompts/batches are hurt more; <2% loss ~100 MHz below max"
    );
}
