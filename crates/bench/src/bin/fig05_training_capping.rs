//! Figure 5: peak power vs performance reduction for training under
//! frequency locking and power capping.

use polca_bench::header;
use polca_gpu::{DvfsModel, Gpu, GpuSpec};
use polca_llm::{ModelSpec, TrainingJob};

fn peak(job: &TrainingJob, gpu: &mut Gpu) -> f64 {
    job.power_series(gpu, 3, 0.01)
        .resample_mean(0.1)
        .peak()
        .unwrap()
}

fn main() {
    header(
        "Figure 5",
        "Peak power vs. performance reduction for training",
    );
    let dvfs = DvfsModel::default();

    println!("(a) frequency locking:");
    println!(
        "{:<10} {:>9} {:>16} {:>16}",
        "model", "SM MHz", "peak power red.", "perf reduction"
    );
    for model in ModelSpec::training_lineup() {
        let job = TrainingJob::fine_tuning(&model);
        let mut base_gpu = Gpu::new(GpuSpec::a100_80gb());
        let base_peak = peak(&job, &mut base_gpu);
        for mhz in [1400.0, 1300.0, 1200.0, 1100.0] {
            let mut gpu = Gpu::new(GpuSpec::a100_80gb());
            gpu.lock_clock(mhz).unwrap();
            let p = peak(&job, &mut gpu);
            let perf = 1.0 - job.throughput_scale(&dvfs, mhz / 1410.0);
            println!(
                "{:<10} {:>9.0} {:>15.1}% {:>15.1}%",
                model.name,
                mhz,
                (1.0 - p / base_peak) * 100.0,
                perf * 100.0
            );
        }
    }

    println!("\n(b) power capping:");
    println!(
        "{:<10} {:>9} {:>16} {:>16}",
        "model", "cap W", "peak power red.", "perf reduction"
    );
    for model in ModelSpec::training_lineup() {
        let job = TrainingJob::fine_tuning(&model);
        let mut base_gpu = Gpu::new(GpuSpec::a100_80gb());
        let base = job.power_series(&mut base_gpu, 3, 0.01);
        let base_peak = base.resample_mean(0.1).peak().unwrap();
        let base_time = *base.times().last().unwrap();
        for cap in [400.0, 375.0, 350.0, 325.0] {
            let mut gpu = Gpu::new(GpuSpec::a100_80gb());
            gpu.set_power_cap(cap).unwrap();
            let ts = job.power_series(&mut gpu, 3, 0.01);
            let p = ts.resample_mean(0.1).peak().unwrap();
            let perf = 1.0 - base_time / ts.times().last().unwrap();
            println!(
                "{:<10} {:>9.0} {:>15.1}% {:>15.1}%",
                model.name,
                cap,
                (1.0 - p / base_peak) * 100.0,
                perf * 100.0
            );
        }
    }
    println!(
        "\npaper: ~20-22% peak power reduction at ≤10% perf loss for GPT-NeoX/Flan-T5; \
         power capping is noisier (reactive) than locking"
    );
}
