//! Figure 13: threshold space search — normalized latency and brake
//! events vs added servers for three T1/T2 combinations.

use polca::{OversubscriptionStudy, PolcaPolicy, PolicyKind};
use polca_bench::{eval_days, header, seed};
use polca_cluster::RowConfig;

fn main() {
    header(
        "Figure 13",
        "Threshold space search (T1/T2); gray line = max servers without power brakes",
    );
    let days = eval_days(2.0);
    let added_steps = [0.0, 0.10, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45];
    for (t1, t2) in [(0.75, 0.85), (0.80, 0.89), (0.85, 0.95)] {
        println!("\n(T1={:.0}%, T2={:.0}%):", t1 * 100.0, t2 * 100.0);
        println!(
            "{:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
            "added%", "LP p50", "LP p99", "HP p50", "HP p99", "brakes"
        );
        let mut study = OversubscriptionStudy::new(
            RowConfig::paper_inference_row(),
            PolcaPolicy::default().with_thresholds(t1, t2),
            days,
            seed(),
        );
        study.set_record_power(false);
        let mut max_no_brake = 0.0;
        for &added in &added_steps {
            let o = study.run(PolicyKind::Polca, added, 1.0);
            if o.brake_engagements == 0 {
                max_no_brake = added;
            }
            println!(
                "{:>7.0} {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>7}",
                added * 100.0,
                o.low_normalized.p50,
                o.low_normalized.p99,
                o.high_normalized.p50,
                o.high_normalized.p99,
                o.brake_engagements
            );
        }
        println!(
            "  max servers without power brake: +{:.0}%",
            max_no_brake * 100.0
        );
    }
    println!(
        "\npaper: 75-85 and 80-89 allow ~35% more servers brake-free, 85-95 only \
         ~32.5%; 75-85 hurts low-priority latency most; POLCA selects 80-89 and \
         deploys +30% to stay strictly within SLOs"
    );
}
