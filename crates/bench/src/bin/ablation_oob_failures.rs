//! Ablation: silent OOB command failures (§3.3).
//!
//! "OOB management interfaces are unreliable and may sometimes fail
//! without signaling completion or errors. These issues make them
//! impractical to deploy in production without sufficient guardrails."
//! This sweep injects silent capping-command failures and measures how
//! POLCA's containment degrades — the brake safety net (exempt from
//! failures, per the paper's treatment of it as the reliable last line)
//! is what keeps the row safe.

use polca::{PolcaController, PolcaPolicy};
use polca_bench::{eval_days, header, seed};
use polca_cluster::{ClusterSim, RowConfig, SimConfig};
use polca_sim::SimTime;
use polca_trace::replicate::{production_reference, ProductionReplicator};
use polca_trace::{ArrivalGenerator, TraceConfig, WorkloadClass};

fn main() {
    header(
        "Ablation (§3.3)",
        "Silent OOB capping-command failures under POLCA at +30% servers",
    );
    let days = eval_days(2.0);
    let base_row = RowConfig::paper_inference_row();
    let profile = production_reference(&base_row, days, 60.0, seed());
    let replicator = ProductionReplicator::new(&base_row, &WorkloadClass::table6());
    let schedule = replicator
        .schedule_from_profile(&profile)
        .expect("synthesized profile is well-formed")
        .scaled(1.3);
    let until = SimTime::from_days(days);

    println!(
        "{:>13} {:>8} {:>8} {:>10}",
        "failure rate", "brakes", "peak%", "commands"
    );
    for failure_rate in [0.0, 0.05, 0.10, 0.20, 0.40] {
        let config = SimConfig {
            seed: seed(),
            oob_failure_rate: failure_rate,
            record_power_series: false,
            ..SimConfig::default()
        };
        let trace = TraceConfig {
            seed: seed(),
            horizon: until,
            schedule: schedule.clone(),
            mix: WorkloadClass::table6(),
        };
        let report = ClusterSim::new(
            base_row.clone().with_added_servers(0.30),
            config,
            PolcaController::new(PolcaPolicy::default()),
        )
        .run(ArrivalGenerator::new(&trace), until);
        println!(
            "{:>12.0}% {:>8} {:>8.1} {:>10}",
            failure_rate * 100.0,
            report.brake_engagements,
            report.peak_row_watts / base_row.provisioned_watts() * 100.0,
            report.commands_issued
        );
    }
    println!(
        "\nthe dual-threshold design turns out to be fail-safe under silent \
         losses: a lost CAP gets a second chance at the T2 escalation, while a \
         lost UNCAP just leaves a server capped (safe but slow) — power peaks \
         actually drop as losses rise, at the cost of low-priority performance. \
         The paper's call for better OOB interfaces (§5) is about that \
         performance tax and about debuggability, not about safety"
    );
}
