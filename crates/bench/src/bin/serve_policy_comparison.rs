//! Figure 17 re-run on the continuous-batching engine: the four capping
//! policies at 30 % oversubscription, on aggregated and on disaggregated
//! (split prefill/decode) pool topologies.
//!
//! As in `fig17_policy_comparison`, latencies are normalized against
//! POLCA *within the same topology* (lower is better; 1.0 = POLCA), so
//! the table isolates what each policy costs on top of the serving
//! model rather than the raw speed difference between topologies.

use polca::{DisaggregationConfig, OversubscriptionStudy, PolcaPolicy, PolicyKind, PolicyOutcome};
use polca_bench::{eval_days, header, obs_out_arg, seed, Table};
use polca_cluster::RowConfig;

fn run_topology(split: bool, days: f64) -> Vec<(String, PolicyOutcome)> {
    let mut study = OversubscriptionStudy::new(
        RowConfig::paper_inference_row(),
        PolcaPolicy::default(),
        days,
        seed(),
    );
    study.set_record_power(false);
    study.set_engine(DisaggregationConfig::default().batched_engine(split));
    PolicyKind::all()
        .iter()
        .map(|kind| (kind.name().to_string(), study.run(*kind, 0.30, 1.0)))
        .collect()
}

fn main() {
    header(
        "Serve policy comparison",
        "POLCA vs thresholding baselines at +30% on the continuous-batching engine",
    );
    let days = eval_days(2.0);

    let mut table = Table::new(&[
        "pools",
        "policy (vs POLCA)",
        "LP p50",
        "HP p50",
        "LP p99",
        "HP p99",
        "peak util",
        "brakes",
    ]);
    let mut peaks = Vec::new();
    for split in [false, true] {
        let label = if split { "split" } else { "aggregated" };
        let outcomes = run_topology(split, days);
        let polca = outcomes[0].1.clone();
        peaks.push((label, polca.peak_utilization));
        let rel = |a: f64, b: f64| if b == 0.0 { 1.0 } else { a / b };
        for (name, o) in &outcomes {
            table.row(vec![
                label.to_string(),
                name.clone(),
                format!("{:.3}", rel(o.low_raw.p50, polca.low_raw.p50)),
                format!("{:.3}", rel(o.high_raw.p50, polca.high_raw.p50)),
                format!("{:.3}", rel(o.low_raw.p99, polca.low_raw.p99)),
                format!("{:.3}", rel(o.high_raw.p99, polca.high_raw.p99)),
                format!("{:.1}%", o.peak_utilization * 100.0),
                format!("{}", o.brake_engagements),
            ]);
        }
    }
    table.print();
    if let Some(dir) = obs_out_arg() {
        table
            .save_csv(&dir.join("serve_policy_comparison.csv"))
            .expect("write serve policy CSV");
    }
    println!(
        "\nreading: the Fig 17 ordering survives the engine swap — POLCA holds \
         the tightest tails on both topologies. Splitting the pools lowers peak \
         row utilization ({:.1}% -> {:.1}% here) because the decode pool runs at \
         a locked memory-bound clock, so capping policies have less overshoot to \
         police in the first place",
        peaks[0].1 * 100.0,
        peaks[1].1 * 100.0,
    );
}
