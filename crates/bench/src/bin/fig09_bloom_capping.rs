//! Figure 9: GPU power capping and frequency locking on BLOOM inference
//! (input=8192, output=128, batch=1).

use polca_bench::{header, sparkline};
use polca_gpu::{Gpu, GpuSpec};
use polca_llm::{InferenceConfig, InferenceModel, ModelSpec};

fn main() {
    header(
        "Figure 9",
        "GPU power capping and frequency locking on BLOOM inference (8192/128/1)",
    );
    let deployment = InferenceModel::new(ModelSpec::bloom_176b(), GpuSpec::a100_80gb()).unwrap();
    let cfg = InferenceConfig::new(8192, 128, 1);
    let tdp = GpuSpec::a100_80gb().tdp_watts;
    for (label, cap, lock) in [
        ("(a) no cap      ", None, None),
        ("(b) 325W cap    ", Some(325.0), None),
        ("(c) 1.1GHz clock", None, Some(1110.0)),
    ] {
        let mut gpu = Gpu::new(GpuSpec::a100_80gb());
        if let Some(w) = cap {
            gpu.set_power_cap(w).unwrap();
        }
        if let Some(mhz) = lock {
            gpu.lock_clock(mhz).unwrap();
        }
        let ts = deployment.power_series(&cfg, 3, &mut gpu, 0.05);
        println!(
            "{label}  peak {:>4.2}/TDP  mean {:>4.2}/TDP  run {:>5.1}s",
            ts.peak().unwrap() / tdp,
            ts.mean().unwrap() / tdp,
            ts.times().last().unwrap()
        );
        println!(
            "                  {}",
            sparkline(&ts.resample_mean(0.2), 64)
        );
    }
    println!(
        "\npaper: the reactive cap lets prompt peaks escape above 325 W; the \
         frequency lock removes the peaks entirely but slows the whole run"
    );
}
