//! Figure 7: pairwise Pearson correlations of GPU counters in the prompt
//! and token phases of BLOOM inference.

use polca_bench::{header, seed};
use polca_gpu::{CounterSample, PhaseKind};
use polca_sim::SimRng;
use polca_stats::CorrelationMatrix;

fn matrix(phase: PhaseKind, rng: &mut SimRng) -> CorrelationMatrix {
    let samples: Vec<CounterSample> = (0..4000)
        .map(|_| CounterSample::sample(phase, 400.0, 400.0, rng))
        .collect();
    let columns: Vec<Vec<f64>> = (0..7)
        .map(|i| samples.iter().map(|s| s.as_vec()[i]).collect())
        .collect();
    let series: Vec<(&str, &[f64])> = CounterSample::NAMES
        .iter()
        .zip(&columns)
        .map(|(name, col)| (*name, col.as_slice()))
        .collect();
    CorrelationMatrix::from_series(&series)
}

fn print_matrix(m: &CorrelationMatrix) {
    print!("{:<22}", "");
    for name in m.names() {
        print!("{:>7}", name.split_whitespace().next().unwrap_or(name));
    }
    println!();
    for i in 0..m.len() {
        print!("{:<22}", m.names()[i]);
        for j in 0..m.len() {
            print!("{:>7.2}", m.get(i, j));
        }
        println!();
    }
}

fn main() {
    header(
        "Figure 7",
        "Pairwise correlations of GPU counters for prompt and token phases (BLOOM)",
    );
    let mut rng = SimRng::from_seed_stream(seed(), 0xF167);
    println!("prompt phase:");
    let prompt = matrix(PhaseKind::Prompt, &mut rng);
    print_matrix(&prompt);
    println!(
        "\n  power-vs-SM {:+.2}, power-vs-tensor {:+.2}, power-vs-memory {:+.2}",
        prompt.by_name("Power", "SM Activity").unwrap(),
        prompt.by_name("Power", "Tensor Core Activity").unwrap(),
        prompt.by_name("Power", "Memory Activity").unwrap()
    );

    println!("\ntoken phase:");
    let token = matrix(PhaseKind::Token, &mut rng);
    print_matrix(&token);
    println!(
        "\n  power-vs-SM {:+.2}, power-vs-tensor {:+.2}, power-vs-memory {:+.2}",
        token.by_name("Power", "SM Activity").unwrap(),
        token.by_name("Power", "Tensor Core Activity").unwrap(),
        token.by_name("Power", "Memory Activity").unwrap()
    );
    println!(
        "\npaper: prompt power strongly correlated with SM/tensor activity and \
         inversely with memory activity; token counters largely uncorrelated"
    );
}
