//! Table 3: the characterized LLM zoo.

use polca_bench::header;
use polca_gpu::GpuSpec;
use polca_llm::{DType, ModelSpec};

fn main() {
    header(
        "Table 3",
        "LLM workloads that we characterize (* inference only)",
    );
    println!(
        "{:<17} {:<12} {:>9} {:>16}",
        "Category", "Model", "#Params", "#Inference GPUs"
    );
    let gpu = GpuSpec::a100_80gb();
    for m in ModelSpec::all() {
        let params = if m.params_b < 1.0 {
            format!("{:.0}M", m.params_b * 1000.0)
        } else {
            format!("{:.0}B", m.params_b)
        };
        println!(
            "{:<17} {:<12} {:>9} {:>16}",
            format!("{:?}", m.architecture),
            format!("{}{}", m.name, if m.inference_only { "*" } else { "" }),
            params,
            m.inference_gpus
        );
        // §4.2 quantization footprint check for the Llama2 models.
        if m.name.starts_with("Llama2") {
            for dt in DType::all() {
                println!(
                    "{:<17}   {} needs {} GPU(s)",
                    "",
                    dt.name(),
                    dt.gpus_required(&m, &gpu)
                );
            }
        }
    }
    println!("\npaper: RoBERTa 355M/1, Llama2 13B+70B/1-4, GPT-NeoX 20B/2, OPT 30B/4, BLOOM 176B/8, Flan-T5 11B/1");
}
