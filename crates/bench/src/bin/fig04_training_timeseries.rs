//! Figure 4: training power timeseries under no cap, a 325 W power cap,
//! and a 1.1 GHz frequency lock.

use polca_bench::{header, sparkline};
use polca_gpu::{Gpu, GpuSpec};
use polca_llm::{ModelSpec, TrainingJob};

fn main() {
    header(
        "Figure 4",
        "Power usage time-series for training workloads under no cap, power cap, and frequency cap",
    );
    let tdp = GpuSpec::a100_80gb().tdp_watts;
    for model in ModelSpec::training_lineup() {
        let job = TrainingJob::fine_tuning(&model);
        println!(
            "\n{} (iteration {:.1} s):",
            model.name,
            job.iteration_time_s()
        );
        for (label, cap, lock) in [
            ("no cap ", None, None),
            ("325W   ", Some(325.0), None),
            ("1.1GHz ", None, Some(1110.0)),
        ] {
            let mut gpu = Gpu::new(GpuSpec::a100_80gb());
            if let Some(w) = cap {
                gpu.set_power_cap(w).unwrap();
            }
            if let Some(mhz) = lock {
                gpu.lock_clock(mhz).unwrap();
            }
            let ts = job.power_series(&mut gpu, 5, 0.01).resample_mean(0.1);
            println!(
                "  {label} peak {:>4.2}/TDP trough {:>4.2}/TDP  {}",
                ts.peak().unwrap() / tdp,
                ts.trough().unwrap() / tdp,
                sparkline(&ts, 60)
            );
        }
    }
    println!(
        "\npaper: peaks reach/exceed TDP (except RoBERTa); troughs 75%/50%/20% of TDP; \
         capping clips peaks, locking lowers everything"
    );
}
