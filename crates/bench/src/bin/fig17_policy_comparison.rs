//! Figure 17: performance impact of POLCA vs the thresholding baselines
//! at 30 % oversubscription, with and without the +5 % power drift.
//!
//! As in the paper, latencies are normalized against POLCA (lower is
//! better; 1.0 = POLCA).

use polca::{OversubscriptionStudy, PolcaPolicy, PolicyKind, PolicyOutcome};
use polca_bench::{eval_days, header, obs_out_arg, seed, Table};
use polca_cluster::RowConfig;

fn main() {
    header(
        "Figure 17",
        "Performance impact of dual-threshold POLCA vs other policies at 30% oversubscription",
    );
    let days = eval_days(7.0);
    let mut study = OversubscriptionStudy::new(
        RowConfig::paper_inference_row(),
        PolcaPolicy::default(),
        days,
        seed(),
    );
    study.set_record_power(false);

    let mut outcomes: Vec<(String, PolicyOutcome)> = Vec::new();
    for power_scale in [1.0, 1.05] {
        for kind in PolicyKind::all() {
            let suffix = if power_scale > 1.0 { "+5%" } else { "" };
            let o = study.run(kind, 0.30, power_scale);
            outcomes.push((format!("{}{}", kind.name(), suffix), o));
        }
    }
    let polca = outcomes[0].1.clone();

    let mut table = Table::new(&[
        "policy (vs POLCA)",
        "LP p50",
        "HP p50",
        "LP p99",
        "HP p99",
        "LP max",
        "HP max",
    ]);
    for (name, o) in &outcomes {
        let rel = |a: f64, b: f64| if b == 0.0 { 1.0 } else { a / b };
        table.row(vec![
            name.clone(),
            format!("{:.3}", rel(o.low_raw.p50, polca.low_raw.p50)),
            format!("{:.3}", rel(o.high_raw.p50, polca.high_raw.p50)),
            format!("{:.3}", rel(o.low_raw.p99, polca.low_raw.p99)),
            format!("{:.3}", rel(o.high_raw.p99, polca.high_raw.p99)),
            format!("{:.3}", rel(o.low_raw.max, polca.low_raw.max)),
            format!("{:.3}", rel(o.high_raw.max, polca.high_raw.max)),
        ]);
    }
    table.print();
    if let Some(dir) = obs_out_arg() {
        table
            .save_csv(&dir.join("fig17_policy_comparison.csv"))
            .expect("write fig17 CSV");
    }
    println!(
        "\npaper: POLCA meets all SLOs; 1-Thresh-Low-Pri misses low-priority SLOs; \
         1-Thresh-All breaches P99 for both classes; No-cap matches POLCA on \
         medians but its unprotected brakes blow up max/P100 latency — most \
         visibly in the +5% drift scenario, where POLCA is the most robust"
    );
}
