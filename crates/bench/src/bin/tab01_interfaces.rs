//! Table 1: power monitoring interfaces in an LLM cluster.

use polca_bench::header;
use polca_telemetry::{MonitorInterface, Path};

fn main() {
    header("Table 1", "Power monitoring interfaces in an LLM cluster");
    println!(
        "{:<14} {:<14} {:<5} {:<12}",
        "Mechanism", "Granularity", "Path", "Interval"
    );
    for i in MonitorInterface::table1() {
        let interval = if i.min_interval_s == i.max_interval_s {
            format!("{:.0}s", i.min_interval_s)
        } else if i.max_interval_s < 1.0 {
            format!(
                "{:.0}-{:.0}ms",
                i.min_interval_s * 1000.0,
                i.max_interval_s * 1000.0
            )
        } else if i.min_interval_s < 1.0 {
            format!("{:.0}ms+", i.min_interval_s * 1000.0)
        } else {
            format!("{:.0}-{:.0}s", i.min_interval_s, i.max_interval_s)
        };
        println!(
            "{:<14} {:<14} {:<5} {:<12}",
            i.name,
            format!("{:?}", i.granularity),
            match i.path {
                Path::InBand => "IB",
                Path::OutOfBand => "OOB",
            },
            interval
        );
    }
    println!(
        "\npaper: RAPL 1-10ms IB | DCGM 100ms+ IB | SMBPBI 5s+ OOB | \
         IPMI 1-5s OOB | Row manager 2s OOB"
    );
}
