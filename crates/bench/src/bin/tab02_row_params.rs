//! Table 2: row-level parameters of the evaluation cluster.

use polca_bench::{header, obs_out_arg, Table};
use polca_cluster::RowConfig;
use polca_telemetry::interfaces::RowParameters;

fn main() {
    header("Table 2", "Row-level parameters in our study");
    let p = RowParameters::default();
    let row = RowConfig::paper_inference_row();
    let mut table = Table::new(&["Parameter", "Value"]);
    table.row(vec!["Number of servers".into(), p.servers.to_string()]);
    table.row(vec!["Server type".into(), p.server_type.to_string()]);
    table.row(vec![
        "Power telemetry delay".into(),
        format!("{}s", p.power_telemetry_delay_s),
    ]);
    table.row(vec![
        "Power brake latency".into(),
        format!("{}s", p.power_brake_latency_s),
    ]);
    table.row(vec![
        "OOB control latency".into(),
        format!("{}s", p.oob_control_latency_s),
    ]);
    table.row(vec![
        "Row power budget (derived)".into(),
        format!("{:.0} kW", row.provisioned_watts() / 1000.0),
    ]);
    table.row(vec![
        "UPS capping deadline".into(),
        format!("{}s", RowParameters::UPS_CAPPING_DEADLINE_S),
    ]);
    table.print();
    if let Some(dir) = obs_out_arg() {
        table
            .save_csv(&dir.join("tab02_row_params.csv"))
            .expect("write tab02 CSV");
    }
    println!("\npaper: 40 DGX-A100 servers, 2s telemetry, 5s brake, 40s OOB control");
}
