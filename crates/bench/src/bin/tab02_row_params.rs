//! Table 2: row-level parameters of the evaluation cluster.

use polca_bench::header;
use polca_cluster::RowConfig;
use polca_telemetry::interfaces::RowParameters;

fn main() {
    header("Table 2", "Row-level parameters in our study");
    let p = RowParameters::default();
    let row = RowConfig::paper_inference_row();
    println!("{:<28} {}", "Number of servers", p.servers);
    println!("{:<28} {}", "Server type", p.server_type);
    println!("{:<28} {}s", "Power telemetry delay", p.power_telemetry_delay_s);
    println!("{:<28} {}s", "Power brake latency", p.power_brake_latency_s);
    println!("{:<28} {}s", "OOB control latency", p.oob_control_latency_s);
    println!(
        "{:<28} {:.0} kW",
        "Row power budget (derived)",
        row.provisioned_watts() / 1000.0
    );
    println!(
        "{:<28} {}s",
        "UPS capping deadline",
        RowParameters::UPS_CAPPING_DEADLINE_S
    );
    println!("\npaper: 40 DGX-A100 servers, 2s telemetry, 5s brake, 40s OOB control");
}
