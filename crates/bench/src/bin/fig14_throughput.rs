//! Figure 14: normalized server throughput under POLCA vs added servers.

use polca::{OversubscriptionStudy, PolcaPolicy, PolicyKind};
use polca_bench::{eval_days, header, seed};
use polca_cluster::RowConfig;

fn main() {
    header("Figure 14", "Server throughput for POLCA");
    let days = eval_days(2.0);
    let mut study = OversubscriptionStudy::new(
        RowConfig::paper_inference_row(),
        PolcaPolicy::default(),
        days,
        seed(),
    );
    study.set_record_power(false);
    println!(
        "{:>7} {:>16} {:>16} {:>10}",
        "added%", "LP throughput", "HP throughput", "brakes"
    );
    for added in [0.0, 0.10, 0.20, 0.25, 0.30, 0.35, 0.40] {
        let o = study.run(PolicyKind::Polca, added, 1.0);
        println!(
            "{:>7.0} {:>16.4} {:>16.4} {:>10}",
            added * 100.0,
            o.low_throughput_norm,
            o.high_throughput_norm,
            o.brake_engagements
        );
    }
    println!(
        "\npaper: high-priority throughput unaffected; low-priority sees a minor \
         <2% decline at the chosen +30% configuration"
    );
}
