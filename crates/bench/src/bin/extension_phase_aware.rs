//! Extension: §5.2 phase-aware power management.
//!
//! "Using lower frequencies during the token phase could help reduce
//! power consumption without substantially impacting performance." This
//! experiment runs POLCA with and without a phase-aware token clock and
//! measures how much further the row can be oversubscribed.

use polca::{OversubscriptionStudy, PolcaPolicy, PolicyKind};
use polca_bench::{eval_days, header, seed};
use polca_cluster::RowConfig;

fn max_safe_added(study: &mut OversubscriptionStudy) -> f64 {
    let mut best = 0.0;
    for pct in [0u32, 10, 20, 30, 35, 40, 45, 50] {
        let added = pct as f64 / 100.0;
        let o = study.run(PolicyKind::Polca, added, 1.0);
        if o.slo.met {
            best = added;
        }
    }
    best
}

fn main() {
    header(
        "Extension (§5.2)",
        "Phase-aware power management: token phases at 1110 MHz, prompts at full clock",
    );
    let days = eval_days(2.0);

    println!(
        "{:<14} {:>7} {:>7} {:>7} {:>7} {:>7} {:>6}",
        "mode", "mean%", "peak%", "LP p99", "HP p99", "brakes", "SLO"
    );
    let mut studies = Vec::new();
    for (label, row) in [
        ("baseline", RowConfig::paper_inference_row()),
        (
            "phase-aware",
            RowConfig::paper_inference_row().with_phase_aware(1110.0),
        ),
    ] {
        let mut study = OversubscriptionStudy::new(row, PolcaPolicy::default(), days, seed());
        study.set_record_power(false);
        let o = study.run(PolicyKind::Polca, 0.30, 1.0);
        println!(
            "{:<14} {:>7.1} {:>7.1} {:>7.3} {:>7.3} {:>7} {:>6}",
            label,
            o.mean_utilization * 100.0,
            o.peak_utilization * 100.0,
            o.low_normalized.p99,
            o.high_normalized.p99,
            o.brake_engagements,
            if o.slo.met { "met" } else { "MISS" }
        );
        studies.push((label, study));
    }

    println!("\nmaximum SLO-safe oversubscription:");
    for (label, mut study) in studies {
        let best = max_safe_added(&mut study);
        println!("  {label:<14} +{:.0}% servers", best * 100.0);
    }
    println!(
        "\ntoken phases dominate request time but are memory-bound, so running \
         them at 1110 MHz sheds power almost for free and buys extra headroom \
         beyond POLCA's reactive capping"
    );
}
