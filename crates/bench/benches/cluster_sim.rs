//! Criterion benches for the cluster substrate (Table 4 and the
//! discrete-event simulation kernel itself).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use polca_cluster::{ClusterSim, NoopController, RowConfig, SimConfig, TrainingCluster};
use polca_sim::SimTime;
use polca_trace::{ArrivalGenerator, TraceConfig};

fn tab04_training_cluster(c: &mut Criterion) {
    c.bench_function("tab04_training_cluster_series", |b| {
        let cluster = TrainingCluster::paper_training_row();
        b.iter(|| {
            let ts = cluster.row_power_series(60.0, 0.1, 7);
            black_box((ts.peak(), ts.max_rise_within(2.0)))
        })
    });
}

fn tab04_inference_row(c: &mut Criterion) {
    let mut group = c.benchmark_group("tab04");
    group.sample_size(10);
    group.bench_function("tab04_inference_row_hour", |b| {
        b.iter(|| {
            let mut row = RowConfig::paper_inference_row();
            row.base_servers = 8;
            let config = TraceConfig::paper_mix(3, SimTime::from_hours(1.0)).scaled(0.2);
            let report = ClusterSim::new(row, SimConfig::default(), NoopController)
                .run(ArrivalGenerator::new(&config), SimTime::from_hours(1.0));
            black_box(report.peak_row_watts)
        })
    });
    group.finish();
}

fn sim_event_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    group.bench_function("cluster_sim_event_kernel", |b| {
        // A dense half hour on a small row: measures raw event-loop
        // throughput (arrival, dispatch, phase transitions, telemetry).
        b.iter(|| {
            let mut row = RowConfig::paper_inference_row();
            row.base_servers = 4;
            let config = TraceConfig::paper_mix(5, SimTime::from_mins(30.0)).scaled(0.12);
            let report = ClusterSim::new(row, SimConfig::default(), NoopController)
                .run(ArrivalGenerator::new(&config), SimTime::from_mins(30.0));
            black_box(report.completed)
        })
    });
    group.finish();
}

criterion_group!(
    cluster_sim,
    tab04_training_cluster,
    tab04_inference_row,
    sim_event_throughput,
);
criterion_main!(cluster_sim);
