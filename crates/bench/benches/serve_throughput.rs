//! `serve_throughput`: wall-clock throughput of the continuous-batching
//! serving engine (`polca-serve`) driven through `EngineKind::Batched`.
//!
//! Mirrors `sim_throughput`'s dense half hour on a small row so the
//! two engines' rate lines are directly comparable, and adds the
//! split-pool topology (disaggregated prefill/decode with KV transfer
//! over the interconnect). The `BENCH_serve.json` report carries the
//! `serve_sim_s_per_s` metric that `ci.sh`'s bench-smoke step gates.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use polca::DisaggregationConfig;
use polca_bench::write_bench_report;
use polca_cluster::{ClusterSim, NoopController, RowConfig, SimConfig, SimReport};
use polca_obs::{BenchReport, ObsLevel, ProfCounter, Recorder};
use polca_sim::SimTime;
use polca_trace::{ArrivalGenerator, TraceConfig};

/// The `sim_throughput` half hour, served by the batched engine
/// (aggregated pools or split prefill/decode).
fn run_row(split: bool, recorder: Recorder) -> SimReport {
    let mut row = RowConfig::paper_inference_row();
    row.base_servers = 4;
    let config = TraceConfig::paper_mix(5, SimTime::from_mins(30.0)).scaled(0.12);
    let sim_config = SimConfig {
        engine: DisaggregationConfig::default().batched_engine(split),
        recorder,
        ..SimConfig::default()
    };
    ClusterSim::new(row, sim_config, NoopController)
        .run(ArrivalGenerator::new(&config), SimTime::from_mins(30.0))
}

fn print_rate(name: &str, simulated_s: f64, events: u64, wall_s: f64) {
    println!(
        "throughput {name:<24} {:>12.0} simulated-seconds/sec  {:>12.0} events/sec  \
         ({events} events over {simulated_s:.0} simulated s in {wall_s:.3} s)",
        simulated_s / wall_s,
        events as f64 / wall_s,
    );
}

fn batched_engine(c: &mut Criterion) {
    let start = Instant::now();
    let report = run_row(false, Recorder::disabled());
    let wall = start.elapsed().as_secs_f64();
    print_rate(
        "serve_batched",
        report.duration.as_secs(),
        report.events_processed,
        wall,
    );
    // A second, fully-instrumented pass supplies the serve phase and
    // counter breakdown; the throughput numbers stay uninstrumented.
    let rec = Recorder::new(ObsLevel::Full);
    let _ = run_row(false, rec.clone());
    let snap = rec.prof().snapshot();
    write_bench_report(
        &BenchReport::new("serve")
            .metric("serve_sim_s_per_s", report.duration.as_secs() / wall)
            .metric("events_per_s", report.events_processed as f64 / wall)
            .metric("wall_s", wall)
            .metric_u64("events", report.events_processed)
            .metric_u64("peak_batch", snap.counter(ProfCounter::ServePeakBatch))
            .metric_u64(
                "kv_peak_blocks",
                snap.counter(ProfCounter::ServeKvPeakBlocks),
            )
            .metric_u64("preemptions", snap.counter(ProfCounter::ServePreemptions))
            .phases(&snap),
    );
    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(10);
    group.bench_function("batched_row_30min", |b| {
        b.iter(|| black_box(run_row(false, Recorder::disabled()).completed))
    });
    group.finish();
}

fn split_pools(c: &mut Criterion) {
    let start = Instant::now();
    let report = run_row(true, Recorder::disabled());
    let wall = start.elapsed().as_secs_f64();
    print_rate(
        "serve_split_pools",
        report.duration.as_secs(),
        report.events_processed,
        wall,
    );
    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(10);
    group.bench_function("split_pools_row_30min", |b| {
        b.iter(|| black_box(run_row(true, Recorder::disabled()).completed))
    });
    group.finish();
}

criterion_group!(serve_throughput, batched_engine, split_pools);
criterion_main!(serve_throughput);
