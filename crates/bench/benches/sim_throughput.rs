//! `sim_throughput`: wall-clock throughput of the simulation engine and
//! the parallel sweep runner.
//!
//! The offline criterion stand-in has no `Throughput` API, so this
//! bench prints its own rate lines next to the timing output:
//!
//! * `row_engine` / `fleet_engine` — simulated-seconds/sec and
//!   events/sec of one row and of a 4-row fleet (the
//!   `SimReport::events_processed` counter divided by wall time),
//! * `sweep` — a multi-policy `OversubscriptionStudy` sweep at
//!   `jobs=1` vs `jobs=4`, with the speedup factor.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use polca::{OversubscriptionStudy, PolicyKind};
use polca_bench::write_bench_report;
use polca_cluster::{
    ClusterSim, FleetConfig, FleetSim, NoopController, RowConfig, SimConfig, SimReport,
};
use polca_obs::{BenchReport, ObsLevel, ProfCounter, Recorder};
use polca_sim::SimTime;
use polca_trace::{ArrivalGenerator, TraceConfig};

/// A dense half hour on a small row (same shape as the
/// `cluster_sim_event_kernel` bench, kept separate so rate lines and
/// timings stay comparable across runs).
fn run_row() -> SimReport {
    run_row_with(Recorder::disabled())
}

/// The same half hour with an attached recorder (the polca-prof pass
/// behind the emitted `BENCH_sim.json` phase breakdown).
fn run_row_with(recorder: Recorder) -> SimReport {
    let mut row = RowConfig::paper_inference_row();
    row.base_servers = 4;
    let config = TraceConfig::paper_mix(5, SimTime::from_mins(30.0)).scaled(0.12);
    let sim_config = SimConfig {
        recorder,
        ..SimConfig::default()
    };
    ClusterSim::new(row, sim_config, NoopController)
        .run(ArrivalGenerator::new(&config), SimTime::from_mins(30.0))
}

/// The same half hour across a 4-row fleet (2 rows per PDU), budgets
/// monitored.
fn run_fleet() -> polca_cluster::FleetReport {
    let mut row = RowConfig::paper_inference_row();
    row.base_servers = 4;
    let config = TraceConfig::paper_mix(5, SimTime::from_mins(30.0)).scaled(0.48);
    let mut fleet = FleetConfig::with_rows(4);
    fleet.rows_per_pdu = 2;
    FleetSim::new(
        row,
        fleet,
        |_, _| NoopController,
        ArrivalGenerator::new(&config),
        SimTime::from_mins(30.0),
    )
    .run()
}

fn print_rate(name: &str, simulated_s: f64, events: u64, wall_s: f64) {
    println!(
        "throughput {name:<24} {:>12.0} simulated-seconds/sec  {:>12.0} events/sec  \
         ({events} events over {simulated_s:.0} simulated s in {wall_s:.3} s)",
        simulated_s / wall_s,
        events as f64 / wall_s,
    );
}

fn row_engine(c: &mut Criterion) {
    let start = Instant::now();
    let report = run_row();
    let wall = start.elapsed().as_secs_f64();
    print_rate(
        "row_engine",
        report.duration.as_secs(),
        report.events_processed,
        wall,
    );
    // A second, fully-instrumented pass supplies the per-phase ns and
    // queue counters; the throughput numbers above stay uninstrumented.
    let rec = Recorder::new(ObsLevel::Full);
    let _ = run_row_with(rec.clone());
    let snap = rec.prof().snapshot();
    write_bench_report(
        &BenchReport::new("sim")
            .metric("sim_s_per_s", report.duration.as_secs() / wall)
            .metric("events_per_s", report.events_processed as f64 / wall)
            .metric("wall_s", wall)
            .metric_u64("events", report.events_processed)
            .metric_u64(
                "peak_queue_depth",
                snap.counter(ProfCounter::PeakQueueDepth),
            )
            .phases(&snap),
    );
    let mut group = c.benchmark_group("sim_throughput");
    group.sample_size(10);
    group.bench_function("row_engine_30min", |b| {
        b.iter(|| black_box(run_row().completed))
    });
    group.finish();
}

fn fleet_engine(c: &mut Criterion) {
    let start = Instant::now();
    let report = run_fleet();
    let wall = start.elapsed().as_secs_f64();
    print_rate(
        "fleet_engine_4rows",
        report.duration.as_secs(),
        report.events_processed(),
        wall,
    );
    let mut group = c.benchmark_group("sim_throughput");
    group.sample_size(10);
    group.bench_function("fleet_engine_4rows_30min", |b| {
        b.iter(|| black_box(run_fleet().completed()))
    });
    group.finish();
}

fn sweep_scaling(c: &mut Criterion) {
    // A multi-policy study: all four Figure 17 policies at two
    // oversubscription levels. The first sweep warms the per-level
    // trace cache and the un-capped reference so both timed runs
    // measure simulation work, not synthesis.
    let study = OversubscriptionStudy::quick_demo(7);
    let cells: Vec<(PolicyKind, f64, f64)> = PolicyKind::all()
        .iter()
        .flat_map(|&kind| [(kind, 0.20, 1.0), (kind, 0.30, 1.0)])
        .collect();
    black_box(study.sweep(&cells, 1));
    let start = Instant::now();
    black_box(study.sweep(&cells, 1));
    let seq = start.elapsed().as_secs_f64();
    let start = Instant::now();
    black_box(study.sweep(&cells, 4));
    let par = start.elapsed().as_secs_f64();
    println!(
        "throughput sweep ({} cells)      jobs=1 {seq:.3} s  jobs=4 {par:.3} s  speedup {:.2}x",
        cells.len(),
        seq / par,
    );
    let mut group = c.benchmark_group("sim_throughput");
    group.sample_size(10);
    group.bench_function("sweep_8cells_jobs4", |b| {
        b.iter(|| black_box(study.sweep(&cells, 4).len()))
    });
    group.finish();
}

criterion_group!(sim_throughput, row_engine, fleet_engine, sweep_scaling);
criterion_main!(sim_throughput);
