//! Criterion benches for the characterization experiments (Figures 3–11,
//! Tables 1–3/5). Each bench measures the simulation kernel that the
//! matching `src/bin/figNN_*` binary uses to regenerate the artifact.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use polca_cluster::ServerSpec;
use polca_gpu::{CounterSample, DvfsModel, Gpu, GpuSpec, PhaseKind};
use polca_llm::{InferenceConfig, InferenceModel, ModelSpec, TrainingJob};
use polca_sim::SimRng;
use polca_stats::CorrelationMatrix;
use polca_telemetry::MonitorInterface;

fn fig03_breakdown(c: &mut Criterion) {
    c.bench_function("fig03_power_breakdown", |b| {
        b.iter(|| {
            let spec = ServerSpec::dgx_a100();
            black_box(spec.provisioned_breakdown());
            black_box(spec.derating_headroom_watts())
        })
    });
}

fn fig04_training_series(c: &mut Criterion) {
    c.bench_function("fig04_training_timeseries", |b| {
        let job = TrainingJob::fine_tuning(&ModelSpec::gpt_neox_20b());
        b.iter(|| {
            let mut gpu = Gpu::new(GpuSpec::a100_80gb());
            black_box(job.power_series(&mut gpu, 2, 0.01))
        })
    });
}

fn fig05_training_capping(c: &mut Criterion) {
    c.bench_function("fig05_training_capping", |b| {
        let job = TrainingJob::fine_tuning(&ModelSpec::flan_t5_xxl());
        b.iter(|| {
            let mut gpu = Gpu::new(GpuSpec::a100_80gb());
            gpu.set_power_cap(325.0).unwrap();
            let capped = job.power_series(&mut gpu, 2, 0.01);
            let dvfs = DvfsModel::default();
            black_box((capped.peak(), job.throughput_scale(&dvfs, 0.787)))
        })
    });
}

fn fig06_inference_series(c: &mut Criterion) {
    c.bench_function("fig06_inference_timeseries", |b| {
        let bloom = InferenceModel::new(ModelSpec::bloom_176b(), GpuSpec::a100_80gb()).unwrap();
        let cfg = InferenceConfig::new(2048, 128, 1);
        b.iter(|| {
            let mut gpu = Gpu::new(GpuSpec::a100_80gb());
            black_box(bloom.power_series(&cfg, 3, &mut gpu, 0.1))
        })
    });
}

fn fig07_counter_matrix(c: &mut Criterion) {
    c.bench_function("fig07_counter_correlation", |b| {
        b.iter(|| {
            let mut rng = SimRng::from_seed_stream(7, 7);
            let samples: Vec<CounterSample> = (0..2000)
                .map(|_| CounterSample::sample(PhaseKind::Prompt, 400.0, 400.0, &mut rng))
                .collect();
            let columns: Vec<Vec<f64>> = (0..7)
                .map(|i| samples.iter().map(|s| s.as_vec()[i]).collect())
                .collect();
            let series: Vec<(&str, &[f64])> = CounterSample::NAMES
                .iter()
                .zip(&columns)
                .map(|(n, col)| (*n, col.as_slice()))
                .collect();
            black_box(CorrelationMatrix::from_series(&series))
        })
    });
}

fn fig08_profile_sweep(c: &mut Criterion) {
    c.bench_function("fig08_config_sensitivity", |b| {
        let deployments: Vec<InferenceModel> = ModelSpec::inference_lineup()
            .into_iter()
            .map(|m| InferenceModel::new(m, GpuSpec::a100_80gb()).unwrap())
            .collect();
        b.iter(|| {
            let mut acc = 0.0;
            for d in &deployments {
                for input in [256u32, 512, 1024, 2048, 4096, 8192] {
                    let p = d.profile(&InferenceConfig::new(input, 128, 1));
                    acc += p.peak_intensity() + p.total_time_s();
                }
                for batch in [1u32, 2, 4, 8, 16] {
                    acc += d
                        .profile(&InferenceConfig::new(1024, 128, batch))
                        .mean_intensity();
                }
            }
            black_box(acc)
        })
    });
}

fn fig09_capped_inference(c: &mut Criterion) {
    c.bench_function("fig09_bloom_capping", |b| {
        let bloom = InferenceModel::new(ModelSpec::bloom_176b(), GpuSpec::a100_80gb()).unwrap();
        let cfg = InferenceConfig::new(8192, 128, 1);
        b.iter(|| {
            let mut gpu = Gpu::new(GpuSpec::a100_80gb());
            gpu.set_power_cap(325.0).unwrap();
            black_box(bloom.power_series(&cfg, 1, &mut gpu, 0.05))
        })
    });
}

fn fig10_frequency_sweep(c: &mut Criterion) {
    c.bench_function("fig10_freq_sensitivity", |b| {
        let bloom = InferenceModel::new(ModelSpec::bloom_176b(), GpuSpec::a100_80gb()).unwrap();
        let dvfs = DvfsModel::default();
        let profile = bloom.profile(&InferenceConfig::new(2048, 256, 1));
        b.iter(|| {
            let mut acc = 0.0;
            for mhz in [1110.0f64, 1160.0, 1210.0, 1260.0, 1310.0, 1360.0, 1410.0] {
                acc += profile.total_time_at_clock(&dvfs, mhz / 1410.0);
                acc += dvfs.power_scale(mhz / 1410.0);
            }
            black_box(acc)
        })
    });
}

fn fig11_server_peaks(c: &mut Criterion) {
    c.bench_function("fig11_server_peaks", |b| {
        let spec = ServerSpec::dgx_a100();
        let deployment = InferenceModel::new(ModelSpec::bloom_176b(), spec.gpu.clone()).unwrap();
        b.iter(|| {
            let mut rng = SimRng::from_seed_stream(11, 0);
            let mut acc = 0.0;
            for _ in 0..40 {
                let input = rng.uniform_u64(2048, 8192) as u32;
                let p = deployment.profile(&InferenceConfig::new(input, 256, 1));
                let gpu_watts = (spec.gpu.idle_watts
                    + (spec.gpu.transient_peak_watts - spec.gpu.idle_watts) * p.peak_intensity())
                    * spec.n_gpus as f64;
                acc += spec.server_power_watts(gpu_watts);
            }
            black_box(acc)
        })
    });
}

fn tables_static(c: &mut Criterion) {
    c.bench_function("tab01_tab03_tab05_static", |b| {
        b.iter(|| {
            black_box(MonitorInterface::table1());
            black_box(ModelSpec::all());
            black_box(polca::PolcaPolicy::default())
        })
    });
}

criterion_group!(
    characterization,
    fig03_breakdown,
    fig04_training_series,
    fig05_training_capping,
    fig06_inference_series,
    fig07_counter_matrix,
    fig08_profile_sweep,
    fig09_capped_inference,
    fig10_frequency_sweep,
    fig11_server_peaks,
    tables_static,
);
criterion_main!(characterization);
