//! Criterion benches for the trace-ingestion pipeline: CSV parsing,
//! the statistics pass, calibration, and replay materialization.
//!
//! The corpus is a one-hour synthetic trace exported through the same
//! CSV path users ingest, so the parse bench sees realistic row shapes
//! (full-precision timestamps, four columns, ~5k rows).

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use polca_bench::write_bench_report;
use polca_obs::BenchReport;

use polca_ingest::{
    requests_to_csv, IngestedTrace, ReplayOptions, TraceCalibration, TraceReplay, TraceStats,
};
use polca_sim::{SimRng, SimTime};
use polca_trace::{ArrivalGenerator, DiurnalPattern, TraceConfig, WorkloadClass};

fn corpus() -> String {
    let pattern = DiurnalPattern {
        base_rate: 1.5,
        ..DiurnalPattern::default()
    };
    let horizon_s = 3_600.0;
    let mut rng = SimRng::from_seed_stream(42, 0xBE7C);
    let config = TraceConfig {
        seed: 42,
        horizon: SimTime::from_secs(horizon_s),
        schedule: pattern.schedule(horizon_s, 60.0, &mut rng),
        mix: WorkloadClass::table6(),
    };
    let requests: Vec<_> = ArrivalGenerator::new(&config).collect();
    requests_to_csv(&requests)
}

fn ingest_parse(c: &mut Criterion) {
    let csv = corpus();
    c.bench_function("ingest_parse_1h_trace", |b| {
        b.iter(|| black_box(IngestedTrace::from_reader(csv.as_bytes()).unwrap()))
    });
}

fn ingest_stats(c: &mut Criterion) {
    let csv = corpus();
    let trace = IngestedTrace::from_reader(csv.as_bytes()).unwrap();
    c.bench_function("ingest_stats_pass", |b| {
        b.iter(|| black_box(TraceStats::from_trace(&trace).unwrap()))
    });
}

fn ingest_calibrate(c: &mut Criterion) {
    let csv = corpus();
    let trace = IngestedTrace::from_reader(csv.as_bytes()).unwrap();
    c.bench_function("ingest_calibrate_fit", |b| {
        b.iter(|| black_box(TraceCalibration::fit(&trace).unwrap()))
    });
}

fn ingest_replay(c: &mut Criterion) {
    let csv = corpus();
    let trace = IngestedTrace::from_reader(csv.as_bytes()).unwrap();
    c.bench_function("ingest_replay_materialize", |b| {
        b.iter(|| {
            let replay = TraceReplay::with_options(
                &trace,
                ReplayOptions {
                    rate_scale: 1.3,
                    ..ReplayOptions::default()
                },
            );
            black_box(replay.count())
        })
    });
}

/// Emits the machine-readable `BENCH_ingest.json` report (best-of-3
/// wall times per stage over the shared corpus).
fn ingest_report(_c: &mut Criterion) {
    let csv = corpus();
    let rows = csv.lines().count().saturating_sub(1);
    let (mut parse_s, mut stats_s, mut calibrate_s, mut replay_s) =
        (f64::MAX, f64::MAX, f64::MAX, f64::MAX);
    for _ in 0..3 {
        let start = Instant::now();
        let trace = IngestedTrace::from_reader(csv.as_bytes()).unwrap();
        parse_s = parse_s.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        let stats = black_box(TraceStats::from_trace(&trace).unwrap());
        stats_s = stats_s.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        let _ = black_box(TraceCalibration::fit_with_stats(&trace, &stats).unwrap());
        calibrate_s = calibrate_s.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        let replay = TraceReplay::with_options(
            &trace,
            ReplayOptions {
                rate_scale: 1.3,
                ..ReplayOptions::default()
            },
        );
        let _ = black_box(replay.count());
        replay_s = replay_s.min(start.elapsed().as_secs_f64());
    }
    write_bench_report(
        &BenchReport::new("ingest")
            .metric("rows_per_s", rows as f64 / parse_s)
            .metric("parse_s", parse_s)
            .metric("stats_s", stats_s)
            .metric("calibrate_s", calibrate_s)
            .metric("replay_s", replay_s)
            .metric_u64("rows", rows as u64),
    );
}

criterion_group!(
    benches,
    ingest_parse,
    ingest_stats,
    ingest_calibrate,
    ingest_replay,
    ingest_report
);
criterion_main!(benches);
