//! Criterion bench for the energy-ledger attach cost (ISSUE 10: the
//! hierarchical energy/carbon accounting plane must stay under 5 %
//! overhead on `sim_throughput`-style runs).
//!
//! Two pairs of arms, each comparing a metrics-level run against the
//! same run with an [`EnergyPlan`] attached (trapezoidal integration on
//! every telemetry window, busy-energy cache maintenance on every
//! event, ledger assembly and JSON/CSV/Prometheus rendering at the
//! end):
//!
//! * `study_*` — the representative workload: the quick-demo
//!   oversubscription study under the POLCA policy, i.e. exactly what
//!   `polca-cli evaluate --carbon-diurnal` runs. This is the pair the
//!   <5 % target is judged on.
//! * `kernel_*` — a worst-case microkernel: a dense half hour on a
//!   4-server row with a no-op controller, where the simulator itself
//!   does almost no work per event and the fixed per-window ledger
//!   cost is maximally visible.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use polca::{OversubscriptionStudy, PolcaPolicy, PolicyKind};
use polca_bench::write_bench_report;
use polca_cluster::{ClusterSim, NoopController, RowConfig, SimConfig};
use polca_obs::{BenchReport, CarbonSignal, EnergyPlan, ObsLevel, Recorder};
use polca_sim::SimTime;
use polca_trace::{ArrivalGenerator, TraceConfig};

/// A fresh recorder, with the diurnal-default energy plan attached when
/// `energy` is set.
fn recorder(energy: bool) -> Recorder {
    let rec = Recorder::new(ObsLevel::Metrics);
    if energy {
        rec.with_energy(EnergyPlan::new(CarbonSignal::diurnal_default()))
    } else {
        rec
    }
}

/// Renders every ledger artifact so the bench covers the full
/// attach-to-export cost, and returns the rendered size.
fn drain(rec: &Recorder) -> usize {
    let ledger = rec.artifacts().energy_ledger();
    ledger.to_json().len() + ledger.series_csv().len() + ledger.prometheus().len()
}

/// One timed iteration over a pre-built study: attach a fresh recorder
/// (with or without the energy plan), run the policy, render the
/// ledger. Workload synthesis stays outside the measurement.
fn study_iter(study: &mut OversubscriptionStudy, energy: bool) -> (f64, usize) {
    let rec = recorder(energy);
    study.set_recorder(rec.clone());
    let outcome = study.run(PolicyKind::Polca, 0.30, 1.0);
    (outcome.peak_utilization, drain(&rec))
}

/// The paper inference row (40 DGX-A100 servers) over a couple of
/// simulated hours — the row `polca-cli evaluate --carbon-diurnal`
/// runs on.
fn paper_study() -> OversubscriptionStudy {
    let mut study = OversubscriptionStudy::new(
        RowConfig::paper_inference_row(),
        PolcaPolicy::default(),
        0.1,
        7,
    );
    // Materialize the cached reference run outside the measurement.
    let _ = study.run(PolicyKind::Polca, 0.30, 1.0);
    study
}

fn kernel_run(energy: bool) -> (u64, usize) {
    let mut row = RowConfig::paper_inference_row();
    row.base_servers = 4;
    let rec = recorder(energy);
    let config = SimConfig {
        recorder: rec.clone(),
        ..SimConfig::default()
    };
    let trace = TraceConfig::paper_mix(5, SimTime::from_mins(30.0)).scaled(0.12);
    let report = ClusterSim::new(row, config, NoopController)
        .run(ArrivalGenerator::new(&trace), SimTime::from_mins(30.0));
    (report.completed, drain(&rec))
}

fn energy_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("energy");
    group.sample_size(30);
    group.bench_function("study_obs_metrics_baseline", |b| {
        let mut study = paper_study();
        b.iter(|| black_box(study_iter(&mut study, false)))
    });
    group.bench_function("study_obs_metrics_plus_energy", |b| {
        let mut study = paper_study();
        b.iter(|| black_box(study_iter(&mut study, true)))
    });
    group.bench_function("kernel_obs_metrics_baseline", |b| {
        b.iter(|| black_box(kernel_run(false)))
    });
    group.bench_function("kernel_obs_metrics_plus_energy", |b| {
        b.iter(|| black_box(kernel_run(true)))
    });
    group.finish();

    // Machine-readable report: best-of-3 wall times on the study pair.
    let mut study = paper_study();
    let (mut base_s, mut energy_s) = (f64::MAX, f64::MAX);
    for _ in 0..3 {
        let start = Instant::now();
        let _ = black_box(study_iter(&mut study, false));
        base_s = base_s.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        let _ = black_box(study_iter(&mut study, true));
        energy_s = energy_s.min(start.elapsed().as_secs_f64());
    }
    write_bench_report(
        &BenchReport::new("energy")
            .metric("energy_runs_per_s", 1.0 / energy_s.max(1e-9))
            .metric("wall_s_baseline", base_s)
            .metric("wall_s_energy", energy_s)
            .metric("overhead_pct", (energy_s - base_s) / base_s * 100.0),
    );
}

criterion_group!(energy, energy_overhead);
criterion_main!(energy);
