//! `fleet_throughput`: wall-clock throughput of the multi-datacenter
//! site simulator, sequential vs parallel row stepping.
//!
//! The workload is the `BENCH_fleet.json` shape: a 100-row site
//! (25 datacenters × 4 rows behind 2-row PDUs) of small rows over a
//! short horizon. The offline criterion stand-in has no `Throughput`
//! API, so the bench prints its own rate lines:
//!
//! * `site_100rows` — simulated-seconds/sec and events/sec at
//!   `threads = 1`,
//! * the `threads = max` pass and the parallel speedup (≈1.0 on a
//!   single-core runner — the determinism contract guarantees the
//!   artifacts match either way, so the speedup is pure upside).

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use polca_bench::write_bench_report;
use polca_cluster::{NoopController, Request, RowConfig, SiteConfig, SiteReport, SiteSim};
use polca_obs::BenchReport;
use polca_sim::SimTime;
use polca_trace::{ArrivalGenerator, TraceConfig};

const DATACENTERS: usize = 25;
const ROWS_PER_DC: usize = 4;
const HORIZON_S: f64 = 864.0;

/// The arrival stream, materialized once: synthesis is not what this
/// bench measures.
fn bench_arrivals() -> Vec<Request> {
    let config = TraceConfig::paper_mix(5, SimTime::from_secs(HORIZON_S)).scaled(2.0);
    ArrivalGenerator::new(&config).collect()
}

/// One site run at `threads` workers.
fn run_site(requests: &[Request], threads: usize) -> SiteReport {
    let mut row = RowConfig::paper_inference_row();
    row.base_servers = 4;
    let site = SiteConfig {
        datacenters: DATACENTERS,
        rows_per_datacenter: ROWS_PER_DC,
        rows_per_pdu: 2,
        threads,
        ..SiteConfig::default()
    };
    SiteSim::new(
        row,
        site,
        |_, _| NoopController,
        requests.iter().copied(),
        SimTime::from_secs(HORIZON_S),
    )
    .run()
}

fn fleet_throughput(c: &mut Criterion) {
    let requests = bench_arrivals();
    let threads_max = std::thread::available_parallelism().map_or(1, usize::from);

    let start = Instant::now();
    let report = run_site(&requests, 1);
    let seq = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let par_report = run_site(&requests, threads_max);
    let par = start.elapsed().as_secs_f64();
    assert_eq!(report.completed(), par_report.completed());
    println!(
        "throughput site_100rows          {:>12.0} simulated-seconds/sec  {:>12.0} events/sec  \
         ({} events over {HORIZON_S:.0} simulated s in {seq:.3} s)",
        HORIZON_S / seq,
        report.events_processed() as f64 / seq,
        report.events_processed(),
    );
    println!(
        "throughput site_100rows threads=1 {seq:.3} s  threads={threads_max} {par:.3} s  \
         speedup {:.2}x",
        seq / par,
    );
    write_bench_report(
        &BenchReport::new("fleet")
            .metric("fleet_sim_s_per_s", HORIZON_S / seq.min(par))
            .metric("fleet_parallel_speedup", seq / par)
            .metric("wall_s_threads_1", seq)
            .metric("wall_s_threads_max", par)
            .metric_u64("threads_max", threads_max as u64)
            .metric_u64("datacenters", DATACENTERS as u64)
            .metric_u64("rows_per_datacenter", ROWS_PER_DC as u64),
    );

    let mut group = c.benchmark_group("fleet_throughput");
    group.sample_size(10);
    group.bench_function("site_100rows_threads1", |b| {
        b.iter(|| black_box(run_site(&requests, 1).completed()))
    });
    if threads_max > 1 {
        group.bench_function("site_100rows_threads_max", |b| {
            b.iter(|| black_box(run_site(&requests, threads_max).completed()))
        });
    }
    group.finish();
}

criterion_group!(fleet_throughput_group, fleet_throughput);
criterion_main!(fleet_throughput_group);
