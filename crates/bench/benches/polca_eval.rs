//! Criterion benches for the POLCA evaluation pipeline (Figures 13–18,
//! Table 6): trace replication, the controller hot path, and scaled-down
//! policy runs.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use polca::{NoCapController, OversubscriptionStudy, PolcaController, PolcaPolicy, PolicyKind};
use polca_cluster::{PowerController, RowConfig, RowContext};
use polca_sim::SimTime;
use polca_trace::replicate::{production_reference, ProductionReplicator};
use polca_trace::WorkloadClass;

fn quick_study(seed: u64) -> OversubscriptionStudy {
    let mut row = RowConfig::paper_inference_row();
    row.base_servers = 10;
    let mut study = OversubscriptionStudy::new(row, PolcaPolicy::default(), 0.05, seed);
    study.set_record_power(false);
    study
}

fn controller_tick(c: &mut Criterion) {
    c.bench_function("polca_controller_tick", |b| {
        let mut controller = PolcaController::new(PolcaPolicy::default());
        let ctx = RowContext {
            provisioned_watts: 229_000.0,
            n_servers: 52,
        };
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            let util = 0.7 + 0.25 * ((k as f64) * 0.01).sin();
            black_box(controller.on_telemetry(
                SimTime::from_secs(k as f64 * 2.0),
                Some(util * ctx.provisioned_watts),
                &ctx,
            ))
        })
    });
}

fn trace_inversion(c: &mut Criterion) {
    c.bench_function("trace_replication_inversion", |b| {
        let row = RowConfig::paper_inference_row();
        let profile = production_reference(&row, 1.0, 60.0, 3);
        let replicator = ProductionReplicator::new(&row, &WorkloadClass::table6());
        b.iter(|| black_box(replicator.schedule_from_profile(&profile)))
    });
}

fn fig13_policy_point(c: &mut Criterion) {
    let mut group = c.benchmark_group("polca_runs");
    group.sample_size(10);
    group.bench_function("fig13_fig14_fig15_polca_point", |b| {
        b.iter(|| {
            let mut study = quick_study(3);
            black_box(study.run(PolicyKind::Polca, 0.30, 1.0).brake_engagements)
        })
    });
    group.bench_function("fig16_power_series_run", |b| {
        b.iter(|| {
            let mut row = RowConfig::paper_inference_row();
            row.base_servers = 10;
            let mut study = OversubscriptionStudy::new(row, PolcaPolicy::default(), 0.05, 5);
            black_box(study.run(PolicyKind::Polca, 0.30, 1.0).row_power.len())
        })
    });
    group.bench_function("fig17_fig18_policy_comparison", |b| {
        b.iter(|| {
            let mut study = quick_study(7);
            let polca = study.run(PolicyKind::Polca, 0.30, 1.0);
            let nocap = study.run(PolicyKind::NoCap, 0.30, 1.0);
            black_box((polca.brake_engagements, nocap.brake_engagements))
        })
    });
    group.bench_function("tab06_slo_evaluation", |b| {
        b.iter(|| {
            let mut study = quick_study(9);
            let o = study.run(PolicyKind::Polca, 0.30, 1.0);
            black_box(o.slo.met)
        })
    });
    group.finish();
}

fn nocap_controller_tick(c: &mut Criterion) {
    c.bench_function("nocap_controller_tick", |b| {
        let mut controller = NoCapController::new(PolcaPolicy::default());
        let ctx = RowContext {
            provisioned_watts: 229_000.0,
            n_servers: 52,
        };
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            black_box(controller.on_telemetry(
                SimTime::from_secs(k as f64 * 2.0),
                Some(0.8 * ctx.provisioned_watts),
                &ctx,
            ))
        })
    });
}

criterion_group!(
    polca_eval,
    controller_tick,
    nocap_controller_tick,
    trace_inversion,
    fig13_policy_point,
);
criterion_main!(polca_eval);
