//! Criterion bench for the watch-plane attach cost (ISSUE 3: the
//! online alerting plane must stay well under 5 % overhead on top of a
//! fully-instrumented run).
//!
//! Two pairs of arms, each comparing `ObsLevel::Full` alone against
//! `ObsLevel::Full` plus an attached [`WatchPlane`] (default rules,
//! both feeds, artifacts rendered):
//!
//! * `study_*` — the representative workload: the quick-demo
//!   oversubscription study under the POLCA policy, i.e. exactly what
//!   `polca-cli evaluate --watch --obs-out` runs. This is the pair the
//!   <5 % target is judged on.
//! * `kernel_*` — a worst-case microkernel: a dense half hour on a
//!   4-server row with a no-op controller, where the simulator itself
//!   does almost no work per event and the fixed per-tick watch cost is
//!   maximally visible.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use polca::{OversubscriptionStudy, PolcaPolicy, PolicyKind};
use polca_bench::write_bench_report;
use polca_cluster::{ClusterSim, NoopController, RowConfig, SimConfig};
use polca_obs::BenchReport;
use polca_obs::{ObsLevel, Recorder};
use polca_sim::SimTime;
use polca_telemetry::RowPowerTaps;
use polca_trace::{ArrivalGenerator, TraceConfig};
use polca_watch::{WatchConfig, WatchPlane};

/// Finalizes the plane and returns the rendered artifact size, so the
/// bench includes the full attach-to-report cost.
fn drain(plane: WatchPlane, t_end: SimTime) -> usize {
    let artifacts = plane.finalize(t_end);
    artifacts.incidents_jsonl().len() + artifacts.report_md().len()
}

/// One timed iteration over a pre-built study: attach a fresh recorder
/// (and optionally a fresh watch plane), run the policy, drain
/// artifacts. Workload synthesis stays outside the measurement.
fn study_iter(study: &mut OversubscriptionStudy, watch: bool) -> (f64, usize) {
    let recorder = Recorder::new(ObsLevel::Full);
    study.set_recorder(recorder.clone());
    let plane = if watch {
        let plane = WatchPlane::new(WatchConfig::new(study.row().provisioned_watts()));
        let mut taps = RowPowerTaps::new();
        plane.attach(&mut taps, &recorder);
        study.set_oob_taps(taps);
        Some(plane)
    } else {
        study.set_oob_taps(RowPowerTaps::new());
        None
    };
    let days = study.days();
    let outcome = study.run(PolicyKind::Polca, 0.30, 1.0);
    recorder.clear_tap();
    let rendered = plane.map_or(0, |p| drain(p, SimTime::from_days(days)));
    (outcome.peak_utilization, rendered)
}

/// The paper inference row (40 DGX-A100 servers) over a couple of
/// simulated hours — the row `polca-cli evaluate --watch` runs on.
fn paper_study() -> OversubscriptionStudy {
    let mut study = OversubscriptionStudy::new(
        RowConfig::paper_inference_row(),
        PolcaPolicy::default(),
        0.1,
        7,
    );
    // Materialize the cached reference run outside the measurement.
    let _ = study.run(PolicyKind::Polca, 0.30, 1.0);
    study
}

fn kernel_run(watch: bool) -> (u64, usize) {
    let mut row = RowConfig::paper_inference_row();
    row.base_servers = 4;
    let recorder = Recorder::new(ObsLevel::Full);
    let mut config = SimConfig {
        recorder: recorder.clone(),
        ..SimConfig::default()
    };
    let plane = if watch {
        let plane = WatchPlane::new(WatchConfig::new(row.provisioned_watts()));
        plane.attach(&mut config.oob_taps, &recorder);
        Some(plane)
    } else {
        None
    };
    let trace = TraceConfig::paper_mix(5, SimTime::from_mins(30.0)).scaled(0.12);
    let report = ClusterSim::new(row, config, NoopController)
        .run(ArrivalGenerator::new(&trace), SimTime::from_mins(30.0));
    recorder.clear_tap();
    let rendered = plane.map_or(0, |p| drain(p, SimTime::from_mins(30.0)));
    (report.completed, rendered)
}

fn watch_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("watch");
    group.sample_size(30);
    group.bench_function("study_obs_full_baseline", |b| {
        let mut study = paper_study();
        b.iter(|| black_box(study_iter(&mut study, false)))
    });
    group.bench_function("study_obs_full_plus_watch", |b| {
        let mut study = paper_study();
        b.iter(|| black_box(study_iter(&mut study, true)))
    });
    group.bench_function("kernel_obs_full_baseline", |b| {
        b.iter(|| black_box(kernel_run(false)))
    });
    group.bench_function("kernel_obs_full_plus_watch", |b| {
        b.iter(|| black_box(kernel_run(true)))
    });
    group.finish();

    // Machine-readable report: best-of-3 wall times on the study pair.
    let mut study = paper_study();
    let (mut base_s, mut watch_s) = (f64::MAX, f64::MAX);
    for _ in 0..3 {
        let start = Instant::now();
        let _ = black_box(study_iter(&mut study, false));
        base_s = base_s.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        let _ = black_box(study_iter(&mut study, true));
        watch_s = watch_s.min(start.elapsed().as_secs_f64());
    }
    write_bench_report(
        &BenchReport::new("watch")
            .metric("watch_runs_per_s", 1.0 / watch_s.max(1e-9))
            .metric("wall_s_baseline", base_s)
            .metric("wall_s_watch", watch_s)
            .metric("overhead_pct", (watch_s - base_s) / base_s * 100.0),
    );
}

criterion_group!(watch, watch_overhead);
criterion_main!(watch);
