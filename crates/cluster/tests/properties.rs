//! Property-based tests for the cluster substrate.

use proptest::prelude::*;

use polca_cluster::{
    ClusterSim, NoopController, Priority, Request, RowConfig, ServerSpec, SimConfig,
};
use polca_llm::InferenceModel;
use polca_sim::SimTime;
use polca_telemetry::ControlAction;

fn requests(max: usize) -> impl Strategy<Value = Vec<(f64, u32, u32, bool)>> {
    prop::collection::vec(
        (0.0..500.0f64, 64u32..4096, 16u32..512, any::<bool>()),
        0..max,
    )
}

fn build(reqs: &[(f64, u32, u32, bool)]) -> Vec<Request> {
    let mut sorted = reqs.to_vec();
    sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
    sorted
        .iter()
        .enumerate()
        .map(|(i, &(t, input, output, high))| {
            Request::new(
                i as u64,
                SimTime::from_secs(t),
                input,
                output,
                if high { Priority::High } else { Priority::Low },
            )
        })
        .collect()
}

fn small_row() -> RowConfig {
    let mut row = RowConfig::paper_inference_row();
    row.base_servers = 4;
    row
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn request_accounting_balances(reqs in requests(40)) {
        let reqs = build(&reqs);
        let n = reqs.len() as u64;
        let report = ClusterSim::new(small_row(), SimConfig::default(), NoopController)
            .run(reqs, SimTime::from_secs(50_000.0));
        prop_assert_eq!(report.offered, n);
        prop_assert_eq!(report.completed + report.rejected, n);
        prop_assert_eq!(
            report.completed_by_priority.0 + report.completed_by_priority.1,
            report.completed
        );
        prop_assert_eq!(
            report.low_latencies_s.len() as u64,
            report.completed_by_priority.0
        );
    }

    #[test]
    fn latencies_are_at_least_service_time(reqs in requests(20)) {
        let reqs = build(&reqs);
        let row = small_row();
        let deployment = InferenceModel::new(row.model.clone(), row.server_spec.gpu.clone()).unwrap();
        let min_service: f64 = reqs
            .iter()
            .map(|r| {
                deployment
                    .profile(&polca_llm::InferenceConfig::new(r.input_tokens, r.output_tokens, 1))
                    .total_time_s()
            })
            .fold(f64::INFINITY, f64::min);
        let report = ClusterSim::new(row, SimConfig::default(), NoopController)
            .run(reqs.clone(), SimTime::from_secs(50_000.0));
        if !reqs.is_empty() && report.completed > 0 {
            for lat in report.low_latencies_s.iter().chain(&report.high_latencies_s) {
                prop_assert!(*lat >= min_service * 0.99, "latency {lat} < min service {min_service}");
            }
        }
    }

    #[test]
    fn power_stays_within_physical_envelope(reqs in requests(30)) {
        let reqs = build(&reqs);
        let row = small_row();
        let ceiling = row.total_servers() as f64 * row.server_spec.peak_power_watts();
        let report = ClusterSim::new(row, SimConfig::default(), NoopController)
            .run(reqs, SimTime::from_secs(50_000.0));
        prop_assert!(report.peak_row_watts <= ceiling + 1e-6);
        prop_assert!(report.mean_row_watts > 0.0);
        prop_assert!(report.mean_row_watts <= report.peak_row_watts + 1e-6);
    }

    #[test]
    fn determinism_under_identical_seeds(reqs in requests(25), seed in 0u64..50) {
        let reqs = build(&reqs);
        let cfg = SimConfig {
            seed,
            ..Default::default()
        };
        let a = ClusterSim::new(small_row(), cfg.clone(), NoopController)
            .run(reqs.clone(), SimTime::from_secs(20_000.0));
        let b = ClusterSim::new(small_row(), cfg, NoopController)
            .run(reqs, SimTime::from_secs(20_000.0));
        prop_assert_eq!(a.completed, b.completed);
        prop_assert_eq!(a.peak_row_watts, b.peak_row_watts);
        prop_assert_eq!(a.low_latencies_s, b.low_latencies_s);
    }

    #[test]
    fn priority_fraction_is_respected(frac in 0.0..=1.0f64, servers in 2usize..40) {
        let row = RowConfig {
            base_servers: servers,
            ..RowConfig::paper_inference_row()
        }
        .with_low_priority_fraction(frac);
        let built = row.build_servers();
        let low = built.iter().filter(|s| s.priority() == Priority::Low).count();
        let expected = (servers as f64 * frac).round() as usize;
        prop_assert_eq!(low, expected);
    }

    #[test]
    fn server_actions_never_break_power_envelope(
        lock in prop::option::of(210.0..1410.0f64),
        brake in any::<bool>(),
    ) {
        let spec = ServerSpec::dgx_a100();
        let row = small_row();
        let mut servers = row.build_servers();
        let s = &mut servers[0];
        if let Some(mhz) = lock {
            s.apply_action(SimTime::ZERO, ControlAction::LockClock { mhz });
        }
        s.apply_action(SimTime::ZERO, ControlAction::PowerBrake { on: brake });
        let p = s.power_watts();
        prop_assert!(p > 0.0);
        prop_assert!(p <= spec.peak_power_watts() + 1e-6);
        if brake {
            prop_assert_eq!(s.effective_clock_mhz(), 288.0);
        }
    }
}
