//! The datacenter power-distribution hierarchy of Figure 2.
//!
//! "A datacenter floor plan is generally built around the power
//! distribution hierarchy... power distribution units (PDUs) power rows
//! of racks. GPU servers are deployed within each rack, and several
//! racks make a row" (§2). POLCA aggregates at the PDU/row breaker, but
//! rack-level views matter for placement and for validating that no
//! single rack exceeds its own breaker.

use std::ops::Range;

use crate::server::InferenceServer;

/// The fleet-level power-distribution topology: rows grouped behind
/// PDUs, PDUs feeding one datacenter bus.
///
/// This is the upper half of Figure 2 — `RackLayout` covers servers →
/// racks inside one row; `PowerHierarchy` covers rows → PDUs →
/// datacenter. The fleet simulator consults it at every aggregation
/// boundary to compute per-PDU and datacenter power, check the
/// corresponding budgets, and (when enforcement is enabled) decide
/// which rows to brake.
///
/// Budgets default to the provisioned power of the members (each PDU's
/// budget is `rows-behind-it × row_provisioned_watts`, the datacenter's
/// is the sum over all rows) and can be overridden to model
/// oversubscription at either level.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerHierarchy {
    n_rows: usize,
    rows_per_pdu: usize,
    row_provisioned_watts: f64,
    pdu_budget_override: Option<f64>,
    datacenter_budget_override: Option<f64>,
}

impl PowerHierarchy {
    /// A hierarchy of `n_rows` rows, `rows_per_pdu` behind each PDU,
    /// with budgets at every level equal to provisioned power.
    ///
    /// # Panics
    ///
    /// Panics if `n_rows` or `rows_per_pdu` is zero.
    pub fn provisioned(n_rows: usize, rows_per_pdu: usize, row_provisioned_watts: f64) -> Self {
        assert!(n_rows > 0, "a fleet needs at least one row");
        assert!(rows_per_pdu > 0, "a PDU must feed at least one row");
        PowerHierarchy {
            n_rows,
            rows_per_pdu,
            row_provisioned_watts,
            pdu_budget_override: None,
            datacenter_budget_override: None,
        }
    }

    /// Overrides every PDU's budget with `watts` (oversubscription at
    /// the PDU breaker).
    pub fn with_pdu_budget(mut self, watts: f64) -> Self {
        self.pdu_budget_override = Some(watts);
        self
    }

    /// Overrides the datacenter-level budget with `watts`.
    pub fn with_datacenter_budget(mut self, watts: f64) -> Self {
        self.datacenter_budget_override = Some(watts);
        self
    }

    /// Number of rows in the fleet.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of PDUs (the last one may feed fewer rows).
    pub fn n_pdus(&self) -> usize {
        self.n_rows.div_ceil(self.rows_per_pdu)
    }

    /// The PDU feeding `row`.
    pub fn pdu_of(&self, row: usize) -> usize {
        row / self.rows_per_pdu
    }

    /// The row indices behind PDU `pdu`.
    pub fn rows_in_pdu(&self, pdu: usize) -> Range<usize> {
        let start = pdu * self.rows_per_pdu;
        start..((start + self.rows_per_pdu).min(self.n_rows))
    }

    /// Budget of PDU `pdu` in watts: the override if set, otherwise the
    /// provisioned power of the rows it actually feeds.
    pub fn pdu_budget_watts(&self, pdu: usize) -> f64 {
        self.pdu_budget_override
            .unwrap_or(self.rows_in_pdu(pdu).len() as f64 * self.row_provisioned_watts)
    }

    /// The datacenter budget in watts: the override if set, otherwise
    /// the provisioned power of every row.
    pub fn datacenter_budget_watts(&self) -> f64 {
        self.datacenter_budget_override
            .unwrap_or(self.n_rows as f64 * self.row_provisioned_watts)
    }

    /// Per-PDU aggregate power for the given per-row powers.
    ///
    /// # Panics
    ///
    /// Panics if `row_watts` does not hold exactly one entry per row.
    pub fn pdu_powers(&self, row_watts: &[f64]) -> Vec<f64> {
        assert_eq!(row_watts.len(), self.n_rows, "one power entry per row");
        let mut powers = vec![0.0; self.n_pdus()];
        for (row, &w) in row_watts.iter().enumerate() {
            powers[self.pdu_of(row)] += w;
        }
        powers
    }

    /// Total datacenter power for the given per-row powers.
    pub fn datacenter_power(&self, row_watts: &[f64]) -> f64 {
        row_watts.iter().sum()
    }

    /// Indices of PDUs whose aggregate power exceeds their budget.
    pub fn overloaded_pdus(&self, row_watts: &[f64]) -> Vec<usize> {
        self.pdu_powers(row_watts)
            .into_iter()
            .enumerate()
            .filter(|&(pdu, p)| p > self.pdu_budget_watts(pdu))
            .map(|(pdu, _)| pdu)
            .collect()
    }
}

/// Physical layout of a row: servers grouped into racks behind one PDU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RackLayout {
    servers_per_rack: usize,
}

impl RackLayout {
    /// Creates a layout with the given rack capacity.
    ///
    /// # Panics
    ///
    /// Panics if `servers_per_rack` is zero.
    pub fn new(servers_per_rack: usize) -> Self {
        assert!(servers_per_rack > 0, "racks must hold at least one server");
        RackLayout { servers_per_rack }
    }

    /// A typical GPU row: 4 DGX-A100 (6U each) per 48U rack, leaving
    /// space for switches (§6.7: "both GPU servers and racks are power
    /// dense").
    pub fn dgx_row() -> Self {
        Self::new(4)
    }

    /// Servers per rack.
    pub fn servers_per_rack(&self) -> usize {
        self.servers_per_rack
    }

    /// The rack index hosting `server_id`.
    pub fn rack_of(&self, server_id: usize) -> usize {
        server_id / self.servers_per_rack
    }

    /// Number of racks needed for `n_servers`.
    pub fn racks_for(&self, n_servers: usize) -> usize {
        n_servers.div_ceil(self.servers_per_rack)
    }

    /// Instantaneous power per rack, in watts, for the given servers
    /// (indexed by id).
    pub fn rack_powers(&self, servers: &[InferenceServer]) -> Vec<f64> {
        let mut powers = vec![0.0; self.racks_for(servers.len())];
        for server in servers {
            powers[self.rack_of(server.id())] += server.power_watts();
        }
        powers
    }

    /// The rack-level power budget implied by a row budget spread evenly
    /// over the racks serving `n_servers`.
    pub fn rack_budget_watts(&self, row_budget_watts: f64, n_servers: usize) -> f64 {
        row_budget_watts / self.racks_for(n_servers) as f64
    }

    /// Whether any rack exceeds its budget for the given servers.
    pub fn overloaded_racks(
        &self,
        servers: &[InferenceServer],
        row_budget_watts: f64,
    ) -> Vec<usize> {
        let budget = self.rack_budget_watts(row_budget_watts, servers.len());
        self.rack_powers(servers)
            .into_iter()
            .enumerate()
            .filter(|(_, p)| *p > budget)
            .map(|(i, _)| i)
            .collect()
    }
}

impl Default for RackLayout {
    fn default() -> Self {
        Self::dgx_row()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::RowConfig;

    fn servers(n: usize) -> Vec<InferenceServer> {
        let mut row = RowConfig::paper_inference_row();
        row.base_servers = n;
        row.build_servers()
    }

    #[test]
    fn hierarchy_groups_rows_behind_pdus() {
        let h = PowerHierarchy::provisioned(5, 2, 1000.0);
        assert_eq!(h.n_rows(), 5);
        assert_eq!(h.n_pdus(), 3);
        assert_eq!(h.pdu_of(0), 0);
        assert_eq!(h.pdu_of(3), 1);
        assert_eq!(h.pdu_of(4), 2);
        assert_eq!(h.rows_in_pdu(0), 0..2);
        assert_eq!(h.rows_in_pdu(2), 4..5); // partial PDU
        assert_eq!(h.pdu_budget_watts(0), 2000.0);
        assert_eq!(h.pdu_budget_watts(2), 1000.0);
        assert_eq!(h.datacenter_budget_watts(), 5000.0);
    }

    #[test]
    fn hierarchy_aggregates_and_flags_overloads() {
        let h = PowerHierarchy::provisioned(4, 2, 1000.0).with_pdu_budget(1500.0);
        let watts = [900.0, 700.0, 400.0, 300.0];
        assert_eq!(h.pdu_powers(&watts), vec![1600.0, 700.0]);
        assert_eq!(h.datacenter_power(&watts), 2300.0);
        assert_eq!(h.overloaded_pdus(&watts), vec![0]);
        let capped = h.with_datacenter_budget(2000.0);
        assert!(capped.datacenter_power(&watts) > capped.datacenter_budget_watts());
    }

    #[test]
    #[should_panic(expected = "one power entry per row")]
    fn hierarchy_rejects_mismatched_row_powers() {
        PowerHierarchy::provisioned(3, 1, 1000.0).pdu_powers(&[1.0, 2.0]);
    }

    #[test]
    fn dgx_row_packs_four_per_rack() {
        let layout = RackLayout::dgx_row();
        assert_eq!(layout.servers_per_rack(), 4);
        assert_eq!(layout.rack_of(0), 0);
        assert_eq!(layout.rack_of(3), 0);
        assert_eq!(layout.rack_of(4), 1);
        assert_eq!(layout.racks_for(40), 10);
        assert_eq!(layout.racks_for(41), 11);
    }

    #[test]
    fn rack_powers_sum_to_row_power() {
        let servers = servers(10);
        let layout = RackLayout::dgx_row();
        let total: f64 = layout.rack_powers(&servers).iter().sum();
        let direct: f64 = servers.iter().map(InferenceServer::power_watts).sum();
        assert!((total - direct).abs() < 1e-6);
        assert_eq!(layout.rack_powers(&servers).len(), 3);
    }

    #[test]
    fn idle_row_has_no_overloaded_racks() {
        let servers = servers(8);
        let layout = RackLayout::dgx_row();
        let row_budget = 8.0 * 5450.0 * 1.05;
        assert!(layout.overloaded_racks(&servers, row_budget).is_empty());
    }

    #[test]
    fn tiny_budget_flags_every_rack() {
        let servers = servers(8);
        let layout = RackLayout::dgx_row();
        let overloaded = layout.overloaded_racks(&servers, 1000.0);
        assert_eq!(overloaded, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_capacity_rejected() {
        let _ = RackLayout::new(0);
    }
}
