//! The datacenter power-distribution hierarchy of Figure 2.
//!
//! "A datacenter floor plan is generally built around the power
//! distribution hierarchy... power distribution units (PDUs) power rows
//! of racks. GPU servers are deployed within each rack, and several
//! racks make a row" (§2). POLCA aggregates at the PDU/row breaker, but
//! rack-level views matter for placement and for validating that no
//! single rack exceeds its own breaker.

use crate::server::InferenceServer;

/// Physical layout of a row: servers grouped into racks behind one PDU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RackLayout {
    servers_per_rack: usize,
}

impl RackLayout {
    /// Creates a layout with the given rack capacity.
    ///
    /// # Panics
    ///
    /// Panics if `servers_per_rack` is zero.
    pub fn new(servers_per_rack: usize) -> Self {
        assert!(servers_per_rack > 0, "racks must hold at least one server");
        RackLayout { servers_per_rack }
    }

    /// A typical GPU row: 4 DGX-A100 (6U each) per 48U rack, leaving
    /// space for switches (§6.7: "both GPU servers and racks are power
    /// dense").
    pub fn dgx_row() -> Self {
        Self::new(4)
    }

    /// Servers per rack.
    pub fn servers_per_rack(&self) -> usize {
        self.servers_per_rack
    }

    /// The rack index hosting `server_id`.
    pub fn rack_of(&self, server_id: usize) -> usize {
        server_id / self.servers_per_rack
    }

    /// Number of racks needed for `n_servers`.
    pub fn racks_for(&self, n_servers: usize) -> usize {
        n_servers.div_ceil(self.servers_per_rack)
    }

    /// Instantaneous power per rack, in watts, for the given servers
    /// (indexed by id).
    pub fn rack_powers(&self, servers: &[InferenceServer]) -> Vec<f64> {
        let mut powers = vec![0.0; self.racks_for(servers.len())];
        for server in servers {
            powers[self.rack_of(server.id())] += server.power_watts();
        }
        powers
    }

    /// The rack-level power budget implied by a row budget spread evenly
    /// over the racks serving `n_servers`.
    pub fn rack_budget_watts(&self, row_budget_watts: f64, n_servers: usize) -> f64 {
        row_budget_watts / self.racks_for(n_servers) as f64
    }

    /// Whether any rack exceeds its budget for the given servers.
    pub fn overloaded_racks(
        &self,
        servers: &[InferenceServer],
        row_budget_watts: f64,
    ) -> Vec<usize> {
        let budget = self.rack_budget_watts(row_budget_watts, servers.len());
        self.rack_powers(servers)
            .into_iter()
            .enumerate()
            .filter(|(_, p)| *p > budget)
            .map(|(i, _)| i)
            .collect()
    }
}

impl Default for RackLayout {
    fn default() -> Self {
        Self::dgx_row()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::RowConfig;

    fn servers(n: usize) -> Vec<InferenceServer> {
        let mut row = RowConfig::paper_inference_row();
        row.base_servers = n;
        row.build_servers()
    }

    #[test]
    fn dgx_row_packs_four_per_rack() {
        let layout = RackLayout::dgx_row();
        assert_eq!(layout.servers_per_rack(), 4);
        assert_eq!(layout.rack_of(0), 0);
        assert_eq!(layout.rack_of(3), 0);
        assert_eq!(layout.rack_of(4), 1);
        assert_eq!(layout.racks_for(40), 10);
        assert_eq!(layout.racks_for(41), 11);
    }

    #[test]
    fn rack_powers_sum_to_row_power() {
        let servers = servers(10);
        let layout = RackLayout::dgx_row();
        let total: f64 = layout.rack_powers(&servers).iter().sum();
        let direct: f64 = servers.iter().map(InferenceServer::power_watts).sum();
        assert!((total - direct).abs() < 1e-6);
        assert_eq!(layout.rack_powers(&servers).len(), 3);
    }

    #[test]
    fn idle_row_has_no_overloaded_racks() {
        let servers = servers(8);
        let layout = RackLayout::dgx_row();
        let row_budget = 8.0 * 5450.0 * 1.05;
        assert!(layout.overloaded_racks(&servers, row_budget).is_empty());
    }

    #[test]
    fn tiny_budget_flags_every_rack() {
        let servers = servers(8);
        let layout = RackLayout::dgx_row();
        let overloaded = layout.overloaded_racks(&servers, 1000.0);
        assert_eq!(overloaded, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_capacity_rejected() {
        let _ = RackLayout::new(0);
    }
}
