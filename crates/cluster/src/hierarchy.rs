//! The datacenter power-distribution hierarchy of Figure 2.
//!
//! "A datacenter floor plan is generally built around the power
//! distribution hierarchy... power distribution units (PDUs) power rows
//! of racks. GPU servers are deployed within each rack, and several
//! racks make a row" (§2). POLCA aggregates at the PDU/row breaker, but
//! rack-level views matter for placement and for validating that no
//! single rack exceeds its own breaker.

use std::ops::Range;

use crate::server::InferenceServer;

/// The fleet-level power-distribution topology: rows grouped behind
/// PDUs, PDUs feeding one datacenter bus.
///
/// This is the upper half of Figure 2 — `RackLayout` covers servers →
/// racks inside one row; `PowerHierarchy` covers rows → PDUs →
/// datacenter. The fleet simulator consults it at every aggregation
/// boundary to compute per-PDU and datacenter power, check the
/// corresponding budgets, and (when enforcement is enabled) decide
/// which rows to brake.
///
/// Budgets default to the provisioned power of the members (each PDU's
/// budget is `rows-behind-it × row_provisioned_watts`, the datacenter's
/// is the sum over all rows) and can be tightened per level in two
/// ways: an absolute override in watts, or an oversubscription
/// *fraction* `f` that derives the budget as `provisioned / (1 + f)` —
/// the paper's framing, where deploying `f` more servers under the same
/// breaker is equivalent to shrinking the per-server budget headroom.
/// An absolute override wins over a fraction when both are set.
///
/// A multi-datacenter site adds one more level on top; see
/// [`SiteHierarchy`].
#[derive(Debug, Clone, PartialEq)]
pub struct PowerHierarchy {
    n_rows: usize,
    rows_per_pdu: usize,
    row_provisioned_watts: f64,
    pdu_budget_override: Option<f64>,
    datacenter_budget_override: Option<f64>,
    pdu_oversubscription: Option<f64>,
    datacenter_oversubscription: Option<f64>,
}

impl PowerHierarchy {
    /// A hierarchy of `n_rows` rows, `rows_per_pdu` behind each PDU,
    /// with budgets at every level equal to provisioned power.
    ///
    /// # Panics
    ///
    /// Panics if `n_rows` or `rows_per_pdu` is zero.
    pub fn provisioned(n_rows: usize, rows_per_pdu: usize, row_provisioned_watts: f64) -> Self {
        assert!(n_rows > 0, "a fleet needs at least one row");
        assert!(rows_per_pdu > 0, "a PDU must feed at least one row");
        PowerHierarchy {
            n_rows,
            rows_per_pdu,
            row_provisioned_watts,
            pdu_budget_override: None,
            datacenter_budget_override: None,
            pdu_oversubscription: None,
            datacenter_oversubscription: None,
        }
    }

    /// Overrides every PDU's budget with `watts` (oversubscription at
    /// the PDU breaker).
    pub fn with_pdu_budget(mut self, watts: f64) -> Self {
        self.pdu_budget_override = Some(watts);
        self
    }

    /// Overrides the datacenter-level budget with `watts`.
    pub fn with_datacenter_budget(mut self, watts: f64) -> Self {
        self.datacenter_budget_override = Some(watts);
        self
    }

    /// Oversubscribes every PDU breaker by fraction `f`: budget becomes
    /// `provisioned / (1 + f)`. Ignored when an absolute PDU override
    /// is also set.
    ///
    /// # Panics
    ///
    /// Panics if `f` is negative.
    pub fn with_pdu_oversubscription(mut self, f: f64) -> Self {
        assert!(f >= 0.0, "oversubscription fraction must be non-negative");
        self.pdu_oversubscription = Some(f);
        self
    }

    /// Oversubscribes the datacenter bus by fraction `f`: budget
    /// becomes `provisioned / (1 + f)`. Ignored when an absolute
    /// datacenter override is also set.
    ///
    /// # Panics
    ///
    /// Panics if `f` is negative.
    pub fn with_datacenter_oversubscription(mut self, f: f64) -> Self {
        assert!(f >= 0.0, "oversubscription fraction must be non-negative");
        self.datacenter_oversubscription = Some(f);
        self
    }

    /// Number of rows in the fleet.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Total provisioned power of every row, in watts.
    pub fn provisioned_watts(&self) -> f64 {
        self.n_rows as f64 * self.row_provisioned_watts
    }

    /// Number of PDUs (the last one may feed fewer rows).
    pub fn n_pdus(&self) -> usize {
        self.n_rows.div_ceil(self.rows_per_pdu)
    }

    /// The PDU feeding `row`.
    pub fn pdu_of(&self, row: usize) -> usize {
        row / self.rows_per_pdu
    }

    /// The row indices behind PDU `pdu`.
    pub fn rows_in_pdu(&self, pdu: usize) -> Range<usize> {
        let start = pdu * self.rows_per_pdu;
        start..((start + self.rows_per_pdu).min(self.n_rows))
    }

    /// Budget of PDU `pdu` in watts: the absolute override if set, else
    /// the oversubscription-derived budget, else the provisioned power
    /// of the rows it actually feeds.
    pub fn pdu_budget_watts(&self, pdu: usize) -> f64 {
        let provisioned = self.rows_in_pdu(pdu).len() as f64 * self.row_provisioned_watts;
        self.pdu_budget_override.unwrap_or_else(|| {
            self.pdu_oversubscription
                .map_or(provisioned, |f| provisioned / (1.0 + f))
        })
    }

    /// The datacenter budget in watts: the absolute override if set,
    /// else the oversubscription-derived budget, else the provisioned
    /// power of every row.
    pub fn datacenter_budget_watts(&self) -> f64 {
        let provisioned = self.provisioned_watts();
        self.datacenter_budget_override.unwrap_or_else(|| {
            self.datacenter_oversubscription
                .map_or(provisioned, |f| provisioned / (1.0 + f))
        })
    }

    /// Per-PDU aggregate power for the given per-row powers.
    ///
    /// # Panics
    ///
    /// Panics if `row_watts` does not hold exactly one entry per row.
    pub fn pdu_powers(&self, row_watts: &[f64]) -> Vec<f64> {
        assert_eq!(row_watts.len(), self.n_rows, "one power entry per row");
        let mut powers = vec![0.0; self.n_pdus()];
        for (row, &w) in row_watts.iter().enumerate() {
            powers[self.pdu_of(row)] += w;
        }
        powers
    }

    /// Total datacenter power for the given per-row powers.
    pub fn datacenter_power(&self, row_watts: &[f64]) -> f64 {
        row_watts.iter().sum()
    }

    /// Indices of PDUs whose aggregate power exceeds their budget.
    pub fn overloaded_pdus(&self, row_watts: &[f64]) -> Vec<usize> {
        self.pdu_powers(row_watts)
            .into_iter()
            .enumerate()
            .filter(|&(pdu, p)| p > self.pdu_budget_watts(pdu))
            .map(|(pdu, _)| pdu)
            .collect()
    }
}

/// A multi-datacenter site: `datacenters` identical copies of one
/// [`PowerHierarchy`] fed by a single site bus (a utility substation in
/// the 100 MW-scale deployments of the related provisioning work).
///
/// Rows and PDUs carry *global* indices — datacenter `d` owns rows
/// `d * rows_per_datacenter ..` and PDUs `d * pdus_per_datacenter ..` —
/// so per-row power vectors, event labels, and artifact directories
/// stay flat and a 1-datacenter site degenerates exactly to the
/// underlying hierarchy.
///
/// The site budget follows the same precedence as the lower levels:
/// absolute override, else `provisioned / (1 + oversubscription)`,
/// else provisioned.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteHierarchy {
    datacenters: usize,
    per_dc: PowerHierarchy,
    site_budget_override: Option<f64>,
    site_oversubscription: Option<f64>,
}

impl SiteHierarchy {
    /// A site of `datacenters` identical datacenters, each holding
    /// `rows_per_datacenter` rows grouped `rows_per_pdu` behind each
    /// PDU, with every budget equal to provisioned power.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero.
    pub fn uniform(
        datacenters: usize,
        rows_per_datacenter: usize,
        rows_per_pdu: usize,
        row_provisioned_watts: f64,
    ) -> Self {
        assert!(datacenters > 0, "a site needs at least one datacenter");
        SiteHierarchy {
            datacenters,
            per_dc: PowerHierarchy::provisioned(
                rows_per_datacenter,
                rows_per_pdu,
                row_provisioned_watts,
            ),
            site_budget_override: None,
            site_oversubscription: None,
        }
    }

    /// Overrides every PDU's budget (see
    /// [`PowerHierarchy::with_pdu_budget`]).
    pub fn with_pdu_budget(mut self, watts: f64) -> Self {
        self.per_dc = self.per_dc.with_pdu_budget(watts);
        self
    }

    /// Overrides every datacenter's budget (see
    /// [`PowerHierarchy::with_datacenter_budget`]).
    pub fn with_datacenter_budget(mut self, watts: f64) -> Self {
        self.per_dc = self.per_dc.with_datacenter_budget(watts);
        self
    }

    /// Oversubscribes every PDU breaker by fraction `f` (see
    /// [`PowerHierarchy::with_pdu_oversubscription`]).
    pub fn with_pdu_oversubscription(mut self, f: f64) -> Self {
        self.per_dc = self.per_dc.with_pdu_oversubscription(f);
        self
    }

    /// Oversubscribes every datacenter bus by fraction `f` (see
    /// [`PowerHierarchy::with_datacenter_oversubscription`]).
    pub fn with_datacenter_oversubscription(mut self, f: f64) -> Self {
        self.per_dc = self.per_dc.with_datacenter_oversubscription(f);
        self
    }

    /// Overrides the site-level budget with `watts`.
    pub fn with_site_budget(mut self, watts: f64) -> Self {
        self.site_budget_override = Some(watts);
        self
    }

    /// Oversubscribes the site bus by fraction `f`: the site budget
    /// becomes `provisioned / (1 + f)`. Ignored when an absolute site
    /// override is also set.
    ///
    /// # Panics
    ///
    /// Panics if `f` is negative.
    pub fn with_site_oversubscription(mut self, f: f64) -> Self {
        assert!(f >= 0.0, "oversubscription fraction must be non-negative");
        self.site_oversubscription = Some(f);
        self
    }

    /// Number of datacenters on the site bus.
    pub fn n_datacenters(&self) -> usize {
        self.datacenters
    }

    /// Rows per datacenter.
    pub fn rows_per_datacenter(&self) -> usize {
        self.per_dc.n_rows()
    }

    /// Total rows across the site.
    pub fn n_rows(&self) -> usize {
        self.datacenters * self.per_dc.n_rows()
    }

    /// PDUs per datacenter.
    pub fn pdus_per_datacenter(&self) -> usize {
        self.per_dc.n_pdus()
    }

    /// Total PDUs across the site.
    pub fn n_pdus(&self) -> usize {
        self.datacenters * self.per_dc.n_pdus()
    }

    /// The single-datacenter hierarchy template every datacenter uses.
    pub fn datacenter(&self) -> &PowerHierarchy {
        &self.per_dc
    }

    /// The datacenter owning global row index `row`.
    pub fn datacenter_of(&self, row: usize) -> usize {
        row / self.per_dc.n_rows()
    }

    /// Global row indices inside datacenter `d`.
    pub fn rows_in_datacenter(&self, d: usize) -> Range<usize> {
        let start = d * self.per_dc.n_rows();
        start..start + self.per_dc.n_rows()
    }

    /// The global PDU index feeding global row `row`.
    pub fn pdu_of(&self, row: usize) -> usize {
        let d = self.datacenter_of(row);
        d * self.per_dc.n_pdus() + self.per_dc.pdu_of(row - d * self.per_dc.n_rows())
    }

    /// Global row indices behind global PDU `pdu`.
    pub fn rows_in_pdu(&self, pdu: usize) -> Range<usize> {
        let d = pdu / self.per_dc.n_pdus();
        let local = self.per_dc.rows_in_pdu(pdu % self.per_dc.n_pdus());
        let base = d * self.per_dc.n_rows();
        base + local.start..base + local.end
    }

    /// Budget of global PDU `pdu` in watts.
    pub fn pdu_budget_watts(&self, pdu: usize) -> f64 {
        self.per_dc.pdu_budget_watts(pdu % self.per_dc.n_pdus())
    }

    /// Budget of each datacenter in watts (identical across the site).
    pub fn datacenter_budget_watts(&self) -> f64 {
        self.per_dc.datacenter_budget_watts()
    }

    /// Provisioned power of one datacenter, in watts.
    pub fn datacenter_provisioned_watts(&self) -> f64 {
        self.per_dc.provisioned_watts()
    }

    /// Total provisioned power of the site, in watts.
    pub fn site_provisioned_watts(&self) -> f64 {
        self.datacenters as f64 * self.per_dc.provisioned_watts()
    }

    /// The site budget in watts: the absolute override if set, else the
    /// oversubscription-derived budget, else provisioned power.
    pub fn site_budget_watts(&self) -> f64 {
        let provisioned = self.site_provisioned_watts();
        self.site_budget_override.unwrap_or_else(|| {
            self.site_oversubscription
                .map_or(provisioned, |f| provisioned / (1.0 + f))
        })
    }

    /// Per-PDU aggregate power (global PDU order) for the given per-row
    /// powers.
    ///
    /// # Panics
    ///
    /// Panics if `row_watts` does not hold exactly one entry per row.
    pub fn pdu_powers(&self, row_watts: &[f64]) -> Vec<f64> {
        assert_eq!(row_watts.len(), self.n_rows(), "one power entry per row");
        let mut powers = vec![0.0; self.n_pdus()];
        for (row, &w) in row_watts.iter().enumerate() {
            powers[self.pdu_of(row)] += w;
        }
        powers
    }

    /// Per-datacenter aggregate power for the given per-row powers.
    ///
    /// # Panics
    ///
    /// Panics if `row_watts` does not hold exactly one entry per row.
    pub fn datacenter_powers(&self, row_watts: &[f64]) -> Vec<f64> {
        assert_eq!(row_watts.len(), self.n_rows(), "one power entry per row");
        let mut powers = vec![0.0; self.datacenters];
        for (row, &w) in row_watts.iter().enumerate() {
            powers[self.datacenter_of(row)] += w;
        }
        powers
    }

    /// Total site power for the given per-row powers.
    pub fn site_power(&self, row_watts: &[f64]) -> f64 {
        row_watts.iter().sum()
    }

    /// Indices of datacenters whose aggregate power exceeds the
    /// datacenter budget.
    pub fn overloaded_datacenters(&self, row_watts: &[f64]) -> Vec<usize> {
        let budget = self.datacenter_budget_watts();
        self.datacenter_powers(row_watts)
            .into_iter()
            .enumerate()
            .filter(|&(_, p)| p > budget)
            .map(|(d, _)| d)
            .collect()
    }
}

/// Physical layout of a row: servers grouped into racks behind one PDU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RackLayout {
    servers_per_rack: usize,
}

impl RackLayout {
    /// Creates a layout with the given rack capacity.
    ///
    /// # Panics
    ///
    /// Panics if `servers_per_rack` is zero.
    pub fn new(servers_per_rack: usize) -> Self {
        assert!(servers_per_rack > 0, "racks must hold at least one server");
        RackLayout { servers_per_rack }
    }

    /// A typical GPU row: 4 DGX-A100 (6U each) per 48U rack, leaving
    /// space for switches (§6.7: "both GPU servers and racks are power
    /// dense").
    pub fn dgx_row() -> Self {
        Self::new(4)
    }

    /// Servers per rack.
    pub fn servers_per_rack(&self) -> usize {
        self.servers_per_rack
    }

    /// The rack index hosting `server_id`.
    pub fn rack_of(&self, server_id: usize) -> usize {
        server_id / self.servers_per_rack
    }

    /// Number of racks needed for `n_servers`.
    pub fn racks_for(&self, n_servers: usize) -> usize {
        n_servers.div_ceil(self.servers_per_rack)
    }

    /// Instantaneous power per rack, in watts, for the given servers
    /// (indexed by id).
    pub fn rack_powers(&self, servers: &[InferenceServer]) -> Vec<f64> {
        let mut powers = vec![0.0; self.racks_for(servers.len())];
        for server in servers {
            powers[self.rack_of(server.id())] += server.power_watts();
        }
        powers
    }

    /// The rack-level power budget implied by a row budget spread evenly
    /// over the racks serving `n_servers`.
    pub fn rack_budget_watts(&self, row_budget_watts: f64, n_servers: usize) -> f64 {
        row_budget_watts / self.racks_for(n_servers) as f64
    }

    /// Whether any rack exceeds its budget for the given servers.
    pub fn overloaded_racks(
        &self,
        servers: &[InferenceServer],
        row_budget_watts: f64,
    ) -> Vec<usize> {
        let budget = self.rack_budget_watts(row_budget_watts, servers.len());
        self.rack_powers(servers)
            .into_iter()
            .enumerate()
            .filter(|(_, p)| *p > budget)
            .map(|(i, _)| i)
            .collect()
    }
}

impl Default for RackLayout {
    fn default() -> Self {
        Self::dgx_row()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::RowConfig;

    fn servers(n: usize) -> Vec<InferenceServer> {
        let mut row = RowConfig::paper_inference_row();
        row.base_servers = n;
        row.build_servers()
    }

    #[test]
    fn hierarchy_groups_rows_behind_pdus() {
        let h = PowerHierarchy::provisioned(5, 2, 1000.0);
        assert_eq!(h.n_rows(), 5);
        assert_eq!(h.n_pdus(), 3);
        assert_eq!(h.pdu_of(0), 0);
        assert_eq!(h.pdu_of(3), 1);
        assert_eq!(h.pdu_of(4), 2);
        assert_eq!(h.rows_in_pdu(0), 0..2);
        assert_eq!(h.rows_in_pdu(2), 4..5); // partial PDU
        assert_eq!(h.pdu_budget_watts(0), 2000.0);
        assert_eq!(h.pdu_budget_watts(2), 1000.0);
        assert_eq!(h.datacenter_budget_watts(), 5000.0);
    }

    #[test]
    fn hierarchy_aggregates_and_flags_overloads() {
        let h = PowerHierarchy::provisioned(4, 2, 1000.0).with_pdu_budget(1500.0);
        let watts = [900.0, 700.0, 400.0, 300.0];
        assert_eq!(h.pdu_powers(&watts), vec![1600.0, 700.0]);
        assert_eq!(h.datacenter_power(&watts), 2300.0);
        assert_eq!(h.overloaded_pdus(&watts), vec![0]);
        let capped = h.with_datacenter_budget(2000.0);
        assert!(capped.datacenter_power(&watts) > capped.datacenter_budget_watts());
    }

    #[test]
    #[should_panic(expected = "one power entry per row")]
    fn hierarchy_rejects_mismatched_row_powers() {
        PowerHierarchy::provisioned(3, 1, 1000.0).pdu_powers(&[1.0, 2.0]);
    }

    #[test]
    fn dgx_row_packs_four_per_rack() {
        let layout = RackLayout::dgx_row();
        assert_eq!(layout.servers_per_rack(), 4);
        assert_eq!(layout.rack_of(0), 0);
        assert_eq!(layout.rack_of(3), 0);
        assert_eq!(layout.rack_of(4), 1);
        assert_eq!(layout.racks_for(40), 10);
        assert_eq!(layout.racks_for(41), 11);
    }

    #[test]
    fn rack_powers_sum_to_row_power() {
        let servers = servers(10);
        let layout = RackLayout::dgx_row();
        let total: f64 = layout.rack_powers(&servers).iter().sum();
        let direct: f64 = servers.iter().map(InferenceServer::power_watts).sum();
        assert!((total - direct).abs() < 1e-6);
        assert_eq!(layout.rack_powers(&servers).len(), 3);
    }

    #[test]
    fn idle_row_has_no_overloaded_racks() {
        let servers = servers(8);
        let layout = RackLayout::dgx_row();
        let row_budget = 8.0 * 5450.0 * 1.05;
        assert!(layout.overloaded_racks(&servers, row_budget).is_empty());
    }

    #[test]
    fn tiny_budget_flags_every_rack() {
        let servers = servers(8);
        let layout = RackLayout::dgx_row();
        let overloaded = layout.overloaded_racks(&servers, 1000.0);
        assert_eq!(overloaded, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_capacity_rejected() {
        let _ = RackLayout::new(0);
    }

    #[test]
    fn oversubscription_fraction_derives_budgets() {
        let h = PowerHierarchy::provisioned(4, 2, 1000.0)
            .with_pdu_oversubscription(0.30)
            .with_datacenter_oversubscription(0.25);
        assert!((h.pdu_budget_watts(0) - 2000.0 / 1.30).abs() < 1e-9);
        assert!((h.datacenter_budget_watts() - 4000.0 / 1.25).abs() < 1e-9);
        // An absolute override beats the fraction.
        let h = h.with_pdu_budget(1234.0);
        assert_eq!(h.pdu_budget_watts(1), 1234.0);
    }

    #[test]
    fn site_hierarchy_uses_global_indices() {
        // 3 datacenters × 5 rows (2 per PDU → 3 PDUs each, last partial).
        let s = SiteHierarchy::uniform(3, 5, 2, 1000.0);
        assert_eq!(s.n_rows(), 15);
        assert_eq!(s.n_pdus(), 9);
        assert_eq!(s.datacenter_of(4), 0);
        assert_eq!(s.datacenter_of(5), 1);
        assert_eq!(s.rows_in_datacenter(1), 5..10);
        // Row 7 is local row 2 of datacenter 1 → local PDU 1 → global 4.
        assert_eq!(s.pdu_of(7), 4);
        assert_eq!(s.rows_in_pdu(4), 7..9);
        // Partial PDU of datacenter 2: local PDU 2 → global 8, one row.
        assert_eq!(s.rows_in_pdu(8), 14..15);
        assert_eq!(s.pdu_budget_watts(8), 1000.0);
        assert_eq!(s.datacenter_budget_watts(), 5000.0);
        assert_eq!(s.site_budget_watts(), 15_000.0);
    }

    #[test]
    fn site_levels_aggregate_consistently() {
        // Child sums must equal the parent reading at every level: the
        // invariant the budget-violation proptest leans on.
        let s = SiteHierarchy::uniform(2, 3, 2, 1000.0);
        let watts: Vec<f64> = (0..6).map(|i| 100.0 * (i + 1) as f64).collect();
        let pdus = s.pdu_powers(&watts);
        let dcs = s.datacenter_powers(&watts);
        assert_eq!(pdus, vec![300.0, 300.0, 900.0, 600.0]);
        assert_eq!(dcs, vec![600.0, 1500.0]);
        for (d, dc_watts) in dcs.iter().enumerate() {
            let from_pdus: f64 = (0..s.n_pdus())
                .filter(|&p| p / s.pdus_per_datacenter() == d)
                .map(|p| pdus[p])
                .sum();
            assert!((from_pdus - dc_watts).abs() < 1e-9);
        }
        assert!((s.site_power(&watts) - dcs.iter().sum::<f64>()).abs() < 1e-9);
    }

    #[test]
    fn site_budget_precedence_matches_lower_levels() {
        let s = SiteHierarchy::uniform(4, 2, 2, 1000.0).with_site_oversubscription(0.60);
        assert!((s.site_budget_watts() - 8000.0 / 1.60).abs() < 1e-9);
        let s = s.with_site_budget(6500.0);
        assert_eq!(s.site_budget_watts(), 6500.0);
        let s2 = SiteHierarchy::uniform(2, 2, 2, 1000.0).with_datacenter_oversubscription(1.0);
        assert_eq!(s2.datacenter_budget_watts(), 1000.0);
        assert_eq!(
            s2.overloaded_datacenters(&[600.0, 600.0, 100.0, 100.0]),
            [0]
        );
    }
}
