//! Datacenter power hierarchy and discrete-event LLM cluster simulation.
//!
//! The paper's POLCA evaluation runs on "a discrete event simulator ...
//! built for a high-traffic scenario \[that\] assumes that all the servers
//! are serving inference with models loaded" (§6.4), over the power
//! hierarchy of Figure 2 (servers → racks → PDU-fed rows). This crate
//! implements that substrate:
//!
//! * [`server_spec`] — the DGX-A100 provisioned-power breakdown of
//!   Figure 3 and the server-level power composition law behind
//!   Figure 11 (GPUs ≈ 60 % of server power),
//! * [`request`] — inference requests with the two priority classes of
//!   Table 5/6,
//! * [`server`] — the *legacy* per-server state machine used by the
//!   paper's §6.6 evaluation: one request in service plus a small
//!   buffer, prompt → token phase progression, frequency lock / power
//!   brake effects on in-flight work. The `polca-serve` crate provides
//!   the alternative continuous-batching engine (iteration-level
//!   scheduling, paged KV-cache, prefill/decode pools), selected per
//!   run via [`sim::EngineKind`],
//! * [`row`] — the row of Table 2: 40 DGX-A100 servers behind one PDU,
//! * [`sim`] — the event-driven simulator: arrivals, dispatch, phase
//!   transitions, 2 s row telemetry with propagation delay, OOB command
//!   delivery, and a pluggable [`sim::PowerController`]
//!   (POLCA and its baselines live in the `polca` crate). The run loop
//!   is factored into the resumable [`sim::RowSim`] engine, which
//!   supports `step_until`-style incremental execution and drives
//!   either serving engine,
//! * [`fleet`] — [`fleet::FleetSim`]: N rows stepped in lockstep under
//!   the per-PDU and datacenter budgets of [`hierarchy::PowerHierarchy`]
//!   (a 1-datacenter site since the site refactor),
//! * [`site`] — [`site::SiteSim`]: N datacenters of M rows each under a
//!   [`hierarchy::SiteHierarchy`], stepped in lockstep telemetry
//!   windows by an optional scoped thread pool with a deterministic
//!   canonical-order merge at every boundary,
//! * [`training`] — the synchronized training-cluster power model behind
//!   Table 4's training column.
//!
//! # Examples
//!
//! ```
//! use polca_cluster::{ClusterSim, NoopController, RowConfig, SimConfig};
//!
//! let row = RowConfig::paper_inference_row();
//! let mut sim = ClusterSim::new(row, SimConfig::default(), NoopController);
//! let report = sim.run(std::iter::empty(), polca_sim::SimTime::from_secs(10.0));
//! assert_eq!(report.completed, 0);
//! ```

#![deny(missing_docs)]

pub mod fleet;
pub mod hierarchy;
pub mod request;
pub mod row;
pub mod server;
pub mod server_spec;
pub mod sim;
pub mod site;
pub mod training;

pub use fleet::{row_seed, FleetConfig, FleetReport, FleetSim};
pub use hierarchy::{PowerHierarchy, RackLayout, SiteHierarchy};
pub use request::{CompletedRequest, Priority, Request};
pub use row::RowConfig;
pub use server::{InferenceServer, ServerState, HOT_IDLE_INTENSITY};
pub use server_spec::ServerSpec;
pub use sim::{
    ClusterSim, ControlRequest, ControlTarget, EngineKind, NoopController, PowerController,
    RequestSource, RowContext, RowSim, SimConfig, SimReport,
};
pub use site::{SiteConfig, SiteReport, SiteSim};
pub use training::TrainingCluster;
