//! The discrete-event inference-cluster simulator (§6.4).
//!
//! The simulator drives a row of inference servers through a request
//! trace: arrivals are dispatched to idle servers (or a one-request
//! buffer), requests progress through prompt and token phases, the row
//! manager samples aggregate power every 2 s with a 2 s propagation
//! delay, and a pluggable [`PowerController`] observes the (stale)
//! telemetry and issues control requests that travel the slow OOB plane
//! before landing on devices. Everything is deterministic under a fixed
//! seed, so competing policies can be compared on identical request
//! streams.

use polca_obs::{Event, Label, Recorder};
use polca_sim::{EventQueue, SimTime};
use polca_stats::TimeSeries;
use polca_telemetry::{ControlAction, DelayedSignal, OobControlPlane, RowPowerTaps};

use crate::request::{CompletedRequest, Priority, Request};
use crate::row::RowConfig;
use crate::server::{InferenceServer, PhaseOutcome};

/// Who a control request targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlTarget {
    /// Every server in the row.
    All,
    /// Every server hosting the given priority class.
    Priority(Priority),
    /// One specific server.
    Server(usize),
}

/// A control decision emitted by a [`PowerController`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlRequest {
    /// Which servers to touch.
    pub target: ControlTarget,
    /// What to do to them.
    pub action: ControlAction,
}

/// Read-only facts a controller may use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RowContext {
    /// The row's provisioned power budget in watts.
    pub provisioned_watts: f64,
    /// Servers in the row.
    pub n_servers: usize,
}

/// A time-ordered stream of requests feeding the simulator.
///
/// The simulator is source-agnostic: the synthetic
/// `polca_trace::ArrivalGenerator`, plain request vectors, and
/// `polca-ingest`'s verbatim replay of an externally captured trace all
/// drive [`ClusterSim::run_source`] through this trait. Every iterator
/// of [`Request`]s is a source via the blanket impl, so generators stay
/// lazy and replays can stream from disk.
pub trait RequestSource {
    /// The next request in arrival order, or `None` when the source is
    /// exhausted. Requests must be yielded with non-decreasing
    /// `arrival` timestamps.
    fn next_request(&mut self) -> Option<Request>;
}

impl<I: Iterator<Item = Request>> RequestSource for I {
    fn next_request(&mut self) -> Option<Request> {
        self.next()
    }
}

/// A cluster-level power-management policy.
///
/// The simulator invokes the controller at every row-telemetry tick
/// (2 s) with the *delayed* power observation — `None` until the first
/// reading propagates. POLCA and the baseline policies implement this in
/// the `polca` crate.
pub trait PowerController {
    /// Reacts to a telemetry tick, returning control requests to issue
    /// on the OOB plane.
    fn on_telemetry(
        &mut self,
        now: SimTime,
        observed_row_watts: Option<f64>,
        ctx: &RowContext,
    ) -> Vec<ControlRequest>;
}

impl<P: PowerController + ?Sized> PowerController for Box<P> {
    fn on_telemetry(
        &mut self,
        now: SimTime,
        observed_row_watts: Option<f64>,
        ctx: &RowContext,
    ) -> Vec<ControlRequest> {
        (**self).on_telemetry(now, observed_row_watts, ctx)
    }
}

/// The do-nothing controller (the paper's `No-cap` baseline, §6.6 —
/// "lacks power brake protection").
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopController;

impl PowerController for NoopController {
    fn on_telemetry(
        &mut self,
        _now: SimTime,
        _observed: Option<f64>,
        _ctx: &RowContext,
    ) -> Vec<ControlRequest> {
        Vec::new()
    }
}

/// Simulator knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Experiment seed (shared by the OOB plane's latency draws).
    pub seed: u64,
    /// Row telemetry interval in seconds (Table 1: 2 s).
    pub telemetry_interval_s: f64,
    /// Row telemetry propagation delay in seconds (Table 2: 2 s).
    pub telemetry_delay_s: f64,
    /// OOB capping latency range in seconds (Table 2: up to 40 s).
    pub oob_cap_latency_s: (f64, f64),
    /// OOB brake latency range in seconds (Table 2: ≤ 5 s).
    pub oob_brake_latency_s: (f64, f64),
    /// Probability an OOB capping command silently fails (§3.3).
    pub oob_failure_rate: f64,
    /// Multiplier on all server power (the "+5 %" drift experiment).
    pub power_scale: f64,
    /// Whether to record the row power timeseries (large runs may skip
    /// it to save memory).
    pub record_power_series: bool,
    /// Observability sink for the run (disabled by default; equality on
    /// this field compares the capture *level*, not accumulated data).
    pub recorder: Recorder,
    /// Passive subscribers to the delayed row-power stream (empty by
    /// default; equality compares the subscriber count, not identity).
    /// Subscribers see exactly what the controller sees — the stale
    /// [`DelayedSignal`] read — plus a ground-truth feed reserved for
    /// detection-lag annotation.
    pub oob_taps: RowPowerTaps,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            telemetry_interval_s: 2.0,
            telemetry_delay_s: 2.0,
            oob_cap_latency_s: (20.0, 40.0),
            oob_brake_latency_s: (2.0, 5.0),
            oob_failure_rate: 0.0,
            power_scale: 1.0,
            record_power_series: true,
            recorder: Recorder::disabled(),
            oob_taps: RowPowerTaps::new(),
        }
    }
}

/// Everything a run produces.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Requests offered to the cluster.
    pub offered: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests rejected (no buffer space anywhere).
    pub rejected: u64,
    /// End-to-end latencies (seconds) of completed low-priority requests.
    pub low_latencies_s: Vec<f64>,
    /// End-to-end latencies (seconds) of completed high-priority requests.
    pub high_latencies_s: Vec<f64>,
    /// Completed requests per priority (low, high).
    pub completed_by_priority: (u64, u64),
    /// Offered requests per priority (low, high).
    pub offered_by_priority: (u64, u64),
    /// Rejected requests per priority (low, high).
    pub rejected_by_priority: (u64, u64),
    /// Row power sampled at the telemetry interval (empty when disabled).
    pub row_power: TimeSeries,
    /// Highest instantaneous row power seen, in watts.
    pub peak_row_watts: f64,
    /// Time-weighted mean row power in watts.
    pub mean_row_watts: f64,
    /// Row-wide power-brake engagements the controller triggered.
    pub brake_engagements: u64,
    /// OOB commands issued on the control plane.
    pub commands_issued: u64,
    /// Duration simulated.
    pub duration: SimTime,
}

impl SimReport {
    /// Latency samples for `priority`.
    pub fn latencies(&self, priority: Priority) -> &[f64] {
        match priority {
            Priority::Low => &self.low_latencies_s,
            Priority::High => &self.high_latencies_s,
        }
    }

    /// Completed-request throughput in requests/s for `priority`.
    pub fn throughput(&self, priority: Priority) -> f64 {
        let n = match priority {
            Priority::Low => self.completed_by_priority.0,
            Priority::High => self.completed_by_priority.1,
        };
        if self.duration == SimTime::ZERO {
            0.0
        } else {
            n as f64 / self.duration.as_secs()
        }
    }

    /// Fraction of offered `priority` requests that completed (goodput
    /// ratio); 1.0 when nothing was offered.
    pub fn goodput(&self, priority: Priority) -> f64 {
        let (completed, offered) = match priority {
            Priority::Low => (self.completed_by_priority.0, self.offered_by_priority.0),
            Priority::High => (self.completed_by_priority.1, self.offered_by_priority.1),
        };
        if offered == 0 {
            1.0
        } else {
            completed as f64 / offered as f64
        }
    }

    /// Peak row power as a fraction of `provisioned_watts`.
    pub fn peak_utilization(&self, provisioned_watts: f64) -> f64 {
        self.peak_row_watts / provisioned_watts
    }
}

/// Internal event alphabet.
#[derive(Debug)]
enum Ev {
    Arrival(Request),
    PhaseEnd { server: usize, version: u64 },
    Telemetry,
    ControlDelivery,
}

/// The cluster simulator.
pub struct ClusterSim<P> {
    servers: Vec<InferenceServer>,
    ctx: RowContext,
    config: SimConfig,
    controller: P,
    plane: OobControlPlane,
    row_signal: DelayedSignal,
    queue: EventQueue<Ev>,
    /// Cached Σ server power, maintained incrementally.
    row_power_watts: f64,
    /// Round-robin dispatch cursors per priority (low, high).
    rr_cursor: (usize, usize),
    report: SimReport,
    /// Integral bookkeeping for mean power.
    last_power_change: SimTime,
    power_integral: f64,
    obs: Recorder,
}

impl<P: PowerController> ClusterSim<P> {
    /// Builds a simulator over `row` with the given `controller`.
    pub fn new(row: RowConfig, config: SimConfig, controller: P) -> Self {
        let mut servers = row.build_servers();
        for s in &mut servers {
            s.set_power_scale(config.power_scale);
        }
        let obs = config.recorder.clone();
        let row_power_watts: f64 = servers.iter().map(InferenceServer::power_watts).sum();
        let mut plane = OobControlPlane::new(config.seed)
            .with_cap_latency(config.oob_cap_latency_s.0, config.oob_cap_latency_s.1)
            .with_brake_latency(config.oob_brake_latency_s.0, config.oob_brake_latency_s.1)
            .with_failure_rate(config.oob_failure_rate);
        plane.set_recorder(obs.clone());
        let mut queue = EventQueue::new();
        queue.set_probe(obs.queue_probe());
        let ctx = RowContext {
            provisioned_watts: row.provisioned_watts(),
            n_servers: servers.len(),
        };
        ClusterSim {
            row_signal: DelayedSignal::new(SimTime::from_secs(config.telemetry_delay_s)),
            plane,
            queue,
            report: SimReport {
                offered: 0,
                completed: 0,
                rejected: 0,
                low_latencies_s: Vec::new(),
                high_latencies_s: Vec::new(),
                completed_by_priority: (0, 0),
                offered_by_priority: (0, 0),
                rejected_by_priority: (0, 0),
                row_power: TimeSeries::new(),
                peak_row_watts: row_power_watts,
                mean_row_watts: 0.0,
                brake_engagements: 0,
                commands_issued: 0,
                duration: SimTime::ZERO,
            },
            row_power_watts,
            rr_cursor: (0, 0),
            last_power_change: SimTime::ZERO,
            power_integral: 0.0,
            obs,
            servers,
            ctx,
            config,
            controller,
        }
    }

    /// The row context (budget, server count).
    pub fn context(&self) -> &RowContext {
        &self.ctx
    }

    /// Immutable view of the servers (for tests and inspection).
    pub fn servers(&self) -> &[InferenceServer] {
        &self.servers
    }

    /// Runs the simulation over `arrivals` (which must be ordered by
    /// arrival time) until `until`, consuming the simulator and
    /// returning the report.
    ///
    /// # Panics
    ///
    /// Panics if `arrivals` yields requests out of order.
    pub fn run(self, arrivals: impl IntoIterator<Item = Request>, until: SimTime) -> SimReport {
        self.run_source(arrivals.into_iter(), until)
    }

    /// Like [`run`](Self::run) but consumes any [`RequestSource`] — the
    /// entry point the real-trace replay path uses.
    ///
    /// # Panics
    ///
    /// Panics if the source yields requests out of order.
    pub fn run_source(mut self, mut arrivals: impl RequestSource, until: SimTime) -> SimReport {
        let _span = self.obs.time("sim.event_loop");
        if let Some(first) = arrivals.next_request() {
            self.queue.schedule(first.arrival, Ev::Arrival(first));
        }
        self.queue.schedule(SimTime::ZERO, Ev::Telemetry);

        while let Some(next_at) = self.queue.peek_time() {
            if next_at > until {
                break;
            }
            let (now, ev) = self.queue.pop().expect("peeked event exists");
            match ev {
                Ev::Arrival(req) => {
                    self.on_arrival(now, req);
                    if let Some(next) = arrivals.next_request() {
                        assert!(
                            next.arrival >= now,
                            "arrival stream out of order at request {}",
                            next.id
                        );
                        self.queue.schedule(next.arrival, Ev::Arrival(next));
                    }
                }
                Ev::PhaseEnd { server, version } => self.on_phase_end(now, server, version),
                Ev::Telemetry => {
                    self.on_telemetry(now);
                    let next_tick = now + SimTime::from_secs(self.config.telemetry_interval_s);
                    if next_tick <= until {
                        self.queue.schedule(next_tick, Ev::Telemetry);
                    }
                }
                Ev::ControlDelivery => self.on_control_delivery(now),
            }
        }

        // Close out the power integral at the horizon.
        self.accumulate_power(until);
        self.report.duration = until;
        self.report.mean_row_watts = if until == SimTime::ZERO {
            self.row_power_watts
        } else {
            self.power_integral / until.as_secs()
        };
        self.report
    }

    fn accumulate_power(&mut self, now: SimTime) {
        let dt = now.saturating_sub(self.last_power_change).as_secs();
        self.power_integral += self.row_power_watts * dt;
        self.last_power_change = now;
    }

    /// Runs `f` against server `idx`, keeping the cached row power and
    /// its peak/integral in sync with the server's state change.
    fn mutate_server<T>(
        &mut self,
        now: SimTime,
        idx: usize,
        f: impl FnOnce(&mut InferenceServer) -> T,
    ) -> T {
        self.accumulate_power(now);
        let before = self.servers[idx].power_watts();
        let out = f(&mut self.servers[idx]);
        let after = self.servers[idx].power_watts();
        self.row_power_watts += after - before;
        if self.row_power_watts > self.report.peak_row_watts {
            self.report.peak_row_watts = self.row_power_watts;
        }
        out
    }

    /// Metric/event label for a priority class.
    fn pri_tag(priority: Priority) -> &'static str {
        match priority {
            Priority::Low => "low",
            Priority::High => "high",
        }
    }

    fn on_arrival(&mut self, now: SimTime, req: Request) {
        self.report.offered += 1;
        let priority = req.priority;
        match priority {
            Priority::Low => self.report.offered_by_priority.0 += 1,
            Priority::High => self.report.offered_by_priority.1 += 1,
        }
        self.obs.add(
            "cluster.requests_offered",
            Label::Tag(Self::pri_tag(priority)),
            1,
        );
        let n = self.servers.len();
        let cursor = match priority {
            Priority::Low => &mut self.rr_cursor.0,
            Priority::High => &mut self.rr_cursor.1,
        };
        let start = *cursor;
        // First pass: an idle matching server (round-robin for fairness).
        let mut chosen: Option<usize> = None;
        for off in 0..n {
            let i = (start + off) % n;
            if self.servers[i].priority() == priority && self.servers[i].is_idle() {
                chosen = Some(i);
                break;
            }
        }
        if let Some(i) = chosen {
            *cursor = (i + 1) % n;
            self.obs.record(Event::RequestDispatched {
                t: now.as_secs(),
                server: i,
                request: req.id,
                priority: Self::pri_tag(priority),
            });
            let (end_at, version) = self.mutate_server(now, i, |s| s.start_request(now, req));
            self.queue
                .schedule(end_at, Ev::PhaseEnd { server: i, version });
            return;
        }
        // Second pass: the matching server with buffer space and the
        // shortest queue.
        let target = self
            .servers
            .iter()
            .filter(|s| s.priority() == priority && s.has_buffer_space())
            .min_by_key(|s| s.queue_len())
            .map(InferenceServer::id);
        match target {
            Some(i) => {
                self.obs.record(Event::RequestQueued {
                    t: now.as_secs(),
                    request: req.id,
                    priority: Self::pri_tag(priority),
                });
                let ok = self.servers[i].enqueue(req);
                debug_assert!(ok, "buffer space was checked");
            }
            None => {
                self.report.rejected += 1;
                match priority {
                    Priority::Low => self.report.rejected_by_priority.0 += 1,
                    Priority::High => self.report.rejected_by_priority.1 += 1,
                }
                self.obs.add(
                    "cluster.requests_rejected",
                    Label::Tag(Self::pri_tag(priority)),
                    1,
                );
                self.obs.record(Event::RequestRejected {
                    t: now.as_secs(),
                    request: req.id,
                    priority: Self::pri_tag(priority),
                });
            }
        }
    }

    fn on_phase_end(&mut self, now: SimTime, server: usize, version: u64) {
        let outcome = self.mutate_server(now, server, |s| s.on_phase_end(now, version));
        match outcome {
            PhaseOutcome::Ignored => {}
            PhaseOutcome::TokenStarted { end_at, version } => {
                self.queue
                    .schedule(end_at, Ev::PhaseEnd { server, version });
            }
            PhaseOutcome::Completed { record, next } => {
                self.record_completion(record);
                if let Some((end_at, version)) = next {
                    self.queue
                        .schedule(end_at, Ev::PhaseEnd { server, version });
                }
            }
        }
    }

    fn record_completion(&mut self, record: CompletedRequest) {
        self.report.completed += 1;
        let latency = record.latency_s();
        match record.request.priority {
            Priority::Low => {
                self.report.completed_by_priority.0 += 1;
                self.report.low_latencies_s.push(latency);
            }
            Priority::High => {
                self.report.completed_by_priority.1 += 1;
                self.report.high_latencies_s.push(latency);
            }
        }
        let tag = Self::pri_tag(record.request.priority);
        self.obs
            .add("cluster.requests_completed", Label::Tag(tag), 1);
        self.obs
            .observe("cluster.latency_s", Label::Tag(tag), latency);
        self.obs.record(Event::RequestCompleted {
            t: record.completed_at.as_secs(),
            server: record.server,
            request: record.request.id,
            priority: tag,
            latency_s: latency,
        });
    }

    fn on_telemetry(&mut self, now: SimTime) {
        self.accumulate_power(now);
        self.row_signal.record(now, self.row_power_watts);
        if self.config.record_power_series {
            self.report
                .row_power
                .push(now.as_secs(), self.row_power_watts);
        }
        self.obs.record(Event::PowerSample {
            t: now.as_secs(),
            watts: self.row_power_watts,
        });
        self.obs
            .gauge("cluster.row_power_w", Label::Global, self.row_power_watts);
        self.obs.observe(
            "cluster.row_utilization",
            Label::Global,
            self.row_power_watts / self.ctx.provisioned_watts,
        );
        let observed = self.row_signal.read(now);
        // One combined publish per tick (truth first, then the delayed
        // view) so subscribers with interior locking lock only once.
        self.config
            .oob_taps
            .publish_tick(now, self.row_power_watts, observed);
        let requests = {
            let _span = self.obs.time("controller.on_telemetry");
            self.controller.on_telemetry(now, observed, &self.ctx)
        };
        for cr in requests {
            self.issue(now, cr);
        }
        if let Some(at) = self.plane.next_delivery() {
            self.queue.schedule(at.max(now), Ev::ControlDelivery);
        }
    }

    fn issue(&mut self, now: SimTime, cr: ControlRequest) {
        if matches!(cr.action, ControlAction::PowerBrake { on: true }) {
            self.report.brake_engagements += 1;
            self.obs.add("cluster.brake_engagements", Label::Global, 1);
        }
        let targets: Vec<usize> = match cr.target {
            ControlTarget::All => (0..self.servers.len()).collect(),
            ControlTarget::Priority(p) => self
                .servers
                .iter()
                .filter(|s| s.priority() == p)
                .map(InferenceServer::id)
                .collect(),
            ControlTarget::Server(i) => vec![i.min(self.servers.len().saturating_sub(1))],
        };
        for i in targets {
            self.plane.issue(now, i, cr.action);
            self.report.commands_issued += 1;
        }
    }

    fn on_control_delivery(&mut self, now: SimTime) {
        let due = self.plane.deliver_due(now);
        for cmd in due {
            let idx = cmd.server;
            if idx >= self.servers.len() {
                continue;
            }
            self.obs.record_with(|| {
                let t = now.as_secs();
                match cmd.action {
                    ControlAction::LockClock { mhz } => Event::CapApplied {
                        t,
                        server: idx,
                        mhz,
                    },
                    ControlAction::UnlockClock => Event::Uncap { t, server: idx },
                    ControlAction::PowerCap { watts } => Event::PowerCapApplied {
                        t,
                        server: idx,
                        watts,
                    },
                    ControlAction::ClearPowerCap => Event::PowerCapCleared { t, server: idx },
                    ControlAction::PowerBrake { on } => Event::BrakeEngaged { t, server: idx, on },
                }
            });
            let resched = self.mutate_server(now, idx, |s| s.apply_action(now, cmd.action));
            if let Some((end_at, version)) = resched {
                self.queue.schedule(
                    end_at,
                    Ev::PhaseEnd {
                        server: idx,
                        version,
                    },
                );
            }
        }
        if let Some(at) = self.plane.next_delivery() {
            self.queue.schedule(at.max(now), Ev::ControlDelivery);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn small_row() -> RowConfig {
        let mut row = RowConfig::paper_inference_row();
        row.base_servers = 4;
        row
    }

    fn mk_request(id: u64, at: f64, priority: Priority) -> Request {
        Request::new(id, t(at), 1024, 64, priority)
    }

    #[test]
    fn empty_run_reports_idle_power() {
        let sim = ClusterSim::new(small_row(), SimConfig::default(), NoopController);
        let idle = sim.servers()[0].power_watts() * 4.0;
        let report = sim.run(std::iter::empty(), t(100.0));
        assert_eq!(report.completed, 0);
        assert_eq!(report.offered, 0);
        assert!((report.mean_row_watts - idle).abs() < 1.0);
        assert!((report.peak_row_watts - idle).abs() < 1.0);
    }

    #[test]
    fn single_request_completes_with_service_latency() {
        let sim = ClusterSim::new(small_row(), SimConfig::default(), NoopController);
        let reqs = vec![mk_request(1, 0.0, Priority::Low)];
        let report = sim.run(reqs, t(500.0));
        assert_eq!(report.completed, 1);
        assert_eq!(report.rejected, 0);
        assert_eq!(report.low_latencies_s.len(), 1);
        // No queueing: latency equals service time, which for a
        // 1024/64 BLOOM request is a few seconds.
        let lat = report.low_latencies_s[0];
        assert!((1.0..30.0).contains(&lat), "latency {lat}");
    }

    #[test]
    fn requests_route_to_matching_priority_servers() {
        let sim = ClusterSim::new(small_row(), SimConfig::default(), NoopController);
        // 4 servers: 2 low, 2 high. Offer 3 concurrent high requests:
        // two start, one queues (buffers), so all complete eventually.
        let reqs = (0..3)
            .map(|i| mk_request(i, 0.0, Priority::High))
            .collect::<Vec<_>>();
        let report = sim.run(reqs, t(1000.0));
        assert_eq!(report.completed, 3);
        assert_eq!(report.completed_by_priority, (0, 3));
    }

    #[test]
    fn overload_rejects_when_buffers_full() {
        let sim = ClusterSim::new(small_row(), SimConfig::default(), NoopController);
        // 2 low servers × (1 active + 1 buffered) = 4 capacity; the 5th
        // concurrent low request is rejected.
        let reqs = (0..5)
            .map(|i| mk_request(i, 0.0, Priority::Low))
            .collect::<Vec<_>>();
        let report = sim.run(reqs, t(2000.0));
        assert_eq!(report.rejected, 1);
        assert_eq!(report.completed, 4);
    }

    #[test]
    fn queued_request_pays_waiting_latency() {
        let sim = ClusterSim::new(small_row(), SimConfig::default(), NoopController);
        let reqs = (0..3)
            .map(|i| mk_request(i, 0.0, Priority::Low))
            .collect::<Vec<_>>();
        let report = sim.run(reqs, t(2000.0));
        let mut lats = report.low_latencies_s.clone();
        lats.sort_by(f64::total_cmp);
        // The buffered request waited for a full service ahead of it.
        assert!(lats[2] > lats[0] * 1.8, "{lats:?}");
    }

    #[test]
    fn power_rises_while_serving() {
        let sim = ClusterSim::new(small_row(), SimConfig::default(), NoopController);
        let idle_watts = sim.servers().iter().map(|s| s.power_watts()).sum::<f64>();
        let reqs = (0..4)
            .map(|i| mk_request(i, 10.0, Priority::Low))
            .collect::<Vec<_>>();
        let report = sim.run(reqs, t(300.0));
        assert!(report.peak_row_watts > idle_watts + 1000.0);
        assert!(!report.row_power.is_empty());
        assert!(report.row_power.peak().unwrap() <= report.peak_row_watts);
    }

    #[test]
    fn controller_commands_reach_servers_and_stretch_latency() {
        // A controller that locks every server to 1110 MHz at t = 0.
        struct LockAll {
            done: bool,
        }
        impl PowerController for LockAll {
            fn on_telemetry(
                &mut self,
                _now: SimTime,
                _obs: Option<f64>,
                _ctx: &RowContext,
            ) -> Vec<ControlRequest> {
                if self.done {
                    return Vec::new();
                }
                self.done = true;
                vec![ControlRequest {
                    target: ControlTarget::All,
                    action: ControlAction::LockClock { mhz: 1110.0 },
                }]
            }
        }

        let cfg = SimConfig {
            oob_cap_latency_s: (1.0, 2.0), // fast plane: the lock lands before requests
            ..Default::default()
        };
        let reqs = vec![
            mk_request(1, 60.0, Priority::Low),
            mk_request(2, 60.0, Priority::High),
        ];
        let capped =
            ClusterSim::new(small_row(), cfg, LockAll { done: false }).run(reqs.clone(), t(2000.0));
        let free =
            ClusterSim::new(small_row(), SimConfig::default(), NoopController).run(reqs, t(2000.0));
        assert_eq!(capped.completed, 2);
        assert!(capped.commands_issued >= 4);
        assert!(
            capped.low_latencies_s[0] > free.low_latencies_s[0],
            "{} vs {}",
            capped.low_latencies_s[0],
            free.low_latencies_s[0]
        );
    }

    #[test]
    fn brake_engagements_are_counted() {
        struct BrakeOnce {
            fired: bool,
        }
        impl PowerController for BrakeOnce {
            fn on_telemetry(
                &mut self,
                _now: SimTime,
                _obs: Option<f64>,
                _ctx: &RowContext,
            ) -> Vec<ControlRequest> {
                if self.fired {
                    return Vec::new();
                }
                self.fired = true;
                vec![ControlRequest {
                    target: ControlTarget::All,
                    action: ControlAction::PowerBrake { on: true },
                }]
            }
        }
        let report = ClusterSim::new(
            small_row(),
            SimConfig::default(),
            BrakeOnce { fired: false },
        )
        .run(std::iter::empty(), t(100.0));
        assert_eq!(report.brake_engagements, 1);
    }

    #[test]
    fn identical_seeds_reproduce_identical_reports() {
        let reqs: Vec<Request> = (0..50)
            .map(|i| {
                mk_request(
                    i,
                    i as f64 * 3.0,
                    if i % 2 == 0 {
                        Priority::Low
                    } else {
                        Priority::High
                    },
                )
            })
            .collect();
        let a = ClusterSim::new(small_row(), SimConfig::default(), NoopController)
            .run(reqs.clone(), t(1000.0));
        let b =
            ClusterSim::new(small_row(), SimConfig::default(), NoopController).run(reqs, t(1000.0));
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.low_latencies_s, b.low_latencies_s);
        assert_eq!(a.peak_row_watts, b.peak_row_watts);
    }

    #[test]
    fn telemetry_observation_is_delayed() {
        struct Probe {
            first_observation_at: Option<f64>,
        }
        impl PowerController for Probe {
            fn on_telemetry(
                &mut self,
                now: SimTime,
                obs: Option<f64>,
                _ctx: &RowContext,
            ) -> Vec<ControlRequest> {
                if obs.is_some() && self.first_observation_at.is_none() {
                    self.first_observation_at = Some(now.as_secs());
                }
                Vec::new()
            }
        }
        // Run and inspect via a side-channel: the probe mutates itself,
        // so thread it through a report-visible effect instead — issue a
        // brake when first observing, and check the engagement count.
        struct BrakeWhenObserved;
        impl PowerController for BrakeWhenObserved {
            fn on_telemetry(
                &mut self,
                now: SimTime,
                obs: Option<f64>,
                _ctx: &RowContext,
            ) -> Vec<ControlRequest> {
                assert!(
                    obs.is_none() || now.as_secs() >= 2.0,
                    "observation available before the 2 s delay"
                );
                Vec::new()
            }
        }
        let _ = Probe {
            first_observation_at: None,
        };
        let report = ClusterSim::new(small_row(), SimConfig::default(), BrakeWhenObserved)
            .run(std::iter::empty(), t(20.0));
        assert_eq!(report.brake_engagements, 0);
    }
}
