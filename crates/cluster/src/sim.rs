//! The discrete-event inference-cluster simulator (§6.4).
//!
//! The simulator drives a row of inference servers through a request
//! trace: the row manager samples aggregate power every 2 s with a 2 s
//! propagation delay, and a pluggable [`PowerController`] observes the
//! (stale) telemetry and issues control requests that travel the slow
//! OOB plane before landing on devices. Everything is deterministic
//! under a fixed seed, so competing policies can be compared on
//! identical request streams.
//!
//! Two serving engines can carry the traffic, selected via
//! [`EngineKind`]:
//!
//! * **Legacy** (default) — the paper's §6.6 whole-request model:
//!   arrivals are dispatched to idle servers (or a one-request
//!   buffer) and progress through prompt and token phases,
//! * **Batched** — the `polca-serve` continuous-batching engine:
//!   iteration-level scheduling over a paged KV-cache, chunked
//!   prefill, and optionally disaggregated prefill/decode pools.
//!
//! Both engines sit below the same telemetry, OOB control, power
//! accounting, and observability planes, so every controller and
//! downstream consumer works unchanged on either.

use polca_llm::InferenceModel;
use polca_obs::{EnergyAccum, Event, Label, Phase, Recorder, ReqSpan, SpanGuard};
use polca_serve::{
    AdmissionKind, BatchedRow, BatchedRowParams, ServeConfig, ServeOutcome, ServeRequest,
};
use polca_sim::{EventQueue, SimTime};
use polca_stats::TimeSeries;
use polca_telemetry::{ControlAction, DelayedSignal, OobControlPlane, RowPowerTaps};

use crate::request::{CompletedRequest, Priority, Request};
use crate::row::RowConfig;
use crate::server::{InferenceServer, PhaseOutcome, HOT_IDLE_INTENSITY};

/// Who a control request targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlTarget {
    /// Every server in the row.
    All,
    /// Every server hosting the given priority class.
    Priority(Priority),
    /// One specific server.
    Server(usize),
}

/// A control decision emitted by a [`PowerController`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlRequest {
    /// Which servers to touch.
    pub target: ControlTarget,
    /// What to do to them.
    pub action: ControlAction,
}

/// Read-only facts a controller may use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RowContext {
    /// The row's provisioned power budget in watts.
    pub provisioned_watts: f64,
    /// Servers in the row.
    pub n_servers: usize,
}

/// A time-ordered stream of requests feeding the simulator.
///
/// The simulator is source-agnostic: the synthetic
/// `polca_trace::ArrivalGenerator`, plain request vectors, and
/// `polca-ingest`'s verbatim replay of an externally captured trace all
/// drive [`ClusterSim::run_source`] through this trait. Every iterator
/// of [`Request`]s is a source via the blanket impl, so generators stay
/// lazy and replays can stream from disk.
pub trait RequestSource {
    /// The next request in arrival order, or `None` when the source is
    /// exhausted. Requests must be yielded with non-decreasing
    /// `arrival` timestamps.
    fn next_request(&mut self) -> Option<Request>;
}

impl<I: Iterator<Item = Request>> RequestSource for I {
    fn next_request(&mut self) -> Option<Request> {
        self.next()
    }
}

/// A cluster-level power-management policy.
///
/// The simulator invokes the controller at every row-telemetry tick
/// (2 s) with the *delayed* power observation — `None` until the first
/// reading propagates. POLCA and the baseline policies implement this in
/// the `polca` crate.
///
/// Controllers must be [`Send`]: a multi-datacenter [`SiteSim`]
/// (`crate::site`) steps its rows on a scoped thread pool, carrying
/// each row's controller to whichever worker claims the row that
/// window. Controllers are plain decision state (no shared interior
/// mutability), so this is not a restriction in practice.
pub trait PowerController: Send {
    /// Reacts to a telemetry tick, returning control requests to issue
    /// on the OOB plane.
    fn on_telemetry(
        &mut self,
        now: SimTime,
        observed_row_watts: Option<f64>,
        ctx: &RowContext,
    ) -> Vec<ControlRequest>;
}

impl<P: PowerController + ?Sized> PowerController for Box<P> {
    fn on_telemetry(
        &mut self,
        now: SimTime,
        observed_row_watts: Option<f64>,
        ctx: &RowContext,
    ) -> Vec<ControlRequest> {
        (**self).on_telemetry(now, observed_row_watts, ctx)
    }
}

/// The do-nothing controller (the paper's `No-cap` baseline, §6.6 —
/// "lacks power brake protection").
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopController;

impl PowerController for NoopController {
    fn on_telemetry(
        &mut self,
        _now: SimTime,
        _observed: Option<f64>,
        _ctx: &RowContext,
    ) -> Vec<ControlRequest> {
        Vec::new()
    }
}

/// Which serving engine drives the row.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum EngineKind {
    /// The legacy §6.6 whole-request model: one request in service per
    /// server plus a small buffer. The default; every historical result
    /// reproduces bit-identically on it.
    #[default]
    Legacy,
    /// The `polca-serve` continuous-batching engine: iteration-level
    /// scheduling, paged KV-cache, and optional prefill/decode pools.
    Batched(ServeConfig),
}

/// Simulator knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Experiment seed (shared by the OOB plane's latency draws).
    pub seed: u64,
    /// Row telemetry interval in seconds (Table 1: 2 s).
    pub telemetry_interval_s: f64,
    /// Row telemetry propagation delay in seconds (Table 2: 2 s).
    pub telemetry_delay_s: f64,
    /// OOB capping latency range in seconds (Table 2: up to 40 s).
    pub oob_cap_latency_s: (f64, f64),
    /// OOB brake latency range in seconds (Table 2: ≤ 5 s).
    pub oob_brake_latency_s: (f64, f64),
    /// Probability an OOB capping command silently fails (§3.3).
    pub oob_failure_rate: f64,
    /// Multiplier on all server power (the "+5 %" drift experiment).
    pub power_scale: f64,
    /// Whether to record the row power timeseries (large runs may skip
    /// it to save memory).
    pub record_power_series: bool,
    /// Observability sink for the run (disabled by default; equality on
    /// this field compares the capture *level*, not accumulated data).
    pub recorder: Recorder,
    /// Passive subscribers to the delayed row-power stream (empty by
    /// default; equality compares the subscriber count, not identity).
    /// Subscribers see exactly what the controller sees — the stale
    /// [`DelayedSignal`] read — plus a ground-truth feed reserved for
    /// detection-lag annotation.
    pub oob_taps: RowPowerTaps,
    /// Which serving engine drives the row.
    pub engine: EngineKind,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            telemetry_interval_s: 2.0,
            telemetry_delay_s: 2.0,
            oob_cap_latency_s: (20.0, 40.0),
            oob_brake_latency_s: (2.0, 5.0),
            oob_failure_rate: 0.0,
            power_scale: 1.0,
            record_power_series: true,
            recorder: Recorder::disabled(),
            oob_taps: RowPowerTaps::new(),
            engine: EngineKind::Legacy,
        }
    }
}

/// Everything a run produces.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Requests offered to the cluster.
    pub offered: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests rejected (no buffer space anywhere).
    pub rejected: u64,
    /// End-to-end latencies (seconds) of completed low-priority requests.
    pub low_latencies_s: Vec<f64>,
    /// End-to-end latencies (seconds) of completed high-priority requests.
    pub high_latencies_s: Vec<f64>,
    /// Completed requests per priority (low, high).
    pub completed_by_priority: (u64, u64),
    /// Offered requests per priority (low, high).
    pub offered_by_priority: (u64, u64),
    /// Rejected requests per priority (low, high).
    pub rejected_by_priority: (u64, u64),
    /// Row power sampled at the telemetry interval (empty when disabled).
    pub row_power: TimeSeries,
    /// Highest instantaneous row power seen, in watts.
    pub peak_row_watts: f64,
    /// Time-weighted mean row power in watts.
    pub mean_row_watts: f64,
    /// Row-wide power-brake engagements the controller triggered.
    pub brake_engagements: u64,
    /// OOB commands issued on the control plane.
    pub commands_issued: u64,
    /// Discrete events processed by the row engine (arrivals, phase
    /// ends, telemetry ticks, control deliveries) — the numerator of
    /// the `sim_throughput` events/sec figure.
    pub events_processed: u64,
    /// Duration simulated.
    pub duration: SimTime,
}

impl SimReport {
    /// Latency samples for `priority`.
    pub fn latencies(&self, priority: Priority) -> &[f64] {
        match priority {
            Priority::Low => &self.low_latencies_s,
            Priority::High => &self.high_latencies_s,
        }
    }

    /// Completed-request throughput in requests/s for `priority`.
    pub fn throughput(&self, priority: Priority) -> f64 {
        let n = match priority {
            Priority::Low => self.completed_by_priority.0,
            Priority::High => self.completed_by_priority.1,
        };
        if self.duration == SimTime::ZERO {
            0.0
        } else {
            n as f64 / self.duration.as_secs()
        }
    }

    /// Fraction of offered `priority` requests that completed (goodput
    /// ratio); 1.0 when nothing was offered.
    pub fn goodput(&self, priority: Priority) -> f64 {
        let (completed, offered) = match priority {
            Priority::Low => (self.completed_by_priority.0, self.offered_by_priority.0),
            Priority::High => (self.completed_by_priority.1, self.offered_by_priority.1),
        };
        if offered == 0 {
            1.0
        } else {
            completed as f64 / offered as f64
        }
    }

    /// Peak row power as a fraction of `provisioned_watts`.
    pub fn peak_utilization(&self, provisioned_watts: f64) -> f64 {
        self.peak_row_watts / provisioned_watts
    }
}

/// Internal event alphabet.
#[derive(Debug)]
enum Ev {
    Arrival(Request),
    PhaseEnd {
        server: usize,
        version: u64,
    },
    Telemetry,
    ControlDelivery,
    /// Batched engine: a server's next composition boundary.
    ServeWake {
        server: usize,
        version: u64,
    },
    /// Batched engine: the earliest in-flight KV transfer lands.
    ServeTransfer,
}

/// Per-server polca-req state for the legacy engine: the span of the
/// request in service plus the last time its energy integral was
/// folded. The legacy server runs one request at a time, so the whole
/// server draw between power-changing transitions belongs to it.
#[derive(Clone, Debug)]
struct LegacyTrace {
    /// Last time this server's power was folded into the active span.
    last_t: SimTime,
    /// `(service_start, span)` of the request in service, if any.
    active: Option<(SimTime, ReqSpan)>,
}

/// The cluster simulator.
pub struct ClusterSim<P> {
    servers: Vec<InferenceServer>,
    /// The continuous-batching engine when `SimConfig::engine` is
    /// [`EngineKind::Batched`]; `None` runs the legacy per-server path.
    engine: Option<BatchedRow<Request>>,
    ctx: RowContext,
    config: SimConfig,
    controller: P,
    plane: OobControlPlane,
    row_signal: DelayedSignal,
    queue: EventQueue<Ev>,
    /// Cached Σ server power, maintained incrementally.
    row_power_watts: f64,
    /// Round-robin dispatch cursors per priority (low, high).
    rr_cursor: (usize, usize),
    report: SimReport,
    /// Integral bookkeeping for mean power.
    last_power_change: SimTime,
    power_integral: f64,
    /// Cached Σ power of servers that are actively serving, maintained
    /// incrementally next to `row_power_watts`. Feeds `busy_integral`
    /// in the same `accumulate_power` fold, so the busy energy is
    /// exact at event resolution (not a telemetry-window trapezoid) —
    /// that exactness is what pins the polca-energy reconciliation
    /// bound: busy energy ≥ Σ per-request attributed joules.
    busy_watts: f64,
    /// Exact integral of `busy_watts` over time, in joules.
    busy_integral: f64,
    /// polca-energy row accumulator (present when the recorder carries
    /// an energy plan), ticked on the telemetry grid.
    energy: Option<EnergyAccum>,
    /// Instantaneous per-priority-class power, `[low, high]` — cached
    /// incrementally next to `row_power_watts` for the legacy server
    /// path (the batched engine keeps its own class cache), so energy
    /// ticks cost O(buckets) instead of a per-server scan.
    class_watts: [f64; 2],
    /// Reusable per-pool `(tag, watts)` buffer for energy ticks.
    pool_scratch: Vec<(&'static str, f64)>,
    obs: Recorder,
    /// polca-req spans for the legacy engine, one slot per server;
    /// `None` unless the recorder has request tracing on (the batched
    /// engine threads spans through its own sequences instead).
    legacy_trace: Option<Vec<LegacyTrace>>,
}

impl<P: PowerController> ClusterSim<P> {
    /// Builds a simulator over `row` with the given `controller`.
    pub fn new(row: RowConfig, config: SimConfig, controller: P) -> Self {
        let mut servers = row.build_servers();
        for s in &mut servers {
            s.set_power_scale(config.power_scale);
        }
        let obs = config.recorder.clone();
        let engine = match &config.engine {
            EngineKind::Legacy => None,
            EngineKind::Batched(serve_cfg) => {
                let deployment =
                    InferenceModel::new(row.model.clone(), row.server_spec.gpu.clone())
                        .expect("row model must fit its GPU allocation");
                let params = BatchedRowParams {
                    deployment,
                    classes: servers
                        .iter()
                        .map(|s| s.priority() == Priority::High)
                        .collect(),
                    spec_gpus: row.server_spec.n_gpus,
                    non_gpu_base_watts: row.server_spec.non_gpu_base_watts,
                    non_gpu_per_gpu_watt: row.server_spec.non_gpu_per_gpu_watt,
                    hot_idle_intensity: HOT_IDLE_INTENSITY,
                    power_scale: config.power_scale,
                };
                Some(BatchedRow::new(params, serve_cfg, obs.prof().clone()))
            }
        };
        let row_power_watts: f64 = match &engine {
            Some(e) => e.total_power_watts(),
            None => servers.iter().map(InferenceServer::power_watts).sum(),
        };
        let busy_watts: f64 = match &engine {
            Some(e) => e.busy_power_watts(),
            None => servers
                .iter()
                .filter(|s| !s.is_idle())
                .map(InferenceServer::power_watts)
                .sum(),
        };
        let class_watts: [f64; 2] = match &engine {
            Some(e) => e.class_power_watts(),
            None => {
                let mut cw = [0.0; 2];
                for s in &servers {
                    cw[usize::from(s.priority() == Priority::High)] += s.power_watts();
                }
                cw
            }
        };
        let mut pool_scratch: Vec<(&'static str, f64)> = Vec::new();
        match &engine {
            Some(e) => e.write_pool_power(&mut pool_scratch),
            None => pool_scratch.push(("aggregated", row_power_watts)),
        }
        let energy = obs.energy_plan().map(|plan| {
            EnergyAccum::new(
                plan.clone(),
                0.0,
                class_watts[0],
                class_watts[1],
                &pool_scratch,
            )
        });
        let mut plane = OobControlPlane::new(config.seed)
            .with_cap_latency(config.oob_cap_latency_s.0, config.oob_cap_latency_s.1)
            .with_brake_latency(config.oob_brake_latency_s.0, config.oob_brake_latency_s.1)
            .with_failure_rate(config.oob_failure_rate);
        plane.set_recorder(obs.clone());
        let mut queue = EventQueue::new();
        queue.set_probe(obs.queue_probe());
        let ctx = RowContext {
            provisioned_watts: row.provisioned_watts(),
            n_servers: servers.len(),
        };
        let legacy_trace = (engine.is_none() && obs.req_enabled()).then(|| {
            vec![
                LegacyTrace {
                    last_t: SimTime::ZERO,
                    active: None,
                };
                servers.len()
            ]
        });
        ClusterSim {
            row_signal: DelayedSignal::new(SimTime::from_secs(config.telemetry_delay_s)),
            plane,
            queue,
            report: blank_report(row_power_watts),
            row_power_watts,
            rr_cursor: (0, 0),
            last_power_change: SimTime::ZERO,
            power_integral: 0.0,
            busy_watts,
            busy_integral: 0.0,
            energy,
            class_watts,
            pool_scratch,
            obs,
            servers,
            engine,
            ctx,
            config,
            controller,
            legacy_trace,
        }
    }

    /// The row context (budget, server count).
    pub fn context(&self) -> &RowContext {
        &self.ctx
    }

    /// Immutable view of the servers (for tests and inspection).
    ///
    /// Under [`EngineKind::Batched`] these carry the row's static
    /// priority layout but see no traffic; inspect
    /// [`batched_row`](Self::batched_row) instead.
    pub fn servers(&self) -> &[InferenceServer] {
        &self.servers
    }

    /// The continuous-batching engine, when one is configured.
    pub fn batched_row(&self) -> Option<&BatchedRow<Request>> {
        self.engine.as_ref()
    }

    /// Runs the simulation over `arrivals` (which must be ordered by
    /// arrival time) until `until`, consuming the simulator and
    /// returning the report.
    ///
    /// # Panics
    ///
    /// Panics if `arrivals` yields requests out of order.
    pub fn run(self, arrivals: impl IntoIterator<Item = Request>, until: SimTime) -> SimReport {
        self.run_source(arrivals.into_iter(), until)
    }

    /// Like [`run`](Self::run) but consumes any [`RequestSource`] — the
    /// entry point the real-trace replay path uses.
    ///
    /// Internally this is one [`RowSim`] stepped straight to the
    /// horizon; the resumable engine and this one-shot entry point are
    /// the same code and produce bit-identical results.
    ///
    /// # Panics
    ///
    /// Panics if the source yields requests out of order.
    pub fn run_source(self, arrivals: impl RequestSource, until: SimTime) -> SimReport {
        let mut row = self.into_row_sim(arrivals, until);
        row.step_until(until);
        row.finish()
    }

    /// Converts this simulator into a resumable [`RowSim`] driven by
    /// `arrivals` up to `horizon`. The engine primes the first arrival
    /// and the t = 0 telemetry tick immediately, exactly as
    /// [`run_source`](Self::run_source) would.
    pub fn into_row_sim<S: RequestSource>(self, arrivals: S, horizon: SimTime) -> RowSim<P, S> {
        RowSim::start(self, arrivals, horizon)
    }

    fn accumulate_power(&mut self, now: SimTime) {
        let dt = now.saturating_sub(self.last_power_change).as_secs();
        self.power_integral += self.row_power_watts * dt;
        self.busy_integral += self.busy_watts * dt;
        self.last_power_change = now;
    }

    /// Runs `f` against server `idx`, keeping the cached row power and
    /// its peak/integral in sync with the server's state change.
    fn mutate_server<T>(
        &mut self,
        now: SimTime,
        idx: usize,
        f: impl FnOnce(&mut InferenceServer) -> T,
    ) -> T {
        self.accumulate_power(now);
        let before = self.servers[idx].power_watts();
        let serving_before = !self.servers[idx].is_idle();
        // polca-req legacy ledger: the server's draw was `before` watts
        // since the last fold, all of it serving the active request —
        // charge it before the mutation can change the power.
        if let Some(traces) = self.legacy_trace.as_mut() {
            let tr = &mut traces[idx];
            if let Some((_, span)) = tr.active.as_mut() {
                span.joules += before * now.saturating_sub(tr.last_t).as_secs();
            }
            tr.last_t = now;
        }
        let out = f(&mut self.servers[idx]);
        let after = self.servers[idx].power_watts();
        self.row_power_watts += after - before;
        // Class membership is static, so the delta lands in exactly
        // one slot (the batched engine keeps its own class cache).
        self.class_watts[usize::from(self.servers[idx].priority() == Priority::High)] +=
            after - before;
        let busy_after = if self.servers[idx].is_idle() {
            0.0
        } else {
            after
        };
        self.busy_watts += busy_after - if serving_before { before } else { 0.0 };
        if self.row_power_watts > self.report.peak_row_watts {
            self.report.peak_row_watts = self.row_power_watts;
        }
        out
    }

    /// Metric/event label for a priority class.
    fn pri_tag(priority: Priority) -> &'static str {
        match priority {
            Priority::Low => "low",
            Priority::High => "high",
        }
    }

    /// Runs `f` against the batched engine, keeping the cached row
    /// power and its peak/integral in sync — the batched analog of
    /// [`mutate_server`](Self::mutate_server).
    fn serve_op<T>(&mut self, now: SimTime, f: impl FnOnce(&mut BatchedRow<Request>) -> T) -> T {
        self.accumulate_power(now);
        let engine = self
            .engine
            .as_mut()
            .expect("serve_op without batched engine");
        let out = f(engine);
        self.row_power_watts = engine.total_power_watts();
        self.busy_watts = engine.busy_power_watts();
        if self.row_power_watts > self.report.peak_row_watts {
            self.report.peak_row_watts = self.row_power_watts;
        }
        out
    }

    /// Folds one batched-engine outcome into the report and the event
    /// queue: completions, preemption counters, the server's next wake,
    /// and a transfer event for newly queued KV hand-offs.
    fn absorb_serve(&mut self, now: SimTime, outcome: ServeOutcome<Request>) {
        if outcome.preemptions > 0 {
            self.obs
                .add("serve.preemptions", Label::Global, outcome.preemptions);
        }
        for c in outcome.completions {
            let record = CompletedRequest {
                request: c.payload,
                started_at: c.started_at,
                completed_at: now,
                server: c.server,
            };
            self.record_completion(record);
            if self.obs.req_enabled() {
                self.record_request_span(&c.span, &record);
            }
        }
        if let Some((at, version)) = outcome.wake {
            self.queue.schedule(
                at,
                Ev::ServeWake {
                    server: outcome.server,
                    version,
                },
            );
        }
        if outcome.transfers_queued {
            if let Some(at) = self.engine.as_ref().and_then(BatchedRow::next_transfer_due) {
                self.queue.schedule(at.max(now), Ev::ServeTransfer);
            }
        }
    }

    fn on_serve_wake(&mut self, now: SimTime, server: usize, version: u64) {
        if let Some(outcome) = self.serve_op(now, |e| e.on_wake(now, server, version)) {
            self.absorb_serve(now, outcome);
        }
    }

    fn on_serve_transfer(&mut self, now: SimTime) {
        let outcomes = self.serve_op(now, |e| e.on_transfers_due(now));
        for o in outcomes {
            self.absorb_serve(now, o);
        }
        // Re-arm for transfers still crossing the interconnect.
        if let Some(at) = self.engine.as_ref().and_then(BatchedRow::next_transfer_due) {
            self.queue.schedule(at.max(now), Ev::ServeTransfer);
        }
    }

    /// Arrival path for the batched engine: route into the continuous
    /// batch, then mirror the legacy accounting and event stream.
    fn on_serve_arrival(&mut self, now: SimTime, req: Request) {
        let priority = req.priority;
        let tag = Self::pri_tag(priority);
        let serve_req = ServeRequest {
            payload: req,
            id: req.id,
            input_tokens: req.input_tokens,
            output_tokens: req.output_tokens,
            high_priority: priority == Priority::High,
        };
        let arrival = self.serve_op(now, |e| e.on_arrival(now, serve_req));
        match arrival.kind {
            AdmissionKind::Started => {
                self.obs.record(Event::RequestDispatched {
                    t: now.as_secs(),
                    server: arrival.outcome.server,
                    request: req.id,
                    priority: tag,
                });
            }
            AdmissionKind::Queued => {
                self.obs.record(Event::RequestQueued {
                    t: now.as_secs(),
                    request: req.id,
                    priority: tag,
                });
            }
            AdmissionKind::Rejected => {
                self.report.rejected += 1;
                match priority {
                    Priority::Low => self.report.rejected_by_priority.0 += 1,
                    Priority::High => self.report.rejected_by_priority.1 += 1,
                }
                self.obs
                    .add("cluster.requests_rejected", Label::Tag(tag), 1);
                self.obs.record(Event::RequestRejected {
                    t: now.as_secs(),
                    request: req.id,
                    priority: tag,
                });
            }
        }
        self.absorb_serve(now, arrival.outcome);
    }

    fn on_arrival(&mut self, now: SimTime, req: Request) {
        self.report.offered += 1;
        let priority = req.priority;
        match priority {
            Priority::Low => self.report.offered_by_priority.0 += 1,
            Priority::High => self.report.offered_by_priority.1 += 1,
        }
        self.obs.add(
            "cluster.requests_offered",
            Label::Tag(Self::pri_tag(priority)),
            1,
        );
        if self.engine.is_some() {
            return self.on_serve_arrival(now, req);
        }
        let n = self.servers.len();
        let cursor = match priority {
            Priority::Low => &mut self.rr_cursor.0,
            Priority::High => &mut self.rr_cursor.1,
        };
        let start = *cursor;
        // First pass: an idle matching server (round-robin for fairness).
        let mut chosen: Option<usize> = None;
        for off in 0..n {
            let i = (start + off) % n;
            if self.servers[i].priority() == priority && self.servers[i].is_idle() {
                chosen = Some(i);
                break;
            }
        }
        if let Some(i) = chosen {
            *cursor = (i + 1) % n;
            self.obs.record(Event::RequestDispatched {
                t: now.as_secs(),
                server: i,
                request: req.id,
                priority: Self::pri_tag(priority),
            });
            let (end_at, version) = self.mutate_server(now, i, |s| s.start_request(now, req));
            self.start_legacy_span(now, i);
            self.queue
                .schedule(end_at, Ev::PhaseEnd { server: i, version });
            return;
        }
        // Second pass: the matching server with buffer space and the
        // shortest queue.
        let target = self
            .servers
            .iter()
            .filter(|s| s.priority() == priority && s.has_buffer_space())
            .min_by_key(|s| s.queue_len())
            .map(InferenceServer::id);
        match target {
            Some(i) => {
                self.obs.record(Event::RequestQueued {
                    t: now.as_secs(),
                    request: req.id,
                    priority: Self::pri_tag(priority),
                });
                let ok = self.servers[i].enqueue(req);
                debug_assert!(ok, "buffer space was checked");
            }
            None => {
                self.report.rejected += 1;
                match priority {
                    Priority::Low => self.report.rejected_by_priority.0 += 1,
                    Priority::High => self.report.rejected_by_priority.1 += 1,
                }
                self.obs.add(
                    "cluster.requests_rejected",
                    Label::Tag(Self::pri_tag(priority)),
                    1,
                );
                self.obs.record(Event::RequestRejected {
                    t: now.as_secs(),
                    request: req.id,
                    priority: Self::pri_tag(priority),
                });
            }
        }
    }

    fn on_phase_end(&mut self, now: SimTime, server: usize, version: u64) {
        let outcome = self.mutate_server(now, server, |s| s.on_phase_end(now, version));
        match outcome {
            PhaseOutcome::Ignored => {}
            PhaseOutcome::TokenStarted { end_at, version } => {
                // The prompt phase just finished: under the legacy
                // whole-request model the first output token becomes
                // available now.
                if let Some(traces) = self.legacy_trace.as_mut() {
                    if let Some((start, span)) = traces[server].active.as_mut() {
                        span.prefill_s = now.saturating_sub(*start).as_secs();
                        span.first_token_s = Some(now.as_secs());
                    }
                }
                self.queue
                    .schedule(end_at, Ev::PhaseEnd { server, version });
            }
            PhaseOutcome::Completed { record, next } => {
                let span = self
                    .legacy_trace
                    .as_mut()
                    .and_then(|traces| traces[server].active.take());
                self.record_completion(record);
                if let Some((_, mut span)) = span {
                    if let Some(first) = span.first_token_s {
                        span.decode_s = (now.as_secs() - first).max(0.0);
                        span.last_token_s = Some(now.as_secs());
                    }
                    self.record_request_span(&span, &record);
                }
                if let Some((end_at, version)) = next {
                    // A buffered request was dequeued and started.
                    self.start_legacy_span(now, server);
                    self.queue
                        .schedule(end_at, Ev::PhaseEnd { server, version });
                }
            }
        }
    }

    /// Opens a polca-req span for the request that just entered service
    /// on legacy server `idx` (no-op unless request tracing is on).
    fn start_legacy_span(&mut self, now: SimTime, idx: usize) {
        if let Some(traces) = self.legacy_trace.as_mut() {
            let tr = &mut traces[idx];
            tr.active = Some((now, ReqSpan::default()));
            tr.last_t = now;
        }
    }

    /// Closes `span` against a completed request and lands the derived
    /// record in the polca-req plane. The legacy engine serves the
    /// token phase as one fluid span, so its `tbt_max` falls back to
    /// the mean gap; the batched engine reports real per-iteration
    /// gaps.
    fn record_request_span(&self, span: &ReqSpan, record: &CompletedRequest) {
        let req = record.request;
        let mut rec = span.finish(
            req.id,
            Self::pri_tag(req.priority),
            record.server,
            req.arrival.as_secs(),
            record.started_at.as_secs(),
            record.completed_at.as_secs(),
            req.input_tokens,
            req.output_tokens,
        );
        // With the energy ledger attached, convert the attributed
        // joules to facility-level grams at the intensity in force when
        // the request completed.
        if let Some(acc) = self.energy.as_ref() {
            rec.pue_applied = acc.pue();
            rec.co2e_g =
                rec.joules / 3.6e6 * rec.pue_applied * acc.g_per_kwh(record.completed_at.as_secs());
        }
        self.obs.record_request(&rec);
    }

    fn record_completion(&mut self, record: CompletedRequest) {
        self.report.completed += 1;
        if let Some(acc) = self.energy.as_mut() {
            acc.add_tokens(
                record.request.priority == Priority::High,
                u64::from(record.request.output_tokens),
            );
        }
        let latency = record.latency_s();
        match record.request.priority {
            Priority::Low => {
                self.report.completed_by_priority.0 += 1;
                self.report.low_latencies_s.push(latency);
            }
            Priority::High => {
                self.report.completed_by_priority.1 += 1;
                self.report.high_latencies_s.push(latency);
            }
        }
        let tag = Self::pri_tag(record.request.priority);
        self.obs
            .add("cluster.requests_completed", Label::Tag(tag), 1);
        self.obs
            .observe("cluster.latency_s", Label::Tag(tag), latency);
        self.obs.record(Event::RequestCompleted {
            t: record.completed_at.as_secs(),
            server: record.server,
            request: record.request.id,
            priority: tag,
            latency_s: latency,
        });
    }

    /// Ticks the polca-energy accumulator with the current per-bucket
    /// ground-truth draw (no-op when no energy plan is attached). Runs
    /// on the row's own telemetry grid — and once more at the horizon —
    /// so the trapezoidal Wh integral covers exactly the windows every
    /// other ground-truth consumer sees. All bucket sums are cached
    /// incrementally (by this sim for the legacy path, by the batched
    /// engine for itself), so a tick costs O(buckets), not O(servers).
    fn tick_energy(&mut self, now: SimTime) {
        if self.energy.is_none() {
            return;
        }
        match &self.engine {
            Some(e) => {
                self.class_watts = e.class_power_watts();
                e.write_pool_power(&mut self.pool_scratch);
            }
            None => self.pool_scratch[0].1 = self.row_power_watts,
        }
        if let Some(acc) = self.energy.as_mut() {
            acc.tick(
                now.as_secs(),
                self.class_watts[0],
                self.class_watts[1],
                &self.pool_scratch,
            );
        }
    }

    fn on_telemetry(&mut self, now: SimTime) {
        self.accumulate_power(now);
        self.tick_energy(now);
        self.row_signal.record(now, self.row_power_watts);
        if self.config.record_power_series {
            self.report
                .row_power
                .push(now.as_secs(), self.row_power_watts);
        }
        self.obs.record(Event::PowerSample {
            t: now.as_secs(),
            watts: self.row_power_watts,
        });
        self.obs
            .gauge("cluster.row_power_w", Label::Global, self.row_power_watts);
        self.obs.observe(
            "cluster.row_utilization",
            Label::Global,
            self.row_power_watts / self.ctx.provisioned_watts,
        );
        if let Some(engine) = &self.engine {
            self.obs
                .gauge("serve.kv_occupancy", Label::Global, engine.kv_occupancy());
            self.obs
                .gauge("serve.batch_size", Label::Global, engine.mean_batch());
            self.obs.gauge(
                "serve.waiting_depth",
                Label::Global,
                engine.waiting_depth() as f64,
            );
            for (tag, watts) in engine.pool_power_watts() {
                self.obs.gauge("serve.pool_power_w", Label::Tag(tag), watts);
            }
        }
        let observed = self.row_signal.read(now);
        // One combined publish per tick (truth first, then the delayed
        // view) so subscribers with interior locking lock only once.
        self.config
            .oob_taps
            .publish_tick(now, self.row_power_watts, observed);
        let requests = {
            let _span = self.obs.time("controller.on_telemetry");
            let _phase = self.obs.prof().time(Phase::ControllerEval);
            self.controller.on_telemetry(now, observed, &self.ctx)
        };
        for cr in requests {
            self.issue(now, cr);
        }
        if let Some(at) = self.plane.next_delivery() {
            self.queue.schedule(at.max(now), Ev::ControlDelivery);
        }
    }

    fn issue(&mut self, now: SimTime, cr: ControlRequest) {
        if matches!(cr.action, ControlAction::PowerBrake { on: true }) {
            self.report.brake_engagements += 1;
            self.obs.add("cluster.brake_engagements", Label::Global, 1);
        }
        let targets: Vec<usize> = match cr.target {
            ControlTarget::All => (0..self.servers.len()).collect(),
            ControlTarget::Priority(p) => self
                .servers
                .iter()
                .filter(|s| s.priority() == p)
                .map(InferenceServer::id)
                .collect(),
            ControlTarget::Server(i) => vec![i.min(self.servers.len().saturating_sub(1))],
        };
        for i in targets {
            self.plane.issue(now, i, cr.action);
            self.report.commands_issued += 1;
        }
    }

    fn on_control_delivery(&mut self, now: SimTime) {
        let due = self.plane.deliver_due(now);
        for cmd in due {
            let idx = cmd.server;
            if idx >= self.servers.len() {
                continue;
            }
            self.obs.record_with(|| {
                let t = now.as_secs();
                match cmd.action {
                    ControlAction::LockClock { mhz } => Event::CapApplied {
                        t,
                        server: idx,
                        mhz,
                    },
                    ControlAction::UnlockClock => Event::Uncap { t, server: idx },
                    ControlAction::PowerCap { watts } => Event::PowerCapApplied {
                        t,
                        server: idx,
                        watts,
                    },
                    ControlAction::ClearPowerCap => Event::PowerCapCleared { t, server: idx },
                    ControlAction::PowerBrake { on } => Event::BrakeEngaged { t, server: idx, on },
                }
            });
            if self.engine.is_some() {
                let outcome = self.serve_op(now, |e| e.apply_action(now, idx, cmd.action));
                self.absorb_serve(now, outcome);
                continue;
            }
            let resched = self.mutate_server(now, idx, |s| s.apply_action(now, cmd.action));
            if let Some((end_at, version)) = resched {
                self.queue.schedule(
                    end_at,
                    Ev::PhaseEnd {
                        server: idx,
                        version,
                    },
                );
            }
        }
        if let Some(at) = self.plane.next_delivery() {
            self.queue.schedule(at.max(now), Ev::ControlDelivery);
        }
    }
}

/// A resumable row engine: the body of [`ClusterSim::run_source`]
/// exposed as an incremental `step_until` API.
///
/// A `RowSim` owns one row's complete simulation state — servers, event
/// queue, OOB control plane, delayed telemetry signal, RNG streams —
/// and advances it in bounded time slices instead of straight to the
/// horizon. That is what lets `FleetSim` interleave N rows in lockstep
/// (stepping each row one telemetry window at a time and inspecting
/// aggregate power between windows) while each row replays *exactly*
/// the event sequence it would have seen in a solo
/// [`ClusterSim::run`]: stepping to `t1` then `t2` processes the same
/// events in the same order as stepping to `t2` directly, so the
/// resumable and one-shot paths are bit-identical.
///
/// The horizon is fixed at construction because it is part of the
/// event schedule itself (the last telemetry tick is the one at or
/// before the horizon); [`finish`](Self::finish) closes the power
/// integral there and yields the [`SimReport`].
pub struct RowSim<P, S> {
    sim: ClusterSim<P>,
    source: S,
    horizon: SimTime,
    stepped_to: SimTime,
    /// Wall-clock span over the whole engine lifetime (`sim.event_loop`),
    /// recorded when the engine is finished/dropped.
    _span: Option<SpanGuard>,
}

impl<P: PowerController, S: RequestSource> RowSim<P, S> {
    /// Builds a row engine directly from a row description, mirroring
    /// [`ClusterSim::new`] + [`ClusterSim::into_row_sim`].
    pub fn new(
        row: RowConfig,
        config: SimConfig,
        controller: P,
        source: S,
        horizon: SimTime,
    ) -> Self {
        ClusterSim::new(row, config, controller).into_row_sim(source, horizon)
    }

    fn start(sim: ClusterSim<P>, source: S, horizon: SimTime) -> Self {
        let span = sim.obs.time("sim.event_loop");
        let mut row = RowSim {
            sim,
            source,
            horizon,
            stepped_to: SimTime::ZERO,
            _span: span,
        };
        if let Some(first) = row.source.next_request() {
            row.sim.queue.schedule(first.arrival, Ev::Arrival(first));
        }
        row.sim.queue.schedule(SimTime::ZERO, Ev::Telemetry);
        row
    }

    /// Processes every event at or before `min(t, horizon)`. Calling
    /// with non-increasing `t` is a no-op; the engine never runs past
    /// its horizon.
    ///
    /// # Panics
    ///
    /// Panics if the request source yields requests out of order.
    pub fn step_until(&mut self, t: SimTime) {
        let limit = t.min(self.horizon);
        // One cheap handle clone per slice; `time` is a single branch
        // when profiling is off, so the per-event cost below is nil.
        let prof = self.sim.obs.prof().clone();
        // Outer frame: its self-time is the event loop itself (peek,
        // match dispatch, bookkeeping) net of the per-event phases.
        let _step = prof.time(Phase::RowStep);
        while let Some(next_at) = self.sim.queue.peek_time() {
            if next_at > limit {
                break;
            }
            let (now, ev) = self.sim.queue.pop().expect("peeked event exists");
            self.sim.report.events_processed += 1;
            match ev {
                Ev::Arrival(req) => {
                    let _p = prof.time(Phase::Dispatch);
                    self.sim.on_arrival(now, req);
                    if let Some(next) = self.source.next_request() {
                        assert!(
                            next.arrival >= now,
                            "arrival stream out of order at request {}",
                            next.id
                        );
                        self.sim.queue.schedule(next.arrival, Ev::Arrival(next));
                    }
                }
                Ev::PhaseEnd { server, version } => {
                    let _p = prof.time(Phase::PhaseEnd);
                    self.sim.on_phase_end(now, server, version)
                }
                Ev::Telemetry => {
                    let _p = prof.time(Phase::TelemetryTick);
                    self.sim.on_telemetry(now);
                    let next_tick = now + SimTime::from_secs(self.sim.config.telemetry_interval_s);
                    if next_tick <= self.horizon {
                        self.sim.queue.schedule(next_tick, Ev::Telemetry);
                    }
                }
                Ev::ControlDelivery => {
                    let _p = prof.time(Phase::ControlDelivery);
                    self.sim.on_control_delivery(now)
                }
                Ev::ServeWake { server, version } => {
                    let _p = prof.time(Phase::ServeIteration);
                    self.sim.on_serve_wake(now, server, version)
                }
                Ev::ServeTransfer => {
                    let _p = prof.time(Phase::ServeIteration);
                    self.sim.on_serve_transfer(now)
                }
            }
        }
        if limit > self.stepped_to {
            self.stepped_to = limit;
        }
    }

    /// How far the engine has been stepped (capped at the horizon).
    pub fn now(&self) -> SimTime {
        self.stepped_to
    }

    /// The fixed simulation horizon.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Instantaneous ground-truth row power, in watts.
    pub fn row_power_watts(&self) -> f64 {
        self.sim.row_power_watts
    }

    /// Timestamp of the next queued event, or `None` when the queue is
    /// drained (the row will never act again unless a command is
    /// [`inject`](Self::inject)ed).
    ///
    /// A site-level window scheduler uses this to build its per-window
    /// work deque: a row whose next event lies beyond the window
    /// boundary needs no `step_until` call at all — by construction it
    /// would process zero events.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.sim.queue.peek_time()
    }

    /// The row context (provisioned budget, server count).
    pub fn context(&self) -> &RowContext {
        &self.sim.ctx
    }

    /// Immutable view of the servers.
    pub fn servers(&self) -> &[InferenceServer] {
        self.sim.servers()
    }

    /// The continuous-batching engine, when one is configured.
    pub fn batched_row(&self) -> Option<&BatchedRow<Request>> {
        self.sim.batched_row()
    }

    /// Read-only view of the report accumulated so far (totals are
    /// final only after [`finish`](Self::finish)).
    pub fn report_so_far(&self) -> &SimReport {
        &self.sim.report
    }

    /// Issues a control request on the row's OOB plane at `now`, as if
    /// the row's own controller had emitted it — the hook a fleet-level
    /// budget enforcer uses to engage a power brake across rows. The
    /// command pays the same OOB latency (and failure) model as any
    /// controller-issued command.
    ///
    /// # Panics
    ///
    /// Panics if `now` is earlier than events already processed.
    pub fn inject(&mut self, now: SimTime, cr: ControlRequest) {
        self.sim.issue(now, cr);
        if let Some(at) = self.sim.plane.next_delivery() {
            self.sim.queue.schedule(at.max(now), Ev::ControlDelivery);
        }
    }

    /// Steps to the horizon if not already there, closes the power
    /// integral, and returns the final report.
    pub fn finish(mut self) -> SimReport {
        self.step_until(self.horizon);
        let sim = &mut self.sim;
        sim.accumulate_power(self.horizon);
        // Seal the polca-energy account: close the last (possibly
        // partial) telemetry window at the horizon, then land the
        // finished row in the recorder for the main-thread ledger.
        sim.tick_energy(self.horizon);
        if let Some(acc) = sim.energy.take() {
            let row = acc.finish(self.horizon.as_secs(), sim.busy_integral);
            sim.obs.record_energy(row);
        }
        sim.report.duration = self.horizon;
        sim.report.mean_row_watts = if self.horizon == SimTime::ZERO {
            sim.row_power_watts
        } else {
            sim.power_integral / self.horizon.as_secs()
        };
        std::mem::replace(&mut sim.report, blank_report(0.0))
    }
}

/// An empty [`SimReport`] used to move the real one out of the engine.
fn blank_report(peak: f64) -> SimReport {
    SimReport {
        offered: 0,
        completed: 0,
        rejected: 0,
        low_latencies_s: Vec::new(),
        high_latencies_s: Vec::new(),
        completed_by_priority: (0, 0),
        offered_by_priority: (0, 0),
        rejected_by_priority: (0, 0),
        row_power: TimeSeries::new(),
        peak_row_watts: peak,
        mean_row_watts: 0.0,
        brake_engagements: 0,
        commands_issued: 0,
        events_processed: 0,
        duration: SimTime::ZERO,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn small_row() -> RowConfig {
        let mut row = RowConfig::paper_inference_row();
        row.base_servers = 4;
        row
    }

    fn mk_request(id: u64, at: f64, priority: Priority) -> Request {
        Request::new(id, t(at), 1024, 64, priority)
    }

    #[test]
    fn empty_run_reports_idle_power() {
        let sim = ClusterSim::new(small_row(), SimConfig::default(), NoopController);
        let idle = sim.servers()[0].power_watts() * 4.0;
        let report = sim.run(std::iter::empty(), t(100.0));
        assert_eq!(report.completed, 0);
        assert_eq!(report.offered, 0);
        assert!((report.mean_row_watts - idle).abs() < 1.0);
        assert!((report.peak_row_watts - idle).abs() < 1.0);
    }

    #[test]
    fn single_request_completes_with_service_latency() {
        let sim = ClusterSim::new(small_row(), SimConfig::default(), NoopController);
        let reqs = vec![mk_request(1, 0.0, Priority::Low)];
        let report = sim.run(reqs, t(500.0));
        assert_eq!(report.completed, 1);
        assert_eq!(report.rejected, 0);
        assert_eq!(report.low_latencies_s.len(), 1);
        // No queueing: latency equals service time, which for a
        // 1024/64 BLOOM request is a few seconds.
        let lat = report.low_latencies_s[0];
        assert!((1.0..30.0).contains(&lat), "latency {lat}");
    }

    #[test]
    fn requests_route_to_matching_priority_servers() {
        let sim = ClusterSim::new(small_row(), SimConfig::default(), NoopController);
        // 4 servers: 2 low, 2 high. Offer 3 concurrent high requests:
        // two start, one queues (buffers), so all complete eventually.
        let reqs = (0..3)
            .map(|i| mk_request(i, 0.0, Priority::High))
            .collect::<Vec<_>>();
        let report = sim.run(reqs, t(1000.0));
        assert_eq!(report.completed, 3);
        assert_eq!(report.completed_by_priority, (0, 3));
    }

    #[test]
    fn overload_rejects_when_buffers_full() {
        let sim = ClusterSim::new(small_row(), SimConfig::default(), NoopController);
        // 2 low servers × (1 active + 1 buffered) = 4 capacity; the 5th
        // concurrent low request is rejected.
        let reqs = (0..5)
            .map(|i| mk_request(i, 0.0, Priority::Low))
            .collect::<Vec<_>>();
        let report = sim.run(reqs, t(2000.0));
        assert_eq!(report.rejected, 1);
        assert_eq!(report.completed, 4);
    }

    #[test]
    fn queued_request_pays_waiting_latency() {
        let sim = ClusterSim::new(small_row(), SimConfig::default(), NoopController);
        let reqs = (0..3)
            .map(|i| mk_request(i, 0.0, Priority::Low))
            .collect::<Vec<_>>();
        let report = sim.run(reqs, t(2000.0));
        let mut lats = report.low_latencies_s.clone();
        lats.sort_by(f64::total_cmp);
        // The buffered request waited for a full service ahead of it.
        assert!(lats[2] > lats[0] * 1.8, "{lats:?}");
    }

    #[test]
    fn power_rises_while_serving() {
        let sim = ClusterSim::new(small_row(), SimConfig::default(), NoopController);
        let idle_watts = sim.servers().iter().map(|s| s.power_watts()).sum::<f64>();
        let reqs = (0..4)
            .map(|i| mk_request(i, 10.0, Priority::Low))
            .collect::<Vec<_>>();
        let report = sim.run(reqs, t(300.0));
        assert!(report.peak_row_watts > idle_watts + 1000.0);
        assert!(!report.row_power.is_empty());
        assert!(report.row_power.peak().unwrap() <= report.peak_row_watts);
    }

    #[test]
    fn controller_commands_reach_servers_and_stretch_latency() {
        // A controller that locks every server to 1110 MHz at t = 0.
        struct LockAll {
            done: bool,
        }
        impl PowerController for LockAll {
            fn on_telemetry(
                &mut self,
                _now: SimTime,
                _obs: Option<f64>,
                _ctx: &RowContext,
            ) -> Vec<ControlRequest> {
                if self.done {
                    return Vec::new();
                }
                self.done = true;
                vec![ControlRequest {
                    target: ControlTarget::All,
                    action: ControlAction::LockClock { mhz: 1110.0 },
                }]
            }
        }

        let cfg = SimConfig {
            oob_cap_latency_s: (1.0, 2.0), // fast plane: the lock lands before requests
            ..Default::default()
        };
        let reqs = vec![
            mk_request(1, 60.0, Priority::Low),
            mk_request(2, 60.0, Priority::High),
        ];
        let capped =
            ClusterSim::new(small_row(), cfg, LockAll { done: false }).run(reqs.clone(), t(2000.0));
        let free =
            ClusterSim::new(small_row(), SimConfig::default(), NoopController).run(reqs, t(2000.0));
        assert_eq!(capped.completed, 2);
        assert!(capped.commands_issued >= 4);
        assert!(
            capped.low_latencies_s[0] > free.low_latencies_s[0],
            "{} vs {}",
            capped.low_latencies_s[0],
            free.low_latencies_s[0]
        );
    }

    #[test]
    fn brake_engagements_are_counted() {
        struct BrakeOnce {
            fired: bool,
        }
        impl PowerController for BrakeOnce {
            fn on_telemetry(
                &mut self,
                _now: SimTime,
                _obs: Option<f64>,
                _ctx: &RowContext,
            ) -> Vec<ControlRequest> {
                if self.fired {
                    return Vec::new();
                }
                self.fired = true;
                vec![ControlRequest {
                    target: ControlTarget::All,
                    action: ControlAction::PowerBrake { on: true },
                }]
            }
        }
        let report = ClusterSim::new(
            small_row(),
            SimConfig::default(),
            BrakeOnce { fired: false },
        )
        .run(std::iter::empty(), t(100.0));
        assert_eq!(report.brake_engagements, 1);
    }

    #[test]
    fn identical_seeds_reproduce_identical_reports() {
        let reqs: Vec<Request> = (0..50)
            .map(|i| {
                mk_request(
                    i,
                    i as f64 * 3.0,
                    if i % 2 == 0 {
                        Priority::Low
                    } else {
                        Priority::High
                    },
                )
            })
            .collect();
        let a = ClusterSim::new(small_row(), SimConfig::default(), NoopController)
            .run(reqs.clone(), t(1000.0));
        let b =
            ClusterSim::new(small_row(), SimConfig::default(), NoopController).run(reqs, t(1000.0));
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.low_latencies_s, b.low_latencies_s);
        assert_eq!(a.peak_row_watts, b.peak_row_watts);
    }

    /// A mixed 50-request stream exercising queueing and both priorities.
    fn mixed_requests() -> Vec<Request> {
        (0..50)
            .map(|i| {
                mk_request(
                    i,
                    i as f64 * 3.0,
                    if i % 2 == 0 {
                        Priority::Low
                    } else {
                        Priority::High
                    },
                )
            })
            .collect()
    }

    #[test]
    fn stepped_rowsim_matches_one_shot_run() {
        let reqs = mixed_requests();
        let one_shot = ClusterSim::new(small_row(), SimConfig::default(), NoopController)
            .run(reqs.clone(), t(1000.0));
        let mut row = RowSim::new(
            small_row(),
            SimConfig::default(),
            NoopController,
            reqs.into_iter(),
            t(1000.0),
        );
        // Irregular slice boundaries, including repeats and off-grid times.
        for s in [0.0, 1.0, 1.0, 3.7, 250.0, 250.0, 999.9, 1500.0] {
            row.step_until(t(s));
        }
        assert_eq!(row.now(), t(1000.0));
        let stepped = row.finish();
        assert_eq!(stepped.completed, one_shot.completed);
        assert_eq!(stepped.offered, one_shot.offered);
        assert_eq!(stepped.low_latencies_s, one_shot.low_latencies_s);
        assert_eq!(stepped.high_latencies_s, one_shot.high_latencies_s);
        assert_eq!(stepped.peak_row_watts, one_shot.peak_row_watts);
        assert_eq!(stepped.mean_row_watts, one_shot.mean_row_watts);
        assert_eq!(stepped.events_processed, one_shot.events_processed);
        assert_eq!(stepped.row_power.len(), one_shot.row_power.len());
    }

    #[test]
    fn rowsim_exposes_progress_and_state() {
        let mut row = RowSim::new(
            small_row(),
            SimConfig::default(),
            NoopController,
            std::iter::empty(),
            t(100.0),
        );
        assert_eq!(row.horizon(), t(100.0));
        assert_eq!(row.servers().len(), 4);
        assert!(row.context().provisioned_watts > 0.0);
        row.step_until(t(10.0));
        assert_eq!(row.now(), t(10.0));
        assert!(row.row_power_watts() > 0.0);
        assert!(row.report_so_far().events_processed > 0);
        let report = row.finish();
        assert_eq!(report.duration, t(100.0));
    }

    #[test]
    fn injected_brake_engages_servers() {
        let reqs = mixed_requests();
        let free = ClusterSim::new(small_row(), SimConfig::default(), NoopController)
            .run(reqs.clone(), t(1000.0));
        let mut row = RowSim::new(
            small_row(),
            SimConfig::default(),
            NoopController,
            reqs.into_iter(),
            t(1000.0),
        );
        row.step_until(t(10.0));
        row.inject(
            t(10.0),
            ControlRequest {
                target: ControlTarget::All,
                action: ControlAction::PowerBrake { on: true },
            },
        );
        let braked = row.finish();
        assert_eq!(braked.brake_engagements, 1);
        assert!(braked.commands_issued >= 4);
        // The brake throttles every server for the rest of the run, so
        // time-weighted mean power drops versus the unbraked run of the
        // same stream (the pre-brake peak is unaffected).
        assert!(
            braked.mean_row_watts < free.mean_row_watts,
            "{} vs {}",
            braked.mean_row_watts,
            free.mean_row_watts
        );
    }

    #[test]
    fn telemetry_observation_is_delayed() {
        struct Probe {
            first_observation_at: Option<f64>,
        }
        impl PowerController for Probe {
            fn on_telemetry(
                &mut self,
                now: SimTime,
                obs: Option<f64>,
                _ctx: &RowContext,
            ) -> Vec<ControlRequest> {
                if obs.is_some() && self.first_observation_at.is_none() {
                    self.first_observation_at = Some(now.as_secs());
                }
                Vec::new()
            }
        }
        // Run and inspect via a side-channel: the probe mutates itself,
        // so thread it through a report-visible effect instead — issue a
        // brake when first observing, and check the engagement count.
        struct BrakeWhenObserved;
        impl PowerController for BrakeWhenObserved {
            fn on_telemetry(
                &mut self,
                now: SimTime,
                obs: Option<f64>,
                _ctx: &RowContext,
            ) -> Vec<ControlRequest> {
                assert!(
                    obs.is_none() || now.as_secs() >= 2.0,
                    "observation available before the 2 s delay"
                );
                Vec::new()
            }
        }
        let _ = Probe {
            first_observation_at: None,
        };
        let report = ClusterSim::new(small_row(), SimConfig::default(), BrakeWhenObserved)
            .run(std::iter::empty(), t(20.0));
        assert_eq!(report.brake_engagements, 0);
    }
}
