//! Multi-datacenter site simulation with deterministic parallel row
//! execution.
//!
//! [`SiteSim`] generalizes the single-datacenter fleet to the scale the
//! provisioning literature targets (~25+ datacenters behind one
//! substation): N datacenters of M rows each under a
//! [`SiteHierarchy`], with budget monitoring — and optional active
//! enforcement — at the PDU, datacenter, *and* site level.
//!
//! # Window/merge protocol
//!
//! Rows are resumable [`RowSim`] engines with fully independent state:
//! their own event queue, RNG stream ([`row_seed`]), recorder cell,
//! and OOB control plane. The site steps them in lockstep telemetry
//! windows:
//!
//! 1. **Plan.** From the cached next-event time of every row, build
//!    the window's work deque: only rows with an event due at or
//!    before the boundary are listed (an idle row costs nothing — see
//!    `ProfCounter::FleetRowsSkipped`).
//! 2. **Step.** Workers on a scoped thread pool claim due rows off an
//!    atomic cursor and run `step_until(boundary)`. Rows share no
//!    mutable state, so any claim order yields the same per-row
//!    result; with `threads == 1` the main thread just walks the
//!    deque in order.
//! 3. **Merge** (`fleet.merge` phase). After a barrier, the main
//!    thread alone refreshes the per-row caches (next event time,
//!    instantaneous power) in canonical row order.
//! 4. **Observe** (`fleet.power_aggregation` / `site.aggregate`
//!    phases). Still single-threaded, aggregate row power up the
//!    hierarchy, record gauges and violation events in canonical
//!    order, and evaluate enforcement; brake commands are injected
//!    back into the affected rows' queues before the next window.
//!
//! # Determinism argument
//!
//! Everything emitted into the *site-level* recorder happens in steps
//! 3–4 on the main thread, in row/PDU/datacenter index order — the
//! thread pool never touches it. Everything a *row* emits goes to that
//! row's private recorder, and a row's trajectory over a window is a
//! pure function of its state at the previous boundary (plus injected
//! commands, which are decided in step 4 from merged state only). So
//! `threads = 1` and `threads = K` produce byte-identical artifacts,
//! and a 1-datacenter site is bit-identical to the historical
//! single-datacenter `FleetSim` — both are pinned by proptests in
//! `tests/site_sim.rs`.

use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};

use polca_obs::{Event, Label, Phase, ProfCounter, Recorder};
use polca_sim::SimTime;
use polca_telemetry::ControlAction;

use crate::fleet::row_seed;
use crate::hierarchy::SiteHierarchy;
use crate::request::{Priority, Request};
use crate::row::RowConfig;
use crate::sim::{
    ClusterSim, ControlRequest, ControlTarget, PowerController, RequestSource, RowSim, SimConfig,
    SimReport,
};

/// Aggregate power must fall below this fraction of a budget before an
/// enforcement brake releases (hysteresis against brake/unbrake limit
/// cycles at the breaker threshold). Shared by every hierarchy level.
pub(crate) const RELEASE_FRACTION: f64 = 0.95;

/// Each row consumes its pre-split share of the arrival stream: an
/// owned iterator, so rows can step on worker threads without sharing
/// a dispatcher.
type RowFeed = std::vec::IntoIter<Request>;

/// One row engine driving its owned feed.
type RowEngine<P> = RowSim<P, RowFeed>;

/// Splits `source` across `n` rows by strict round-robin: request `k`
/// goes to row `k % n`, preserving per-row arrival order. This is
/// exactly the stream the historical lazy shared dispatcher handed
/// each row, but materialized up front so feeds are independent.
fn split_round_robin<S: RequestSource>(mut source: S, n: usize) -> Vec<RowFeed> {
    let mut buckets: Vec<Vec<Request>> = (0..n).map(|_| Vec::new()).collect();
    let mut next = 0;
    while let Some(req) = source.next_request() {
        buckets[next].push(req);
        next = (next + 1) % n;
    }
    buckets.into_iter().map(Vec::into_iter).collect()
}

/// The brake command a budget enforcer injects into member rows.
fn brake_request(on: bool) -> ControlRequest {
    ControlRequest {
        target: ControlTarget::All,
        action: ControlAction::PowerBrake { on },
    }
}

/// Site-level simulator knobs, wrapping the per-row [`SimConfig`].
///
/// A default config is a 1-datacenter, 1-row, single-threaded site —
/// the degenerate case that reproduces the legacy paths bit for bit.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteConfig {
    /// Number of datacenters on the site bus.
    pub datacenters: usize,
    /// Rows per datacenter.
    pub rows_per_datacenter: usize,
    /// Rows behind each PDU (the last PDU of a datacenter may feed
    /// fewer).
    pub rows_per_pdu: usize,
    /// Per-PDU budget override in watts (`None`: provisioned, or the
    /// oversubscription-derived budget).
    pub pdu_budget_watts: Option<f64>,
    /// Per-datacenter budget override in watts.
    pub datacenter_budget_watts: Option<f64>,
    /// Site budget override in watts.
    pub site_budget_watts: Option<f64>,
    /// PDU oversubscription fraction `f` (budget = provisioned /
    /// (1 + f)); an absolute override wins.
    pub pdu_oversubscription: Option<f64>,
    /// Datacenter oversubscription fraction.
    pub datacenter_oversubscription: Option<f64>,
    /// Site oversubscription fraction.
    pub site_oversubscription: Option<f64>,
    /// When `true`, actively engage the power brake on every row
    /// behind an overloaded PDU, datacenter, or site (release
    /// hysteresis at [`RELEASE_FRACTION`]); when `false` (default)
    /// budgets are monitored only.
    pub enforce_budgets: bool,
    /// Worker threads for parallel row stepping (clamped to the row
    /// count; `0` or `1` means sequential). Artifacts are
    /// byte-identical at any value.
    pub threads: usize,
    /// The per-row configuration template. `seed` is stream-split per
    /// row via [`row_seed`]; `recorder` becomes the *site-level*
    /// recorder while each row records into a fresh cell of the same
    /// level; `oob_taps` fan out with the global row index attached.
    pub base: SimConfig,
}

impl Default for SiteConfig {
    fn default() -> Self {
        SiteConfig {
            datacenters: 1,
            rows_per_datacenter: 1,
            rows_per_pdu: 1,
            pdu_budget_watts: None,
            datacenter_budget_watts: None,
            site_budget_watts: None,
            pdu_oversubscription: None,
            datacenter_oversubscription: None,
            site_oversubscription: None,
            enforce_budgets: false,
            threads: 1,
            base: SimConfig::default(),
        }
    }
}

impl SiteConfig {
    /// Whether this config engages the site level at all: more than
    /// one datacenter, or an explicit site budget/oversubscription.
    /// When inactive, no site-scoped gauges or events are emitted and
    /// the run is bit-identical to the single-datacenter fleet path.
    pub fn site_active(&self) -> bool {
        self.datacenters > 1
            || self.site_budget_watts.is_some()
            || self.site_oversubscription.is_some()
    }

    /// Builds the [`SiteHierarchy`] this config describes for a row
    /// provisioned at `row_provisioned_watts`.
    pub fn hierarchy(&self, row_provisioned_watts: f64) -> SiteHierarchy {
        let mut h = SiteHierarchy::uniform(
            self.datacenters,
            self.rows_per_datacenter,
            self.rows_per_pdu,
            row_provisioned_watts,
        );
        if let Some(f) = self.pdu_oversubscription {
            h = h.with_pdu_oversubscription(f);
        }
        if let Some(f) = self.datacenter_oversubscription {
            h = h.with_datacenter_oversubscription(f);
        }
        if let Some(f) = self.site_oversubscription {
            h = h.with_site_oversubscription(f);
        }
        if let Some(w) = self.pdu_budget_watts {
            h = h.with_pdu_budget(w);
        }
        if let Some(w) = self.datacenter_budget_watts {
            h = h.with_datacenter_budget(w);
        }
        if let Some(w) = self.site_budget_watts {
            h = h.with_site_budget(w);
        }
        h
    }
}

/// Everything a site run produces.
#[derive(Debug, Clone)]
pub struct SiteReport {
    /// Per-row reports, in global row order.
    pub rows: Vec<SimReport>,
    /// Per-row recorders (fresh cells at the site config's level; row
    /// 0's event log is bit-identical to a solo run when budgets are
    /// not enforced).
    pub row_recorders: Vec<Recorder>,
    /// Number of datacenters simulated.
    pub datacenters: usize,
    /// Rows per datacenter.
    pub rows_per_datacenter: usize,
    /// Highest aggregate power seen at each PDU (global PDU order).
    pub pdu_peak_watts: Vec<f64>,
    /// Budget of each PDU, in watts.
    pub pdu_budget_watts: Vec<f64>,
    /// Highest aggregate power seen in each datacenter, in watts.
    pub datacenter_peak_watts: Vec<f64>,
    /// The per-datacenter budget, in watts.
    pub datacenter_budget_watts: f64,
    /// Highest site aggregate power seen, in watts.
    pub site_peak_watts: f64,
    /// The site budget, in watts.
    pub site_budget_watts: f64,
    /// Boundary samples at which some PDU exceeded its budget.
    pub pdu_violation_samples: u64,
    /// Boundary samples at which some datacenter exceeded its budget.
    pub datacenter_violation_samples: u64,
    /// Boundary samples at which the site exceeded its budget.
    pub site_violation_samples: u64,
    /// Site-level brake engagements, all levels (enforcement only).
    pub fleet_brake_engagements: u64,
    /// Duration simulated.
    pub duration: SimTime,
}

impl SiteReport {
    /// Total requests offered across rows.
    pub fn offered(&self) -> u64 {
        self.rows.iter().map(|r| r.offered).sum()
    }

    /// Total requests completed across rows.
    pub fn completed(&self) -> u64 {
        self.rows.iter().map(|r| r.completed).sum()
    }

    /// Total requests rejected across rows.
    pub fn rejected(&self) -> u64 {
        self.rows.iter().map(|r| r.rejected).sum()
    }

    /// Total discrete events processed across rows.
    pub fn events_processed(&self) -> u64 {
        self.rows.iter().map(|r| r.events_processed).sum()
    }

    /// All completion latencies for `priority`, concatenated in global
    /// row order (quantiles over the site, not one row).
    pub fn latencies(&self, priority: Priority) -> Vec<f64> {
        let mut all = Vec::new();
        for r in &self.rows {
            all.extend_from_slice(r.latencies(priority));
        }
        all
    }

    /// Global row indices of datacenter `d`.
    pub fn rows_in_datacenter(&self, d: usize) -> Range<usize> {
        d * self.rows_per_datacenter..(d + 1) * self.rows_per_datacenter
    }

    /// Site peak power as a fraction of the site budget.
    pub fn site_peak_utilization(&self) -> f64 {
        self.site_peak_watts / self.site_budget_watts
    }

    /// Peak power of datacenter `d` as a fraction of its budget.
    pub fn datacenter_peak_utilization(&self, d: usize) -> f64 {
        self.datacenter_peak_watts[d] / self.datacenter_budget_watts
    }

    /// Sum of the rows' time-weighted mean powers (the site's mean
    /// aggregate power).
    pub fn mean_site_watts(&self) -> f64 {
        self.rows.iter().map(|r| r.mean_row_watts).sum()
    }
}

/// Boundary-time monitor state: hierarchy roll-up, peaks, violation
/// counters, and per-level brake hysteresis. Only ever touched by the
/// main thread, between windows.
struct SiteMonitor {
    obs: Recorder,
    hierarchy: SiteHierarchy,
    enforce: bool,
    site_active: bool,
    pdu_braked: Vec<bool>,
    dc_braked: Vec<bool>,
    site_braked: bool,
    /// The brake state actually applied to each row (the OR of the
    /// levels above it, tracked explicitly so overlapping engagements
    /// release correctly).
    row_braked: Vec<bool>,
    pdu_peak: Vec<f64>,
    dc_peak: Vec<f64>,
    site_peak: f64,
    pdu_violations: u64,
    dc_violations: u64,
    site_violations: u64,
    brakes: u64,
}

impl SiteMonitor {
    fn new(obs: Recorder, hierarchy: SiteHierarchy, enforce: bool, site_active: bool) -> Self {
        let (n_rows, n_pdus, n_dcs) = (
            hierarchy.n_rows(),
            hierarchy.n_pdus(),
            hierarchy.n_datacenters(),
        );
        SiteMonitor {
            obs,
            hierarchy,
            enforce,
            site_active,
            pdu_braked: vec![false; n_pdus],
            dc_braked: vec![false; n_dcs],
            site_braked: false,
            row_braked: vec![false; n_rows],
            pdu_peak: vec![0.0; n_pdus],
            dc_peak: vec![0.0; n_dcs],
            site_peak: 0.0,
            pdu_violations: 0,
            dc_violations: 0,
            site_violations: 0,
            brakes: 0,
        }
    }

    /// Datacenter metric label: a 1-datacenter site keeps the legacy
    /// unpartitioned series so its artifacts match the historical
    /// fleet byte for byte.
    fn dc_label(&self, d: usize) -> Label {
        if self.hierarchy.n_datacenters() == 1 {
            Label::Global
        } else {
            Label::Datacenter(d)
        }
    }

    /// Aggregates ground-truth power at a window boundary: records
    /// site metrics/events, tracks peaks and violations, and (in
    /// enforcement mode) decides per-row brake toggles, returned in
    /// canonical row order for the caller to inject.
    fn observe(&mut self, now: SimTime, row_watts: &[f64], stepped: usize) -> Vec<(usize, bool)> {
        let _p = self.obs.prof().time(Phase::PowerAggregation);
        self.obs.prof().count(ProfCounter::FleetWindows, 1);
        self.obs
            .prof()
            .count(ProfCounter::FleetRowWindows, stepped as u64);
        self.obs.prof().count(
            ProfCounter::FleetRowsSkipped,
            (row_watts.len() - stepped) as u64,
        );
        let t = now.as_secs();
        let mut toggles = Vec::new();
        for (i, &w) in row_watts.iter().enumerate() {
            self.obs.gauge("fleet.row_power_w", Label::Row(i), w);
            self.obs.record(Event::FleetPowerSample {
                t,
                row: i,
                watts: w,
            });
        }
        let pdu_powers = self.hierarchy.pdu_powers(row_watts);
        let mut any_pdu_violation = false;
        for (pdu, &w) in pdu_powers.iter().enumerate() {
            let budget = self.hierarchy.pdu_budget_watts(pdu);
            self.obs.gauge("fleet.pdu_power_w", Label::Pdu(pdu), w);
            if w > self.pdu_peak[pdu] {
                self.pdu_peak[pdu] = w;
            }
            if w > budget {
                any_pdu_violation = true;
                self.obs.add("fleet.pdu_violations", Label::Pdu(pdu), 1);
                self.obs.record(Event::BudgetViolation {
                    t,
                    scope: "pdu",
                    unit: pdu,
                    watts: w,
                    budget_watts: budget,
                });
            }
            if self.enforce {
                self.enforce_pdu(pdu, w, budget, &mut toggles);
            }
        }
        if any_pdu_violation {
            self.pdu_violations += 1;
        }
        let dc_powers = self.hierarchy.datacenter_powers(row_watts);
        let dc_budget = self.hierarchy.datacenter_budget_watts();
        let _site_phase = if self.site_active {
            self.obs.prof().time(Phase::SiteAggregation)
        } else {
            None
        };
        let mut any_dc_violation = false;
        for (d, &w) in dc_powers.iter().enumerate() {
            let label = self.dc_label(d);
            self.obs.gauge("fleet.datacenter_power_w", label, w);
            if w > self.dc_peak[d] {
                self.dc_peak[d] = w;
            }
            if w > dc_budget {
                any_dc_violation = true;
                self.obs.add("fleet.datacenter_violations", label, 1);
                self.obs.record(Event::BudgetViolation {
                    t,
                    scope: "datacenter",
                    unit: d,
                    watts: w,
                    budget_watts: dc_budget,
                });
            }
            if self.enforce {
                self.enforce_datacenter(d, w, dc_budget, &mut toggles);
            }
        }
        if any_dc_violation {
            self.dc_violations += 1;
        }
        let site_w: f64 = dc_powers.iter().sum();
        if site_w > self.site_peak {
            self.site_peak = site_w;
        }
        if self.site_active {
            let site_budget = self.hierarchy.site_budget_watts();
            self.obs.gauge("site.power_w", Label::Global, site_w);
            if site_w > site_budget {
                self.site_violations += 1;
                self.obs.add("site.budget_violations", Label::Global, 1);
                self.obs.record(Event::BudgetViolation {
                    t,
                    scope: "site",
                    unit: 0,
                    watts: site_w,
                    budget_watts: site_budget,
                });
            }
            if self.enforce {
                self.enforce_site(site_w, site_budget, &mut toggles);
            }
        }
        toggles
    }

    /// PDU-scoped brake with hysteresis: engage above budget, release
    /// below [`RELEASE_FRACTION`] of it.
    fn enforce_pdu(
        &mut self,
        pdu: usize,
        watts: f64,
        budget: f64,
        toggles: &mut Vec<(usize, bool)>,
    ) {
        let engage = watts > budget && !self.pdu_braked[pdu];
        let release = self.pdu_braked[pdu] && watts < budget * RELEASE_FRACTION;
        if !(engage || release) {
            return;
        }
        self.pdu_braked[pdu] = engage;
        if engage {
            self.brakes += 1;
            self.obs.add("fleet.brake_engagements", Label::Pdu(pdu), 1);
        }
        self.toggle_rows(self.hierarchy.rows_in_pdu(pdu), engage, toggles);
    }

    /// Datacenter-scoped brake across every row of the datacenter.
    fn enforce_datacenter(
        &mut self,
        d: usize,
        watts: f64,
        budget: f64,
        toggles: &mut Vec<(usize, bool)>,
    ) {
        let engage = watts > budget && !self.dc_braked[d];
        let release = self.dc_braked[d] && watts < budget * RELEASE_FRACTION;
        if !(engage || release) {
            return;
        }
        self.dc_braked[d] = engage;
        if engage {
            self.brakes += 1;
            let label = self.dc_label(d);
            self.obs.add("fleet.brake_engagements", label, 1);
        }
        self.toggle_rows(self.hierarchy.rows_in_datacenter(d), engage, toggles);
    }

    /// Site-scoped brake across every row on the bus.
    fn enforce_site(&mut self, watts: f64, budget: f64, toggles: &mut Vec<(usize, bool)>) {
        let engage = watts > budget && !self.site_braked;
        let release = self.site_braked && watts < budget * RELEASE_FRACTION;
        if !(engage || release) {
            return;
        }
        self.site_braked = engage;
        if engage {
            self.brakes += 1;
            self.obs.add("site.brake_engagements", Label::Global, 1);
        }
        self.toggle_rows(0..self.hierarchy.n_rows(), engage, toggles);
    }

    /// Applies a level's engage/release decision to its member rows,
    /// emitting a toggle only when the row's *applied* state changes: a
    /// release at one level never lifts a brake another level still
    /// requires.
    fn toggle_rows(&mut self, rows: Range<usize>, on: bool, toggles: &mut Vec<(usize, bool)>) {
        for row in rows {
            if on {
                if !self.row_braked[row] {
                    self.row_braked[row] = true;
                    toggles.push((row, true));
                }
            } else if self.row_braked[row] && !self.any_level_braking(row) {
                self.row_braked[row] = false;
                toggles.push((row, false));
            }
        }
    }

    /// Whether any hierarchy level above `row` currently holds a brake.
    fn any_level_braking(&self, row: usize) -> bool {
        self.pdu_braked[self.hierarchy.pdu_of(row)]
            || self.dc_braked[self.hierarchy.datacenter_of(row)]
            || self.site_braked
    }
}

/// A window's work deque: the boundary time plus the rows with a due
/// event, claimed index-by-index off an atomic cursor by the workers.
struct WindowPlan {
    target: SimTime,
    due: Vec<usize>,
}

/// Claims due rows off the shared cursor and steps each to the window
/// boundary. Runs on every pool thread, main included.
fn drain_due<P: PowerController>(
    cells: &[Mutex<RowEngine<P>>],
    plan: &Mutex<WindowPlan>,
    cursor: &AtomicUsize,
) {
    loop {
        let k = cursor.fetch_add(1, Ordering::Relaxed);
        let (target, row) = {
            let p = plan.lock().expect("window plan poisoned");
            match p.due.get(k) {
                Some(&row) => (p.target, row),
                None => break,
            }
        };
        cells[row]
            .lock()
            .expect("row engine poisoned")
            .step_until(target);
    }
}

/// N datacenters of M lockstep row engines under the site power
/// hierarchy, optionally stepped by a scoped worker pool.
///
/// See the [module docs](self) for the window/merge protocol and the
/// determinism contract. Controller construction is a factory so every
/// row gets an independent policy instance (policies carry mutable
/// per-row state).
pub struct SiteSim<P> {
    rows: Vec<RowEngine<P>>,
    row_recorders: Vec<Recorder>,
    monitor: SiteMonitor,
    window: SimTime,
    horizon: SimTime,
    threads: usize,
}

impl<P: PowerController> SiteSim<P> {
    /// Builds a site of `site.datacenters × site.rows_per_datacenter`
    /// copies of `row`, each driven by its round-robin share of
    /// `source` and controlled by its own
    /// `make_controller(global_row_index, row_recorder)` instance, up
    /// to `horizon`.
    ///
    /// # Panics
    ///
    /// Panics if any shape count is zero or the base telemetry
    /// interval is not positive.
    pub fn new<S: RequestSource>(
        row: RowConfig,
        site: SiteConfig,
        mut make_controller: impl FnMut(usize, &Recorder) -> P,
        source: S,
        horizon: SimTime,
    ) -> Self {
        assert!(
            site.base.telemetry_interval_s > 0.0,
            "site stepping needs a positive telemetry interval"
        );
        let hierarchy = site.hierarchy(row.provisioned_watts());
        let site_active = site.site_active();
        let n = hierarchy.n_rows();
        let feeds = split_round_robin(source, n);
        let mut rows = Vec::with_capacity(n);
        let mut row_recorders = Vec::with_capacity(n);
        for (i, feed) in feeds.into_iter().enumerate() {
            let mut recorder = site.base.recorder.fresh_cell();
            // Stamp each row's hierarchy coordinates onto its energy
            // plan so the polca-energy ledger can roll rows up into
            // PDU/datacenter/site levels.
            if let Some(plan) = site.base.recorder.energy_plan() {
                recorder = recorder.with_energy(plan.at_location(
                    i,
                    hierarchy.pdu_of(i),
                    hierarchy.datacenter_of(i),
                ));
            }
            let mut cfg = site.base.clone();
            cfg.seed = row_seed(site.base.seed, i);
            cfg.recorder = recorder.clone();
            cfg.oob_taps = site.base.oob_taps.for_row(i);
            let controller = make_controller(i, &recorder);
            rows.push(ClusterSim::new(row.clone(), cfg, controller).into_row_sim(feed, horizon));
            row_recorders.push(recorder);
        }
        SiteSim {
            rows,
            row_recorders,
            monitor: SiteMonitor::new(
                site.base.recorder,
                hierarchy,
                site.enforce_budgets,
                site_active,
            ),
            window: SimTime::from_secs(site.base.telemetry_interval_s),
            horizon,
            threads: site.threads,
        }
    }

    /// Total rows across the site.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// The site power hierarchy (budgets, PDU/datacenter grouping).
    pub fn hierarchy(&self) -> &SiteHierarchy {
        &self.monitor.hierarchy
    }

    /// Runs every row to the horizon, aggregating power at each
    /// telemetry-window boundary, and returns the site report.
    pub fn run(mut self) -> SiteReport {
        let threads = self.threads.clamp(1, self.rows.len());
        if threads > 1 {
            self.run_windows_parallel(threads);
        } else {
            self.run_windows_sequential();
        }
        let h = &self.monitor.hierarchy;
        let pdu_budget_watts: Vec<f64> = (0..h.n_pdus()).map(|p| h.pdu_budget_watts(p)).collect();
        SiteReport {
            datacenters: h.n_datacenters(),
            rows_per_datacenter: h.rows_per_datacenter(),
            pdu_budget_watts,
            datacenter_budget_watts: h.datacenter_budget_watts(),
            site_budget_watts: h.site_budget_watts(),
            rows: self.rows.into_iter().map(RowSim::finish).collect(),
            row_recorders: self.row_recorders,
            pdu_peak_watts: self.monitor.pdu_peak,
            datacenter_peak_watts: self.monitor.dc_peak,
            site_peak_watts: self.monitor.site_peak,
            pdu_violation_samples: self.monitor.pdu_violations,
            datacenter_violation_samples: self.monitor.dc_violations,
            site_violation_samples: self.monitor.site_violations,
            fleet_brake_engagements: self.monitor.brakes,
            duration: self.horizon,
        }
    }

    /// The single-threaded window loop: walk the due deque in row
    /// order, then merge and observe.
    fn run_windows_sequential(&mut self) {
        let n = self.rows.len();
        let mut next_at: Vec<Option<SimTime>> =
            self.rows.iter().map(RowSim::next_event_time).collect();
        let mut row_watts: Vec<f64> = self.rows.iter().map(RowSim::row_power_watts).collect();
        let mut due: Vec<usize> = Vec::with_capacity(n);
        let mut t = SimTime::ZERO;
        loop {
            let target = (t + self.window).min(self.horizon);
            due.clear();
            due.extend((0..n).filter(|&i| next_at[i].is_some_and(|at| at <= target)));
            for &i in &due {
                self.rows[i].step_until(target);
            }
            {
                let _m = self.monitor.obs.prof().time(Phase::FleetMerge);
                for &i in &due {
                    next_at[i] = self.rows[i].next_event_time();
                    row_watts[i] = self.rows[i].row_power_watts();
                }
            }
            t = target;
            for (row, on) in self.monitor.observe(t, &row_watts, due.len()) {
                self.rows[row].inject(t, brake_request(on));
                next_at[row] = self.rows[row].next_event_time();
            }
            if t >= self.horizon {
                break;
            }
        }
    }

    /// The pooled window loop: `threads - 1` persistent scoped workers
    /// plus the main thread claim due rows off an atomic cursor each
    /// window, rendezvousing at barriers so merge/observe stay
    /// single-threaded. Spawning once for the whole run (not per
    /// window) keeps the per-window cost at two barrier waits.
    fn run_windows_parallel(&mut self, threads: usize) {
        let n = self.rows.len();
        let window = self.window;
        let horizon = self.horizon;
        let mut cells: Vec<Mutex<RowEngine<P>>> = self.rows.drain(..).map(Mutex::new).collect();
        let mut next_at: Vec<Option<SimTime>> = cells
            .iter_mut()
            .map(|c| c.get_mut().expect("row engine poisoned").next_event_time())
            .collect();
        let mut row_watts: Vec<f64> = cells
            .iter_mut()
            .map(|c| c.get_mut().expect("row engine poisoned").row_power_watts())
            .collect();
        let plan = Mutex::new(WindowPlan {
            target: SimTime::ZERO,
            due: Vec::new(),
        });
        let cursor = AtomicUsize::new(0);
        let done = AtomicBool::new(false);
        let barrier = Barrier::new(threads);
        let monitor = &mut self.monitor;
        {
            let (cells, plan, cursor, done, barrier) = (&cells, &plan, &cursor, &done, &barrier);
            std::thread::scope(|s| {
                for _ in 1..threads {
                    s.spawn(move || loop {
                        barrier.wait();
                        if done.load(Ordering::Acquire) {
                            return;
                        }
                        drain_due(cells, plan, cursor);
                        barrier.wait();
                    });
                }
                let mut due: Vec<usize> = Vec::with_capacity(n);
                let mut t = SimTime::ZERO;
                loop {
                    let target = (t + window).min(horizon);
                    due.clear();
                    due.extend((0..n).filter(|&i| next_at[i].is_some_and(|at| at <= target)));
                    {
                        let mut p = plan.lock().expect("window plan poisoned");
                        p.target = target;
                        p.due.clear();
                        p.due.extend_from_slice(&due);
                    }
                    cursor.store(0, Ordering::Relaxed);
                    barrier.wait();
                    drain_due(cells, plan, cursor);
                    barrier.wait();
                    {
                        let _m = monitor.obs.prof().time(Phase::FleetMerge);
                        for &i in &due {
                            let row = cells[i].lock().expect("row engine poisoned");
                            next_at[i] = row.next_event_time();
                            row_watts[i] = row.row_power_watts();
                        }
                    }
                    t = target;
                    for (row, on) in monitor.observe(t, &row_watts, due.len()) {
                        let mut r = cells[row].lock().expect("row engine poisoned");
                        r.inject(t, brake_request(on));
                        next_at[row] = r.next_event_time();
                    }
                    if t >= horizon {
                        done.store(true, Ordering::Release);
                        barrier.wait();
                        break;
                    }
                }
            });
        }
        self.rows = cells
            .drain(..)
            .map(|m| m.into_inner().expect("row engine poisoned"))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::NoopController;
    use polca_obs::ObsLevel;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn small_row() -> RowConfig {
        let mut row = RowConfig::paper_inference_row();
        row.base_servers = 4;
        row
    }

    fn mixed_requests(n: u64) -> Vec<Request> {
        (0..n)
            .map(|i| {
                Request::new(
                    i,
                    t(i as f64 * 3.0),
                    1024,
                    64,
                    if i % 2 == 0 {
                        Priority::Low
                    } else {
                        Priority::High
                    },
                )
            })
            .collect()
    }

    fn site_config(datacenters: usize, rows_per_datacenter: usize, threads: usize) -> SiteConfig {
        SiteConfig {
            datacenters,
            rows_per_datacenter,
            rows_per_pdu: 2,
            threads,
            base: SimConfig {
                recorder: Recorder::new(ObsLevel::Full),
                ..SimConfig::default()
            },
            ..SiteConfig::default()
        }
    }

    fn run_site(cfg: SiteConfig, horizon: f64) -> SiteReport {
        SiteSim::new(
            small_row(),
            cfg,
            |_, _: &Recorder| NoopController,
            mixed_requests(120).into_iter(),
            t(horizon),
        )
        .run()
    }

    #[test]
    fn parallel_stepping_is_byte_identical_to_sequential() {
        let seq_cfg = site_config(2, 2, 1);
        let par_cfg = site_config(2, 2, 4);
        let (seq_obs, par_obs) = (seq_cfg.base.recorder.clone(), par_cfg.base.recorder.clone());
        let seq = run_site(seq_cfg, 900.0);
        let par = run_site(par_cfg, 900.0);
        for (a, b) in seq.rows.iter().zip(&par.rows) {
            assert_eq!(a.offered, b.offered);
            assert_eq!(a.completed, b.completed);
            assert_eq!(a.events_processed, b.events_processed);
            assert_eq!(a.mean_row_watts, b.mean_row_watts);
        }
        for (a, b) in seq.row_recorders.iter().zip(&par.row_recorders) {
            assert_eq!(
                a.artifacts().events_jsonl(),
                b.artifacts().events_jsonl(),
                "per-row event logs must not depend on the thread count"
            );
        }
        let (a, b) = (seq_obs.artifacts(), par_obs.artifacts());
        assert!(!a.events.is_empty());
        assert_eq!(a.events_jsonl(), b.events_jsonl());
        assert_eq!(a.metrics_prometheus(), b.metrics_prometheus());
    }

    #[test]
    fn one_datacenter_site_without_site_knobs_stays_on_the_fleet_path() {
        let cfg = site_config(1, 2, 1);
        assert!(!cfg.site_active());
        let obs = cfg.base.recorder.clone();
        let report = run_site(cfg, 600.0);
        assert_eq!(report.datacenters, 1);
        assert_eq!(report.site_violation_samples, 0);
        let events = obs.artifacts().events_jsonl();
        assert!(!events.contains("\"site\""), "no site-scoped events");
        assert!(!obs.artifacts().metrics_json().contains("site.power_w"));
        // The site peak is still reported (it equals the datacenter's).
        assert_eq!(report.site_peak_watts, report.datacenter_peak_watts[0]);
    }

    #[test]
    fn site_budget_violations_are_recorded_per_scope() {
        let mut cfg = site_config(3, 2, 2);
        cfg.site_budget_watts = Some(1.0);
        cfg.datacenter_budget_watts = Some(1.0);
        assert!(cfg.site_active());
        let obs = cfg.base.recorder.clone();
        let report = run_site(cfg, 100.0);
        assert_eq!(report.site_violation_samples, 50); // every 2 s window
        assert_eq!(report.datacenter_violation_samples, 50);
        assert_eq!(report.fleet_brake_engagements, 0); // monitoring only
        assert!(report.site_peak_utilization() > 1.0);
        let events = obs.artifacts().events_jsonl();
        assert!(events.contains("\"scope\":\"site\""));
        assert!(events.contains("\"scope\":\"datacenter\""));
        let prom = obs.artifacts().metrics_prometheus();
        assert!(prom.contains("datacenter=\"2\""), "per-dc series:\n{prom}");
    }

    #[test]
    fn datacenter_enforcement_brakes_every_row() {
        // The historical FleetSim documented datacenter-budget
        // enforcement but only ever enforced at the PDU breaker; the
        // site monitor closes that gap.
        let mut free_cfg = site_config(1, 2, 1);
        free_cfg.datacenter_budget_watts = Some(1.0);
        let free = run_site(free_cfg.clone(), 900.0);
        let mut braked_cfg = free_cfg;
        braked_cfg.enforce_budgets = true;
        braked_cfg.base.recorder = Recorder::new(ObsLevel::Full);
        let braked = run_site(braked_cfg, 900.0);
        assert_eq!(braked.fleet_brake_engagements, 1);
        assert_eq!(braked.rows[0].brake_engagements, 1);
        assert_eq!(braked.rows[1].brake_engagements, 1);
        assert!(braked.mean_site_watts() < free.mean_site_watts());
    }

    #[test]
    fn overlapping_brakes_release_only_when_every_level_clears() {
        let h = SiteHierarchy::uniform(1, 2, 2, 1000.0);
        let mut m = SiteMonitor::new(Recorder::new(ObsLevel::Off), h, true, false);
        let mut toggles = Vec::new();
        // Both the PDU and the datacenter engage on the same sample.
        m.enforce_pdu(0, 2500.0, 2000.0, &mut toggles);
        m.enforce_datacenter(0, 2500.0, 2000.0, &mut toggles);
        assert_eq!(toggles, vec![(0, true), (1, true)]);
        // The PDU releases but the datacenter still holds: no toggle.
        toggles.clear();
        m.enforce_pdu(0, 1800.0, 2000.0, &mut toggles);
        assert!(toggles.is_empty());
        // Only once the datacenter also releases do the rows unbrake.
        m.enforce_datacenter(0, 1800.0, 2000.0, &mut toggles);
        assert_eq!(toggles, vec![(0, false), (1, false)]);
        assert_eq!(m.brakes, 2);
    }

    #[test]
    fn idle_rows_are_skipped_not_scanned() {
        // A horizon that is not a multiple of the 2 s window leaves a
        // trailing fractional window in which no row has a due event —
        // the work deque skips them all.
        let cfg = site_config(1, 2, 1);
        let obs = cfg.base.recorder.clone();
        run_site(cfg, 7.0);
        let skipped = obs
            .prof()
            .snapshot()
            .counter(polca_obs::ProfCounter::FleetRowsSkipped);
        assert!(skipped >= 1, "trailing window skips idle rows: {skipped}");
    }
}
