//! Server-level power composition (Figures 3 and 11).

use polca_gpu::GpuSpec;

/// Static power characteristics of a GPU server.
///
/// Figure 3 breaks down the 6.5 kW provisioned for a DGX-A100: about half
/// goes to the 8 GPUs, a quarter to fans, the rest to CPUs and other
/// components. At runtime the paper observes that "the peak power on our
/// machine never exceeded 5700 W" (§5) and that GPUs average 60 % of
/// server power (Figure 11) — both reproduced by
/// [`server_power_watts`](ServerSpec::server_power_watts).
#[derive(Debug, Clone, PartialEq)]
pub struct ServerSpec {
    /// Marketing name.
    pub name: &'static str,
    /// GPUs per server.
    pub n_gpus: usize,
    /// The GPU model.
    pub gpu: GpuSpec,
    /// Rated (provisioned) power in watts.
    pub provisioned_watts: f64,
    /// Provisioned fan power in watts (Figure 3: ~25 %).
    pub fans_provisioned_watts: f64,
    /// Provisioned CPU power in watts.
    pub cpu_provisioned_watts: f64,
    /// Provisioned power for everything else (NICs, NVMe, VRs) in watts.
    pub other_provisioned_watts: f64,
    /// Baseline non-GPU draw when the server is powered on, in watts.
    pub non_gpu_base_watts: f64,
    /// Extra non-GPU watts drawn per GPU watt (fan speed-up, VR losses).
    pub non_gpu_per_gpu_watt: f64,
}

impl ServerSpec {
    /// The NVIDIA DGX-A100 of the paper's §3.4 (inference flavor,
    /// 8×A100-80GB).
    pub fn dgx_a100() -> Self {
        let gpu = GpuSpec::a100_80gb();
        ServerSpec {
            name: "DGX-A100",
            n_gpus: 8,
            gpu,
            provisioned_watts: 6500.0,
            fans_provisioned_watts: 1625.0, // 25 % (Figure 3)
            cpu_provisioned_watts: 1000.0,
            other_provisioned_watts: 675.0,
            non_gpu_base_watts: 1200.0,
            non_gpu_per_gpu_watt: 0.25,
        }
    }

    /// The DGX-H100 (8U, 10.2 kW) mentioned in §6.7 for density
    /// comparisons.
    pub fn dgx_h100() -> Self {
        let gpu = GpuSpec::h100_80gb();
        ServerSpec {
            name: "DGX-H100",
            n_gpus: 8,
            gpu,
            provisioned_watts: 10_200.0,
            fans_provisioned_watts: 2550.0,
            cpu_provisioned_watts: 1200.0,
            other_provisioned_watts: 850.0,
            non_gpu_base_watts: 1500.0,
            non_gpu_per_gpu_watt: 0.25,
        }
    }

    /// Provisioned GPU power (GPU TDP × count).
    pub fn gpu_provisioned_watts(&self) -> f64 {
        self.gpu.tdp_watts * self.n_gpus as f64
    }

    /// The Figure 3 provisioned-power breakdown as `(component, watts)`
    /// pairs, in plot order.
    pub fn provisioned_breakdown(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("GPUs", self.gpu_provisioned_watts()),
            ("Fans", self.fans_provisioned_watts),
            ("CPUs", self.cpu_provisioned_watts),
            ("Others", self.other_provisioned_watts),
        ]
    }

    /// Total server power when the GPUs together draw `gpu_watts`.
    ///
    /// Non-GPU power is a base plus a fraction of GPU power (fans track
    /// thermal load).
    pub fn server_power_watts(&self, gpu_watts: f64) -> f64 {
        gpu_watts + self.non_gpu_base_watts + self.non_gpu_per_gpu_watt * gpu_watts
    }

    /// The highest power the server can transiently draw (all GPUs at
    /// their transient peak).
    pub fn peak_power_watts(&self) -> f64 {
        self.server_power_watts(self.gpu.transient_peak_watts * self.n_gpus as f64)
    }

    /// Server power with every GPU idle.
    pub fn idle_power_watts(&self) -> f64 {
        self.server_power_watts(self.gpu.idle_watts * self.n_gpus as f64)
    }

    /// How many watts of provisioning the paper's derating argument (§5)
    /// reclaims: rated power minus the observed peak.
    pub fn derating_headroom_watts(&self) -> f64 {
        self.provisioned_watts - self.peak_power_watts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ServerSpec {
        ServerSpec::dgx_a100()
    }

    #[test]
    fn figure3_breakdown_sums_to_provisioned_power() {
        let s = spec();
        let total: f64 = s.provisioned_breakdown().iter().map(|(_, w)| w).sum();
        assert!((total - s.provisioned_watts).abs() < 1.0, "total {total}");
    }

    #[test]
    fn gpus_get_about_half_the_provisioned_power() {
        // "around 50 % of the power is provisioned for GPUs" (§3.4).
        let s = spec();
        let frac = s.gpu_provisioned_watts() / s.provisioned_watts;
        assert!((0.45..=0.55).contains(&frac), "gpu frac {frac}");
    }

    #[test]
    fn fans_get_about_a_quarter() {
        // "server fans constitute nearly 25 % of the server power" (§5).
        let s = spec();
        let frac = s.fans_provisioned_watts / s.provisioned_watts;
        assert!((0.23..=0.27).contains(&frac), "fan frac {frac}");
    }

    #[test]
    fn peak_power_never_exceeds_5700w() {
        // §5: derating argument — observed peak ≤ 5700 W on the 6.5 kW
        // rated DGX-A100, reclaiming ~800 W.
        let s = spec();
        assert!(
            s.peak_power_watts() <= 5700.0,
            "peak {}",
            s.peak_power_watts()
        );
        assert!(
            s.derating_headroom_watts() >= 780.0,
            "headroom {}",
            s.derating_headroom_watts()
        );
    }

    #[test]
    fn gpus_are_about_sixty_percent_of_busy_server_power() {
        // Figure 11 / Insight 8, at a token-phase operating point.
        let s = spec();
        let gpu_watts = 8.0 * 290.0; // ~token-phase draw per GPU
        let frac = gpu_watts / s.server_power_watts(gpu_watts);
        assert!((0.55..=0.65).contains(&frac), "gpu frac {frac}");
    }

    #[test]
    fn idle_power_is_well_below_peak() {
        let s = spec();
        assert!(s.idle_power_watts() < 0.5 * s.peak_power_watts());
    }

    #[test]
    fn h100_is_power_denser() {
        assert!(
            ServerSpec::dgx_h100().provisioned_watts > ServerSpec::dgx_a100().provisioned_watts
        );
    }
}
