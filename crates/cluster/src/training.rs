//! Cluster-scale training power (Table 4, training column).
//!
//! "In larger-scale training, power swings are correlated across
//! thousands of GPUs running the training job" (§4.1): every server
//! executes the same iteration schedule nearly in lock-step, so the
//! compute/communication alternation appears at full amplitude in the
//! row-level power — unlike inference, where uncorrelated arrivals
//! statistically multiplex the phases away (Insight 9). Training rows
//! are also provisioned much closer to their observed peak ("about 3 %"
//! headroom), which is why Table 4 reports 97 % peak utilization.

use polca_llm::{ModelSpec, TrainingJob};
use polca_sim::SimRng;
use polca_stats::TimeSeries;

use crate::server_spec::ServerSpec;

/// A row of servers running one synchronous training job.
#[derive(Debug, Clone)]
pub struct TrainingCluster {
    servers: usize,
    job: TrainingJob,
    spec: ServerSpec,
    /// Standard deviation of per-server phase offset, in seconds
    /// (stragglers and network skew).
    jitter_std_s: f64,
}

impl TrainingCluster {
    /// Creates a training row of `servers` machines fine-tuning `model`.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is zero.
    pub fn new(servers: usize, model: &ModelSpec, spec: ServerSpec) -> Self {
        assert!(servers > 0, "cluster needs at least one server");
        TrainingCluster {
            servers,
            job: TrainingJob::fine_tuning(model),
            spec,
            jitter_std_s: 0.05,
        }
    }

    /// The production-like training row behind Table 4: 40 DGX-A100
    /// servers on a large synchronous decoder job.
    pub fn paper_training_row() -> Self {
        Self::new(40, &ModelSpec::gpt_neox_20b(), ServerSpec::dgx_a100())
    }

    /// Servers in the row.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// The training job description.
    pub fn job(&self) -> &TrainingJob {
        &self.job
    }

    /// Training rows are provisioned near their observed peak, not the
    /// rated server power: the row budget is `servers × peak server
    /// power × (1 + headroom)` with the paper's ~3 % headroom.
    pub fn provisioned_watts(&self) -> f64 {
        self.servers as f64 * self.spec.peak_power_watts() * 1.03
    }

    /// Workload intensity of the job at time `t` for a server whose
    /// schedule is shifted by `offset` seconds.
    fn intensity_at(&self, t: f64, offset: f64) -> f64 {
        let iter = self.job.iteration_time_s();
        let pos = (t + offset).rem_euclid(iter) / iter;
        let mut acc = 0.0;
        for phase in self.job.phases() {
            acc += phase.duration_frac;
            if pos < acc {
                return phase.intensity;
            }
        }
        self.job.phases().last().map_or(0.0, |p| p.intensity)
    }

    /// Simulates `duration_s` seconds of synchronized training and
    /// returns the row power sampled every `dt` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `dt` or `duration_s` is not strictly positive.
    pub fn row_power_series(&self, duration_s: f64, dt: f64, seed: u64) -> TimeSeries {
        assert!(dt > 0.0, "dt must be positive");
        assert!(duration_s > 0.0, "duration must be positive");
        let mut rng = SimRng::from_seed_stream(seed, 0x7124);
        let offsets: Vec<f64> = (0..self.servers)
            .map(|_| rng.normal(0.0, self.jitter_std_s))
            .collect();
        let gpu = &self.spec.gpu;
        let dyn_range = gpu.transient_peak_watts - gpu.idle_watts;
        let mut ts = TimeSeries::new();
        let steps = (duration_s / dt).ceil() as usize;
        for k in 0..steps {
            let t = k as f64 * dt;
            let mut row = 0.0;
            for offset in &offsets {
                let intensity =
                    (self.intensity_at(t, *offset) + rng.normal(0.0, 0.01)).clamp(0.0, 1.0);
                let per_gpu = gpu.idle_watts + dyn_range * intensity;
                row += self
                    .spec
                    .server_power_watts(per_gpu * self.spec.n_gpus as f64);
            }
            ts.push(t, row);
        }
        ts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> TrainingCluster {
        TrainingCluster::paper_training_row()
    }

    #[test]
    fn peak_utilization_is_about_97_percent() {
        // Table 4, training column.
        let c = cluster();
        let ts = c.row_power_series(120.0, 0.1, 7);
        let util = ts.peak().unwrap() / c.provisioned_watts();
        assert!((0.93..=1.0).contains(&util), "peak util {util:.3}");
    }

    #[test]
    fn swings_are_large_and_fast() {
        // Table 4: power can swing ~37.5 % of provisioned capacity
        // within 2 s.
        let c = cluster();
        let ts = c.row_power_series(120.0, 0.1, 7);
        let swing = ts.max_rise_within(2.0).unwrap() / c.provisioned_watts();
        assert!((0.25..=0.50).contains(&swing), "2 s swing {swing:.3}");
    }

    #[test]
    fn training_headroom_is_tiny() {
        // §4.3/Insight 9: about 3 % headroom — far less than inference.
        let c = cluster();
        let ts = c.row_power_series(60.0, 0.1, 1);
        let headroom = 1.0 - ts.peak().unwrap() / c.provisioned_watts();
        assert!(headroom < 0.08, "headroom {headroom:.3}");
    }

    #[test]
    fn swings_repeat_every_iteration() {
        let c = cluster();
        let iter = c.job().iteration_time_s();
        let ts = c.row_power_series(iter * 4.0, 0.05, 3);
        // Compare the first and third iteration's minima: periodic dips.
        let w1 = ts.slice_time(0.0, iter);
        let w3 = ts.slice_time(2.0 * iter, 3.0 * iter);
        let rel = (w1.trough().unwrap() - w3.trough().unwrap()).abs() / w1.trough().unwrap();
        assert!(rel < 0.05, "dips should recur each iteration ({rel:.3})");
    }

    #[test]
    fn jitter_smooths_but_does_not_hide_swings() {
        // The per-seed smoothing ratio is noisy (offsets are a handful of
        // normal draws), so assert on the mean over a few seeds.
        let mut c = cluster();
        const SEEDS: u64 = 6;
        let mut ratio_sum = 0.0;
        for seed in 0..SEEDS {
            c.jitter_std_s = 0.0;
            let sync = c.row_power_series(60.0, 0.1, seed);
            c.jitter_std_s = 0.3;
            let jittered = c.row_power_series(60.0, 0.1, seed);
            let swing_sync = sync.max_rise_within(2.0).unwrap();
            let swing_jit = jittered.max_rise_within(2.0).unwrap();
            assert!(
                swing_jit <= swing_sync * 1.02,
                "seed {seed}: jitter amplified the swing"
            );
            ratio_sum += swing_jit / swing_sync;
        }
        let mean_ratio = ratio_sum / SEEDS as f64;
        assert!(
            (0.15..=0.8).contains(&mean_ratio),
            "jitter should damp but not hide swings (mean ratio {mean_ratio:.3})"
        );
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_rejected() {
        let _ = TrainingCluster::new(0, &ModelSpec::gpt_neox_20b(), ServerSpec::dgx_a100());
    }
}
