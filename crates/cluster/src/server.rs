//! The *legacy* per-server inference state machine (§6.6).
//!
//! Each server runs one tensor-parallel model instance across all its
//! GPUs (the POLCA evaluation serves BLOOM-176B on 8×A100-80GB), with a
//! one-request buffer "based on the typical load balanced setup" (§6.6).
//! In-flight requests progress through the prompt and token phases of the
//! `polca-llm` model; frequency locks and the power brake stretch the
//! remaining work of whatever phase is active when they land.
//!
//! This whole-request model is what the paper evaluated and remains the
//! default — every historical result reproduces on it bit-for-bit. The
//! `polca-serve` crate implements the modern alternative (iteration-level
//! continuous batching over a paged KV-cache, optionally split into
//! prefill/decode pools); select between them per run with
//! [`crate::sim::EngineKind`].

use std::collections::VecDeque;

use polca_gpu::DvfsModel;
use polca_llm::{InferenceConfig, InferenceModel, RequestProfile};
use polca_sim::SimTime;
use polca_telemetry::ControlAction;

use crate::request::{CompletedRequest, Priority, Request};
use crate::server_spec::ServerSpec;

/// Which phase the active request is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Parallel prompt processing.
    Prompt,
    /// Sequential token generation.
    Token,
}

/// The running phase of the active request.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ActivePhase {
    phase: Phase,
    /// Workload intensity for power computation.
    intensity: f64,
    /// Compute-bound fraction for DVFS slowdown.
    compute_fraction: f64,
    /// When the phase completes under the clock at scheduling time.
    end_at: SimTime,
    /// The slowdown factor in force when `end_at` was computed.
    slowdown: f64,
}

/// Public view of a server's occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerState {
    /// No request in service.
    Idle,
    /// A request is in the given phase.
    Busy(Phase),
}

/// What happened when a phase-end event fired.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PhaseOutcome {
    /// The event was stale (the phase had been rescheduled).
    Ignored,
    /// The prompt finished; the token phase runs until the returned time.
    TokenStarted {
        /// Scheduled end of the token phase.
        end_at: SimTime,
        /// Event version to attach.
        version: u64,
    },
    /// The request completed; if the buffer was non-empty the next
    /// request started its prompt phase immediately.
    Completed {
        /// The finished request's record.
        record: CompletedRequest,
        /// Phase end of the next request's prompt, if one started.
        next: Option<(SimTime, u64)>,
    },
}

/// Workload intensity of a serving-framework-resident GPU with no active
/// request ("hot idle"): the model weights stay loaded, the runtime
/// busy-polls, and memory clocks stay up, so the draw is well above the
/// bare idle floor. The paper's production servers "are serving
/// inference with models loaded" at all times (§6.4).
pub const HOT_IDLE_INTENSITY: f64 = 0.35;

/// One inference server in the row.
#[derive(Debug, Clone)]
pub struct InferenceServer {
    id: usize,
    priority: Priority,
    spec: ServerSpec,
    deployment: InferenceModel,
    dvfs: DvfsModel,
    locked_mhz: Option<f64>,
    brake: bool,
    /// §5.2 "phase-aware power management": when set, token phases run
    /// at this SM clock while prompt phases keep the full clock —
    /// "using lower frequencies during the token phase could help reduce
    /// power consumption without substantially impacting performance".
    phase_aware_token_mhz: Option<f64>,
    state: Option<(Request, SimTime, ActivePhase, RequestProfile)>,
    buffer: VecDeque<Request>,
    buffer_capacity: usize,
    version: u64,
    /// Multiplier on emitted power (the "+5 % more power-intensive
    /// workloads" experiment of §6.6).
    power_scale: f64,
}

impl InferenceServer {
    /// Creates an idle server serving `deployment`.
    pub fn new(
        id: usize,
        priority: Priority,
        spec: ServerSpec,
        deployment: InferenceModel,
        buffer_capacity: usize,
    ) -> Self {
        InferenceServer {
            id,
            priority,
            spec,
            deployment,
            dvfs: DvfsModel::default(),
            locked_mhz: None,
            brake: false,
            phase_aware_token_mhz: None,
            state: None,
            buffer: VecDeque::new(),
            buffer_capacity,
            version: 0,
            power_scale: 1.0,
        }
    }

    /// Scales all emitted power by `factor` (workload-drift experiments).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive.
    pub fn set_power_scale(&mut self, factor: f64) {
        assert!(factor > 0.0, "power scale must be positive");
        self.power_scale = factor;
    }

    /// Server id within the row.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The priority class of workloads routed to this server.
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// The server's static power characteristics.
    pub fn spec(&self) -> &ServerSpec {
        &self.spec
    }

    /// Current occupancy.
    pub fn state(&self) -> ServerState {
        match &self.state {
            None => ServerState::Idle,
            Some((_, _, active, _)) => ServerState::Busy(active.phase),
        }
    }

    /// Whether the server can begin a request right now.
    pub fn is_idle(&self) -> bool {
        self.state.is_none()
    }

    /// Whether the buffer can accept another request.
    pub fn has_buffer_space(&self) -> bool {
        self.buffer.len() < self.buffer_capacity
    }

    /// Queued (not yet started) requests.
    pub fn queue_len(&self) -> usize {
        self.buffer.len()
    }

    /// The currently locked SM clock, if any.
    pub fn locked_mhz(&self) -> Option<f64> {
        self.locked_mhz
    }

    /// Whether the power brake is engaged.
    pub fn brake(&self) -> bool {
        self.brake
    }

    /// Enables (or disables, with `None`) §5.2 phase-aware power
    /// management: token phases run at `token_mhz` while prompt phases
    /// keep the full clock. Takes effect from the next phase transition.
    ///
    /// # Panics
    ///
    /// Panics if `token_mhz` is outside the device's clock range.
    pub fn set_phase_aware(&mut self, token_mhz: Option<f64>) {
        if let Some(mhz) = token_mhz {
            assert!(
                self.spec.gpu.clock_in_range(mhz),
                "phase-aware token clock outside device range"
            );
        }
        self.phase_aware_token_mhz = token_mhz;
    }

    /// The configured phase-aware token clock, if any.
    pub fn phase_aware_token_mhz(&self) -> Option<f64> {
        self.phase_aware_token_mhz
    }

    /// The SM clock the GPUs would run at in `phase`, honoring
    /// brake > lock > phase-aware token clock > max.
    pub fn clock_mhz_for_phase(&self, phase: Phase) -> f64 {
        let gpu = &self.spec.gpu;
        if self.brake {
            return gpu.power_brake_clock_mhz();
        }
        let mut clock = self.locked_mhz.unwrap_or(gpu.max_sm_clock_mhz);
        if phase == Phase::Token {
            if let Some(token_mhz) = self.phase_aware_token_mhz {
                clock = clock.min(token_mhz);
            }
        }
        clock
    }

    /// The SM clock the GPUs run at right now (the active phase's clock;
    /// the prompt clock when idle).
    pub fn effective_clock_mhz(&self) -> f64 {
        let phase = match &self.state {
            Some((_, _, active, _)) => active.phase,
            None => Phase::Prompt,
        };
        self.clock_mhz_for_phase(phase)
    }

    /// The effective clock as a fraction of maximum.
    pub fn clock_ratio(&self) -> f64 {
        self.effective_clock_mhz() / self.spec.gpu.max_sm_clock_mhz
    }

    fn clock_ratio_for_phase(&self, phase: Phase) -> f64 {
        self.clock_mhz_for_phase(phase) / self.spec.gpu.max_sm_clock_mhz
    }

    /// Instantaneous server power in watts.
    pub fn power_watts(&self) -> f64 {
        let gpu = &self.spec.gpu;
        let intensity = match &self.state {
            None => HOT_IDLE_INTENSITY,
            Some((_, _, active, _)) => active.intensity,
        };
        let per_gpu = gpu.idle_watts
            + (gpu.transient_peak_watts - gpu.idle_watts)
                * intensity
                * self.dvfs.power_scale(self.clock_ratio());
        let gpu_watts = per_gpu * self.deployment.n_gpus() as f64;
        // GPUs not hosting the deployment idle.
        let spare = self.spec.n_gpus.saturating_sub(self.deployment.n_gpus()) as f64;
        let total_gpu = gpu_watts + spare * gpu.idle_watts;
        self.spec.server_power_watts(total_gpu) * self.power_scale
    }

    fn slowdown_for(&self, phase: Phase, compute_fraction: f64) -> f64 {
        self.dvfs.slowdown(
            self.clock_ratio_for_phase(phase).max(1e-3),
            compute_fraction,
        )
    }

    /// Begins serving `req` immediately.
    ///
    /// Returns the prompt phase's end time and the event version to
    /// attach to the corresponding phase-end event.
    ///
    /// # Panics
    ///
    /// Panics if the server is not idle.
    pub fn start_request(&mut self, now: SimTime, req: Request) -> (SimTime, u64) {
        assert!(self.is_idle(), "server {} is busy", self.id);
        let profile = self.deployment.profile(&InferenceConfig::new(
            req.input_tokens,
            req.output_tokens,
            1,
        ));
        let slowdown = self.slowdown_for(Phase::Prompt, profile.prompt.compute_fraction);
        let end_at = now + SimTime::from_secs(profile.prompt.duration_s * slowdown);
        self.version += 1;
        self.state = Some((
            req,
            now,
            ActivePhase {
                phase: Phase::Prompt,
                intensity: profile.prompt.intensity,
                compute_fraction: profile.prompt.compute_fraction,
                end_at,
                slowdown,
            },
            profile,
        ));
        (end_at, self.version)
    }

    /// Adds `req` to the buffer. Returns `false` (rejecting the request)
    /// if the buffer is full.
    pub fn enqueue(&mut self, req: Request) -> bool {
        if self.has_buffer_space() {
            self.buffer.push_back(req);
            true
        } else {
            false
        }
    }

    /// Handles a phase-end event with the given version.
    pub fn on_phase_end(&mut self, now: SimTime, version: u64) -> PhaseOutcome {
        if version != self.version || self.state.is_none() {
            return PhaseOutcome::Ignored;
        }
        let (req, started_at, active, profile) = self.state.take().expect("state checked above");
        match active.phase {
            Phase::Prompt => {
                let slowdown = self.slowdown_for(Phase::Token, profile.token.compute_fraction);
                let end_at = now + SimTime::from_secs(profile.token.duration_s * slowdown);
                self.version += 1;
                self.state = Some((
                    req,
                    started_at,
                    ActivePhase {
                        phase: Phase::Token,
                        intensity: profile.token.intensity,
                        compute_fraction: profile.token.compute_fraction,
                        end_at,
                        slowdown,
                    },
                    profile,
                ));
                PhaseOutcome::TokenStarted {
                    end_at,
                    version: self.version,
                }
            }
            Phase::Token => {
                let record = CompletedRequest {
                    request: req,
                    started_at,
                    completed_at: now,
                    server: self.id,
                };
                let next = self
                    .buffer
                    .pop_front()
                    .map(|next_req| self.start_request(now, next_req));
                PhaseOutcome::Completed { record, next }
            }
        }
    }

    /// Applies a delivered control action. If the effective clock changed
    /// while a phase is running, the phase is rescheduled and the new
    /// `(end_at, version)` is returned so the caller can re-arm its event.
    pub fn apply_action(&mut self, now: SimTime, action: ControlAction) -> Option<(SimTime, u64)> {
        let before = self.effective_clock_mhz();
        match action {
            ControlAction::LockClock { mhz } => {
                self.locked_mhz = Some(self.spec.gpu.clamp_clock(mhz));
            }
            ControlAction::UnlockClock => self.locked_mhz = None,
            ControlAction::PowerBrake { on } => self.brake = on,
            // The cluster policies drive frequency, not reactive caps;
            // accept and ignore cap actions for forward compatibility.
            ControlAction::PowerCap { .. } | ControlAction::ClearPowerCap => {}
        }
        if (self.effective_clock_mhz() - before).abs() < f64::EPSILON {
            return None;
        }
        self.reschedule_active_phase(now)
    }

    /// Recomputes the running phase's end time under the current clock.
    fn reschedule_active_phase(&mut self, now: SimTime) -> Option<(SimTime, u64)> {
        let phase = self.state.as_ref()?.2.phase;
        let clock_ratio = self.clock_ratio_for_phase(phase).max(1e-3);
        let dvfs = self.dvfs;
        let (_, _, active, _) = self.state.as_mut()?;
        let remaining_actual = active.end_at.saturating_sub(now).as_secs();
        let remaining_work = remaining_actual / active.slowdown;
        let new_slowdown = dvfs.slowdown(clock_ratio, active.compute_fraction);
        let end_at = now + SimTime::from_secs(remaining_work * new_slowdown);
        active.end_at = end_at;
        active.slowdown = new_slowdown;
        self.version += 1;
        Some((end_at, self.version))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polca_gpu::GpuSpec;
    use polca_llm::ModelSpec;

    fn server(priority: Priority) -> InferenceServer {
        let deployment =
            InferenceModel::new(ModelSpec::bloom_176b(), GpuSpec::a100_80gb()).unwrap();
        InferenceServer::new(0, priority, ServerSpec::dgx_a100(), deployment, 1)
    }

    fn req(id: u64, arrival: f64) -> Request {
        Request::new(id, SimTime::from_secs(arrival), 2048, 256, Priority::Low)
    }

    #[test]
    fn lifecycle_prompt_then_token_then_complete() {
        let mut s = server(Priority::Low);
        assert!(s.is_idle());
        let (prompt_end, v1) = s.start_request(SimTime::ZERO, req(1, 0.0));
        assert_eq!(s.state(), ServerState::Busy(Phase::Prompt));

        let out = s.on_phase_end(prompt_end, v1);
        let (token_end, v2) = match out {
            PhaseOutcome::TokenStarted { end_at, version } => (end_at, version),
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(s.state(), ServerState::Busy(Phase::Token));
        assert!(token_end > prompt_end);

        match s.on_phase_end(token_end, v2) {
            PhaseOutcome::Completed { record, next } => {
                assert_eq!(record.request.id, 1);
                assert!(next.is_none());
                assert_eq!(record.completed_at, token_end);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(s.is_idle());
    }

    #[test]
    fn stale_events_are_ignored() {
        let mut s = server(Priority::Low);
        let (end, v) = s.start_request(SimTime::ZERO, req(1, 0.0));
        // A clock change reschedules and bumps the version…
        s.apply_action(
            SimTime::from_secs(0.1),
            ControlAction::LockClock { mhz: 1110.0 },
        );
        // …so the old event must be ignored.
        assert_eq!(s.on_phase_end(end, v), PhaseOutcome::Ignored);
        assert_eq!(s.state(), ServerState::Busy(Phase::Prompt));
    }

    #[test]
    fn buffer_respects_capacity() {
        let mut s = server(Priority::Low);
        s.start_request(SimTime::ZERO, req(1, 0.0));
        assert!(s.enqueue(req(2, 0.1)));
        assert!(!s.enqueue(req(3, 0.2)), "one-request buffer must reject");
        assert_eq!(s.queue_len(), 1);
    }

    #[test]
    fn completion_starts_buffered_request() {
        let mut s = server(Priority::Low);
        let (p_end, v1) = s.start_request(SimTime::ZERO, req(1, 0.0));
        s.enqueue(req(2, 0.1));
        let (t_end, v2) = match s.on_phase_end(p_end, v1) {
            PhaseOutcome::TokenStarted { end_at, version } => (end_at, version),
            other => panic!("unexpected {other:?}"),
        };
        match s.on_phase_end(t_end, v2) {
            PhaseOutcome::Completed { next, .. } => {
                let (next_end, _) = next.expect("buffered request should start");
                assert!(next_end > t_end);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(s.state(), ServerState::Busy(Phase::Prompt));
        assert_eq!(s.queue_len(), 0);
    }

    #[test]
    fn power_reflects_phase() {
        let mut s = server(Priority::Low);
        let idle = s.power_watts();
        let (p_end, v1) = s.start_request(SimTime::ZERO, req(1, 0.0));
        let prompt_power = s.power_watts();
        s.on_phase_end(p_end, v1);
        let token_power = s.power_watts();
        assert!(
            prompt_power > token_power,
            "{prompt_power} vs {token_power}"
        );
        assert!(token_power > idle);
        // Peak server power stays under the §5 bound.
        assert!(prompt_power <= 5700.0);
    }

    #[test]
    fn frequency_lock_stretches_inflight_prompt() {
        let mut s = server(Priority::Low);
        let (end, _) = s.start_request(SimTime::ZERO, req(1, 0.0));
        let (new_end, _) = s
            .apply_action(
                SimTime::from_secs(0.01),
                ControlAction::LockClock { mhz: 1110.0 },
            )
            .expect("clock changed while busy");
        assert!(new_end > end, "prompt should stretch under a lock");
    }

    #[test]
    fn brake_overrides_lock_and_slows_massively() {
        let mut s = server(Priority::Low);
        s.apply_action(SimTime::ZERO, ControlAction::LockClock { mhz: 1305.0 });
        let (end, _) = s.start_request(SimTime::ZERO, req(1, 0.0));
        let (braked_end, _) = s
            .apply_action(
                SimTime::from_secs(0.01),
                ControlAction::PowerBrake { on: true },
            )
            .expect("brake changes clock");
        assert!(
            (braked_end - SimTime::ZERO).as_secs() > 3.0 * (end - SimTime::ZERO).as_secs(),
            "brake should near-halt progress"
        );
        assert_eq!(s.effective_clock_mhz(), 288.0);
        // Releasing the brake restores the lock.
        s.apply_action(
            SimTime::from_secs(0.02),
            ControlAction::PowerBrake { on: false },
        );
        assert_eq!(s.effective_clock_mhz(), 1305.0);
    }

    #[test]
    fn unchanged_clock_does_not_reschedule() {
        let mut s = server(Priority::Low);
        s.start_request(SimTime::ZERO, req(1, 0.0));
        // Locking to the current max is a no-op for the schedule.
        let out = s.apply_action(
            SimTime::from_secs(0.01),
            ControlAction::LockClock { mhz: 1410.0 },
        );
        assert!(out.is_none());
    }

    #[test]
    fn power_scale_multiplies_output() {
        let mut s = server(Priority::Low);
        let base = s.power_watts();
        s.set_power_scale(1.05);
        assert!((s.power_watts() / base - 1.05).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "is busy")]
    fn starting_on_busy_server_panics() {
        let mut s = server(Priority::Low);
        s.start_request(SimTime::ZERO, req(1, 0.0));
        s.start_request(SimTime::from_secs(0.1), req(2, 0.1));
    }

    #[test]
    fn phase_aware_lowers_token_power_keeps_prompt_fast() {
        // §5.2: lower frequencies during the token phase reduce power
        // without substantially impacting performance.
        let mut plain = server(Priority::Low);
        let mut aware = server(Priority::Low);
        aware.set_phase_aware(Some(1110.0));

        let (p_end_plain, v1) = plain.start_request(SimTime::ZERO, req(1, 0.0));
        let (p_end_aware, v2) = aware.start_request(SimTime::ZERO, req(1, 0.0));
        // Prompt runs at full clock in both cases.
        assert_eq!(p_end_plain, p_end_aware);
        assert_eq!(plain.power_watts(), aware.power_watts());

        let t_plain = match plain.on_phase_end(p_end_plain, v1) {
            PhaseOutcome::TokenStarted { end_at, .. } => end_at,
            other => panic!("unexpected {other:?}"),
        };
        let t_aware = match aware.on_phase_end(p_end_aware, v2) {
            PhaseOutcome::TokenStarted { end_at, .. } => end_at,
            other => panic!("unexpected {other:?}"),
        };
        // Token power drops substantially…
        assert!(
            aware.power_watts() < 0.93 * plain.power_watts(),
            "{} vs {}",
            aware.power_watts(),
            plain.power_watts()
        );
        // …while the token phase barely stretches (memory-bound).
        let stretch = (t_aware - p_end_aware).as_secs() / (t_plain - p_end_plain).as_secs();
        assert!(stretch < 1.05, "token stretch {stretch}");
    }

    #[test]
    fn phase_aware_respects_brake_and_lock_precedence() {
        let mut s = server(Priority::Low);
        s.set_phase_aware(Some(1110.0));
        assert_eq!(s.phase_aware_token_mhz(), Some(1110.0));
        // A deeper lock wins over the phase-aware clock.
        s.apply_action(SimTime::ZERO, ControlAction::LockClock { mhz: 900.0 });
        assert_eq!(s.clock_mhz_for_phase(Phase::Token), 900.0);
        // A shallower lock: token still runs at the phase-aware clock.
        s.apply_action(SimTime::ZERO, ControlAction::LockClock { mhz: 1300.0 });
        assert_eq!(s.clock_mhz_for_phase(Phase::Token), 1110.0);
        assert_eq!(s.clock_mhz_for_phase(Phase::Prompt), 1300.0);
        // The brake wins over everything.
        s.apply_action(SimTime::ZERO, ControlAction::PowerBrake { on: true });
        assert_eq!(s.clock_mhz_for_phase(Phase::Token), 288.0);
        assert_eq!(s.clock_mhz_for_phase(Phase::Prompt), 288.0);
    }

    #[test]
    #[should_panic(expected = "outside device range")]
    fn phase_aware_rejects_invalid_clock() {
        let mut s = server(Priority::Low);
        s.set_phase_aware(Some(50.0));
    }
}
