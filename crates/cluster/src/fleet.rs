//! Single-datacenter fleet composition: N resumable row engines under
//! the PDU/datacenter budget hierarchy.
//!
//! The paper's evaluation simulates one 52-server row (§6.4); its
//! characterization argues at cluster scale (§5, Table 4). [`FleetSim`]
//! bridges the two: it composes N independent [`RowSim`] engines —
//! each with its own event queue, OOB control plane, stream-split RNG
//! seed, recorder, and telemetry taps — steps them in lockstep one
//! telemetry window at a time, and between windows aggregates
//! ground-truth row power up the [`PowerHierarchy`] to check per-PDU
//! and datacenter budgets.
//!
//! Since the site refactor, `FleetSim` is a thin shell over
//! [`SiteSim`](crate::site::SiteSim) configured as a 1-datacenter
//! site — the window loop, work deque, and budget monitor live in
//! [`crate::site`], and multi-datacenter shapes plus parallel row
//! stepping are reached through [`SiteConfig`](crate::site::SiteConfig)
//! directly.
//!
//! Determinism is the design constraint everything here serves:
//!
//! * arrivals are split across rows by a deterministic round-robin
//!   dispatcher that preserves per-row arrival order, so a 1-row fleet
//!   feeds its single row the unmodified source stream;
//! * per-row seeds come from [`row_seed`], a splitmix-style mix whose
//!   row-0 value is the fleet seed itself;
//! * budget *monitoring* is passive by default — a 1-row fleet run is
//!   bit-identical (events.jsonl and all) to the legacy single-row
//!   [`ClusterSim`] path. Active enforcement (braking the rows behind
//!   an overloaded PDU or datacenter) is opt-in via
//!   [`FleetConfig::enforce_budgets`].

use polca_obs::Recorder;
use polca_sim::SimTime;

use crate::hierarchy::PowerHierarchy;
use crate::request::Priority;
use crate::row::RowConfig;
use crate::sim::{PowerController, RequestSource, SimConfig, SimReport};
use crate::site::{SiteConfig, SiteReport, SiteSim, RELEASE_FRACTION};

/// Derives the seed for fleet row `row` from the fleet seed.
///
/// The mix is a splitmix64-style finalizer over the row index with no
/// additive constants, so `row_seed(seed, 0) == seed` — the first row
/// of a fleet replays exactly the RNG streams of a single-row run with
/// the same seed — while distinct rows land on well-separated streams.
pub fn row_seed(fleet_seed: u64, row: usize) -> u64 {
    let mut x = (row as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    fleet_seed ^ x
}

/// Fleet-level simulator knobs, wrapping the per-row [`SimConfig`].
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Number of rows in the fleet.
    pub rows: usize,
    /// Rows behind each PDU (Figure 2; the last PDU may feed fewer).
    pub rows_per_pdu: usize,
    /// Per-PDU budget override in watts (`None`: provisioned power of
    /// the rows behind it).
    pub pdu_budget_watts: Option<f64>,
    /// Datacenter budget override in watts (`None`: provisioned power
    /// of every row).
    pub datacenter_budget_watts: Option<f64>,
    /// When `true`, the fleet actively engages the power brake on every
    /// row behind an overloaded PDU (and on all rows when the
    /// datacenter budget is exceeded), releasing it once aggregate
    /// power falls below [`Self::RELEASE_FRACTION`] of the budget.
    /// When `false` (the default) budgets are monitored only, which
    /// keeps a 1-row fleet bit-identical to the single-row path.
    pub enforce_budgets: bool,
    /// The per-row configuration template. `seed` is stream-split per
    /// row via [`row_seed`]; `recorder` becomes the *fleet-level*
    /// recorder while each row records into a fresh per-row recorder of
    /// the same level; `oob_taps` fan out with the row index attached.
    pub base: SimConfig,
}

impl FleetConfig {
    /// Aggregate power must fall below this fraction of the budget
    /// before an enforcement brake releases (hysteresis against
    /// brake/unbrake limit cycles at the breaker threshold).
    pub const RELEASE_FRACTION: f64 = RELEASE_FRACTION;

    /// A fleet of `rows` rows with default per-row knobs.
    pub fn with_rows(rows: usize) -> Self {
        FleetConfig {
            rows,
            ..Default::default()
        }
    }

    /// The equivalent 1-datacenter [`SiteConfig`] — the shape
    /// [`FleetSim`] actually runs.
    pub fn into_site(self) -> SiteConfig {
        SiteConfig {
            datacenters: 1,
            rows_per_datacenter: self.rows,
            rows_per_pdu: self.rows_per_pdu,
            pdu_budget_watts: self.pdu_budget_watts,
            datacenter_budget_watts: self.datacenter_budget_watts,
            enforce_budgets: self.enforce_budgets,
            base: self.base,
            ..SiteConfig::default()
        }
    }
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            rows: 1,
            rows_per_pdu: 1,
            pdu_budget_watts: None,
            datacenter_budget_watts: None,
            enforce_budgets: false,
            base: SimConfig::default(),
        }
    }
}

/// Everything a fleet run produces.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Per-row reports, in row order.
    pub rows: Vec<SimReport>,
    /// Per-row recorders (fresh recorders at the fleet config's level;
    /// row 0's event log is bit-identical to a solo run when budgets
    /// are not enforced).
    pub row_recorders: Vec<Recorder>,
    /// Highest aggregate power seen at each PDU, in watts.
    pub pdu_peak_watts: Vec<f64>,
    /// Budget of each PDU, in watts.
    pub pdu_budget_watts: Vec<f64>,
    /// Highest datacenter aggregate power seen, in watts.
    pub datacenter_peak_watts: f64,
    /// The datacenter budget, in watts.
    pub datacenter_budget_watts: f64,
    /// Boundary samples at which some PDU exceeded its budget.
    pub pdu_violation_samples: u64,
    /// Boundary samples at which the datacenter exceeded its budget.
    pub datacenter_violation_samples: u64,
    /// Fleet-level brake engagements (enforcement mode only).
    pub fleet_brake_engagements: u64,
    /// Duration simulated.
    pub duration: SimTime,
}

impl FleetReport {
    /// Repackages a 1-datacenter [`SiteReport`].
    fn from_site(site: SiteReport) -> Self {
        debug_assert_eq!(site.datacenters, 1, "FleetSim always runs one datacenter");
        FleetReport {
            rows: site.rows,
            row_recorders: site.row_recorders,
            pdu_peak_watts: site.pdu_peak_watts,
            pdu_budget_watts: site.pdu_budget_watts,
            datacenter_peak_watts: site.datacenter_peak_watts[0],
            datacenter_budget_watts: site.datacenter_budget_watts,
            pdu_violation_samples: site.pdu_violation_samples,
            datacenter_violation_samples: site.datacenter_violation_samples,
            fleet_brake_engagements: site.fleet_brake_engagements,
            duration: site.duration,
        }
    }

    /// Total requests offered across rows.
    pub fn offered(&self) -> u64 {
        self.rows.iter().map(|r| r.offered).sum()
    }

    /// Total requests completed across rows.
    pub fn completed(&self) -> u64 {
        self.rows.iter().map(|r| r.completed).sum()
    }

    /// Total requests rejected across rows.
    pub fn rejected(&self) -> u64 {
        self.rows.iter().map(|r| r.rejected).sum()
    }

    /// Total discrete events processed across rows.
    pub fn events_processed(&self) -> u64 {
        self.rows.iter().map(|r| r.events_processed).sum()
    }

    /// All completion latencies for `priority`, concatenated in row
    /// order (quantiles over the fleet, not one row).
    pub fn latencies(&self, priority: Priority) -> Vec<f64> {
        let mut all = Vec::new();
        for r in &self.rows {
            all.extend_from_slice(r.latencies(priority));
        }
        all
    }

    /// Datacenter peak power as a fraction of the datacenter budget.
    pub fn datacenter_peak_utilization(&self) -> f64 {
        self.datacenter_peak_watts / self.datacenter_budget_watts
    }

    /// Sum of the rows' time-weighted mean powers (the fleet's mean
    /// aggregate power).
    pub fn mean_fleet_watts(&self) -> f64 {
        self.rows.iter().map(|r| r.mean_row_watts).sum()
    }
}

/// N lockstep row engines under the fleet power hierarchy — a
/// 1-datacenter [`SiteSim`].
///
/// See the [module docs](self) for the determinism contract. Controller
/// construction is a factory so every row gets an independent policy
/// instance (policies carry mutable per-row state).
pub struct FleetSim<P> {
    inner: SiteSim<P>,
    hierarchy: PowerHierarchy,
}

impl<P: PowerController> FleetSim<P> {
    /// Builds a fleet of `fleet.rows` copies of `row`, each driven by
    /// its share of `source` (round-robin) and controlled by its own
    /// `make_controller(row_index, row_recorder)` instance, up to
    /// `horizon`. The recorder handed to the factory is the fresh
    /// per-row recorder the row simulates into, so controllers that
    /// record their own transitions land them in the right row's log.
    ///
    /// # Panics
    ///
    /// Panics if `fleet.rows` or `fleet.rows_per_pdu` is zero, or the
    /// base telemetry interval is not positive.
    pub fn new<S: RequestSource>(
        row: RowConfig,
        fleet: FleetConfig,
        make_controller: impl FnMut(usize, &Recorder) -> P,
        source: S,
        horizon: SimTime,
    ) -> Self {
        let mut hierarchy =
            PowerHierarchy::provisioned(fleet.rows, fleet.rows_per_pdu, row.provisioned_watts());
        if let Some(w) = fleet.pdu_budget_watts {
            hierarchy = hierarchy.with_pdu_budget(w);
        }
        if let Some(w) = fleet.datacenter_budget_watts {
            hierarchy = hierarchy.with_datacenter_budget(w);
        }
        FleetSim {
            inner: SiteSim::new(row, fleet.into_site(), make_controller, source, horizon),
            hierarchy,
        }
    }

    /// Number of rows in the fleet.
    pub fn n_rows(&self) -> usize {
        self.inner.n_rows()
    }

    /// The fleet power hierarchy (budgets, PDU grouping).
    pub fn hierarchy(&self) -> &PowerHierarchy {
        &self.hierarchy
    }

    /// Runs every row to the horizon, aggregating power at each
    /// telemetry-window boundary, and returns the fleet report.
    pub fn run(self) -> FleetReport {
        FleetReport::from_site(self.inner.run())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Request;
    use crate::sim::{ClusterSim, NoopController};
    use polca_obs::{Event, ObsLevel};

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn small_row() -> RowConfig {
        let mut row = RowConfig::paper_inference_row();
        row.base_servers = 4;
        row
    }

    fn mixed_requests(n: u64) -> Vec<Request> {
        (0..n)
            .map(|i| {
                Request::new(
                    i,
                    t(i as f64 * 3.0),
                    1024,
                    64,
                    if i % 2 == 0 {
                        Priority::Low
                    } else {
                        Priority::High
                    },
                )
            })
            .collect()
    }

    #[test]
    fn row_seed_is_identity_for_row_zero() {
        assert_eq!(row_seed(42, 0), 42);
        assert_eq!(row_seed(0, 0), 0);
        assert_eq!(row_seed(u64::MAX, 0), u64::MAX);
        let seeds: std::collections::BTreeSet<u64> = (0..64).map(|r| row_seed(42, r)).collect();
        assert_eq!(seeds.len(), 64, "row seeds must be distinct");
    }

    #[test]
    fn one_row_fleet_is_bit_identical_to_cluster_sim() {
        let reqs = mixed_requests(50);
        let solo_rec = Recorder::new(ObsLevel::Full);
        let solo_cfg = SimConfig {
            recorder: solo_rec.clone(),
            ..SimConfig::default()
        };
        let solo =
            ClusterSim::new(small_row(), solo_cfg, NoopController).run(reqs.clone(), t(1000.0));

        let mut fleet_cfg = FleetConfig::with_rows(1);
        fleet_cfg.base.recorder = Recorder::new(ObsLevel::Full);
        let fleet = FleetSim::new(
            small_row(),
            fleet_cfg,
            |_, _: &Recorder| NoopController,
            reqs.into_iter(),
            t(1000.0),
        )
        .run();

        assert_eq!(fleet.rows.len(), 1);
        let row = &fleet.rows[0];
        assert_eq!(row.offered, solo.offered);
        assert_eq!(row.completed, solo.completed);
        assert_eq!(row.rejected, solo.rejected);
        assert_eq!(row.low_latencies_s, solo.low_latencies_s);
        assert_eq!(row.high_latencies_s, solo.high_latencies_s);
        assert_eq!(row.peak_row_watts, solo.peak_row_watts);
        assert_eq!(row.mean_row_watts, solo.mean_row_watts);
        assert_eq!(row.events_processed, solo.events_processed);
        assert_eq!(row.row_power.values(), solo.row_power.values());
        // The row's event log is byte-for-byte the single-row log.
        assert_eq!(
            fleet.row_recorders[0].artifacts().events_jsonl(),
            solo_rec.artifacts().events_jsonl()
        );
    }

    #[test]
    fn round_robin_dispatch_splits_arrivals_evenly() {
        let mut fleet_cfg = FleetConfig::with_rows(2);
        fleet_cfg.rows_per_pdu = 2;
        let fleet = FleetSim::new(
            small_row(),
            fleet_cfg,
            |_, _: &Recorder| NoopController,
            mixed_requests(50).into_iter(),
            t(1000.0),
        )
        .run();
        assert_eq!(fleet.rows[0].offered, 25);
        assert_eq!(fleet.rows[1].offered, 25);
        assert_eq!(fleet.offered(), 50);
        assert_eq!(
            fleet.completed(),
            fleet.rows[0].completed + fleet.rows[1].completed
        );
        assert!(fleet.events_processed() > 0);
        assert_eq!(
            fleet.latencies(Priority::Low).len(),
            fleet.rows[0].low_latencies_s.len() + fleet.rows[1].low_latencies_s.len()
        );
    }

    #[test]
    fn budget_monitoring_counts_violations_without_intervening() {
        let mut fleet_cfg = FleetConfig::with_rows(2);
        fleet_cfg.rows_per_pdu = 2;
        fleet_cfg.pdu_budget_watts = Some(1.0); // violated at every boundary
        fleet_cfg.datacenter_budget_watts = Some(1.0);
        fleet_cfg.base.recorder = Recorder::new(ObsLevel::Events);
        let monitored = FleetSim::new(
            small_row(),
            fleet_cfg.clone(),
            |_, _: &Recorder| NoopController,
            mixed_requests(50).into_iter(),
            t(100.0),
        );
        assert_eq!(monitored.n_rows(), 2);
        assert_eq!(monitored.hierarchy().n_pdus(), 1);
        let report = monitored.run();
        assert_eq!(report.pdu_violation_samples, 50); // 100 s / 2 s windows
        assert_eq!(report.datacenter_violation_samples, 50);
        assert_eq!(report.fleet_brake_engagements, 0);
        assert_eq!(report.rows[0].brake_engagements, 0);
        assert!(report.datacenter_peak_watts > report.datacenter_budget_watts);
        assert!(report.datacenter_peak_utilization() > 1.0);
        let kinds: std::collections::BTreeSet<&str> = fleet_cfg
            .base
            .recorder
            .artifacts()
            .events
            .iter()
            .map(Event::kind)
            .collect();
        assert!(kinds.contains("fleet_power_sample"), "kinds: {kinds:?}");
        assert!(kinds.contains("budget_violation"), "kinds: {kinds:?}");
    }

    #[test]
    fn enforcement_brakes_rows_behind_an_overloaded_pdu() {
        let reqs = mixed_requests(50);
        let mut fleet_cfg = FleetConfig::with_rows(2);
        fleet_cfg.rows_per_pdu = 2;
        fleet_cfg.pdu_budget_watts = Some(1.0); // always over; brake never releases
        let free = FleetSim::new(
            small_row(),
            fleet_cfg.clone(),
            |_, _: &Recorder| NoopController,
            reqs.clone().into_iter(),
            t(1000.0),
        )
        .run();
        fleet_cfg.enforce_budgets = true;
        let braked = FleetSim::new(
            small_row(),
            fleet_cfg,
            |_, _: &Recorder| NoopController,
            reqs.into_iter(),
            t(1000.0),
        )
        .run();
        assert_eq!(braked.fleet_brake_engagements, 1);
        assert_eq!(braked.rows[0].brake_engagements, 1);
        assert_eq!(braked.rows[1].brake_engagements, 1);
        assert!(
            braked.mean_fleet_watts() < free.mean_fleet_watts(),
            "{} vs {}",
            braked.mean_fleet_watts(),
            free.mean_fleet_watts()
        );
    }
}
